//! Minimal offline stand-in for the `bytes` crate: a cheaply cloneable,
//! immutable, reference-counted byte buffer. Only the surface this
//! workspace uses is provided.

use std::ops::Deref;
use std::sync::Arc;

/// Cheaply cloneable immutable byte buffer (`Arc<[u8]>` underneath).
#[derive(Clone, Default, PartialEq, Eq, Hash)]
pub struct Bytes(Arc<[u8]>);

impl Bytes {
    /// The empty buffer.
    pub fn new() -> Self {
        Bytes(Arc::from(&[][..]))
    }

    /// Wraps a static slice (copied; the stand-in has no zero-copy path).
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes(Arc::from(bytes))
    }

    /// Copies a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes(Arc::from(data))
    }

    pub fn len(&self) -> usize {
        self.0.len()
    }

    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Copies the range into a new buffer.
    pub fn slice(&self, range: impl std::ops::RangeBounds<usize>) -> Bytes {
        use std::ops::Bound;
        let start = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.0.len(),
        };
        Bytes(Arc::from(&self.0[start..end]))
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.0.to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(Arc::from(v.into_boxed_slice()))
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(v: &'static [u8]) -> Self {
        Bytes(Arc::from(v))
    }
}

impl From<String> for Bytes {
    fn from(v: String) -> Self {
        Bytes::from(v.into_bytes())
    }
}

impl From<&'static str> for Bytes {
    fn from(v: &'static str) -> Self {
        Bytes(Arc::from(v.as_bytes()))
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.0.iter().take(32) {
            for c in std::ascii::escape_default(b) {
                write!(f, "{}", c as char)?;
            }
        }
        if self.0.len() > 32 {
            write!(f, "…({} bytes)", self.0.len())?;
        }
        write!(f, "\"")
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        &self.0[..] == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        &self.0[..] == *other
    }
}

impl<const N: usize> PartialEq<&[u8; N]> for Bytes {
    fn eq(&self, other: &&[u8; N]) -> bool {
        self.0[..] == other[..]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_clone_share() {
        let b = Bytes::from(vec![1, 2, 3]);
        let c = b.clone();
        assert_eq!(b, c);
        assert_eq!(b.len(), 3);
        assert_eq!(&b[..], &[1, 2, 3]);
        assert_eq!(b.slice(1..3), Bytes::from(vec![2, 3]));
    }
}
