//! Minimal offline stand-in for `serde_json`: the `Value` tree, the
//! `json!` macro, and pretty serialization. No `serde` integration — this
//! workspace only builds `Value`s explicitly.

use std::collections::BTreeMap;
use std::fmt;

/// JSON number: integers are kept exact, everything else is f64.
#[derive(Debug, Clone, PartialEq)]
pub enum Number {
    I64(i64),
    U64(u64),
    F64(f64),
}

impl Number {
    pub fn as_f64(&self) -> Option<f64> {
        Some(match self {
            Number::I64(v) => *v as f64,
            Number::U64(v) => *v as f64,
            Number::F64(v) => *v,
        })
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Number::I64(v) => Some(*v),
            Number::U64(v) => i64::try_from(*v).ok(),
            Number::F64(_) => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Number::I64(v) => u64::try_from(*v).ok(),
            Number::U64(v) => Some(*v),
            Number::F64(_) => None,
        }
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Number::I64(v) => write!(f, "{v}"),
            Number::U64(v) => write!(f, "{v}"),
            Number::F64(v) => {
                if v.is_finite() {
                    if v.fract() == 0.0 && v.abs() < 1e15 {
                        write!(f, "{v:.1}")
                    } else {
                        write!(f, "{v}")
                    }
                } else {
                    // JSON has no Inf/NaN; serde_json emits null.
                    write!(f, "null")
                }
            }
        }
    }
}

/// A JSON value tree (object keys sorted, like a canonical form).
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    #[default]
    Null,
    Bool(bool),
    Number(Number),
    String(String),
    Array(Vec<Value>),
    Object(BTreeMap<String, Value>),
}

/// Map type alias mirroring `serde_json::Map`.
pub type Map = BTreeMap<String, Value>;

impl Value {
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => n.as_f64(),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Panicking index like `value["key"]` / `value[0]` (read-only).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;

    fn index(&self, key: &str) -> &Value {
        static NULL: Value = Value::Null;
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;

    fn index(&self, idx: usize) -> &Value {
        static NULL: Value = Value::Null;
        self.as_array().and_then(|a| a.get(idx)).unwrap_or(&NULL)
    }
}

macro_rules! from_int {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Value { Value::Number(Number::I64(v as i64)) }
        }
    )*};
}
from_int!(i8, i16, i32, i64, isize);

macro_rules! from_uint {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Value { Value::Number(Number::U64(v as u64)) }
        }
    )*};
}
from_uint!(u8, u16, u32, u64, usize);

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::Number(Number::F64(v))
    }
}

impl From<f32> for Value {
    fn from(v: f32) -> Value {
        Value::Number(Number::F64(v as f64))
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::String(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::String(v.to_string())
    }
}

/// `json!` takes its expressions by reference (like real serde_json, which
/// serializes through `&T: Serialize`), so any clonable convertible type
/// works behind a borrow.
impl<T: Clone + Into<Value>> From<&T> for Value {
    fn from(v: &T) -> Value {
        v.clone().into()
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Value {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}

impl<T: Into<Value> + Clone> From<&[T]> for Value {
    fn from(v: &[T]) -> Value {
        Value::Array(v.iter().cloned().map(Into::into).collect())
    }
}

impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(v: Option<T>) -> Value {
        match v {
            Some(v) => v.into(),
            None => Value::Null,
        }
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == Some(other.as_str())
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

macro_rules! eq_int {
    ($($t:ty),*) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                match self {
                    Value::Number(Number::I64(v)) => i64::try_from(*other).is_ok_and(|o| *v == o),
                    Value::Number(Number::U64(v)) => u64::try_from(*other).is_ok_and(|o| *v == o),
                    _ => false,
                }
            }
        }
    )*};
}
eq_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        self.as_f64() == Some(*other)
    }
}

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_value(v: &Value, indent: usize, pretty: bool, out: &mut String) {
    let pad = |n: usize, out: &mut String| {
        if pretty {
            out.push('\n');
            for _ in 0..n {
                out.push_str("  ");
            }
        }
    };
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => out.push_str(&n.to_string()),
        Value::String(s) => escape_into(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                pad(indent + 1, out);
                write_value(item, indent + 1, pretty, out);
            }
            pad(indent, out);
            out.push(']');
        }
        Value::Object(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                pad(indent + 1, out);
                escape_into(k, out);
                out.push(':');
                if pretty {
                    out.push(' ');
                }
                write_value(val, indent + 1, pretty, out);
            }
            pad(indent, out);
            out.push('}');
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        write_value(self, 0, false, &mut s);
        f.write_str(&s)
    }
}

/// Serialization can't fail for `Value`; the Result mirrors serde_json.
pub type Error = std::convert::Infallible;
pub type Result<T> = std::result::Result<T, Error>;

/// Compact serialization.
pub fn to_string(value: &Value) -> Result<String> {
    let mut s = String::new();
    write_value(value, 0, false, &mut s);
    Ok(s)
}

/// Two-space-indented serialization.
pub fn to_string_pretty(value: &Value) -> Result<String> {
    let mut s = String::new();
    write_value(value, 0, true, &mut s);
    Ok(s)
}

/// Builds a [`Value`] with JSON syntax, like `serde_json::json!`.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($tt:tt)* ]) => { $crate::Value::Array($crate::json_array![ $($tt)* ]) };
    ({ $($tt:tt)* }) => { $crate::json_object!(@obj [] $($tt)*) };
    ($other:expr) => { $crate::Value::from(&$other) };
}

/// Internal: array element list → `Vec<Value>`.
#[macro_export]
#[doc(hidden)]
macro_rules! json_array {
    () => { ::std::vec::Vec::<$crate::Value>::new() };
    ($($elem:tt),+ $(,)?) => { ::std::vec![ $($crate::json!($elem)),+ ] };
}

/// Internal: object body → `Value::Object`.
#[macro_export]
#[doc(hidden)]
macro_rules! json_object {
    (@obj [$($pairs:tt)*]) => {{
        #[allow(unused_mut)]
        let mut map = $crate::Map::new();
        $crate::json_object!(@insert map $($pairs)*);
        $crate::Value::Object(map)
    }};
    // Munch one `"key": value` pair; value is a tt that json! can handle.
    (@obj [$($pairs:tt)*] $key:literal : $value:tt , $($rest:tt)*) => {
        $crate::json_object!(@obj [$($pairs)* ($key, $value)] $($rest)*)
    };
    (@obj [$($pairs:tt)*] $key:literal : $value:tt) => {
        $crate::json_object!(@obj [$($pairs)* ($key, $value)])
    };
    // Value is a general expression up to the next comma.
    (@obj [$($pairs:tt)*] $key:literal : $value:expr , $($rest:tt)*) => {
        $crate::json_object!(@obj [$($pairs)* ($key, ($value))] $($rest)*)
    };
    (@obj [$($pairs:tt)*] $key:literal : $value:expr) => {
        $crate::json_object!(@obj [$($pairs)* ($key, ($value))])
    };
    (@insert $map:ident $(($key:literal, $value:tt))*) => {
        $( $map.insert($key.to_string(), $crate::json!($value)); )*
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_macro_builds_nested_values() {
        let rows = vec![json!({ "a": 1 }), json!({ "a": 2 })];
        let v = json!({
            "name": "fig2",
            "count": 3usize,
            "ratio": 0.5,
            "ok": true,
            "missing": null,
            "rows": rows,
            "inline": [1, 2, 3],
            "nested": { "x": [ { "y": "z" } ] },
        });
        assert_eq!(v["name"].as_str(), Some("fig2"));
        assert_eq!(v["count"].as_u64(), Some(3));
        assert_eq!(v["rows"][1]["a"].as_i64(), Some(2));
        assert_eq!(v["nested"]["x"][0]["y"].as_str(), Some("z"));
        assert!(v["missing"].is_null());
        let s = to_string_pretty(&v).unwrap();
        assert!(s.contains("\"name\": \"fig2\""));
        let compact = to_string(&v).unwrap();
        assert!(compact.contains("\"inline\":[1,2,3]"));
    }

    #[test]
    fn string_escaping() {
        let v = json!({ "s": "a\"b\\c\nd" });
        assert_eq!(to_string(&v).unwrap(), r#"{"s":"a\"b\\c\nd"}"#);
    }
}
