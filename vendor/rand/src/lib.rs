//! Minimal offline stand-in for `rand`: a deterministic PRNG behind the
//! `Rng`/`SeedableRng` trait names this workspace uses.
//!
//! `StdRng` here is SplitMix64 — statistically fine for simulation noise
//! and test-data generation, NOT cryptographic (neither is the usage).

/// Core RNG operations.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Types samplable from uniform bits (the stand-in for `Standard`).
pub trait SampleUniform: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! sample_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
sample_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl SampleUniform for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl SampleUniform for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl SampleUniform for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// The user-facing sampling trait (subset of `rand::Rng`).
pub trait Rng: RngCore {
    fn gen<T: SampleUniform>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Uniform in `[low, high)` for integer ranges.
    fn gen_range<T>(&mut self, range: std::ops::Range<T>) -> T
    where
        Self: Sized,
        T: RangeSample,
    {
        T::in_range(self, range.start, range.end)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Integer types usable with [`Rng::gen_range`].
pub trait RangeSample: Copy {
    fn in_range<R: RngCore>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! range_sample {
    ($($t:ty),*) => {$(
        impl RangeSample for $t {
            fn in_range<R: RngCore>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                let span = (high as i128 - low as i128) as u128;
                let v = (u128::sample(rng)) % span;
                (low as i128 + v as i128) as $t
            }
        }
    )*};
}
range_sample!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl RangeSample for f64 {
    fn in_range<R: RngCore>(rng: &mut R, low: Self, high: Self) -> Self {
        low + f64::sample(rng) * (high - low)
    }
}

impl RangeSample for f32 {
    fn in_range<R: RngCore>(rng: &mut R, low: Self, high: Self) -> Self {
        low + f32::sample(rng) * (high - low)
    }
}

/// Seedable construction (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// SplitMix64: tiny, fast, passes BigCrush on 64-bit outputs.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl RngCore for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl SeedableRng for SplitMix64 {
    fn seed_from_u64(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }
}

pub mod rngs {
    /// The workspace's deterministic "standard" RNG.
    pub type StdRng = super::SplitMix64;
}

pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_and_uniformish() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut r = StdRng::seed_from_u64(7);
        let mean = (0..10_000).map(|_| r.gen::<f64>()).sum::<f64>() / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
        let v: u8 = r.gen();
        let _ = v;
        let x = r.gen_range(10usize..20);
        assert!((10..20).contains(&x));
    }
}
