//! Minimal offline stand-in for `criterion`: same macro/builder surface,
//! but a simple mean-of-samples timer instead of statistical analysis.
//! `cargo bench` prints one line per benchmark with mean time and, when a
//! throughput was declared, derived bandwidth.

use std::fmt;
use std::time::{Duration, Instant};

/// Declared per-iteration workload, used to report bandwidth.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

/// Benchmark identifier: `function_id/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_id: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{function_id}/{parameter}"),
        }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Runs and times one benchmark routine.
pub struct Bencher {
    samples: usize,
    mean: Duration,
}

impl Bencher {
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up, then size the batch so one sample takes ≳1ms.
        std::hint::black_box(routine());
        let mut batch = 1u64;
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(1) || batch >= 1 << 20 {
                break;
            }
            batch *= 8;
        }
        let mut total = Duration::ZERO;
        let mut iters = 0u64;
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            total += start.elapsed();
            iters += batch;
        }
        self.mean = if iters == 0 { Duration::ZERO } else { total / iters as u32 };
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        // Cap samples to keep this stub's `cargo bench` fast.
        self.samples = n.clamp(1, 10);
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: self.samples,
            mean: Duration::ZERO,
        };
        f(&mut b);
        self.report(&id.id, b.mean);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            samples: self.samples,
            mean: Duration::ZERO,
        };
        f(&mut b, input);
        self.report(&id.id, b.mean);
        self
    }

    pub fn finish(&mut self) {}

    fn report(&self, id: &str, mean: Duration) {
        let rate = match (self.throughput, mean.as_nanos()) {
            (Some(Throughput::Bytes(n)), ns) if ns > 0 => {
                let gib = n as f64 / (1u64 << 30) as f64 / (ns as f64 * 1e-9);
                format!("  {gib:.3} GiB/s")
            }
            (Some(Throughput::Elements(n)), ns) if ns > 0 => {
                let me = n as f64 / 1e6 / (ns as f64 * 1e-9);
                format!("  {me:.1} Melem/s")
            }
            _ => String::new(),
        };
        println!("bench {}/{id}: {mean:?}/iter{rate}", self.name);
    }
}

/// Entry point, mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            samples: 10,
            throughput: None,
            _criterion: self,
        }
    }
}

/// Bundles bench functions into one callable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running the given groups (use with `harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_surface_compiles_and_runs() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(2);
        group.throughput(Throughput::Bytes(1024));
        group.bench_function("add", |b| {
            b.iter(|| std::hint::black_box(1u64 + 1));
        });
        let data = vec![1u8; 16];
        group.bench_with_input(BenchmarkId::new("sum", 16), &data, |b, d| {
            b.iter(|| d.iter().map(|&x| x as u64).sum::<u64>());
        });
        group.finish();
    }
}
