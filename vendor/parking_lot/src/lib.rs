//! Minimal offline stand-in for `parking_lot`, backed by `std::sync`.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the tiny API slice it actually uses: `Mutex`,
//! `RwLock` and `Condvar` with parking_lot's non-poisoning signatures.

use std::sync::{self, TryLockError};
use std::time::Duration;

/// Non-poisoning mutex with parking_lot's `lock() -> Guard` signature.
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    pub const fn const_new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_tuple("Mutex").field(&&*g).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

/// Non-poisoning reader-writer lock.
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

/// Condition variable compatible with this crate's `Mutex`.
pub struct Condvar(sync::Condvar);

impl Condvar {
    pub fn new() -> Self {
        Condvar(sync::Condvar::new())
    }

    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    pub fn notify_all(&self) {
        self.0.notify_all();
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        // std's API consumes the guard; emulate parking_lot's in-place wait
        // by replacing the referenced guard with the returned one.
        take_guard(guard, |g| self.0.wait(g).unwrap_or_else(|e| e.into_inner()));
    }

    pub fn wait_for<T>(&self, guard: &mut MutexGuard<'_, T>, timeout: Duration) -> WaitTimeoutResult {
        let mut timed_out = false;
        take_guard(guard, |g| {
            let (g, res) = self
                .0
                .wait_timeout(g, timeout)
                .unwrap_or_else(|e| e.into_inner());
            timed_out = res.timed_out();
            g
        });
        WaitTimeoutResult(timed_out)
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

/// Result of a timed condvar wait.
#[derive(Debug, Clone, Copy)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

fn take_guard<'a, T, F>(slot: &mut MutexGuard<'a, T>, f: F)
where
    F: FnOnce(MutexGuard<'a, T>) -> MutexGuard<'a, T>,
{
    // SAFETY: we move the guard out, immediately obtain a replacement from
    // `f`, and write it back before anyone can observe the hole.
    unsafe {
        let guard = std::ptr::read(slot);
        let new_guard = f(guard);
        std::ptr::write(slot, new_guard);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_for(&mut g, Duration::from_millis(10));
        assert!(res.timed_out());
    }
}
