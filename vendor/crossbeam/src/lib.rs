//! Minimal offline stand-in for `crossbeam`, providing the `channel`
//! module surface this workspace uses, backed by `std::sync::mpsc`.
//!
//! Differences from the real crate are confined to performance: the
//! receiver is a `Mutex<mpsc::Receiver>` so it can be `Sync` (crossbeam
//! receivers are lock-free). Semantics — unbounded buffering, disconnect
//! on last-sender drop, timeouts — match.

pub mod channel {
    use std::sync::mpsc;
    use std::sync::{Arc, Mutex};
    use std::time::Duration;

    pub use std::sync::mpsc::{RecvError, RecvTimeoutError, SendError, TryRecvError};

    /// Unbounded MPMC-ish channel (MPSC underneath; the consumer side is
    /// serialized by a mutex, which matches this workspace's usage of one
    /// logical consumer per receiver).
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(Arc::new(Mutex::new(rx))))
    }

    /// Cloneable sending half.
    pub struct Sender<T>(mpsc::Sender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0.send(value)
        }
    }

    /// Cloneable, `Sync` receiving half.
    pub struct Receiver<T>(Arc<Mutex<mpsc::Receiver<T>>>);

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Receiver(Arc::clone(&self.0))
        }
    }

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.lock().unwrap_or_else(|e| e.into_inner()).recv()
        }

        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.0
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .recv_timeout(timeout)
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.lock().unwrap_or_else(|e| e.into_inner()).try_recv()
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_recv_disconnect() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            let tx2 = tx.clone();
            tx2.send(2).unwrap();
            assert_eq!(rx.recv().unwrap(), 1);
            assert_eq!(rx.recv().unwrap(), 2);
            drop(tx);
            drop(tx2);
            assert!(rx.recv().is_err());
        }

        #[test]
        fn timeout() {
            let (_tx, rx) = unbounded::<u8>();
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(5)).unwrap_err(),
                RecvTimeoutError::Timeout
            );
        }
    }
}
