//! Minimal offline stand-in for `proptest`: deterministic random testing
//! with the strategy-combinator surface this workspace uses.
//!
//! Differences from the real crate, by design:
//! * **no shrinking** — a failing case panics with the generated inputs
//!   visible in the assertion message instead of a minimized example;
//! * string strategies accept only the regex subset actually used here
//!   (sequences of `[class]` atoms with optional `{m}` / `{m,n}` repeats);
//! * generation is seeded from the test's module path + name, so failures
//!   reproduce across runs.

use std::sync::Arc;

use rand::prelude::*;

/// The RNG handed to strategies. Deterministic per test.
pub type TestRng = StdRng;

/// Deterministic RNG for a named test (stable across runs/platforms).
pub fn test_rng(name: &str) -> TestRng {
    // FNV-1a over the test name; independent of RandomState.
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    TestRng::seed_from_u64(h)
}

/// Per-`proptest!` block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; tests here that care set their own.
        ProptestConfig { cases: 64 }
    }
}

/// A generator of values (the stand-in for proptest's `Strategy`).
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    fn prop_filter<F: Fn(&Self::Value) -> bool>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            whence,
            f,
        }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        BoxedStrategy(Arc::new(move |rng| self.generate(rng)))
    }

    /// Recursive strategies, bounded by `depth` levels of branching.
    /// `_desired_size`/`_expected_branch_size` are accepted for signature
    /// compatibility; depth alone bounds generation here.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf = self.boxed();
        let mut strat = leaf.clone();
        for _ in 0..depth {
            let branch = recurse(strat).boxed();
            strat = Union::weighted(vec![(1, leaf.clone()), (1, branch)]).boxed();
        }
        strat
    }
}

/// Type-erased, clonable strategy.
pub struct BoxedStrategy<T>(Arc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Arc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Weighted choice between boxed alternatives (backs `prop_oneof!`).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u32,
}

impl<T> Union<T> {
    pub fn weighted(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof of zero strategies");
        let total = arms.iter().map(|(w, _)| *w).sum();
        assert!(total > 0, "prop_oneof weights sum to zero");
        Union { arms, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.gen_range(0..self.total);
        for (w, strat) in &self.arms {
            if pick < *w {
                return strat.generate(rng);
            }
            pick -= w;
        }
        unreachable!("weight bookkeeping")
    }
}

/// `prop_map` adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// `prop_filter` adapter: rejection-samples (no shrinking to worry about).
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..10_000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter({:?}): rejected 10000 consecutive values", self.whence);
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a default "any value" strategy.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.gen::<$t>()
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool);

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Full bit-pattern coverage (subnormals, infinities, NaNs included);
        // callers filter what they can't accept.
        f32::from_bits(rng.gen::<u32>())
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        f64::from_bits(rng.gen::<u64>())
    }
}

/// Strategy for any value of `T` (stand-in for `proptest::arbitrary::any`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `low..high` ranges are strategies, like in real proptest.
impl<T: rand::RangeSample + 'static> Strategy for std::ops::Range<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.start..self.end)
    }
}

macro_rules! tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}
tuple_strategy!(A: 0);
tuple_strategy!(A: 0, B: 1);
tuple_strategy!(A: 0, B: 1, C: 2);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);

/// String strategies from a regex subset: a sequence of atoms, each a
/// character class `[...]` or literal char, with optional `{m}` / `{m,n}`.
impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let parts = parse_pattern(self);
        let mut out = String::new();
        for part in &parts {
            let n = if part.min == part.max {
                part.min
            } else {
                rng.gen_range(part.min..part.max + 1)
            };
            for _ in 0..n {
                let i = rng.gen_range(0..part.chars.len());
                out.push(part.chars[i]);
            }
        }
        out
    }
}

struct PatternPart {
    chars: Vec<char>,
    min: usize,
    max: usize,
}

fn parse_pattern(pat: &str) -> Vec<PatternPart> {
    let mut chars = pat.chars().peekable();
    let mut parts = Vec::new();
    while let Some(c) = chars.next() {
        let set = match c {
            '[' => {
                let mut set = Vec::new();
                let mut class: Vec<char> = Vec::new();
                for c in chars.by_ref() {
                    if c == ']' {
                        break;
                    }
                    class.push(c);
                }
                let mut i = 0;
                while i < class.len() {
                    // `a-z` is a range unless `-` starts or ends the class.
                    if i + 2 < class.len() && class[i + 1] == '-' {
                        let (lo, hi) = (class[i] as u32, class[i + 2] as u32);
                        assert!(lo <= hi, "bad char range in pattern {pat:?}");
                        for v in lo..=hi {
                            set.push(char::from_u32(v).expect("range char"));
                        }
                        i += 3;
                    } else {
                        set.push(class[i]);
                        i += 1;
                    }
                }
                assert!(!set.is_empty(), "empty char class in pattern {pat:?}");
                set
            }
            '\\' => vec![chars.next().expect("escape at end of pattern")],
            c => vec![c],
        };
        let (min, max) = if chars.peek() == Some(&'{') {
            chars.next();
            let mut spec = String::new();
            for c in chars.by_ref() {
                if c == '}' {
                    break;
                }
                spec.push(c);
            }
            match spec.split_once(',') {
                Some((m, n)) => (
                    m.trim().parse().expect("bad {m,n}"),
                    n.trim().parse().expect("bad {m,n}"),
                ),
                None => {
                    let n = spec.trim().parse().expect("bad {n}");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        parts.push(PatternPart {
            chars: set,
            min,
            max,
        });
    }
    parts
}

pub mod collection {
    use super::*;

    /// Vec of `size` elements drawn from `element`, `size` in `range`.
    pub fn vec<S: Strategy>(element: S, range: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, range }
    }

    pub struct VecStrategy<S> {
        element: S,
        range: std::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = if self.range.start + 1 >= self.range.end {
                self.range.start
            } else {
                rng.gen_range(self.range.start..self.range.end)
            };
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod option {
    use super::*;

    /// `None` about a quarter of the time, like the real crate's default.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.gen_range(0u32..4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

pub mod sample {
    use super::*;

    /// Uniform choice from a non-empty list.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select from empty list");
        Select { options }
    }

    pub struct Select<T> {
        options: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.gen_range(0..self.options.len());
            self.options[i].clone()
        }
    }
}

/// Defines property tests: each `#[test] fn name(arg in strategy, ...)`
/// runs `config.cases` times with fresh deterministic inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@tests ($config) $($rest)*);
    };
    (@tests ($config:expr) $($(#[$meta:meta])* fn $name:ident(
        $($arg:ident in $strat:expr),+ $(,)?
    ) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config = $config;
                let mut __rng = $crate::test_rng(concat!(module_path!(), "::", stringify!($name)));
                for __case in 0..__config.cases {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                    // prop_assume! returns from this closure to skip a case.
                    let __run = move || { $body };
                    __run();
                    let _ = __case;
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@tests ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Skip the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
}

/// Weighted (`w => strat`) or uniform choice between same-valued strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::Union::weighted(vec![
            $(($weight as u32, $crate::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::weighted(vec![
            $((1u32, $crate::Strategy::boxed($strat))),+
        ])
    };
}

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_filters(x in 3usize..10, v in crate::collection::vec(any::<u8>(), 0..5)) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(v.len() < 5);
        }

        #[test]
        fn assume_skips(x in 0usize..10) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    #[test]
    fn string_pattern_shapes() {
        let mut rng = crate::test_rng("string_pattern_shapes");
        for _ in 0..200 {
            let s = Strategy::generate(&"[a-zA-Z_][a-zA-Z0-9_.-]{0,12}", &mut rng);
            assert!(!s.is_empty() && s.len() <= 13, "{s:?}");
            let head = s.chars().next().unwrap();
            assert!(head.is_ascii_alphabetic() || head == '_', "{s:?}");
            let t = Strategy::generate(&"[ -~]{1,24}", &mut rng);
            assert!((1..=24).contains(&t.len()), "{t:?}");
            assert!(t.bytes().all(|b| (0x20..=0x7e).contains(&b)));
        }
    }

    #[test]
    fn oneof_respects_weights() {
        let strat = prop_oneof![9 => Just(0u8), 1 => Just(1u8)];
        let mut rng = crate::test_rng("oneof_respects_weights");
        let ones = (0..1000)
            .filter(|_| Strategy::generate(&strat, &mut rng) == 1)
            .count();
        assert!(ones > 20 && ones < 250, "ones={ones}");
    }

    #[test]
    fn recursive_is_bounded() {
        #[derive(Clone, Debug)]
        enum Tree {
            #[allow(dead_code)]
            Leaf(u8),
            Node(Vec<Tree>),
        }
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf(_) => 1,
                Tree::Node(c) => 1 + c.iter().map(depth).max().unwrap_or(0),
            }
        }
        let leaf = any::<u8>().prop_map(Tree::Leaf);
        let strat = leaf.prop_recursive(3, 32, 4, |inner| {
            crate::collection::vec(inner, 0..4).prop_map(Tree::Node)
        });
        let mut rng = crate::test_rng("recursive_is_bounded");
        for _ in 0..100 {
            let t = Strategy::generate(&strat, &mut rng);
            assert!(depth(&t) <= 5, "{t:?}");
        }
    }
}
