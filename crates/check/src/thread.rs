//! Thread shims: `spawn`, `yield_now`, and a `JoinHandle` mirroring the
//! `std::thread` surface the shm substrate uses. Inside a model run every
//! spawned closure becomes a scheduler-controlled virtual thread; outside
//! one, the calls delegate to `std::thread`.

use crate::rt::{ctx, set_ctx, Ctx};
use crate::sched::{ExecAbort, FailureKind};
use std::panic::{self, AssertUnwindSafe};
use std::sync::{Arc, Mutex};

/// Handle to a model (or plain) thread.
pub struct JoinHandle<T> {
    /// Virtual-thread id when spawned inside a model, else `None`.
    vtid: Option<usize>,
    result: Arc<Mutex<Option<std::thread::Result<T>>>>,
    os: Option<std::thread::JoinHandle<()>>,
}

impl<T> JoinHandle<T> {
    /// Waits for the thread and returns its value.
    ///
    /// Inside a model this is a blocking synchronization edge: the
    /// joiner's clock absorbs the joinee's, so everything the joinee did
    /// happens-before everything the joiner does next. A panic in the
    /// joinee has already failed the whole execution, so `join` on a
    /// panicked model thread simply unwinds with the abort payload.
    pub fn join(mut self) -> T {
        if let Some(tid) = self.vtid {
            let c = ctx().expect("model JoinHandle joined outside its model run");
            c.sched.join_thread(c.tid, tid);
        }
        if let Some(os) = self.os.take() {
            let _ = os.join();
        }
        match self.result.lock().unwrap().take() {
            Some(Ok(v)) => v,
            Some(Err(_)) | None => {
                // The joinee panicked; the execution is already failing.
                panic::panic_any(ExecAbort)
            }
        }
    }
}

/// Spawns a thread. Inside a model run the closure becomes a virtual
/// thread under scheduler control; the spawn point itself is a schedule
/// point, so the child may run before the parent's next step.
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    let result: Arc<Mutex<Option<std::thread::Result<T>>>> = Arc::new(Mutex::new(None));
    let slot = Arc::clone(&result);
    match ctx() {
        Some(c) => {
            let tid = c.sched.spawn_thread(c.tid);
            let sched = Arc::clone(&c.sched);
            let os = std::thread::Builder::new()
                .name(format!("check-vt-{tid}"))
                .spawn(move || {
                    set_ctx(Some(Ctx {
                        sched: Arc::clone(&sched),
                        tid,
                    }));
                    // The entry gate must sit *inside* the catch: if the run
                    // aborts before this thread's first step, `wait_for_turn`
                    // unwinds with `ExecAbort`, and escaping the catch would
                    // skip `finish_thread_aborted` — the controller would
                    // then wait for `all_done` forever.
                    let r = panic::catch_unwind(AssertUnwindSafe(|| {
                        sched.wait_for_turn(tid);
                        f()
                    }));
                    match r {
                        Ok(v) => {
                            *slot.lock().unwrap() = Some(Ok(v));
                            sched.finish_thread(tid);
                        }
                        Err(payload) => {
                            if payload.downcast_ref::<ExecAbort>().is_none() {
                                // `as_ref`, not `&payload`: a `&Box<dyn Any>`
                                // unsize-coerces to `&dyn Any` *of the Box*,
                                // and every downcast of the payload fails.
                                let msg = panic_message(payload.as_ref());
                                let mut inner_fail = || {
                                    sched.fail(FailureKind::Panic, msg.clone());
                                };
                                // `fail` unwinds; contain it so we can still
                                // run the abort-path bookkeeping below.
                                let _ = panic::catch_unwind(AssertUnwindSafe(&mut inner_fail));
                            }
                            sched.finish_thread_aborted(tid);
                        }
                    }
                })
                .expect("spawn model thread");
            // Give the scheduler a branch point right after the spawn.
            c.sched.schedule(c.tid);
            JoinHandle {
                vtid: Some(tid),
                result,
                os: Some(os),
            }
        }
        None => {
            let os = std::thread::spawn(move || {
                let r = panic::catch_unwind(AssertUnwindSafe(f));
                *slot.lock().unwrap() = Some(r);
            });
            JoinHandle {
                vtid: None,
                result,
                os: Some(os),
            }
        }
    }
}

/// Extracts a printable message from a panic payload.
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

/// Yield point: inside a model, deprioritizes the caller until another
/// thread has made progress (this is what makes bounded spin loops
/// explorable); outside, delegates to the OS.
pub fn yield_now() {
    match ctx() {
        Some(c) => c.sched.yield_now(c.tid),
        None => std::thread::yield_now(),
    }
}
