//! `std::hint` stand-ins.

/// In a model run a spin-loop hint behaves like [`crate::thread::yield_now`]:
/// spinning without yielding would generate unbounded no-progress branches,
/// and deprioritizing the spinner is exactly the fairness assumption a real
/// `spin_loop` encodes ("someone else will make progress").
pub fn spin_loop() {
    crate::thread::yield_now();
}
