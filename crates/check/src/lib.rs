//! # damaris-check — a vendored, offline mini-loom
//!
//! Deterministic, exhaustive (bounded-preemption) exploration of thread
//! interleavings for the `damaris-shm` substrate, with vector-clock data
//! race detection. No dependencies, no network, no OS-scheduler luck:
//! every schedule the DFS can reach is actually executed.
//!
//! ```
//! use damaris_check as check;
//! use check::sync::atomic::{AtomicUsize, Ordering};
//! use check::sync::Arc;
//!
//! check::model(|| {
//!     let n = Arc::new(AtomicUsize::new(0));
//!     let n2 = Arc::clone(&n);
//!     let t = check::thread::spawn(move || {
//!         n2.fetch_add(1, Ordering::Relaxed);
//!     });
//!     n.fetch_add(1, Ordering::Relaxed);
//!     t.join();
//!     assert_eq!(n.load(Ordering::Relaxed), 2);
//! });
//! ```
//!
//! ## What it models
//!
//! * **Schedules**: every atomic access, mutex operation, spawn, and
//!   yield is a schedule point; the explorer runs the model closure once
//!   per reachable decision path (DFS with backtracking), bounding
//!   *preemptive* switches per execution (CHESS-style).
//! * **Happens-before**: release/acquire edges through atomics and
//!   mutexes, spawn/join edges, vector clocks throughout. `Relaxed`
//!   stores break release chains — exactly the bug class a weakened
//!   ordering introduces.
//! * **Data races**: non-atomic data must go through
//!   [`cell::CheckCell`]/[`cell::RangeTracker`]; conflicting unordered
//!   accesses fail the run with the schedule that exposed them.
//! * **Deadlocks & livelocks**: all-threads-blocked is reported with each
//!   thread's blocker; runaway spin loops hit the step budget.
//!
//! ## What it does not model
//!
//! Store buffers / load reordering (loads return the latest store —
//! ordering bugs surface through the happens-before race detector, as in
//! ThreadSanitizer), spurious CAS failures, and `SeqCst`'s total order
//! beyond acquire+release. These are the same simplifications the
//! orderings audit in `DESIGN.md` documents.

mod clock;
mod rt;
mod sched;

pub mod cell;
pub mod hint;
pub mod sync;
pub mod thread;

pub use sched::{Failure, FailureKind};

use rt::{set_ctx, Ctx};
use sched::{ChoiceRec, ExecAbort, Scheduler};
use std::panic::{self, AssertUnwindSafe};
use std::sync::Arc;

/// Exploration statistics returned by a successful check.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Stats {
    /// Complete executions (distinct schedules) explored.
    pub executions: usize,
}

/// Exploration parameters.
#[derive(Clone, Copy, Debug)]
pub struct Builder {
    /// Maximum *preemptive* context switches per execution. 2 is the
    /// classic sweet spot: most concurrency bugs need at most two.
    pub preemption_bound: usize,
    /// Schedule points allowed per execution before declaring livelock.
    pub max_steps: usize,
    /// Ceiling on explored schedules (guards against state explosion).
    pub max_executions: usize,
}

impl Default for Builder {
    fn default() -> Self {
        Builder {
            preemption_bound: 2,
            max_steps: 20_000,
            max_executions: 500_000,
        }
    }
}

/// Install (once) a panic hook that silences the checker's internal
/// abort payloads; real panics keep the default report.
fn install_hook() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<ExecAbort>().is_some() {
                return;
            }
            prev(info);
        }));
    });
}

impl Builder {
    pub fn new() -> Self {
        Builder::default()
    }

    /// Sets the preemption bound.
    pub fn preemption_bound(mut self, bound: usize) -> Self {
        self.preemption_bound = bound;
        self
    }

    /// Explores every schedule of `f`; panics (with the failing schedule)
    /// on the first data race, deadlock, livelock, or assertion failure.
    pub fn check<F>(self, f: F) -> Stats
    where
        F: Fn() + Send + Sync + 'static,
    {
        match self.check_result(f) {
            Ok(stats) => stats,
            Err(failure) => panic!("{failure}"),
        }
    }

    /// Like [`Builder::check`] but returns the failure instead of
    /// panicking — how seeded-bug tests assert that the checker *does*
    /// catch a deliberately weakened ordering.
    pub fn check_result<F>(self, f: F) -> Result<Stats, Failure>
    where
        F: Fn() + Send + Sync + 'static,
    {
        install_hook();
        let f = Arc::new(f);
        let mut prefix: Vec<usize> = Vec::new();
        let mut executions = 0usize;
        loop {
            let (record, failure) = self.run_once(Arc::clone(&f), prefix.clone(), executions);
            if let Some(failure) = failure {
                return Err(failure);
            }
            executions += 1;
            if executions >= self.max_executions {
                panic!(
                    "damaris-check: exceeded {} executions without exhausting the \
                     schedule space; shrink the model or lower the preemption bound",
                    self.max_executions
                );
            }
            // Depth-first backtrack: rewind to the deepest decision with an
            // unexplored alternative and take it.
            let mut rec = record;
            let mut next: Option<Vec<usize>> = None;
            while let Some(c) = rec.pop() {
                if c.chosen_idx + 1 < c.options.len() {
                    let mut p: Vec<usize> = rec.iter().map(|r| r.chosen_idx).collect();
                    p.push(c.chosen_idx + 1);
                    next = Some(p);
                    break;
                }
            }
            match next {
                Some(p) => prefix = p,
                None => return Ok(Stats { executions }),
            }
        }
    }

    fn run_once<F>(
        &self,
        f: Arc<F>,
        prefix: Vec<usize>,
        executions_before: usize,
    ) -> (Vec<ChoiceRec>, Option<Failure>)
    where
        F: Fn() + Send + Sync + 'static,
    {
        let sched = Arc::new(Scheduler::new(
            self.preemption_bound,
            self.max_steps,
            prefix,
            executions_before,
        ));
        let s2 = Arc::clone(&sched);
        let root = std::thread::Builder::new()
            .name("check-vt-0".into())
            .spawn(move || {
                set_ctx(Some(Ctx {
                    sched: Arc::clone(&s2),
                    tid: 0,
                }));
                let r = panic::catch_unwind(AssertUnwindSafe(|| f()));
                match r {
                    Ok(()) => s2.finish_thread(0),
                    Err(payload) => {
                        if payload.downcast_ref::<ExecAbort>().is_none() {
                            // `as_ref`, not `&payload` — see thread.rs: the
                            // reference to the Box would coerce to `&dyn Any`
                            // of the Box itself and never downcast.
                            let msg = thread::panic_message(payload.as_ref());
                            let _ = panic::catch_unwind(AssertUnwindSafe(|| {
                                s2.fail(FailureKind::Panic, msg.clone())
                            }));
                        }
                        s2.finish_thread_aborted(0);
                    }
                }
            })
            .expect("spawn model root thread");
        sched.wait_all_done();
        let _ = root.join();
        sched.take_results()
    }
}

/// Explores every schedule of `f` with default parameters; panics on the
/// first failure. The entry point for model tests:
///
/// ```ignore
/// check::model(|| { /* spawn threads, use check::sync types, assert */ });
/// ```
pub fn model<F>(f: F) -> Stats
where
    F: Fn() + Send + Sync + 'static,
{
    Builder::default().check(f)
}
