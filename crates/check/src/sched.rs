//! The deterministic scheduler: one OS thread per virtual thread, but a
//! single baton serializes them, and every atomic/lock/yield/spawn is a
//! *schedule point* where the scheduler consults its DFS decision path to
//! pick the next runnable thread.
//!
//! Exploration is depth-first over the tree of decisions with a
//! *preemption bound*: switching away from a thread that could have kept
//! running costs one unit of a per-execution budget. With the bound
//! exhausted the current thread runs until it blocks, yields, or finishes.
//! This is the classic Coyote/CHESS result: most concurrency bugs need
//! only one or two preemptions, and the bound keeps the schedule space
//! polynomial instead of exponential.
//!
//! `yield_now` (and `spin_loop`, which the facade maps to it) marks the
//! caller *deprioritized* with CHESS-style fairness: it cannot be picked
//! again until every *other* enabled thread has taken a real step since
//! the yield (blocked and finished threads are exempt, and a step that is
//! itself a yield does not count). Without the "every other" part, two
//! threads spinning on the same condition can hand the baton back and
//! forth — each fruitless yield a fresh branch point — and the DFS tree
//! grows exponentially in the spin length even though every individual
//! execution terminates. Fair yielding forces the writer the spinners
//! wait on to make progress in every branch, so spin loops contribute
//! O(threads) schedule points instead of O(3^spins).

use crate::clock::VClock;
use std::panic;
use std::sync::{Condvar, Mutex};

/// Panic payload used to unwind virtual threads when an execution aborts
/// (failure found, or exploration shutting the run down). Filtered by the
/// panic hook and the per-thread `catch_unwind`.
pub(crate) struct ExecAbort;

/// Schedule-decision tracing, enabled by setting `CHECK_TRACE` in the
/// environment (checked once). Prints every decision point: who arrived,
/// the candidate set, the choice, and each thread's run state — the tool
/// that pins down scheduler bugs and state-space blowups.
fn trace_enabled() -> bool {
    static TRACE: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *TRACE.get_or_init(|| std::env::var_os("CHECK_TRACE").is_some())
}

/// Why an execution failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FailureKind {
    /// Conflicting non-atomic accesses without a happens-before edge.
    DataRace,
    /// Every live thread is blocked (lost wakeup / lock cycle).
    Deadlock,
    /// The step budget ran out — an unbounded spin (livelock) or a model
    /// far too large for exhaustive checking.
    Livelock,
    /// A user assertion (or any other panic) fired inside the model.
    Panic,
    /// The replayed decision prefix diverged — the model closure is not
    /// deterministic (time, randomness, ambient I/O).
    NonDeterminism,
}

/// A failing schedule, reported to the caller of [`crate::Builder::check`].
#[derive(Clone, Debug)]
pub struct Failure {
    pub kind: FailureKind,
    pub message: String,
    /// Thread chosen at each schedule point of the failing execution.
    pub schedule: Vec<usize>,
    /// Executions fully explored before this one failed.
    pub executions: usize,
}

impl std::fmt::Display for Failure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "model check failed after {} complete execution(s): {:?}: {}\nschedule (thread per point): {:?}",
            self.executions, self.kind, self.message, self.schedule
        )
    }
}

#[derive(Clone, Debug, PartialEq, Eq)]
enum RunState {
    Runnable,
    /// Voluntarily stepped aside; not schedulable until every other
    /// enabled thread has stepped past the yield-time snapshot.
    Yielded,
    /// Waiting on a mutex (by checker-internal mutex id).
    BlockedMutex(u64),
    /// Waiting for a thread to finish.
    BlockedJoin(usize),
    Finished,
}

struct VThread {
    state: RunState,
    clock: VClock,
    /// Real (non-yield) schedule points this thread has arrived at.
    steps_taken: usize,
    /// `steps_taken` of every thread at the moment this one yielded;
    /// cleared when the thread is scheduled again.
    yield_snap: Option<Vec<usize>>,
}

/// One decision taken during an execution, kept so the explorer can
/// backtrack depth-first.
pub(crate) struct ChoiceRec {
    /// Candidate thread ids at this point (deterministic order).
    pub options: Vec<usize>,
    /// Index into `options` that was taken.
    pub chosen_idx: usize,
}

struct Inner {
    threads: Vec<VThread>,
    /// Virtual thread currently holding the baton.
    active: usize,
    /// Decision indices replayed from the previous execution's backtrack.
    prefix: Vec<usize>,
    /// Decisions of this execution (replayed + newly explored).
    record: Vec<ChoiceRec>,
    /// Thread chosen at each point — the human-readable trace.
    trace: Vec<usize>,
    point: usize,
    preemptions: usize,
    steps: usize,
    failure: Option<Failure>,
    aborting: bool,
    finished: usize,
    all_done: bool,
}

/// Per-execution scheduler shared by all virtual threads via TLS.
pub(crate) struct Scheduler {
    m: Mutex<Inner>,
    cv: Condvar,
    preemption_bound: usize,
    max_steps: usize,
    executions_before: usize,
}

impl Scheduler {
    pub(crate) fn new(
        preemption_bound: usize,
        max_steps: usize,
        prefix: Vec<usize>,
        executions_before: usize,
    ) -> Self {
        let mut root_clock = VClock::new();
        root_clock.bump(0);
        Scheduler {
            m: Mutex::new(Inner {
                threads: vec![VThread {
                    state: RunState::Runnable,
                    clock: root_clock,
                    steps_taken: 0,
                    yield_snap: None,
                }],
                active: 0,
                prefix,
                record: Vec::new(),
                trace: Vec::new(),
                point: 0,
                preemptions: 0,
                steps: 0,
                failure: None,
                aborting: false,
                finished: 0,
                all_done: false,
            }),
            cv: Condvar::new(),
            preemption_bound,
            max_steps,
            executions_before,
        }
    }

    /// Has every *other* enabled thread stepped since `i` yielded?
    /// Threads that are blocked or finished (or were spawned after the
    /// yield) owe it nothing — fairness only waits on threads that can
    /// actually run.
    fn yield_satisfied(threads: &[VThread], i: usize) -> bool {
        let Some(snap) = &threads[i].yield_snap else {
            return true;
        };
        threads.iter().enumerate().all(|(j, t)| {
            j == i
                || j >= snap.len()
                || t.steps_taken > snap[j]
                || !matches!(t.state, RunState::Runnable | RunState::Yielded)
        })
    }

    /// Candidates that could run next: runnable threads plus yielded
    /// threads whose fairness debt is paid. If *only* unsatisfied yielded
    /// threads remain (mutual yield), they all become candidates — the
    /// step budget catches genuine livelocks.
    fn candidates(inner: &Inner) -> Vec<usize> {
        let cands: Vec<usize> = inner
            .threads
            .iter()
            .enumerate()
            .filter(|(i, t)| match t.state {
                RunState::Runnable => true,
                RunState::Yielded => Self::yield_satisfied(&inner.threads, *i),
                _ => false,
            })
            .map(|(i, _)| i)
            .collect();
        if !cands.is_empty() {
            return cands;
        }
        inner
            .threads
            .iter()
            .enumerate()
            .filter(|(_, t)| t.state == RunState::Yielded)
            .map(|(i, _)| i)
            .collect()
    }

    fn fail_locked(&self, inner: &mut Inner, kind: FailureKind, message: String) {
        if inner.failure.is_none() {
            inner.failure = Some(Failure {
                kind,
                message,
                schedule: inner.trace.clone(),
                executions: self.executions_before,
            });
        }
        inner.aborting = true;
        self.cv.notify_all();
    }

    /// Records a failure and unwinds the calling virtual thread.
    pub(crate) fn fail(&self, kind: FailureKind, message: String) -> ! {
        {
            let mut inner = self.m.lock().unwrap();
            self.fail_locked(&mut inner, kind, message);
        }
        panic::panic_any(ExecAbort);
    }

    /// Core decision routine. `me` has already had its state updated for
    /// this point (Runnable to keep competing, Yielded, Blocked*, or
    /// Finished). Picks the next thread per the DFS path, hands over the
    /// baton, and — unless `me` is finished — blocks until `me` is chosen
    /// again. Counts a preemption when `me` was runnable but passed over.
    /// `progress` is false only when the arrival is a yield: a fruitless
    /// spin iteration must not pay other threads' fairness debts.
    fn reschedule(&self, me: usize, me_competes: bool, progress: bool) {
        let mut inner = self.m.lock().unwrap();
        if inner.aborting {
            drop(inner);
            panic::panic_any(ExecAbort);
        }
        if progress {
            inner.threads[me].steps_taken += 1;
        }
        inner.steps += 1;
        if inner.steps > self.max_steps {
            self.fail_locked(
                &mut inner,
                FailureKind::Livelock,
                format!(
                    "execution exceeded {} schedule points — unbounded spin loop, \
                     or a model too large for exhaustive exploration",
                    self.max_steps
                ),
            );
            drop(inner);
            panic::panic_any(ExecAbort);
        }

        let cands = Self::candidates(&inner);
        if cands.is_empty() {
            let live: Vec<String> = inner
                .threads
                .iter()
                .enumerate()
                .filter(|(_, t)| t.state != RunState::Finished)
                .map(|(i, t)| format!("thread {i}: {:?}", t.state))
                .collect();
            if live.is_empty() {
                // Everyone finished — execution complete.
                inner.all_done = true;
                self.cv.notify_all();
                return;
            }
            self.fail_locked(
                &mut inner,
                FailureKind::Deadlock,
                format!("all live threads are blocked (lost wakeup?): {}", live.join(", ")),
            );
            drop(inner);
            panic::panic_any(ExecAbort);
        }

        // Options: current thread first (the cheap "keep running" branch),
        // then the others in id order. With the preemption budget spent and
        // `me` still in play, there is no choice at all.
        let me_enabled = me_competes && cands.contains(&me);
        let options: Vec<usize> = if me_enabled && inner.preemptions >= self.preemption_bound {
            vec![me]
        } else if me_enabled {
            let mut o = vec![me];
            o.extend(cands.iter().copied().filter(|&c| c != me));
            o
        } else {
            // `me` is yielding/blocking/finishing: a forced switch. If it
            // is still a candidate (sole yielded thread), keep it.
            cands
        };

        let point = inner.point;
        let chosen_idx = inner.prefix.get(point).copied().unwrap_or(0);
        if chosen_idx >= options.len() {
            self.fail_locked(
                &mut inner,
                FailureKind::NonDeterminism,
                format!(
                    "replay diverged at schedule point {point}: decision {chosen_idx} \
                     but only {} option(s) — the model closure must be deterministic \
                     (no wall-clock time, no ambient randomness)",
                    options.len()
                ),
            );
            drop(inner);
            panic::panic_any(ExecAbort);
        }
        let chosen = options[chosen_idx];
        if trace_enabled() {
            eprintln!(
                "[damaris-check] pt={} me={} competes={} options={:?} chosen={} preempt={} states={:?}",
                point,
                me,
                me_competes,
                options,
                chosen,
                inner.preemptions,
                inner.threads.iter().map(|t| format!("{:?}", t.state)).collect::<Vec<_>>()
            );
        }
        inner.record.push(ChoiceRec {
            options,
            chosen_idx,
        });
        inner.trace.push(chosen);
        inner.point = point + 1;
        if me_enabled && chosen != me {
            inner.preemptions += 1;
        }

        // Scheduling a thread settles its own yield: clear the mark and
        // the fairness snapshot. Other yielded threads keep theirs —
        // they become candidates again only via `yield_satisfied`.
        inner.threads[chosen].state = RunState::Runnable;
        inner.threads[chosen].yield_snap = None;
        inner.active = chosen;

        if chosen == me {
            return;
        }
        self.cv.notify_all();
        if inner.threads[me].state == RunState::Finished {
            return; // finished threads hand over and walk away
        }
        // Wait until this thread is picked again (or the run aborts).
        loop {
            if inner.aborting {
                drop(inner);
                panic::panic_any(ExecAbort);
            }
            if inner.active == me && inner.threads[me].state == RunState::Runnable {
                return;
            }
            inner = self.cv.wait(inner).unwrap();
        }
    }

    /// Plain schedule point: `me` keeps competing.
    pub(crate) fn schedule(&self, me: usize) {
        self.reschedule(me, true, true);
    }

    /// `yield_now`: deprioritize `me` until every other enabled thread
    /// has taken a real step (fair yielding — see the module docs).
    pub(crate) fn yield_now(&self, me: usize) {
        {
            let mut inner = self.m.lock().unwrap();
            let snap: Vec<usize> = inner.threads.iter().map(|t| t.steps_taken).collect();
            inner.threads[me].state = RunState::Yielded;
            inner.threads[me].yield_snap = Some(snap);
        }
        self.reschedule(me, false, false);
    }

    /// Block `me` on a mutex until [`Scheduler::unblock_mutex`].
    pub(crate) fn block_on_mutex(&self, me: usize, mutex_id: u64) {
        {
            let mut inner = self.m.lock().unwrap();
            inner.threads[me].state = RunState::BlockedMutex(mutex_id);
        }
        self.reschedule(me, false, true);
    }

    /// Wake every thread parked on `mutex_id` (they re-race for the lock).
    pub(crate) fn unblock_mutex(&self, mutex_id: u64) {
        let mut inner = self.m.lock().unwrap();
        for t in inner.threads.iter_mut() {
            if t.state == RunState::BlockedMutex(mutex_id) {
                t.state = RunState::Runnable;
            }
        }
    }

    /// Block `me` until `target` finishes, then merge its final clock.
    pub(crate) fn join_thread(&self, me: usize, target: usize) {
        loop {
            {
                let mut inner = self.m.lock().unwrap();
                if inner.aborting {
                    drop(inner);
                    panic::panic_any(ExecAbort);
                }
                if inner.threads[target].state == RunState::Finished {
                    let tc = inner.threads[target].clock.clone();
                    inner.threads[me].clock.join(&tc);
                    inner.threads[me].clock.bump(me);
                    return;
                }
                inner.threads[me].state = RunState::BlockedJoin(target);
            }
            self.reschedule(me, false, true);
        }
    }

    /// Registers a child thread (spawn happens-before its first step).
    pub(crate) fn spawn_thread(&self, parent: usize) -> usize {
        let mut inner = self.m.lock().unwrap();
        let id = inner.threads.len();
        let mut clock = inner.threads[parent].clock.clone();
        clock.bump(id);
        inner.threads.push(VThread {
            state: RunState::Runnable,
            clock,
            steps_taken: 0,
            yield_snap: None,
        });
        inner.threads[parent].clock.bump(parent);
        id
    }

    /// Marks `me` finished, wakes joiners, and hands the baton onward.
    pub(crate) fn finish_thread(&self, me: usize) {
        {
            let mut inner = self.m.lock().unwrap();
            inner.threads[me].state = RunState::Finished;
            inner.finished += 1;
            for t in inner.threads.iter_mut() {
                if t.state == RunState::BlockedJoin(me) {
                    t.state = RunState::Runnable;
                }
            }
            if inner.finished == inner.threads.len() {
                inner.all_done = true;
                self.cv.notify_all();
                return;
            }
        }
        self.reschedule(me, false, true);
    }

    /// Abort-path finish: no scheduling, just bookkeeping so the
    /// controller can observe completion.
    pub(crate) fn finish_thread_aborted(&self, me: usize) {
        let mut inner = self.m.lock().unwrap();
        if inner.threads[me].state != RunState::Finished {
            inner.threads[me].state = RunState::Finished;
            inner.finished += 1;
        }
        if inner.finished == inner.threads.len() {
            inner.all_done = true;
        }
        self.cv.notify_all();
    }

    /// Entry gate for freshly spawned OS threads: wait for the baton.
    pub(crate) fn wait_for_turn(&self, me: usize) {
        let mut inner = self.m.lock().unwrap();
        loop {
            if inner.aborting {
                drop(inner);
                panic::panic_any(ExecAbort);
            }
            if inner.active == me && inner.threads[me].state == RunState::Runnable {
                return;
            }
            inner = self.cv.wait(inner).unwrap();
        }
    }

    /// Controller side: park until every virtual thread has finished.
    pub(crate) fn wait_all_done(&self) {
        let mut inner = self.m.lock().unwrap();
        while !inner.all_done {
            inner = self.cv.wait(inner).unwrap();
        }
    }

    /// Controller side: harvest the execution's decisions and verdict.
    pub(crate) fn take_results(&self) -> (Vec<ChoiceRec>, Option<Failure>) {
        let mut inner = self.m.lock().unwrap();
        (std::mem::take(&mut inner.record), inner.failure.take())
    }

    // ---- clock plumbing for the shim types -------------------------------

    pub(crate) fn clock_of(&self, tid: usize) -> VClock {
        self.m.lock().unwrap().threads[tid].clock.clone()
    }

    pub(crate) fn join_clock(&self, tid: usize, other: &VClock) {
        self.m.lock().unwrap().threads[tid].clock.join(other);
    }

    pub(crate) fn bump_clock(&self, tid: usize) {
        self.m.lock().unwrap().threads[tid].clock.bump(tid);
    }
}
