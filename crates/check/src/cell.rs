//! Non-atomic data under race detection.
//!
//! [`CheckCell`] wraps a single value the way `loom::cell::UnsafeCell`
//! does: every access declares itself a read or a write, and the checker
//! verifies that conflicting accesses are ordered by happens-before
//! (vector clocks). Crucially this does **not** require the racy
//! interleaving to be scheduled — any execution in which both accesses
//! occur without an intervening synchronization edge reports the race,
//! which is why a handful of explored schedules suffice.
//!
//! [`RangeTracker`] is the same idea for a byte buffer: segment reads and
//! writes are recorded as ranges, and overlapping unordered conflicts are
//! races. The shm `SharedBuffer` uses it (under `damaris_check`) to prove
//! that allocator disjointness plus queue handoff really do make raw
//!-pointer segment access race-free.

use crate::rt::ctx;
use crate::sched::FailureKind;
use std::cell::UnsafeCell;
use std::sync::Mutex as StdMutex;

#[derive(Clone, Copy, Debug)]
struct Access {
    tid: usize,
    epoch: u64,
}

#[derive(Default)]
struct CellState {
    write: Option<Access>,
    reads: Vec<Access>,
}

/// An `UnsafeCell` whose accesses are race-checked inside a model run.
///
/// The `with`/`with_mut` closures receive the raw pointer; dereferencing
/// it remains the caller's obligation (as with `loom`), but the checker
/// guarantees no conflicting access is concurrent.
pub struct CheckCell<T> {
    data: UnsafeCell<T>,
    st: StdMutex<CellState>,
}

// SAFETY: access is serialized by the model scheduler's baton (only one
// virtual thread runs at a time) and race-checked besides; outside a
// model the caller inherits exactly `UnsafeCell`'s obligations, which is
// the documented contract of this type.
unsafe impl<T: Send> Send for CheckCell<T> {}
// SAFETY: as above — the race detector rejects any unsynchronized
// conflicting access instead of exhibiting UB.
unsafe impl<T: Send> Sync for CheckCell<T> {}

impl<T> CheckCell<T> {
    pub fn new(v: T) -> Self {
        CheckCell {
            data: UnsafeCell::new(v),
            st: StdMutex::new(CellState::default()),
        }
    }

    fn record_read(&self) {
        if let Some(c) = ctx() {
            let clock = c.sched.clock_of(c.tid);
            let mut st = self.st.lock().unwrap();
            if let Some(w) = st.write {
                if w.tid != c.tid && clock.get(w.tid) < w.epoch {
                    drop(st);
                    c.sched.fail(
                        FailureKind::DataRace,
                        format!(
                            "data race on CheckCell: read by thread {} not ordered after \
                             write by thread {} (epoch {})",
                            c.tid, w.tid, w.epoch
                        ),
                    );
                }
            }
            let epoch = clock.get(c.tid);
            if let Some(r) = st.reads.iter_mut().find(|r| r.tid == c.tid) {
                r.epoch = epoch;
            } else {
                st.reads.push(Access { tid: c.tid, epoch });
            }
        }
    }

    fn record_write(&self) {
        if let Some(c) = ctx() {
            let clock = c.sched.clock_of(c.tid);
            let mut st = self.st.lock().unwrap();
            let conflict = st
                .write
                .iter()
                .chain(st.reads.iter())
                .find(|a| a.tid != c.tid && clock.get(a.tid) < a.epoch)
                .copied();
            if let Some(a) = conflict {
                drop(st);
                c.sched.fail(
                    FailureKind::DataRace,
                    format!(
                        "data race on CheckCell: write by thread {} not ordered after \
                         access by thread {} (epoch {})",
                        c.tid, a.tid, a.epoch
                    ),
                );
            }
            st.reads.clear();
            st.write = Some(Access {
                tid: c.tid,
                epoch: clock.get(c.tid),
            });
            drop(st);
            c.sched.bump_clock(c.tid);
        }
    }

    /// Immutable access: declared as a read.
    pub fn with<R>(&self, f: impl FnOnce(*const T) -> R) -> R {
        self.record_read();
        f(self.data.get())
    }

    /// Mutable access: declared as a write.
    pub fn with_mut<R>(&self, f: impl FnOnce(*mut T) -> R) -> R {
        self.record_write();
        f(self.data.get())
    }
}

impl<T: Default> Default for CheckCell<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T> std::fmt::Debug for CheckCell<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "CheckCell(..)")
    }
}

#[derive(Clone, Copy, Debug)]
struct RangeAccess {
    start: usize,
    end: usize,
    write: bool,
    tid: usize,
    epoch: u64,
}

/// Byte-range race detector for a shared buffer.
///
/// Zero-sized no-op outside a model run; inside one, every recorded
/// access is checked for happens-before against all previously recorded
/// overlapping conflicting accesses.
#[derive(Default)]
pub struct RangeTracker {
    log: StdMutex<Vec<RangeAccess>>,
}

impl RangeTracker {
    pub fn new() -> Self {
        RangeTracker::default()
    }

    fn record(&self, start: usize, len: usize, write: bool) {
        let Some(c) = ctx() else { return };
        if len == 0 {
            return;
        }
        let end = start + len;
        let clock = c.sched.clock_of(c.tid);
        let mut log = self.log.lock().unwrap();
        let conflict = log
            .iter()
            .find(|a| {
                a.tid != c.tid
                    && (a.write || write)
                    && a.start < end
                    && start < a.end
                    && clock.get(a.tid) < a.epoch
            })
            .copied();
        if let Some(a) = conflict {
            drop(log);
            c.sched.fail(
                FailureKind::DataRace,
                format!(
                    "data race on shared buffer: {} of [{start}, {end}) by thread {} \
                     overlaps unordered {} of [{}, {}) by thread {}",
                    if write { "write" } else { "read" },
                    c.tid,
                    if a.write { "write" } else { "read" },
                    a.start,
                    a.end,
                    a.tid
                ),
            );
        }
        // Coalesce: a same-thread same-kind access covering the same range
        // just refreshes its epoch, keeping the log small in loops.
        if let Some(prev) = log
            .iter_mut()
            .find(|a| a.tid == c.tid && a.write == write && a.start == start && a.end == end)
        {
            prev.epoch = clock.get(c.tid);
        } else {
            log.push(RangeAccess {
                start,
                end,
                write,
                tid: c.tid,
                epoch: clock.get(c.tid),
            });
        }
        drop(log);
        if write {
            c.sched.bump_clock(c.tid);
        }
    }

    /// Declares a read of `[start, start + len)`.
    pub fn read(&self, start: usize, len: usize) {
        self.record(start, len, false);
    }

    /// Declares a write of `[start, start + len)`.
    pub fn write(&self, start: usize, len: usize) {
        self.record(start, len, true);
    }
}

impl std::fmt::Debug for RangeTracker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "RangeTracker({} accesses)", self.log.lock().unwrap().len())
    }
}
