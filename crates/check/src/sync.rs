//! Shim `sync` types: atomics with modeled ordering semantics and a
//! schedule-point-aware mutex.
//!
//! Value semantics are sequentially consistent (a load always observes
//! the latest store — the checker does not simulate store buffers), but
//! *happens-before* is modeled faithfully per ordering:
//!
//! * a `Release`-class store snapshots the writer's vector clock into the
//!   location; an `Acquire`-class load joins that snapshot into the
//!   reader. A `Relaxed` store *clears* the snapshot, so a reader that
//!   "synchronizes" through a relaxed store gains no edge — and any
//!   non-atomic data published through it is flagged as a data race.
//! * read-modify-writes preserve an existing release snapshot even when
//!   relaxed (C11 release sequences), join it when acquiring, and extend
//!   it when releasing.
//!
//! This is the same compromise ThreadSanitizer makes, and it is exactly
//! what catches the bug class this crate exists for: a store downgraded
//! from `Release` to `Relaxed` on a publication path.

use crate::clock::VClock;
use crate::rt::ctx;
use std::cell::UnsafeCell;
use std::sync::Mutex as StdMutex;

pub use std::sync::Arc;

/// Atomic memory orderings, mirroring `std::sync::atomic::Ordering`.
pub mod atomic {
    use super::*;

    /// Modeled orderings (same variants as std).
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum Ordering {
        Relaxed,
        Release,
        Acquire,
        AcqRel,
        SeqCst,
    }

    impl Ordering {
        fn acquires(self) -> bool {
            matches!(self, Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst)
        }
        fn releases(self) -> bool {
            matches!(self, Ordering::Release | Ordering::AcqRel | Ordering::SeqCst)
        }
    }

    struct Loc<T> {
        val: T,
        /// Clock snapshot of the last `Release`-class store (None after a
        /// plain `Relaxed` store: the release chain is broken).
        rel: Option<VClock>,
    }

    macro_rules! atomic_int {
        ($name:ident, $ty:ty) => {
            /// Model atomic integer. All operations are schedule points.
            pub struct $name {
                loc: StdMutex<Loc<$ty>>,
            }

            impl $name {
                pub fn new(v: $ty) -> Self {
                    $name {
                        loc: StdMutex::new(Loc { val: v, rel: None }),
                    }
                }

                pub fn load(&self, order: Ordering) -> $ty {
                    match ctx() {
                        Some(c) => {
                            c.sched.schedule(c.tid);
                            let loc = self.loc.lock().unwrap();
                            let v = loc.val;
                            if order.acquires() {
                                if let Some(rel) = loc.rel.clone() {
                                    drop(loc);
                                    c.sched.join_clock(c.tid, &rel);
                                }
                            }
                            v
                        }
                        None => self.loc.lock().unwrap().val,
                    }
                }

                pub fn store(&self, v: $ty, order: Ordering) {
                    match ctx() {
                        Some(c) => {
                            c.sched.schedule(c.tid);
                            let snapshot = if order.releases() {
                                Some(c.sched.clock_of(c.tid))
                            } else {
                                None
                            };
                            let mut loc = self.loc.lock().unwrap();
                            loc.val = v;
                            // A relaxed store breaks the release chain: a
                            // later acquire-load gains no happens-before.
                            loc.rel = snapshot;
                            drop(loc);
                            c.sched.bump_clock(c.tid);
                        }
                        None => self.loc.lock().unwrap().val = v,
                    }
                }

                pub fn fetch_add(&self, d: $ty, order: Ordering) -> $ty {
                    self.rmw(order, |v| v.wrapping_add(d))
                }

                pub fn fetch_sub(&self, d: $ty, order: Ordering) -> $ty {
                    self.rmw(order, |v| v.wrapping_sub(d))
                }

                fn rmw(&self, order: Ordering, f: impl FnOnce($ty) -> $ty) -> $ty {
                    match ctx() {
                        Some(c) => {
                            c.sched.schedule(c.tid);
                            let my = c.sched.clock_of(c.tid);
                            let mut loc = self.loc.lock().unwrap();
                            let old = loc.val;
                            loc.val = f(old);
                            let acq = if order.acquires() { loc.rel.clone() } else { None };
                            if order.releases() {
                                // Extend (or start) the release sequence.
                                let mut rel = loc.rel.take().unwrap_or_default();
                                rel.join(&my);
                                loc.rel = Some(rel);
                            }
                            // A relaxed RMW leaves `rel` in place: it
                            // continues the release sequence (C11 §5.1.2.4).
                            drop(loc);
                            if let Some(rel) = acq {
                                c.sched.join_clock(c.tid, &rel);
                            }
                            c.sched.bump_clock(c.tid);
                            old
                        }
                        None => {
                            let mut loc = self.loc.lock().unwrap();
                            let old = loc.val;
                            loc.val = f(old);
                            old
                        }
                    }
                }

                pub fn compare_exchange(
                    &self,
                    current: $ty,
                    new: $ty,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$ty, $ty> {
                    match ctx() {
                        Some(c) => {
                            c.sched.schedule(c.tid);
                            let my = c.sched.clock_of(c.tid);
                            let mut loc = self.loc.lock().unwrap();
                            let old = loc.val;
                            if old == current {
                                loc.val = new;
                                let acq = if success.acquires() { loc.rel.clone() } else { None };
                                if success.releases() {
                                    let mut rel = loc.rel.take().unwrap_or_default();
                                    rel.join(&my);
                                    loc.rel = Some(rel);
                                }
                                drop(loc);
                                if let Some(rel) = acq {
                                    c.sched.join_clock(c.tid, &rel);
                                }
                                c.sched.bump_clock(c.tid);
                                Ok(old)
                            } else {
                                let acq = if failure.acquires() { loc.rel.clone() } else { None };
                                drop(loc);
                                if let Some(rel) = acq {
                                    c.sched.join_clock(c.tid, &rel);
                                }
                                Err(old)
                            }
                        }
                        None => {
                            let mut loc = self.loc.lock().unwrap();
                            if loc.val == current {
                                let old = loc.val;
                                loc.val = new;
                                Ok(old)
                            } else {
                                Err(loc.val)
                            }
                        }
                    }
                }

                /// The model never fails spuriously: weak CAS behaves like
                /// strong CAS. (Spurious failures only add retry schedules
                /// around an already-explored loop.)
                pub fn compare_exchange_weak(
                    &self,
                    current: $ty,
                    new: $ty,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$ty, $ty> {
                    self.compare_exchange(current, new, success, failure)
                }
            }

            impl Default for $name {
                fn default() -> Self {
                    Self::new(0)
                }
            }

            impl std::fmt::Debug for $name {
                fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                    write!(f, "{}({})", stringify!($name), self.loc.lock().unwrap().val)
                }
            }
        };
    }

    atomic_int!(AtomicUsize, usize);
    atomic_int!(AtomicU64, u64);
    atomic_int!(AtomicU32, u32);
    atomic_int!(AtomicU8, u8);

    /// Model atomic bool, layered on [`AtomicU8`] (`false` = 0, `true` = 1)
    /// so it inherits the modeled ordering semantics.
    pub struct AtomicBool(AtomicU8);

    impl AtomicBool {
        pub fn new(v: bool) -> Self {
            AtomicBool(AtomicU8::new(v as u8))
        }

        pub fn load(&self, order: Ordering) -> bool {
            self.0.load(order) != 0
        }

        pub fn store(&self, v: bool, order: Ordering) {
            self.0.store(v as u8, order)
        }

        pub fn swap(&self, v: bool, order: Ordering) -> bool {
            // A CAS loop rather than a primitive RMW: the model's CAS only
            // fails when the value changed underneath, so the loop is
            // bounded by the explorer's interleavings of the two values.
            loop {
                let cur = self.0.load(Ordering::Relaxed);
                if let Ok(prev) = self.0.compare_exchange(cur, v as u8, order, Ordering::Relaxed) {
                    return prev != 0;
                }
            }
        }
    }

    impl Default for AtomicBool {
        fn default() -> Self {
            AtomicBool::new(false)
        }
    }

    impl std::fmt::Debug for AtomicBool {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "AtomicBool({})", self.load(Ordering::Relaxed))
        }
    }
}

/// Model mutex: `lock` is a schedule point; contention parks the virtual
/// thread in the scheduler (making lock cycles visible as deadlocks);
/// unlock → lock transfers the holder's clock (release/acquire edge).
pub struct Mutex<T> {
    id: u64,
    data: UnsafeCell<T>,
    st: StdMutex<MState>,
}

struct MState {
    locked: bool,
    clock: VClock,
}

// SAFETY: the scheduler baton serializes model threads, and the `locked`
// flag (checked under `st`) guarantees at most one live guard; outside a
// model, `st` itself serializes access. `T: Send` moves values across
// threads.
unsafe impl<T: Send> Send for Mutex<T> {}
// SAFETY: as above — `&Mutex<T>` only yields `&T`/`&mut T` through a
// guard whose uniqueness `locked` enforces.
unsafe impl<T: Send> Sync for Mutex<T> {}

static MUTEX_IDS: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(1);

impl<T> Mutex<T> {
    pub fn new(v: T) -> Self {
        Mutex {
            id: MUTEX_IDS.fetch_add(1, std::sync::atomic::Ordering::Relaxed),
            data: UnsafeCell::new(v),
            st: StdMutex::new(MState {
                locked: false,
                clock: VClock::new(),
            }),
        }
    }

    /// Acquires the lock (non-poisoning, like `parking_lot`).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match ctx() {
            Some(c) => loop {
                c.sched.schedule(c.tid);
                {
                    let mut st = self.st.lock().unwrap();
                    if !st.locked {
                        st.locked = true;
                        let clock = st.clock.clone();
                        drop(st);
                        c.sched.join_clock(c.tid, &clock);
                        return MutexGuard { mutex: self };
                    }
                }
                c.sched.block_on_mutex(c.tid, self.id);
            },
            None => {
                // Plain mode: spin on the flag (uncontended in practice —
                // the checker's own bookkeeping, not a production path).
                loop {
                    let mut st = self.st.lock().unwrap();
                    if !st.locked {
                        st.locked = true;
                        return MutexGuard { mutex: self };
                    }
                    drop(st);
                    std::thread::yield_now();
                }
            }
        }
    }
}

/// RAII guard; unlocking publishes the holder's clock.
pub struct MutexGuard<'a, T> {
    mutex: &'a Mutex<T>,
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // SAFETY: the guard's existence proves exclusive ownership of the
        // mutex, so no other reference to `data` is live.
        unsafe { &*self.mutex.data.get() }
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: as in `deref` — exclusive ownership via the guard.
        unsafe { &mut *self.mutex.data.get() }
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        let c = ctx();
        {
            let mut st = self.mutex.st.lock().unwrap();
            st.locked = false;
            if let Some(c) = &c {
                let clock = c.sched.clock_of(c.tid);
                st.clock.join(&clock);
            }
        }
        if let Some(c) = &c {
            c.sched.bump_clock(c.tid);
            c.sched.unblock_mutex(self.mutex.id);
        }
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "check::Mutex(id={})", self.id)
    }
}
