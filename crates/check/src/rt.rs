//! Per-OS-thread runtime context: which scheduler and which virtual
//! thread id the currently executing code belongs to. Shim types consult
//! this to turn `load`/`store`/`lock` calls into schedule points and
//! happens-before edges; outside a model run they fall back to plain
//! behavior so the shims stay usable in ordinary unit tests.

use crate::sched::Scheduler;
use std::cell::RefCell;
use std::sync::Arc;

#[derive(Clone)]
pub(crate) struct Ctx {
    pub sched: Arc<Scheduler>,
    pub tid: usize,
}

thread_local! {
    static CTX: RefCell<Option<Ctx>> = const { RefCell::new(None) };
}

pub(crate) fn set_ctx(ctx: Option<Ctx>) {
    CTX.with(|c| *c.borrow_mut() = ctx);
}

/// The current model context, if any. Returns `None` outside a model run
/// *and* while the current thread is unwinding — during an abort, shim
/// operations degrade to raw accesses so destructors can run without
/// re-entering the (already poisoned-by-design) scheduler.
pub(crate) fn ctx() -> Option<Ctx> {
    if std::thread::panicking() {
        return None;
    }
    CTX.with(|c| c.borrow().clone())
}
