//! Vector clocks — the happens-before backbone of the checker.
//!
//! Every virtual thread carries a [`VClock`]; synchronization operations
//! (spawn, join, release-store → acquire-load, mutex unlock → lock) join
//! clocks, and every recording operation bumps the owner's component.
//! Two accesses `a` (by thread `ta` at epoch `ea`) and `b` (by `tb`) are
//! ordered `a → b` iff `clock_of(tb).get(ta) >= ea` at the time of `b`.

/// A grow-on-demand vector clock indexed by virtual-thread id.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct VClock {
    t: Vec<u64>,
}

impl VClock {
    /// The zero clock.
    pub fn new() -> Self {
        VClock::default()
    }

    /// Component for thread `tid` (0 if never touched).
    pub fn get(&self, tid: usize) -> u64 {
        self.t.get(tid).copied().unwrap_or(0)
    }

    fn ensure(&mut self, tid: usize) {
        if self.t.len() <= tid {
            self.t.resize(tid + 1, 0);
        }
    }

    /// Sets component `tid` to `v` (test helper).
    #[cfg(test)]
    pub fn set(&mut self, tid: usize, v: u64) {
        self.ensure(tid);
        self.t[tid] = v;
    }

    /// Increments the owner's component — creates a fresh epoch.
    pub fn bump(&mut self, tid: usize) {
        self.ensure(tid);
        self.t[tid] += 1;
    }

    /// Componentwise maximum: after `a.join(b)`, everything ordered before
    /// `b`'s snapshot is also ordered before `a`.
    pub fn join(&mut self, other: &VClock) {
        self.ensure(other.t.len().saturating_sub(1));
        for (i, &v) in other.t.iter().enumerate() {
            if self.t[i] < v {
                self.t[i] = v;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_is_componentwise_max() {
        let mut a = VClock::new();
        a.set(0, 3);
        a.set(2, 1);
        let mut b = VClock::new();
        b.set(0, 1);
        b.set(1, 5);
        a.join(&b);
        assert_eq!(a.get(0), 3);
        assert_eq!(a.get(1), 5);
        assert_eq!(a.get(2), 1);
        assert_eq!(a.get(9), 0);
    }

    #[test]
    fn bump_grows() {
        let mut c = VClock::new();
        c.bump(4);
        assert_eq!(c.get(4), 1);
        c.bump(4);
        assert_eq!(c.get(4), 2);
    }
}
