//! Self-tests for the mini-loom: exploration really enumerates
//! interleavings, the happens-before machinery really distinguishes
//! `Release` from `Relaxed`, and deadlocks/livelocks are reported rather
//! than hung on.

use damaris_check as check;
use check::cell::{CheckCell, RangeTracker};
use check::sync::atomic::{AtomicUsize, Ordering};
use check::sync::{Arc, Mutex};
use check::{Builder, FailureKind};

/// Two RMW increments always sum — and exploration visits both orders.
#[test]
fn fetch_add_is_atomic() {
    let stats = check::model(|| {
        let n = Arc::new(AtomicUsize::new(0));
        let n2 = Arc::clone(&n);
        let t = check::thread::spawn(move || {
            n2.fetch_add(1, Ordering::Relaxed);
        });
        n.fetch_add(1, Ordering::Relaxed);
        t.join();
        assert_eq!(n.load(Ordering::Relaxed), 2);
    });
    // At minimum: child-first and parent-first schedules.
    assert!(stats.executions >= 2, "only {} executions", stats.executions);
}

/// Seeded bug: a load+store "increment" is not atomic. The checker must
/// find the lost-update interleaving — this proves schedules are really
/// explored, not just replayed once.
#[test]
fn seeded_lost_update_is_found() {
    let failure = Builder::new()
        .check_result(|| {
            let n = Arc::new(AtomicUsize::new(0));
            let n2 = Arc::clone(&n);
            let t = check::thread::spawn(move || {
                let v = n2.load(Ordering::Relaxed);
                n2.store(v + 1, Ordering::Relaxed);
            });
            let v = n.load(Ordering::Relaxed);
            n.store(v + 1, Ordering::Relaxed);
            t.join();
            assert_eq!(n.load(Ordering::Relaxed), 2);
        })
        .expect_err("checker must find the lost update");
    assert_eq!(failure.kind, FailureKind::Panic);
}

/// Message passing with Release/Acquire: no race, payload visible.
#[test]
fn release_acquire_publishes() {
    check::model(|| {
        let flag = Arc::new(AtomicUsize::new(0));
        let data = Arc::new(CheckCell::new(0usize));
        let (f2, d2) = (Arc::clone(&flag), Arc::clone(&data));
        let t = check::thread::spawn(move || {
            // SAFETY: race-checked by the model; the consumer only reads
            // after the Release→Acquire edge on `flag`.
            d2.with_mut(|p| unsafe { *p = 42 });
            f2.store(1, Ordering::Release);
        });
        while flag.load(Ordering::Acquire) == 0 {
            check::thread::yield_now();
        }
        // SAFETY: ordered after the producer's write via Acquire above.
        let v = data.with(|p| unsafe { *p });
        assert_eq!(v, 42);
        t.join();
    });
}

/// Seeded bug: the same pattern with the publication store weakened to
/// `Relaxed` must be reported as a data race — the exact failure mode a
/// weakened queue-slot `seq` store would introduce.
#[test]
fn seeded_relaxed_publication_races() {
    let failure = Builder::new()
        .check_result(|| {
            let flag = Arc::new(AtomicUsize::new(0));
            let data = Arc::new(CheckCell::new(0usize));
            let (f2, d2) = (Arc::clone(&flag), Arc::clone(&data));
            let t = check::thread::spawn(move || {
                // SAFETY: deliberately unsound — the Relaxed store below
                // provides no happens-before; the checker must object.
                d2.with_mut(|p| unsafe { *p = 42 });
                f2.store(1, Ordering::Relaxed); // seeded bug: was Release
            });
            while flag.load(Ordering::Acquire) == 0 {
                check::thread::yield_now();
            }
            // SAFETY: intentionally racy read (see above).
            let _ = data.with(|p| unsafe { *p });
            t.join();
        })
        .expect_err("checker must flag the relaxed publication");
    assert_eq!(failure.kind, FailureKind::DataRace);
    assert!(failure.message.contains("data race"), "{}", failure.message);
}

/// Mutexes order their critical sections: no race on the shared cell.
#[test]
fn mutex_orders_critical_sections() {
    check::model(|| {
        let m = Arc::new(Mutex::new(0usize));
        let m2 = Arc::clone(&m);
        let t = check::thread::spawn(move || {
            *m2.lock() += 1;
        });
        *m.lock() += 1;
        t.join();
        assert_eq!(*m.lock(), 2);
    });
}

/// ABBA lock ordering: the checker reports a deadlock instead of hanging.
#[test]
fn abba_deadlock_detected() {
    let failure = Builder::new()
        .check_result(|| {
            let a = Arc::new(Mutex::new(()));
            let b = Arc::new(Mutex::new(()));
            let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
            let t = check::thread::spawn(move || {
                let _g1 = b2.lock();
                let _g2 = a2.lock();
            });
            let _g1 = a.lock();
            let _g2 = b.lock();
            drop(_g2);
            drop(_g1);
            t.join();
        })
        .expect_err("checker must find the lock cycle");
    assert_eq!(failure.kind, FailureKind::Deadlock);
}

/// A spin loop that can never be satisfied trips the step budget as a
/// livelock instead of spinning the test harness forever.
#[test]
fn unbounded_spin_reported_as_livelock() {
    let failure = Builder {
        max_steps: 500,
        ..Builder::default()
    }
    .check_result(|| {
        let flag = Arc::new(AtomicUsize::new(0));
        while flag.load(Ordering::Acquire) == 0 {
            check::thread::yield_now();
        }
    })
    .expect_err("spin with no writer must be a livelock");
    assert_eq!(failure.kind, FailureKind::Livelock);
}

/// Exploration is deterministic: same model, same execution count.
#[test]
fn exploration_is_deterministic() {
    let run = || {
        check::model(|| {
            let n = Arc::new(AtomicUsize::new(0));
            let n2 = Arc::clone(&n);
            let t = check::thread::spawn(move || {
                n2.fetch_add(1, Ordering::AcqRel);
                n2.fetch_add(1, Ordering::AcqRel);
            });
            n.fetch_add(1, Ordering::AcqRel);
            t.join();
            assert_eq!(n.load(Ordering::Acquire), 3);
        })
    };
    assert_eq!(run(), run());
}

/// Range tracker: disjoint concurrent writes are fine; overlapping
/// unordered writes are a race.
#[test]
fn range_tracker_disjoint_ok_overlap_races() {
    check::model(|| {
        let t = Arc::new(RangeTracker::new());
        let t2 = Arc::clone(&t);
        let h = check::thread::spawn(move || {
            t2.write(0, 64);
        });
        t.write(64, 64);
        h.join();
        t.read(0, 128); // ordered after both via join
    });

    let failure = Builder::new()
        .check_result(|| {
            let t = Arc::new(RangeTracker::new());
            let t2 = Arc::clone(&t);
            let h = check::thread::spawn(move || {
                t2.write(0, 64);
            });
            t.write(32, 64); // overlaps [0,64) with no ordering
            h.join();
        })
        .expect_err("overlapping unordered writes must race");
    assert_eq!(failure.kind, FailureKind::DataRace);
}

/// Spawn/join edges carry clocks: parent sees child's non-atomic writes
/// after join without any atomics.
#[test]
fn join_is_a_happens_before_edge() {
    check::model(|| {
        let cell = Arc::new(CheckCell::new(0u64));
        let c2 = Arc::clone(&cell);
        let t = check::thread::spawn(move || {
            // SAFETY: only the child writes before the join edge.
            c2.with_mut(|p| unsafe { *p = 7 });
        });
        t.join();
        // SAFETY: ordered after the child via join.
        assert_eq!(cell.with(|p| unsafe { *p }), 7);
    });
}

/// The preemption bound caps exploration: bound 0 is non-preemptive
/// (threads run to completion unless they block/yield), so the lost
/// update from `seeded_lost_update_is_found` is NOT found — documenting
/// that the bound is real and why the default is 2.
#[test]
fn preemption_bound_zero_misses_the_bug() {
    let r = Builder::new().preemption_bound(0).check_result(|| {
        let n = Arc::new(AtomicUsize::new(0));
        let n2 = Arc::clone(&n);
        let t = check::thread::spawn(move || {
            let v = n2.load(Ordering::Relaxed);
            n2.store(v + 1, Ordering::Relaxed);
        });
        let v = n.load(Ordering::Relaxed);
        n.store(v + 1, Ordering::Relaxed);
        t.join();
        assert_eq!(n.load(Ordering::Relaxed), 2);
    });
    assert!(r.is_ok(), "bound 0 cannot interleave mid-increment");
}
