//! Regression tests for scheduler and harness bugs found while building
//! the shm model suite. Each test pins a failure mode that once hung the
//! explorer or corrupted a failure report.

use damaris_check::sync::atomic::{AtomicUsize, Ordering};
use damaris_check::sync::Arc;
use damaris_check::{thread, Builder, FailureKind};

/// Two threads spinning on the same not-yet-set flag used to hand the
/// baton back and forth: every fruitless yield was a fresh branch point,
/// and the DFS tree grew as ~3^(spin length) — each execution finished,
/// but the schedule space never exhausted. Fair yielding (a yielded
/// thread stays deprioritized until every other enabled thread has taken
/// a real step) forces the producers to run in every branch, collapsing
/// the spin loops to a polynomial number of schedules.
#[test]
fn competing_spinners_terminate() {
    let stats = Builder::new()
        .preemption_bound(1)
        .check(|| {
            let n = Arc::new(AtomicUsize::new(0));
            let mut handles = Vec::new();
            for _ in 0..2 {
                let n2 = Arc::clone(&n);
                handles.push(thread::spawn(move || {
                    n2.fetch_add(1, Ordering::AcqRel);
                }));
            }
            for _ in 0..2 {
                let n2 = Arc::clone(&n);
                handles.push(thread::spawn(move || {
                    while n2.load(Ordering::Acquire) == 0 {
                        thread::yield_now();
                    }
                }));
            }
            for h in handles {
                h.join();
            }
            assert_eq!(n.load(Ordering::Acquire), 2);
        });
    assert!(stats.executions > 0);
}

/// A root panic while a spawned thread had not yet taken its first step
/// used to hang the controller: the entry gate (`wait_for_turn`) sat
/// outside the spawned thread's `catch_unwind`, so the abort unwound past
/// the bookkeeping and `all_done` never became true. Also pins the
/// failure *message*: passing `&Box<dyn Any>` to the payload formatter
/// unsize-coerced to `&dyn Any` of the Box itself, so the `&str` downcast
/// always failed and every panic read "non-string payload".
#[test]
fn panic_before_child_first_step_reports_and_terminates() {
    let failure = Builder::new()
        .check_result(|| {
            let t = thread::spawn(|| {});
            if true {
                panic!("boom literal");
            }
            t.join();
        })
        .expect_err("the panic must be reported");
    assert_eq!(failure.kind, FailureKind::Panic);
    assert!(
        failure.message.contains("boom literal"),
        "payload lost: {}",
        failure.message
    );
}

/// Formatted (`String`-payload) panics must round-trip too.
#[test]
fn formatted_panic_message_is_preserved() {
    let failure = Builder::new()
        .check_result(|| {
            let v = 41;
            assert_eq!(v, 42, "off by {}", 42 - v);
        })
        .expect_err("the assert must be reported");
    assert_eq!(failure.kind, FailureKind::Panic);
    assert!(
        failure.message.contains("off by 1"),
        "payload lost: {}",
        failure.message
    );
}
