//! Source preparation for the analysis pass: a line-oriented Rust lexer
//! (the same comment/string/raw-string state machine the xtask lint uses)
//! that, unlike the lint's, *keeps* the line-comment text — the `ANALYZE:`
//! annotation grammar lives in comments — plus a token stream over the
//! stripped code with line numbers preserved, so multi-line expressions
//! (a `compare_exchange` split across four lines, a receiver chain broken
//! before its method) parse the same as single-line ones.

/// Lexer state carried across lines.
#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Code,
    /// Inside `/* ... */`, tracking nesting depth.
    BlockComment(u32),
    /// Inside a raw string literal, remembering its `#` count.
    RawStr(u32),
    /// Inside an ordinary `"` string literal that did not close on its
    /// starting line (Rust strings span lines).
    Str,
}

/// One source line split into its code part (string/char literals hollowed
/// out, comments removed) and its line-comment text (without the `//`).
pub struct Line {
    pub code: String,
    pub comment: String,
}

/// Splits `src` into per-line code and comment parts.
pub fn split_lines(src: &str) -> Vec<Line> {
    let mut mode = Mode::Code;
    let mut out = Vec::new();
    for raw in src.lines() {
        let (code, comment, next) = strip_line(raw, mode);
        mode = next;
        out.push(Line { code, comment });
    }
    out
}

fn strip_line(raw: &str, mut mode: Mode) -> (String, String, Mode) {
    let b = raw.as_bytes();
    let mut code = String::with_capacity(raw.len());
    let mut comment = String::new();
    let mut i = 0;
    while i < b.len() {
        match mode {
            Mode::BlockComment(depth) => {
                if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                    mode = if depth == 1 {
                        Mode::Code
                    } else {
                        Mode::BlockComment(depth - 1)
                    };
                    i += 2;
                } else if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                    mode = Mode::BlockComment(depth + 1);
                    i += 2;
                } else {
                    i += 1;
                }
            }
            Mode::Str => {
                if b[i] == b'\\' {
                    i += 2;
                } else if b[i] == b'"' {
                    i += 1;
                    mode = Mode::Code;
                } else {
                    i += 1;
                }
            }
            Mode::RawStr(hashes) => {
                if b[i] == b'"' {
                    let mut n = 0usize;
                    while i + 1 + n < b.len() && b[i + 1 + n] == b'#' && (n as u32) < hashes {
                        n += 1;
                    }
                    if n as u32 == hashes {
                        mode = Mode::Code;
                        i += 1 + n;
                        continue;
                    }
                }
                i += 1;
            }
            Mode::Code => match b[i] {
                b'/' if i + 1 < b.len() && b[i + 1] == b'/' => {
                    // Line comment: capture the text (annotations live here)
                    // and stop lexing code for this line.
                    comment.push_str(raw[i + 2..].trim_start_matches('/'));
                    i = b.len();
                }
                b'/' if i + 1 < b.len() && b[i + 1] == b'*' => {
                    mode = Mode::BlockComment(1);
                    i += 2;
                }
                b'r' if i + 1 < b.len()
                    && (b[i + 1] == b'"' || b[i + 1] == b'#')
                    && !prev_is_ident(b, i) =>
                {
                    let mut hashes = 0u32;
                    let mut j = i + 1;
                    while j < b.len() && b[j] == b'#' {
                        hashes += 1;
                        j += 1;
                    }
                    if j < b.len() && b[j] == b'"' {
                        mode = Mode::RawStr(hashes);
                        i = j + 1;
                    } else {
                        code.push('r');
                        i += 1;
                    }
                }
                b'"' => {
                    i += 1;
                    mode = Mode::Str;
                    while i < b.len() {
                        if b[i] == b'\\' {
                            i += 2;
                        } else if b[i] == b'"' {
                            i += 1;
                            mode = Mode::Code;
                            break;
                        } else {
                            i += 1;
                        }
                    }
                }
                b'\'' => {
                    if i + 2 < b.len() && b[i + 1] == b'\\' {
                        let mut j = i + 2;
                        while j < b.len() && b[j] != b'\'' {
                            j += 1;
                        }
                        i = j + 1;
                    } else if i + 2 < b.len() && b[i + 2] == b'\'' {
                        i += 3;
                    } else {
                        i += 1; // lifetime tick
                    }
                }
                c => {
                    code.push(c as char);
                    i += 1;
                }
            },
        }
    }
    (code, comment, mode)
}

fn prev_is_ident(b: &[u8], i: usize) -> bool {
    i > 0 && (b[i - 1].is_ascii_alphanumeric() || b[i - 1] == b'_')
}

/// A token of the stripped code stream.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// Identifier or keyword (also numeric literals — the analysis never
    /// distinguishes them from idents, and lumping them keeps the lexer
    /// trivial).
    Ident(String),
    /// Any single punctuation byte (`.`, `:`, `(`, `[`, `!`, …).
    Punct(char),
}

/// A token plus the 1-based line it came from.
#[derive(Debug, Clone)]
pub struct SpannedTok {
    pub tok: Tok,
    pub line: usize,
}

/// Tokenizes the code parts of pre-split lines.
pub fn tokenize(lines: &[Line]) -> Vec<SpannedTok> {
    let mut toks = Vec::new();
    for (idx, line) in lines.iter().enumerate() {
        let line_no = idx + 1;
        let b = line.code.as_bytes();
        let mut i = 0;
        while i < b.len() {
            let c = b[i];
            if c.is_ascii_whitespace() {
                i += 1;
            } else if c.is_ascii_alphanumeric() || c == b'_' {
                let start = i;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
                toks.push(SpannedTok {
                    tok: Tok::Ident(line.code[start..i].to_string()),
                    line: line_no,
                });
            } else if c.is_ascii() {
                toks.push(SpannedTok {
                    tok: Tok::Punct(c as char),
                    line: line_no,
                });
                i += 1;
            } else {
                // Multi-byte char (stray unicode in code position): skip.
                let ch_len = line.code[i..].chars().next().map_or(1, char::len_utf8);
                i += ch_len;
            }
        }
    }
    toks
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        tokenize(&split_lines(src))
            .into_iter()
            .filter_map(|t| match t.tok {
                Tok::Ident(s) => Some(s),
                Tok::Punct(_) => None,
            })
            .collect()
    }

    #[test]
    fn comments_captured_code_stripped() {
        let lines = split_lines("let x = 1; // ANALYZE: hot\nlet y = 2;");
        assert_eq!(lines[0].code.trim(), "let x = 1;");
        assert!(lines[0].comment.contains("ANALYZE: hot"));
        assert!(lines[1].comment.is_empty());
    }

    #[test]
    fn strings_do_not_leak_tokens() {
        let v = idents(r#"let s = "Vec::with_capacity(9)"; f();"#);
        assert!(!v.contains(&"with_capacity".to_string()));
        assert!(v.contains(&"f".to_string()));
    }

    #[test]
    fn block_comments_span_lines() {
        let v = idents("a(); /* lock()\nstill comment */ b();");
        assert_eq!(v, vec!["a", "b"]);
    }

    #[test]
    fn raw_strings_span_lines() {
        let v = idents("let s = r#\"format!\nmore\"#; g();");
        assert!(!v.contains(&"format".to_string()));
        assert!(v.contains(&"g".to_string()));
    }

    #[test]
    fn tokens_carry_line_numbers() {
        let toks = tokenize(&split_lines("a\n  .b(\n)"));
        let lines: Vec<(String, usize)> = toks
            .iter()
            .filter_map(|t| match &t.tok {
                Tok::Ident(s) => Some((s.clone(), t.line)),
                Tok::Punct(_) => None,
            })
            .collect();
        assert_eq!(lines, vec![("a".into(), 1), ("b".into(), 2)]);
    }

    #[test]
    fn plain_strings_span_lines() {
        // A multi-line string literal must not leak its contents as code
        // or comments on the following lines (the analyzer's own test
        // corpus embeds annotated sources as multi-line literals).
        let lines = split_lines("let s = \"fn f() {\n// ANALYZE: hot\nBox::new(1)\n}\"; g();");
        assert!(lines.iter().all(|l| l.comment.is_empty()));
        let v = idents("let s = \"fn f() {\n// ANALYZE: hot\nBox::new(1)\n}\"; g();");
        assert!(!v.contains(&"Box".to_string()));
        assert!(v.contains(&"g".to_string()));
    }

    #[test]
    fn lifetimes_and_chars_do_not_open_strings() {
        let v = idents("fn f<'a>(x: &'a u8) { g('x'); }");
        assert!(v.contains(&"g".to_string()));
        assert!(v.contains(&"f".to_string()));
    }
}
