//! Item-level parser over the token stream: functions (with their impl
//! owner), struct field types, `ANALYZE:` annotations, and the per-function
//! body facts the rules consume — allocation/blocking/panic sites, call
//! sites, lock acquisitions, and atomic operations.
//!
//! This is deliberately not a full Rust parser. It understands exactly as
//! much structure as fact propagation needs: brace nesting, `impl Type`
//! regions, `#[cfg(test)]` regions (excluded from analysis, as in the
//! lint), and statement-shaped token patterns. Known approximations are
//! documented in DESIGN.md §11 under "false-negative limits".

use crate::lexer::{split_lines, tokenize, Line, SpannedTok, Tok};

/// Rule families a waiver may name.
pub const RULES: &[&str] = &[
    "hot-alloc",
    "hot-block",
    "hot-panic",
    "lock-order",
    "atomic-pairing",
];

/// What a fact means for hot-path purity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FactKind {
    /// Heap allocation (`Box::new`, `vec!`, `format!`, `.clone()`, …).
    Alloc,
    /// Blocking (`.lock()`, `sleep`, `recv`, file I/O, …).
    Block,
    /// Panic site (`unwrap`/`expect`, `assert!`, indexing).
    Panic,
}

impl FactKind {
    pub fn rule(self) -> &'static str {
        match self {
            FactKind::Alloc => "hot-alloc",
            FactKind::Block => "hot-block",
            FactKind::Panic => "hot-panic",
        }
    }
}

/// One purity-relevant site inside a function body.
#[derive(Debug, Clone)]
pub struct Fact {
    pub kind: FactKind,
    pub line: usize,
    /// Human-readable description of what was matched.
    pub what: String,
}

/// An unresolved call site; resolution happens in `analysis`.
#[derive(Debug, Clone)]
pub enum Callee {
    /// `self.method(…)` — resolves against the enclosing impl type.
    SelfMethod(String),
    /// `self.a.b.method(…)` — resolves by walking struct field types.
    FieldChain(Vec<String>, String),
    /// `Type::method(…)`.
    Qualified(String, String),
    /// `local.method(…)` — resolved only if the method name is defined on
    /// exactly one known type (and is not a common std name).
    Method(String),
    /// `free_fn(…)` — resolved by unique name (file, then crate, then
    /// whole scan).
    Bare(String),
}

#[derive(Debug, Clone)]
pub struct CallSite {
    pub callee: Callee,
    pub line: usize,
    /// Token index, for ordering against lock sites.
    pub pos: usize,
}

/// A `.lock()` acquisition.
#[derive(Debug, Clone)]
pub struct LockSite {
    /// Lock identity: `Owner.field` when the receiver is `self.field`
    /// (possibly through a chain whose last element is the field), else
    /// `?.field`.
    pub id: String,
    pub line: usize,
    pub pos: usize,
    /// Whether the guard is bound with `let` (held to end of scope) rather
    /// than dropped at the end of the expression statement.
    pub held: bool,
    /// The `let` binding name of the guard, when held.
    pub binding: Option<String>,
    /// Token position of an explicit `drop(<binding>)`, if any — lock
    /// nesting edges stop there rather than at end of scope.
    pub released_pos: Option<usize>,
}

/// Which side(s) of a release/acquire pairing an atomic op provides.
#[derive(Debug, Clone)]
pub struct AtomicOp {
    pub field: String,
    pub line: usize,
    pub release_store: bool,
    pub acquire_load: bool,
}

/// One parsed function.
#[derive(Debug)]
pub struct FnItem {
    pub file: String,
    pub krate: String,
    pub name: String,
    /// `Owner::name` for methods, `name` for free functions.
    pub qname: String,
    pub owner: Option<String>,
    pub line: usize,
    /// `// ANALYZE: hot` (false) or `// ANALYZE: hot(strict)` (true).
    pub hot: Option<bool>,
    /// Propagation boundary: `#[cold]` or `// ANALYZE: cold — reason`.
    pub cold: Option<String>,
    pub facts: Vec<Fact>,
    pub calls: Vec<CallSite>,
    pub locks: Vec<LockSite>,
}

/// A counted `// ANALYZE: allow(rule) — justification` waiver.
#[derive(Debug, Clone)]
pub struct Waiver {
    pub rule: String,
    pub reason: String,
    pub file: String,
    /// The code line the waiver excuses (same line or first code line
    /// below the comment).
    pub target_line: usize,
}

/// A `// ANALYZE: in-bounds(proof)` tag: suppresses indexing/assert panic
/// facts on its target line. Not a waiver — it asserts the panic cannot
/// fire, with the proof in the tag.
#[derive(Debug, Clone)]
pub struct InBoundsTag {
    pub proof: String,
    pub file: String,
    pub target_line: usize,
}

/// A malformed annotation (unknown rule, missing justification…).
#[derive(Debug, Clone)]
pub struct BogusAnnotation {
    pub file: String,
    pub line: usize,
    pub message: String,
}

/// Everything extracted from one file.
#[derive(Debug, Default)]
pub struct ParsedFile {
    pub fns: Vec<FnItem>,
    /// struct name → (field name, base field type after peeling
    /// `Arc`/`Rc`/`Box`/`Option`/references).
    pub structs: Vec<(String, Vec<(String, String)>)>,
    pub atomics: Vec<AtomicOp>,
    pub waivers: Vec<Waiver>,
    pub in_bounds: Vec<InBoundsTag>,
    pub bogus: Vec<BogusAnnotation>,
}

const ATOMIC_RMW: &[&str] = &[
    "fetch_add", "fetch_sub", "fetch_or", "fetch_and", "fetch_xor", "swap",
    "compare_exchange", "compare_exchange_weak",
];

/// Method names too common to resolve by "unique method name" fallback.
pub(crate) const COMMON_METHODS: &[&str] = &[
    "new", "default", "clone", "len", "is_empty", "push", "pop", "get",
    "insert", "remove", "iter", "next", "map", "and_then", "filter", "fmt",
    "drop", "clear", "extend", "from", "into", "as_ref", "as_mut", "with",
    "with_mut", "read", "write", "send", "recv", "lock", "load", "store",
    "contains", "min", "max", "take", "replace", "source", "capacity",
    // Atomic primitives: a bare `x.compare_exchange(...)` must never
    // resolve into scanned code (the `check` scheduler defines same-named
    // methods) — the receiver is always a facade atomic.
    "fetch_add", "fetch_sub", "fetch_or", "fetch_and", "fetch_xor", "swap",
    "compare_exchange", "compare_exchange_weak",
];

struct Parser<'a> {
    file: &'a str,
    krate: String,
    lines: Vec<Line>,
    toks: Vec<SpannedTok>,
    out: ParsedFile,
}

pub fn parse_file(file: &str, src: &str) -> ParsedFile {
    let lines = split_lines(src);
    let toks = tokenize(&lines);
    let krate = file
        .strip_prefix("crates/")
        .and_then(|r| r.split('/').next())
        .unwrap_or("")
        .to_string();
    let mut p = Parser {
        file,
        krate,
        lines,
        toks,
        out: ParsedFile::default(),
    };
    p.collect_annotations();
    p.walk_items();
    p.out
}

impl Parser<'_> {
    fn ident_at(&self, i: usize) -> Option<&str> {
        match self.toks.get(i).map(|t| &t.tok) {
            Some(Tok::Ident(s)) => Some(s),
            _ => None,
        }
    }

    fn punct_at(&self, i: usize) -> Option<char> {
        match self.toks.get(i).map(|t| &t.tok) {
            Some(Tok::Punct(c)) => Some(*c),
            _ => None,
        }
    }

    /// Line-comment annotations: waivers and in-bounds tags bind to the
    /// first code-bearing line at or below the comment.
    fn collect_annotations(&mut self) {
        for idx in 0..self.lines.len() {
            let comment = self.lines[idx].comment.clone();
            let Some(rest) = comment.trim().strip_prefix("ANALYZE:") else {
                continue;
            };
            let rest = rest.trim();
            let line_no = idx + 1;
            if rest.starts_with("hot") || rest.starts_with("cold") {
                continue; // function annotations, handled at fn headers
            }
            let target = self.target_code_line(idx);
            if let Some(args) = rest.strip_prefix("allow(") {
                let Some(close) = args.find(')') else {
                    self.push_bogus(line_no, "unclosed `allow(`".into());
                    continue;
                };
                let rule = args[..close].trim().to_string();
                if !RULES.contains(&rule.as_str()) {
                    self.push_bogus(
                        line_no,
                        format!("unknown rule `{rule}` in waiver (expected one of {RULES:?})"),
                    );
                    continue;
                }
                let reason = strip_sep(&args[close + 1..]);
                if reason.is_empty() {
                    self.push_bogus(
                        line_no,
                        format!("waiver for `{rule}` carries no justification"),
                    );
                    continue;
                }
                self.out.waivers.push(Waiver {
                    rule,
                    reason,
                    file: self.file.to_string(),
                    target_line: target,
                });
            } else if let Some(args) = rest.strip_prefix("in-bounds(") {
                let Some(close) = args.rfind(')') else {
                    self.push_bogus(line_no, "unclosed `in-bounds(`".into());
                    continue;
                };
                let proof = args[..close].trim().to_string();
                if proof.is_empty() {
                    self.push_bogus(line_no, "`in-bounds()` carries no proof".into());
                    continue;
                }
                self.out.in_bounds.push(InBoundsTag {
                    proof,
                    file: self.file.to_string(),
                    target_line: target,
                });
            } else {
                self.push_bogus(line_no, format!("unrecognized ANALYZE annotation `{rest}`"));
            }
        }
    }

    fn push_bogus(&mut self, line: usize, message: String) {
        self.out.bogus.push(BogusAnnotation {
            file: self.file.to_string(),
            line,
            message,
        });
    }

    /// The code line an annotation at line index `idx` excuses: the same
    /// line if it has code, else the next line with code.
    fn target_code_line(&self, idx: usize) -> usize {
        if !self.lines[idx].code.trim().is_empty() {
            return idx + 1;
        }
        for (j, line) in self.lines.iter().enumerate().skip(idx + 1) {
            if !line.code.trim().is_empty() {
                return j + 1;
            }
        }
        idx + 1
    }

    /// Function annotations live in the contiguous comment/attribute block
    /// above the `fn` header line. Returns (hot, cold).
    fn fn_annotations(&self, header_line: usize) -> (Option<bool>, Option<String>) {
        let mut hot = None;
        let mut cold = None;
        let mut idx = header_line.saturating_sub(1); // 0-based index of header
        while idx > 0 {
            idx -= 1;
            let l = &self.lines[idx];
            let code = l.code.trim();
            let is_attr = code.starts_with("#[");
            let comment_only = code.is_empty() && !l.comment.is_empty();
            if !is_attr && !comment_only {
                break;
            }
            if is_attr && code.contains("cold") {
                cold.get_or_insert_with(|| "#[cold]".to_string());
            }
            if let Some(rest) = l.comment.trim().strip_prefix("ANALYZE:") {
                let rest = rest.trim();
                if rest == "hot" {
                    hot = Some(false);
                } else if rest == "hot(strict)" {
                    hot = Some(true);
                } else if let Some(r) = rest.strip_prefix("cold") {
                    cold = Some(strip_sep(r));
                }
            }
        }
        (hot, cold)
    }

    /// Walks the token stream extracting impls, structs, and functions.
    fn walk_items(&mut self) {
        let mut depth: i64 = 0;
        // (impl type, depth at which its body opened)
        let mut impls: Vec<(String, i64)> = Vec::new();
        let mut test_regions: Vec<i64> = Vec::new();
        let mut pending_test = false;
        let mut i = 0;
        while i < self.toks.len() {
            match self.toks[i].tok.clone() {
                Tok::Punct('{') => {
                    if pending_test {
                        test_regions.push(depth);
                        pending_test = false;
                    }
                    depth += 1;
                    i += 1;
                }
                Tok::Punct('}') => {
                    depth -= 1;
                    if impls.last().is_some_and(|&(_, d)| d == depth) {
                        impls.pop();
                    }
                    if test_regions.last().is_some_and(|&d| d == depth) {
                        test_regions.pop();
                    }
                    i += 1;
                }
                Tok::Ident(w) if w == "cfg" => {
                    // `#[cfg(test)]` / `#[cfg(all(test, …))]`: the next
                    // opened brace starts a test region.
                    if self.punct_at(i + 1) == Some('(') {
                        let mut j = i + 2;
                        let mut par = 1;
                        let mut saw_test = false;
                        let mut saw_not = false;
                        while j < self.toks.len() && par > 0 {
                            match &self.toks[j].tok {
                                Tok::Punct('(') => par += 1,
                                Tok::Punct(')') => par -= 1,
                                Tok::Ident(s) if s == "test" => saw_test = true,
                                Tok::Ident(s) if s == "not" => saw_not = true,
                                _ => {}
                            }
                            j += 1;
                        }
                        // `#[cfg(not(test))]` guards *non*-test code.
                        if saw_test && !saw_not {
                            pending_test = true;
                        }
                        i = j;
                    } else {
                        i += 1;
                    }
                }
                Tok::Ident(w) if w == "impl" && test_regions.is_empty() => {
                    let (ty, next) = self.parse_impl_header(i + 1);
                    if let Some(ty) = ty {
                        impls.push((ty, depth));
                    }
                    i = next;
                }
                Tok::Ident(w) if w == "struct" && test_regions.is_empty() => {
                    i = self.parse_struct(i + 1);
                }
                Tok::Ident(w) if w == "fn" && test_regions.is_empty() => {
                    let owner = impls.last().map(|(t, _)| t.clone());
                    // `#[cfg(test)]` directly on a fn: consume the body
                    // (keeping brace accounting intact) but record nothing.
                    let skip = pending_test;
                    pending_test = false;
                    i = self.parse_fn(i + 1, owner, skip);
                }
                Tok::Ident(w) if w == "fn" => {
                    // Test-region fn: skip its name so a stray `impl` in
                    // its signature can't confuse the item walk.
                    i += 1;
                }
                _ => i += 1,
            }
        }
    }

    /// After `impl`: skip generics, read the type path; `impl Trait for
    /// Type` takes the type after `for`. Returns (type, index of `{`).
    fn parse_impl_header(&self, mut i: usize) -> (Option<String>, usize) {
        let mut last_path_seg: Option<String> = None;
        let mut after_for: Option<String> = None;
        let mut saw_for = false;
        let mut angle = 0i32;
        while i < self.toks.len() {
            match &self.toks[i].tok {
                Tok::Punct('<') => angle += 1,
                Tok::Punct('>') => angle -= 1,
                Tok::Punct('{') if angle <= 0 => break,
                Tok::Ident(s) if s == "for" && angle <= 0 => saw_for = true,
                Tok::Ident(s) if s == "where" && angle <= 0 => {
                    // Bounds may mention types; stop collecting.
                    while i < self.toks.len() && self.punct_at(i) != Some('{') {
                        i += 1;
                    }
                    break;
                }
                Tok::Ident(s) if angle <= 0 => {
                    let name = s.clone();
                    if saw_for {
                        after_for = Some(name);
                    } else {
                        last_path_seg = Some(name);
                    }
                }
                _ => {}
            }
            i += 1;
        }
        (after_for.or(last_path_seg), i)
    }

    /// After `struct`: record named fields with peeled base types.
    fn parse_struct(&mut self, mut i: usize) -> usize {
        let Some(name) = self.ident_at(i).map(str::to_string) else {
            return i;
        };
        i += 1;
        // Skip generics.
        let mut angle = 0i32;
        loop {
            match self.punct_at(i) {
                Some('<') => angle += 1,
                Some('>') => angle -= 1,
                Some('{') if angle <= 0 => break,
                Some('(') | Some(';') if angle <= 0 => return i, // tuple/unit
                None if self.ident_at(i).is_none() => return i,
                _ => {}
            }
            i += 1;
        }
        i += 1; // past '{'
        let mut fields = Vec::new();
        let mut depth = 1i32;
        while i < self.toks.len() && depth > 0 {
            match self.punct_at(i) {
                Some('{') => {
                    depth += 1;
                    i += 1;
                    continue;
                }
                Some('}') => {
                    depth -= 1;
                    i += 1;
                    continue;
                }
                _ => {}
            }
            // Field pattern at depth 1: ident ':' type… (',' | '}')
            if depth == 1 {
                if let Some(fname) = self.ident_at(i).map(str::to_string) {
                    if self.punct_at(i + 1) == Some(':')
                        && self.punct_at(i + 2) != Some(':')
                    {
                        let (base, next) = self.parse_field_type(i + 2);
                        if let Some(base) = base {
                            fields.push((fname, base));
                        }
                        i = next;
                        continue;
                    }
                }
            }
            i += 1;
        }
        self.out.structs.push((name, fields));
        i
    }

    /// Reads a field type, returning its base path segment after peeling
    /// wrapper generics, and the index after the field (past ',').
    fn parse_field_type(&self, mut i: usize) -> (Option<String>, usize) {
        const WRAPPERS: &[&str] = &["Arc", "Rc", "Box", "Option"];
        let mut base: Option<String> = None;
        let mut angle = 0i32;
        while i < self.toks.len() {
            match &self.toks[i].tok {
                Tok::Punct('<') => angle += 1,
                Tok::Punct('>') => angle -= 1,
                Tok::Punct(',') | Tok::Punct('}') if angle <= 0 => break,
                Tok::Ident(s) => {
                    if WRAPPERS.contains(&s.as_str()) {
                        // keep peeling: the payload type follows
                    } else if base.is_none() {
                        base = Some(s.clone());
                    } else if self.punct_at(i.wrapping_sub(1)) == Some(':') {
                        // Innermost segment of a path like `config::Config`.
                        base = Some(s.clone());
                    }
                    // Generic args of a concrete type (`MpscQueue<Event>`)
                    // do NOT override the base.
                }
                _ => {}
            }
            i += 1;
        }
        if self.punct_at(i) == Some(',') {
            i += 1;
        }
        (base, i)
    }

    /// After `fn`: name, body range, facts/calls/locks/atomics. With
    /// `skip`, consumes the item without recording it (cfg(test) fns).
    fn parse_fn(&mut self, mut i: usize, owner: Option<String>, skip: bool) -> usize {
        let Some(name) = self.ident_at(i).map(str::to_string) else {
            return i;
        };
        let header_line = self.toks[i].line;
        i += 1;
        // Find the body '{' at paren/angle depth 0; a ';' first means a
        // bodiless trait method.
        let mut par = 0i32;
        loop {
            match self.toks.get(i).map(|t| &t.tok) {
                Some(Tok::Punct('(')) | Some(Tok::Punct('[')) => par += 1,
                Some(Tok::Punct(')')) | Some(Tok::Punct(']')) => par -= 1,
                Some(Tok::Punct(';')) if par <= 0 => return i + 1,
                Some(Tok::Punct('{')) if par <= 0 => break,
                None => return i,
                _ => {}
            }
            i += 1;
        }
        let body_start = i + 1;
        // Find matching '}' for the body.
        let mut d = 1i64;
        let mut j = body_start;
        while j < self.toks.len() && d > 0 {
            match self.punct_at(j) {
                Some('{') => d += 1,
                Some('}') => d -= 1,
                _ => {}
            }
            j += 1;
        }
        let body_end = j.saturating_sub(1); // index of closing '}'
        if skip {
            return j;
        }
        let (hot, cold) = self.fn_annotations(header_line);
        let qname = match &owner {
            Some(t) => format!("{t}::{name}"),
            None => name.clone(),
        };
        let mut item = FnItem {
            file: self.file.to_string(),
            krate: self.krate.clone(),
            name,
            qname,
            owner,
            line: header_line,
            hot,
            cold,
            facts: Vec::new(),
            calls: Vec::new(),
            locks: Vec::new(),
        };
        self.scan_body(body_start, body_end, &mut item);
        self.resolve_guard_drops(body_start, body_end, &mut item);
        self.out.fns.push(item);
        // Resume the outer walk right after the body; braces inside were
        // consumed here, so the caller's depth is unchanged.
        j
    }

    /// Receiver chain ending just before token `i` (which is a '.'-access
    /// or '::'-path target): walks back through `ident ( . ident )*`.
    fn chain_before_dot(&self, mut i: usize) -> Vec<String> {
        let mut chain = Vec::new();
        while let Some(id) = self.ident_at(i) {
            chain.push(id.to_string());
            if i >= 2 && self.punct_at(i - 1) == Some('.') && self.ident_at(i - 2).is_some() {
                i -= 2;
            } else {
                break;
            }
        }
        chain.reverse();
        chain
    }

    fn scan_body(&mut self, start: usize, end: usize, item: &mut FnItem) {
        let mut k = start;
        while k < end {
            let line = self.toks[k].line;
            match self.toks[k].tok.clone() {
                Tok::Ident(w) => {
                    let next = self.punct_at(k + 1);
                    let prev = if k > 0 { self.punct_at(k - 1) } else { None };
                    if next == Some('!')
                        && matches!(self.punct_at(k + 2), Some('(') | Some('[') | Some('{'))
                    {
                        self.macro_fact(&w, line, item);
                        k += 3;
                        continue;
                    }
                    if next == Some('(') {
                        let is_method = prev == Some('.');
                        let is_path = prev == Some(':');
                        if is_method {
                            self.method_site(k, &w, line, item, end);
                        } else if is_path {
                            self.qualified_site(k, &w, line, item);
                        } else if !is_keyword(&w) {
                            // Bare call: lowercase start = function;
                            // uppercase = tuple-struct/enum constructor.
                            if w.chars().next().is_some_and(char::is_lowercase) {
                                item.calls.push(CallSite {
                                    callee: Callee::Bare(w.clone()),
                                    line,
                                    pos: k,
                                });
                            }
                        }
                    }
                    k += 1;
                }
                Tok::Punct('[') => {
                    // Indexing: '[' directly after an ident / ')' / ']'.
                    let indexing = k > 0
                        && match &self.toks[k - 1].tok {
                            Tok::Ident(w) => !is_keyword(w),
                            Tok::Punct(')') | Tok::Punct(']') => true,
                            _ => false,
                        };
                    if indexing && !self.line_in_bounds(line) {
                        item.facts.push(Fact {
                            kind: FactKind::Panic,
                            line,
                            what: "slice/array indexing (can panic)".into(),
                        });
                    }
                    k += 1;
                }
                _ => k += 1,
            }
        }
    }

    fn line_in_bounds(&self, line: usize) -> bool {
        self.out.in_bounds.iter().any(|t| t.target_line == line)
    }

    fn macro_fact(&self, name: &str, line: usize, item: &mut FnItem) {
        let alloc = ["format", "vec"];
        let block = ["println", "eprintln", "print", "eprint", "writeln", "dbg"];
        let panic = [
            "panic",
            "unreachable",
            "todo",
            "unimplemented",
            "assert",
            "assert_eq",
            "assert_ne",
        ];
        let kind = if alloc.contains(&name) {
            Some(FactKind::Alloc)
        } else if block.contains(&name) {
            Some(FactKind::Block)
        } else if panic.contains(&name) {
            if self.line_in_bounds(line) {
                None // a proved bounds/length assertion
            } else {
                Some(FactKind::Panic)
            }
        } else {
            None
        };
        if let Some(kind) = kind {
            item.facts.push(Fact {
                kind,
                line,
                what: format!("{name}! macro"),
            });
        }
    }

    /// `recv.method(` at token index `k` (the method ident).
    fn method_site(&mut self, k: usize, m: &str, line: usize, item: &mut FnItem, end: usize) {
        // Facts by method name.
        let alloc_m = ["clone", "to_owned", "to_string", "to_vec", "collect", "cloned"];
        let block_m = ["lock", "recv", "join", "park", "wait", "flush"];
        let panic_m = ["unwrap", "expect"];
        if alloc_m.contains(&m) {
            item.facts.push(Fact {
                kind: FactKind::Alloc,
                line,
                what: format!(".{m}() allocates (or clones a non-Copy value)"),
            });
        } else if block_m.contains(&m) {
            item.facts.push(Fact {
                kind: FactKind::Block,
                line,
                what: format!(".{m}() blocks"),
            });
        } else if panic_m.contains(&m) && !self.line_in_bounds(line) {
            item.facts.push(Fact {
                kind: FactKind::Panic,
                line,
                what: format!(".{m}() can panic"),
            });
        }

        let chain = if k >= 2 { self.chain_before_dot(k - 2) } else { Vec::new() };

        // Lock site bookkeeping for the lock-order graph.
        if m == "lock" {
            let id = match (item.owner.as_deref(), chain.as_slice()) {
                (Some(t), [s, rest @ ..]) if s == "self" && !rest.is_empty() => {
                    format!("{t}.{}", rest.join("."))
                }
                (_, [.., last]) => format!("?.{last}"),
                _ => "?.?".into(),
            };
            let binding = self.stmt_let_binding(k);
            item.locks.push(LockSite {
                id,
                line,
                pos: k,
                held: binding.is_some(),
                binding,
                released_pos: None,
            });
        }

        // Atomic ops feed the pairing audit.
        if m == "load" || m == "store" || ATOMIC_RMW.contains(&m) {
            if let Some(field) = chain.last() {
                let orderings = self.orderings_in_args(k + 1, end);
                let rmw = ATOMIC_RMW.contains(&m);
                let rel = orderings.iter().any(|o| o == "Release" || o == "AcqRel" || o == "SeqCst");
                let acq = orderings.iter().any(|o| o == "Acquire" || o == "AcqRel" || o == "SeqCst");
                if !orderings.is_empty() {
                    self.out.atomics.push(AtomicOp {
                        field: field.clone(),
                        line,
                        release_store: rel && (m == "store" || rmw),
                        acquire_load: acq && (m == "load" || rmw),
                    });
                }
            }
        }

        // Call-site classification.
        let callee = match chain.as_slice() {
            [s] if s == "self" => Some(Callee::SelfMethod(m.to_string())),
            [s, ..] if s == "self" => Some(Callee::FieldChain(chain.clone(), m.to_string())),
            [] => None, // e.g. `).method(` — chained off an expression
            _ => Some(Callee::Method(m.to_string())),
        };
        let callee = callee.unwrap_or(Callee::Method(m.to_string()));
        item.calls.push(CallSite {
            callee,
            line,
            pos: k,
        });
    }

    /// `Path::method(` at token index `k` (the method ident).
    fn qualified_site(&mut self, k: usize, m: &str, line: usize, item: &mut FnItem) {
        // Walk back over `::` to the segment before the method.
        let ty = if k >= 3
            && self.punct_at(k - 1) == Some(':')
            && self.punct_at(k - 2) == Some(':')
        {
            self.ident_at(k - 3).map(str::to_string)
        } else {
            None
        };
        let Some(ty) = ty else { return };
        // Qualified facts.
        let alloc_types = ["Box", "Rc", "String"];
        if alloc_types.contains(&ty.as_str())
            || (ty == "Vec" && m != "new")
            || (ty == "Arc" && m == "new")
        {
            item.facts.push(Fact {
                kind: FactKind::Alloc,
                line,
                what: format!("{ty}::{m} allocates"),
            });
        }
        if m == "sleep" || (ty == "File" || ty == "Condvar") {
            item.facts.push(Fact {
                kind: FactKind::Block,
                line,
                what: format!("{ty}::{m} blocks"),
            });
        }
        if ty.chars().next().is_some_and(char::is_uppercase) {
            item.calls.push(CallSite {
                callee: Callee::Qualified(ty, m.to_string()),
                line,
                pos: k,
            });
        }
    }

    /// Matches explicit `drop(<guard>)` statements against held lock
    /// sites, so the order graph doesn't see a re-acquire after a manual
    /// release as nesting.
    fn resolve_guard_drops(&self, start: usize, end: usize, item: &mut FnItem) {
        let mut k = start;
        while k + 3 < end {
            if self.ident_at(k) == Some("drop")
                && self.punct_at(k + 1) == Some('(')
                && self.punct_at(k + 3) == Some(')')
            {
                if let Some(name) = self.ident_at(k + 2) {
                    for l in item.locks.iter_mut() {
                        if l.pos < k
                            && l.released_pos.is_none()
                            && l.binding.as_deref() == Some(name)
                        {
                            l.released_pos = Some(k);
                        }
                    }
                }
            }
            k += 1;
        }
    }

    /// If the statement containing token `k` starts with `let`, the guard
    /// binding name (`let mut state = …` → `state`); else `None`.
    fn stmt_let_binding(&self, k: usize) -> Option<String> {
        let mut i = k;
        while i > 0 {
            i -= 1;
            match &self.toks[i].tok {
                Tok::Punct(';') | Tok::Punct('{') | Tok::Punct('}') => {
                    if self.ident_at(i + 1) != Some("let") {
                        return None;
                    }
                    let mut j = i + 2;
                    if self.ident_at(j) == Some("mut") {
                        j += 1;
                    }
                    return self.ident_at(j).map(str::to_string);
                }
                _ => {}
            }
        }
        None
    }

    /// Ordering idents (`Ordering::X`) inside the argument list opening at
    /// token `open` (must be '(').
    fn orderings_in_args(&self, open: usize, end: usize) -> Vec<String> {
        let mut out = Vec::new();
        if self.punct_at(open) != Some('(') {
            return out;
        }
        let mut par = 1;
        let mut i = open + 1;
        while i < end.min(self.toks.len()) && par > 0 {
            match &self.toks[i].tok {
                Tok::Punct('(') => par += 1,
                Tok::Punct(')') => par -= 1,
                Tok::Ident(s)
                    if ["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"]
                        .contains(&s.as_str()) =>
                {
                    out.push(s.clone());
                }
                _ => {}
            }
            i += 1;
        }
        out
    }
}

fn strip_sep(s: &str) -> String {
    s.trim()
        .trim_start_matches(['—', '-', ':', '–'])
        .trim()
        .to_string()
}

fn is_keyword(w: &str) -> bool {
    [
        "if", "else", "while", "loop", "for", "match", "return", "let", "mut",
        "fn", "pub", "use", "mod", "impl", "struct", "enum", "trait", "where",
        "in", "as", "move", "ref", "break", "continue", "unsafe", "const",
        "static", "type", "crate", "super", "Self", "self", "dyn",
    ]
    .contains(&w)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> ParsedFile {
        parse_file("crates/core/src/test_input.rs", src)
    }

    fn fn_named<'a>(p: &'a ParsedFile, q: &str) -> &'a FnItem {
        p.fns
            .iter()
            .find(|f| f.qname == q)
            .unwrap_or_else(|| panic!("no fn {q} in {:?}", p.fns.iter().map(|f| &f.qname).collect::<Vec<_>>()))
    }

    #[test]
    fn fns_and_impl_owners() {
        let p = parse(
            "struct W { q: Arc<Queue> }\n\
             impl W {\n    fn go(&self) { self.q.push(1); }\n}\n\
             fn free() {}\n",
        );
        assert_eq!(p.fns.len(), 2);
        assert_eq!(p.fns[0].qname, "W::go");
        assert_eq!(p.fns[1].qname, "free");
        assert_eq!(p.structs[0].0, "W");
        assert_eq!(p.structs[0].1, vec![("q".to_string(), "Queue".to_string())]);
    }

    #[test]
    fn trait_impl_for_takes_the_type() {
        let p = parse("impl Drop for Guard {\n    fn drop(&mut self) { g(); }\n}\n");
        assert_eq!(p.fns[0].qname, "Guard::drop");
    }

    #[test]
    fn hot_and_cold_annotations() {
        let p = parse(
            "// ANALYZE: hot\nfn fast() {}\n\
             // ANALYZE: hot(strict)\nfn faster() {}\n\
             #[cold]\nfn slow() {}\n\
             // ANALYZE: cold — error path by design\nfn slower() {}\n",
        );
        assert_eq!(fn_named(&p, "fast").hot, Some(false));
        assert_eq!(fn_named(&p, "faster").hot, Some(true));
        assert_eq!(fn_named(&p, "slow").cold.as_deref(), Some("#[cold]"));
        assert_eq!(
            fn_named(&p, "slower").cold.as_deref(),
            Some("error path by design")
        );
    }

    #[test]
    fn alloc_block_panic_facts() {
        let p = parse(
            "fn f(v: &Foo) {\n\
                 let s = format!(\"x{}\", 1);\n\
                 let b = Box::new(3);\n\
                 let c = v.clone();\n\
                 let g = v.inner.lock();\n\
                 std::thread::sleep(d);\n\
                 let u = opt.unwrap();\n\
                 let i = xs[0];\n\
             }\n",
        );
        let kinds: Vec<FactKind> = p.fns[0].facts.iter().map(|f| f.kind).collect();
        assert_eq!(
            kinds,
            vec![
                FactKind::Alloc, // format!
                FactKind::Alloc, // Box::new
                FactKind::Alloc, // .clone()
                FactKind::Block, // .lock()
                FactKind::Block, // sleep
                FactKind::Panic, // .unwrap()
                FactKind::Panic, // indexing
            ]
        );
    }

    #[test]
    fn vec_new_is_not_growth_but_with_capacity_is() {
        let p = parse("fn f() { let a = Vec::new(); let b = Vec::with_capacity(4); }\n");
        assert_eq!(p.fns[0].facts.len(), 1);
        assert!(p.fns[0].facts[0].what.contains("with_capacity"));
    }

    #[test]
    fn in_bounds_tag_suppresses_indexing_and_asserts() {
        let p = parse(
            "fn f(xs: &[u8], m: usize, p: usize) {\n\
                 // ANALYZE: in-bounds(p & m < xs.len() by mask construction)\n\
                 let v = xs[p & m];\n\
                 assert_eq!(xs.len(), m);\n\
             }\n",
        );
        // The tagged line is clean; the untagged assert still reports.
        assert_eq!(p.fns[0].facts.len(), 1);
        assert_eq!(p.fns[0].facts[0].line, 4);
        assert_eq!(p.in_bounds.len(), 1);
    }

    #[test]
    fn waiver_parsing_and_bogus_detection() {
        let p = parse(
            "fn f() {\n\
                 // ANALYZE: allow(hot-alloc) — one-time startup buffer\n\
                 let v = Vec::with_capacity(8);\n\
                 // ANALYZE: allow(no-such-rule) — nope\n\
                 let w = 1;\n\
                 // ANALYZE: allow(hot-panic)\n\
                 let u = o.unwrap();\n\
             }\n",
        );
        assert_eq!(p.waivers.len(), 1);
        assert_eq!(p.waivers[0].rule, "hot-alloc");
        assert_eq!(p.waivers[0].target_line, 3);
        assert_eq!(p.bogus.len(), 2, "unknown rule + missing justification");
    }

    #[test]
    fn call_sites_classified() {
        let p = parse(
            "impl C {\n\
               fn f(&self) {\n\
                 self.helper();\n\
                 self.shared.queue.push_wait(e);\n\
                 Other::build(1);\n\
                 local.push_wait(x);\n\
                 free_fn(2);\n\
               }\n\
             }\n",
        );
        let calls = &p.fns[0].calls;
        assert!(matches!(&calls[0].callee, Callee::SelfMethod(m) if m == "helper"));
        assert!(
            matches!(&calls[1].callee, Callee::FieldChain(c, m) if c == &["self", "shared", "queue"] && m == "push_wait")
        );
        assert!(matches!(&calls[2].callee, Callee::Qualified(t, m) if t == "Other" && m == "build"));
        assert!(matches!(&calls[3].callee, Callee::Method(m) if m == "push_wait"));
        assert!(matches!(&calls[4].callee, Callee::Bare(f) if f == "free_fn"));
    }

    #[test]
    fn multiline_atomic_ops_parse() {
        let p = parse(
            "impl Q {\n\
               fn f(&self, s: &Slot) {\n\
                 s.seq\n\
                     .compare_exchange(\n\
                         a,\n\
                         b,\n\
                         Ordering::Acquire,\n\
                         Ordering::Relaxed,\n\
                     );\n\
                 s.seq.store(1, Ordering::Release);\n\
                 self.head.load(Ordering::Relaxed);\n\
               }\n\
             }\n",
        );
        assert_eq!(p.atomics.len(), 3);
        assert!(p.atomics[0].acquire_load && !p.atomics[0].release_store);
        assert!(p.atomics[1].release_store && !p.atomics[1].acquire_load);
        assert!(!p.atomics[2].acquire_load && !p.atomics[2].release_store);
        assert_eq!(p.atomics[0].field, "seq");
    }

    #[test]
    fn lock_sites_and_held_detection() {
        let p = parse(
            "impl J {\n\
               fn f(&self) {\n\
                 let mut inner = self.inner.lock();\n\
                 self.aux.lock().touch();\n\
               }\n\
             }\n",
        );
        let locks = &p.fns[0].locks;
        assert_eq!(locks.len(), 2);
        assert_eq!(locks[0].id, "J.inner");
        assert!(locks[0].held);
        assert_eq!(locks[1].id, "J.aux");
        assert!(!locks[1].held);
    }

    #[test]
    fn test_regions_are_excluded() {
        let p = parse(
            "fn real() {}\n\
             #[cfg(test)]\n\
             mod tests {\n\
                 fn helper() { x.unwrap(); }\n\
             }\n",
        );
        assert_eq!(p.fns.len(), 1);
        assert_eq!(p.fns[0].qname, "real");
    }

    #[test]
    fn bodiless_trait_methods_skipped() {
        let p = parse("trait T {\n    fn a(&self);\n    fn b(&self) { f(); }\n}\n");
        assert_eq!(p.fns.len(), 1);
        assert_eq!(p.fns[0].name, "b");
    }
}
