//! The rule engine: resolves call sites into a per-crate call graph and
//! runs the three rule families over it.
//!
//! 1. **hot-path purity** — facts (alloc/block/panic sites) propagate
//!    backwards: everything transitively reachable from a
//!    `// ANALYZE: hot` root must be fact-free, unless waived line-by-line
//!    or cut off by a `// ANALYZE: cold` / `#[cold]` boundary.
//!    `hot(strict)` roots additionally reject waivers inside their
//!    closure — the client write path must be clean *without* excuses.
//! 2. **lock-order** — a held lock (`let g = x.lock()`) followed by
//!    another acquisition (directly, or anywhere in a callee's transitive
//!    lock set) is an order edge; cycles in the edge graph are potential
//!    compute-core/EPE deadlocks.
//! 3. **atomic-pairing** — per atomic field (keyed by field name across
//!    `shm`/`core`/`obs`), every `Release` store side needs an
//!    `Acquire`/`AcqRel` load side and vice versa; `Relaxed`-only fields
//!    (pure counters) are exempt.
//!
//! Plus bookkeeping rules: `bogus-waiver` (malformed annotations),
//! `unused-waiver` (a waiver that suppressed nothing — stale line drift),
//! `strict-waiver` (waiver inside a strict closure).

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};

use crate::parser::{Callee, FnItem, ParsedFile, Waiver, COMMON_METHODS};

/// One rule violation.
#[derive(Debug, Clone)]
pub struct Finding {
    pub rule: String,
    pub file: String,
    pub line: usize,
    pub message: String,
    /// Call path from the hot root to the offending fn (hot rules only).
    pub path: Vec<String>,
}

/// A waiver with its usage outcome.
#[derive(Debug, Clone)]
pub struct WaiverRecord {
    pub rule: String,
    pub file: String,
    pub line: usize,
    pub reason: String,
    pub used: bool,
}

/// Per-root closure summary (drives the "zero waivers on the write path"
/// acceptance gate).
#[derive(Debug, Clone)]
pub struct ClosureReport {
    pub root: String,
    pub strict: bool,
    /// Functions in the closure (cold boundaries excluded).
    pub fns: usize,
    /// Waivers applied inside the closure.
    pub waived: usize,
}

/// A cold boundary a hot closure stopped at.
#[derive(Debug, Clone)]
pub struct ColdBoundary {
    pub qname: String,
    pub reason: String,
    pub reached_from: String,
}

#[derive(Debug, Default)]
pub struct Report {
    pub files_scanned: usize,
    pub fns_indexed: usize,
    pub hot_roots: Vec<String>,
    pub findings: Vec<Finding>,
    pub waivers: Vec<WaiverRecord>,
    pub in_bounds_tags: usize,
    pub cold_boundaries: Vec<ColdBoundary>,
    pub closures: Vec<ClosureReport>,
    /// Call sites that looked resolvable but weren't (informational).
    pub unresolved_calls: usize,
}

impl Report {
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    pub fn closure(&self, root: &str) -> Option<&ClosureReport> {
        self.closures.iter().find(|c| c.root == root)
    }
}

/// Resolution outcome for a call site.
enum Res {
    /// Index into the fn table.
    Fn(usize),
    /// Outside the scanned code (std, vendored deps) — not an error.
    External,
    /// Looked like it should resolve but didn't — counted.
    Unknown,
}

struct Index<'a> {
    fns: Vec<&'a FnItem>,
    by_qname: HashMap<&'a str, Vec<usize>>,
    free_by_name: HashMap<&'a str, Vec<usize>>,
    methods_by_name: HashMap<&'a str, Vec<usize>>,
    /// struct → field → peeled base type, merged across files.
    fields: HashMap<&'a str, HashMap<&'a str, &'a str>>,
}

impl<'a> Index<'a> {
    fn build(files: &'a [(String, ParsedFile)]) -> Self {
        let mut fns = Vec::new();
        let mut by_qname: HashMap<&str, Vec<usize>> = HashMap::new();
        let mut free_by_name: HashMap<&str, Vec<usize>> = HashMap::new();
        let mut methods_by_name: HashMap<&str, Vec<usize>> = HashMap::new();
        let mut fields: HashMap<&str, HashMap<&str, &str>> = HashMap::new();
        for (_, pf) in files {
            for f in &pf.fns {
                let i = fns.len();
                fns.push(f);
                by_qname.entry(f.qname.as_str()).or_default().push(i);
                if f.owner.is_some() {
                    methods_by_name.entry(f.name.as_str()).or_default().push(i);
                } else {
                    free_by_name.entry(f.name.as_str()).or_default().push(i);
                }
            }
            for (sname, sfields) in &pf.structs {
                let entry = fields.entry(sname.as_str()).or_default();
                for (fname, ftype) in sfields {
                    entry.insert(fname.as_str(), ftype.as_str());
                }
            }
        }
        Index {
            fns,
            by_qname,
            free_by_name,
            methods_by_name,
            fields,
        }
    }

    /// Looks up `Owner::method`, preferring a same-crate definition when
    /// the qname is ambiguous across crates.
    fn lookup_qname(&self, ctx: &FnItem, owner: &str, m: &str) -> Option<usize> {
        let q = format!("{owner}::{m}");
        let v = self.by_qname.get(q.as_str())?;
        v.iter()
            .copied()
            .find(|&i| self.fns[i].krate == ctx.krate)
            .or_else(|| v.first().copied())
    }

    fn resolve(&self, ctx: &FnItem, c: &Callee) -> Res {
        match c {
            Callee::SelfMethod(m) => {
                let Some(owner) = ctx.owner.as_deref() else {
                    return Res::Unknown;
                };
                match self.lookup_qname(ctx, owner, m) {
                    Some(i) => Res::Fn(i),
                    // Own-type method we can't see: trait default, derive,
                    // or a generic bound — suspicious enough to count.
                    None => Res::Unknown,
                }
            }
            Callee::FieldChain(chain, m) => {
                let Some(mut ty) = ctx.owner.as_deref() else {
                    return Res::Unknown;
                };
                for seg in &chain[1..] {
                    match self.fields.get(ty).and_then(|fs| fs.get(seg.as_str())) {
                        Some(next) => ty = next,
                        // Field of a type we didn't parse (std container,
                        // vendored dep) — external.
                        None => return Res::External,
                    }
                }
                match self.lookup_qname(ctx, ty, m) {
                    Some(i) => Res::Fn(i),
                    None => Res::Unknown,
                }
            }
            Callee::Qualified(t, m) => match self.lookup_qname(ctx, t, m) {
                Some(i) => Res::Fn(i),
                None => Res::External, // Instant::now, Arc::clone, …
            },
            Callee::Bare(name) => {
                let Some(v) = self.free_by_name.get(name.as_str()) else {
                    return Res::External; // std free fn (drop, min, …)
                };
                if let Some(&i) = v.iter().find(|&&i| self.fns[i].file == ctx.file) {
                    return Res::Fn(i);
                }
                let same_crate: Vec<usize> = v
                    .iter()
                    .copied()
                    .filter(|&i| self.fns[i].krate == ctx.krate)
                    .collect();
                match same_crate.as_slice() {
                    [i] => Res::Fn(*i),
                    [] if v.len() == 1 => Res::Fn(v[0]),
                    [] => Res::External,
                    _ => Res::Unknown, // ambiguous within the crate
                }
            }
            Callee::Method(m) => {
                if COMMON_METHODS.contains(&m.as_str()) {
                    return Res::External;
                }
                match self.methods_by_name.get(m.as_str()).map(Vec::as_slice) {
                    Some([i]) => Res::Fn(*i),
                    Some(_) => Res::Unknown, // ambiguous receiver
                    None => Res::External,
                }
            }
        }
    }
}

fn crate_of(file: &str) -> &str {
    file.strip_prefix("crates/")
        .and_then(|r| r.split('/').next())
        .unwrap_or("")
}

fn find_waiver(waivers: &[&Waiver], rule: &str, file: &str, line: usize) -> Option<usize> {
    waivers
        .iter()
        .position(|w| w.rule == rule && w.file == file && w.target_line == line)
}

fn build_path(parent: &HashMap<usize, usize>, fns: &[&FnItem], root: usize, i: usize) -> Vec<String> {
    let mut rev = vec![i];
    let mut cur = i;
    while cur != root {
        match parent.get(&cur) {
            Some(&p) => {
                cur = p;
                rev.push(cur);
            }
            None => break,
        }
    }
    rev.reverse();
    rev.into_iter().map(|k| fns[k].qname.clone()).collect()
}

/// Transitive lock set of fn `i`: every `(lock id, file, line)` acquired
/// in its body or any (resolvable) callee's. Memoized; recursion through
/// call cycles yields the partial set.
fn lock_set(
    i: usize,
    idx: &Index<'_>,
    memo: &mut HashMap<usize, BTreeSet<(String, String, usize)>>,
    stack: &mut HashSet<usize>,
) -> BTreeSet<(String, String, usize)> {
    if let Some(s) = memo.get(&i) {
        return s.clone();
    }
    if !stack.insert(i) {
        return BTreeSet::new();
    }
    let f = idx.fns[i];
    let mut s: BTreeSet<(String, String, usize)> = f
        .locks
        .iter()
        .map(|l| (l.id.clone(), f.file.clone(), l.line))
        .collect();
    for c in &f.calls {
        if let Res::Fn(j) = idx.resolve(f, &c.callee) {
            s.extend(lock_set(j, idx, memo, stack));
        }
    }
    stack.remove(&i);
    memo.insert(i, s.clone());
    s
}

/// Elementary-cycle detection via DFS back edges, canonicalized (rotated
/// so the lexicographically smallest id leads) and deduplicated.
fn find_cycles(adj: &BTreeMap<String, BTreeSet<String>>) -> Vec<Vec<String>> {
    fn dfs(
        u: &str,
        adj: &BTreeMap<String, BTreeSet<String>>,
        color: &mut HashMap<String, u8>,
        stack: &mut Vec<String>,
        out: &mut BTreeSet<Vec<String>>,
    ) {
        color.insert(u.to_string(), 1);
        stack.push(u.to_string());
        for v in adj.get(u).into_iter().flatten() {
            match color.get(v.as_str()).copied() {
                None => dfs(v, adj, color, stack, out),
                Some(1) => {
                    let pos = stack.iter().position(|x| x == v).unwrap_or(0);
                    let mut cyc: Vec<String> = stack[pos..].to_vec();
                    if let Some(min_i) = cyc
                        .iter()
                        .enumerate()
                        .min_by(|a, b| a.1.cmp(b.1))
                        .map(|(i, _)| i)
                    {
                        cyc.rotate_left(min_i);
                    }
                    out.insert(cyc);
                }
                _ => {}
            }
        }
        stack.pop();
        color.insert(u.to_string(), 2);
    }
    let mut color = HashMap::new();
    let mut stack = Vec::new();
    let mut out = BTreeSet::new();
    for u in adj.keys() {
        if !color.contains_key(u.as_str()) {
            dfs(u, adj, &mut color, &mut stack, &mut out);
        }
    }
    out.into_iter().collect()
}

pub fn run(files: &[(String, ParsedFile)]) -> Report {
    let idx = Index::build(files);
    let mut report = Report {
        files_scanned: files.len(),
        fns_indexed: idx.fns.len(),
        ..Default::default()
    };

    let waivers: Vec<&Waiver> = files.iter().flat_map(|(_, p)| &p.waivers).collect();
    let mut waiver_used = vec![false; waivers.len()];
    report.in_bounds_tags = files.iter().map(|(_, p)| p.in_bounds.len()).sum();

    let mut findings: Vec<Finding> = Vec::new();
    let mut seen: HashSet<(String, String, usize)> = HashSet::new();
    let mut push_finding =
        |findings: &mut Vec<Finding>, rule: &str, file: &str, line: usize, msg: String, path: Vec<String>| {
            if seen.insert((rule.to_string(), file.to_string(), line)) {
                findings.push(Finding {
                    rule: rule.to_string(),
                    file: file.to_string(),
                    line,
                    message: msg,
                    path,
                });
            }
        };

    // ---- rule family 1: hot-path purity ------------------------------
    let roots: Vec<usize> = (0..idx.fns.len())
        .filter(|&i| idx.fns[i].hot.is_some())
        .collect();
    let mut unresolved: HashSet<(usize, usize)> = HashSet::new();
    let mut boundaries: BTreeMap<String, (String, String)> = BTreeMap::new();
    for &r in &roots {
        let rootq = idx.fns[r].qname.clone();
        let strict = idx.fns[r].hot == Some(true);
        report.hot_roots.push(rootq.clone());
        let mut parent: HashMap<usize, usize> = HashMap::new();
        let mut visited: HashSet<usize> = HashSet::new();
        let mut q = VecDeque::new();
        visited.insert(r);
        q.push_back(r);
        let mut closure_fns = 0usize;
        let mut waived = 0usize;
        while let Some(i) = q.pop_front() {
            let f = idx.fns[i];
            if i != r && f.cold.is_some() {
                boundaries
                    .entry(f.qname.clone())
                    .or_insert_with(|| (f.cold.clone().unwrap_or_default(), rootq.clone()));
                continue;
            }
            closure_fns += 1;
            let path = build_path(&parent, &idx.fns, r, i);
            for fact in &f.facts {
                let rule = fact.kind.rule();
                if let Some(wi) = find_waiver(&waivers, rule, &f.file, fact.line) {
                    waiver_used[wi] = true;
                    waived += 1;
                    if strict {
                        push_finding(
                            &mut findings,
                            "strict-waiver",
                            &f.file,
                            fact.line,
                            format!(
                                "`{}` waiver inside the strict closure of `{rootq}` ({}); \
                                 strict roots must be clean without waivers",
                                rule, fact.what
                            ),
                            path.clone(),
                        );
                    }
                } else {
                    push_finding(
                        &mut findings,
                        rule,
                        &f.file,
                        fact.line,
                        format!("{} — reachable from hot `{rootq}`", fact.what),
                        path.clone(),
                    );
                }
            }
            for call in &f.calls {
                match idx.resolve(f, &call.callee) {
                    Res::Fn(j) => {
                        if visited.insert(j) {
                            parent.insert(j, i);
                            q.push_back(j);
                        }
                    }
                    Res::Unknown => {
                        unresolved.insert((i, call.pos));
                    }
                    Res::External => {}
                }
            }
        }
        report.closures.push(ClosureReport {
            root: rootq,
            strict,
            fns: closure_fns,
            waived,
        });
    }
    report.unresolved_calls = unresolved.len();
    for (qname, (reason, reached_from)) in boundaries {
        report.cold_boundaries.push(ColdBoundary {
            qname,
            reason,
            reached_from,
        });
    }

    // ---- rule family 2: lock-order graph (shm + core) ----------------
    let mut memo = HashMap::new();
    let mut adj: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    let mut prov: HashMap<(String, String), (String, usize)> = HashMap::new();
    for i in 0..idx.fns.len() {
        let f = idx.fns[i];
        if !matches!(f.krate.as_str(), "shm" | "core") {
            continue;
        }
        for l in &f.locks {
            if !l.held {
                continue;
            }
            let mut add_edge = |adj: &mut BTreeMap<String, BTreeSet<String>>,
                                to: &str,
                                file: &str,
                                line: usize| {
                adj.entry(l.id.clone()).or_default().insert(to.to_string());
                adj.entry(to.to_string()).or_default();
                prov.entry((l.id.clone(), to.to_string()))
                    .or_insert_with(|| (file.to_string(), line));
            };
            let limit = l.released_pos.unwrap_or(usize::MAX);
            for l2 in &f.locks {
                if l2.pos > l.pos && l2.pos < limit {
                    add_edge(&mut adj, &l2.id, &f.file, l2.line);
                }
            }
            for c in &f.calls {
                if c.pos <= l.pos || c.pos >= limit {
                    continue;
                }
                if let Res::Fn(j) = idx.resolve(f, &c.callee) {
                    let mut stack = HashSet::new();
                    for (lid, _, _) in lock_set(j, &idx, &mut memo, &mut stack) {
                        add_edge(&mut adj, &lid, &f.file, c.line);
                    }
                }
            }
        }
    }
    for cyc in find_cycles(&adj) {
        let next = cyc.get(1).unwrap_or(&cyc[0]);
        let (file, line) = prov
            .get(&(cyc[0].clone(), next.clone()))
            .cloned()
            .unwrap_or_else(|| (String::from("?"), 0));
        let mut display = cyc.clone();
        display.push(cyc[0].clone());
        if let Some(wi) = find_waiver(&waivers, "lock-order", &file, line) {
            waiver_used[wi] = true;
        } else {
            push_finding(
                &mut findings,
                "lock-order",
                &file,
                line,
                format!(
                    "lock-order cycle (potential compute-core/EPE deadlock): {}",
                    display.join(" -> ")
                ),
                cyc,
            );
        }
    }

    // ---- rule family 3: atomic pairing (shm + core + obs) ------------
    // per field: (Release/AcqRel store sites, Acquire/AcqRel load sites)
    type Sites<'a> = Vec<(&'a str, usize)>;
    let mut groups: BTreeMap<&str, (Sites, Sites)> = BTreeMap::new();
    for (file, pf) in files {
        if !matches!(crate_of(file), "shm" | "core" | "obs") {
            continue;
        }
        for op in &pf.atomics {
            let e = groups.entry(op.field.as_str()).or_default();
            if op.release_store {
                e.0.push((file.as_str(), op.line));
            }
            if op.acquire_load {
                e.1.push((file.as_str(), op.line));
            }
        }
    }
    for (field, (rel, acq)) in &groups {
        let (missing_side, sites) = if !rel.is_empty() && acq.is_empty() {
            ("no matching Acquire/AcqRel load", rel)
        } else if !acq.is_empty() && rel.is_empty() {
            ("no matching Release/AcqRel store", acq)
        } else {
            continue;
        };
        let (file, line) = sites[0];
        if let Some(wi) = find_waiver(&waivers, "atomic-pairing", file, line) {
            waiver_used[wi] = true;
        } else {
            push_finding(
                &mut findings,
                "atomic-pairing",
                file,
                line,
                format!(
                    "atomic field `{field}` has {} site(s) on one side but {missing_side} \
                     anywhere in scope",
                    sites.len()
                ),
                Vec::new(),
            );
        }
    }

    // ---- waiver accounting -------------------------------------------
    for (i, w) in waivers.iter().enumerate() {
        if !waiver_used[i] {
            push_finding(
                &mut findings,
                "unused-waiver",
                &w.file,
                w.target_line,
                format!(
                    "waiver for `{}` matched no finding — remove it, or its target line drifted",
                    w.rule
                ),
                Vec::new(),
            );
        }
        report.waivers.push(WaiverRecord {
            rule: w.rule.clone(),
            file: w.file.clone(),
            line: w.target_line,
            reason: w.reason.clone(),
            used: waiver_used[i],
        });
    }
    for (_, pf) in files {
        for b in &pf.bogus {
            push_finding(
                &mut findings,
                "bogus-waiver",
                &b.file,
                b.line,
                b.message.clone(),
                Vec::new(),
            );
        }
    }

    findings.sort_by(|a, b| {
        (&a.file, a.line, &a.rule).cmp(&(&b.file, b.line, &b.rule))
    });
    report.findings = findings;
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_file;

    fn analyze(sources: &[(&str, &str)]) -> Report {
        let parsed: Vec<(String, ParsedFile)> = sources
            .iter()
            .map(|(f, s)| (f.to_string(), parse_file(f, s)))
            .collect();
        run(&parsed)
    }

    fn rules(r: &Report) -> Vec<&str> {
        r.findings.iter().map(|f| f.rule.as_str()).collect()
    }

    #[test]
    fn alloc_two_hops_from_hot_root_fires_with_path() {
        let r = analyze(&[(
            "crates/core/src/a.rs",
            "struct C { h: Helper }\n\
             impl C {\n\
               // ANALYZE: hot\n\
               fn fast(&self) { self.step(); }\n\
               fn step(&self) { self.h.deep(); }\n\
             }\n\
             struct Helper {}\n\
             impl Helper {\n\
               fn deep(&self) { let v = Vec::with_capacity(8); }\n\
             }\n",
        )]);
        assert_eq!(rules(&r), vec!["hot-alloc"]);
        assert_eq!(
            r.findings[0].path,
            vec!["C::fast", "C::step", "Helper::deep"]
        );
    }

    #[test]
    fn cold_boundary_stops_propagation() {
        let r = analyze(&[(
            "crates/core/src/a.rs",
            "impl C {\n\
               // ANALYZE: hot\n\
               fn fast(&self) { self.err(); }\n\
               // ANALYZE: cold — error construction off the hot path\n\
               fn err(&self) { let s = format!(\"boom {}\", 1); }\n\
             }\n",
        )]);
        assert!(r.is_clean(), "{:?}", r.findings);
        assert_eq!(r.cold_boundaries.len(), 1);
        assert_eq!(r.cold_boundaries[0].qname, "C::err");
    }

    #[test]
    fn waiver_suppresses_and_is_counted_unused_waiver_fires() {
        let r = analyze(&[(
            "crates/core/src/a.rs",
            "impl C {\n\
               // ANALYZE: hot\n\
               fn fast(&self) {\n\
                 // ANALYZE: allow(hot-alloc) — one-time warmup, amortized\n\
                 let v = Vec::with_capacity(8);\n\
               }\n\
               fn idle(&self) {\n\
                 // ANALYZE: allow(hot-panic) — never reached\n\
                 let x = 1;\n\
               }\n\
             }\n",
        )]);
        assert_eq!(rules(&r), vec!["unused-waiver"]);
        let used: Vec<bool> = r.waivers.iter().map(|w| w.used).collect();
        assert_eq!(used, vec![true, false]);
        assert_eq!(r.closure("C::fast").unwrap().waived, 1);
    }

    #[test]
    fn strict_root_rejects_waivers_in_closure() {
        let r = analyze(&[(
            "crates/core/src/a.rs",
            "impl C {\n\
               // ANALYZE: hot(strict)\n\
               fn write(&self) { self.inner(); }\n\
               fn inner(&self) {\n\
                 // ANALYZE: allow(hot-panic) — justified elsewhere\n\
                 let x = o.unwrap();\n\
               }\n\
             }\n",
        )]);
        assert_eq!(rules(&r), vec!["strict-waiver"]);
        assert!(r.closure("C::write").unwrap().strict);
        assert_eq!(r.closure("C::write").unwrap().waived, 1);
    }

    #[test]
    fn lock_order_cycle_detected() {
        let r = analyze(&[(
            "crates/shm/src/a.rs",
            "impl A {\n\
               fn ab(&self) {\n\
                 let g = self.m1.lock();\n\
                 let h = self.m2.lock();\n\
               }\n\
               fn ba(&self) {\n\
                 let g = self.m2.lock();\n\
                 self.take_m1();\n\
               }\n\
               fn take_m1(&self) {\n\
                 let g = self.m1.lock();\n\
               }\n\
             }\n",
        )]);
        assert_eq!(rules(&r), vec!["lock-order"]);
        assert!(r.findings[0].message.contains("A.m1 -> A.m2 -> A.m1"));
    }

    #[test]
    fn explicit_guard_drop_ends_the_hold() {
        // revoke/sweep idiom: lock, collect, drop the guard, then call a
        // helper that re-locks — not a self-deadlock.
        let r = analyze(&[(
            "crates/shm/src/a.rs",
            "impl A {\n\
               fn sweep(&self) {\n\
                 let mut state = self.state.lock();\n\
                 drop(state);\n\
                 self.release_one();\n\
               }\n\
               fn release_one(&self) {\n\
                 let g = self.state.lock();\n\
               }\n\
             }\n",
        )]);
        assert!(r.is_clean(), "{:?}", r.findings);
    }

    #[test]
    fn relock_without_drop_is_a_self_cycle() {
        let r = analyze(&[(
            "crates/shm/src/a.rs",
            "impl A {\n\
               fn oops(&self) {\n\
                 let g = self.state.lock();\n\
                 let h = self.state.lock();\n\
               }\n\
             }\n",
        )]);
        assert_eq!(rules(&r), vec!["lock-order"]);
    }

    #[test]
    fn nested_distinct_order_is_fine() {
        let r = analyze(&[(
            "crates/shm/src/a.rs",
            "impl A {\n\
               fn ab(&self) {\n\
                 let g = self.m1.lock();\n\
                 let h = self.m2.lock();\n\
               }\n\
               fn also_ab(&self) {\n\
                 let g = self.m1.lock();\n\
                 let h = self.m2.lock();\n\
               }\n\
             }\n",
        )]);
        assert!(r.is_clean(), "{:?}", r.findings);
    }

    #[test]
    fn unpaired_release_store_fires() {
        let r = analyze(&[(
            "crates/shm/src/a.rs",
            "impl A {\n\
               fn pub_only(&self) { self.seq.store(1, Ordering::Release); }\n\
               fn counter(&self) { self.hits.fetch_add(1, Ordering::Relaxed); }\n\
             }\n",
        )]);
        assert_eq!(rules(&r), vec!["atomic-pairing"]);
        assert!(r.findings[0].message.contains("`seq`"));
    }

    #[test]
    fn paired_release_acquire_is_clean_across_files() {
        let r = analyze(&[
            (
                "crates/shm/src/w.rs",
                "impl W { fn p(&self) { self.seq.store(1, Ordering::Release); } }\n",
            ),
            (
                "crates/core/src/r.rs",
                "impl R { fn c(&self) { let s = self.seq.load(Ordering::Acquire); } }\n",
            ),
        ]);
        assert!(r.is_clean(), "{:?}", r.findings);
    }

    #[test]
    fn bogus_waiver_reported() {
        let r = analyze(&[(
            "crates/core/src/a.rs",
            "// ANALYZE: allow(made-up-rule) — whatever\nfn f() {}\n",
        )]);
        assert_eq!(rules(&r), vec!["bogus-waiver"]);
    }

    #[test]
    fn qualified_and_bare_calls_resolve() {
        let r = analyze(&[(
            "crates/core/src/a.rs",
            "// ANALYZE: hot\n\
             fn root() { helper(); Codec::emit(); }\n\
             fn helper() { let b = Box::new(1); }\n\
             struct Codec {}\n\
             impl Codec {\n\
               fn emit() { let s = x.to_owned(); }\n\
             }\n",
        )]);
        assert_eq!(rules(&r), vec!["hot-alloc", "hot-alloc"]);
    }

    #[test]
    fn atomic_pairing_ignores_out_of_scope_crates() {
        let r = analyze(&[(
            "crates/sim/src/a.rs",
            "impl A { fn p(&self) { self.seq.store(1, Ordering::Release); } }\n",
        )]);
        assert!(r.is_clean(), "{:?}", r.findings);
    }
}
