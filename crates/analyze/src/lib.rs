//! damaris-analyze: dependency-free offline static analysis for the
//! hot-path discipline the paper's jitter-free claim rests on.
//!
//! Driven by `cargo run -p xtask -- analyze`. The pipeline:
//!
//! ```text
//! split_lines/tokenize (lexer)  →  parse_file (parser)  →  run (analysis)
//! ```
//!
//! See DESIGN.md §11 for rule semantics, the annotation grammar, the
//! waiver policy, and the documented false-negative limits of the
//! call-graph approximation.

pub mod analysis;
pub mod lexer;
pub mod parser;

use std::path::Path;

pub use analysis::{ClosureReport, ColdBoundary, Finding, Report, WaiverRecord};

/// Analyzes in-memory `(path, source)` pairs. Paths should be
/// repo-relative (`crates/<name>/src/...`) — crate scoping for the
/// lock-order and atomic-pairing rules is derived from them.
pub fn analyze_sources(sources: &[(String, String)]) -> Report {
    let parsed: Vec<(String, parser::ParsedFile)> = sources
        .iter()
        .map(|(f, s)| (f.clone(), parser::parse_file(f, s)))
        .collect();
    analysis::run(&parsed)
}

/// Crates outside the production I/O path, excluded from the repo scan:
/// `check` *implements* the model-checked sync substrate (its scheduler
/// allocates, locks, and panics by design and is swapped in only under
/// `--features check`); `xtask` and `analyze` are dev tooling.
const NON_PRODUCTION_CRATES: &[&str] = &["check", "xtask", "analyze"];

/// Scans `crates/*/src/**/*.rs` under the workspace root and analyzes it.
/// Fixture/test/bench trees are deliberately out of scope: the analyzer
/// audits shipped code, and its own seeded-violation corpus must not
/// pollute the repo report.
pub fn analyze_root(root: &Path) -> std::io::Result<Report> {
    let mut sources = Vec::new();
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<_> = std::fs::read_dir(&crates_dir)?
        .flatten()
        .map(|e| e.path())
        .filter(|p| {
            p.is_dir()
                && !p
                    .file_name()
                    .is_some_and(|n| NON_PRODUCTION_CRATES.iter().any(|c| n == *c))
        })
        .collect();
    crate_dirs.sort();
    for dir in crate_dirs {
        let src = dir.join("src");
        if src.is_dir() {
            collect_rs(&src, root, &mut sources)?;
        }
    }
    sources.sort();
    Ok(analyze_sources(&sources))
}

fn collect_rs(dir: &Path, root: &Path, out: &mut Vec<(String, String)>) -> std::io::Result<()> {
    let mut entries: Vec<_> = std::fs::read_dir(dir)?.flatten().map(|e| e.path()).collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_rs(&path, root, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            out.push((rel, std::fs::read_to_string(&path)?));
        }
    }
    Ok(())
}

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn json_str_list(items: &[String]) -> String {
    let inner: Vec<String> = items.iter().map(|s| format!("\"{}\"", esc(s))).collect();
    format!("[{}]", inner.join(","))
}

impl Report {
    /// Machine-readable report (schema `damaris-analyze/v1`), uploaded by
    /// the CI `static-analysis` job. Hand-rolled: this crate takes no
    /// dependencies so it can never be confused with the code it audits.
    pub fn to_json(&self) -> String {
        let findings: Vec<String> = self
            .findings
            .iter()
            .map(|f| {
                format!(
                    "{{\"rule\":\"{}\",\"file\":\"{}\",\"line\":{},\"message\":\"{}\",\"path\":{}}}",
                    esc(&f.rule),
                    esc(&f.file),
                    f.line,
                    esc(&f.message),
                    json_str_list(&f.path)
                )
            })
            .collect();
        let waivers: Vec<String> = self
            .waivers
            .iter()
            .map(|w| {
                format!(
                    "{{\"rule\":\"{}\",\"file\":\"{}\",\"line\":{},\"reason\":\"{}\",\"used\":{}}}",
                    esc(&w.rule),
                    esc(&w.file),
                    w.line,
                    esc(&w.reason),
                    w.used
                )
            })
            .collect();
        let closures: Vec<String> = self
            .closures
            .iter()
            .map(|c| {
                format!(
                    "{{\"root\":\"{}\",\"strict\":{},\"fns\":{},\"waived\":{}}}",
                    esc(&c.root),
                    c.strict,
                    c.fns,
                    c.waived
                )
            })
            .collect();
        let boundaries: Vec<String> = self
            .cold_boundaries
            .iter()
            .map(|b| {
                format!(
                    "{{\"fn\":\"{}\",\"reason\":\"{}\",\"reached_from\":\"{}\"}}",
                    esc(&b.qname),
                    esc(&b.reason),
                    esc(&b.reached_from)
                )
            })
            .collect();
        format!(
            "{{\n  \"schema\": \"damaris-analyze/v1\",\n  \"files_scanned\": {},\n  \
             \"fns_indexed\": {},\n  \"unresolved_calls\": {},\n  \"in_bounds_tags\": {},\n  \
             \"hot_roots\": {},\n  \"closures\": [{}],\n  \"cold_boundaries\": [{}],\n  \
             \"waivers\": [{}],\n  \"findings\": [{}]\n}}\n",
            self.files_scanned,
            self.fns_indexed,
            self.unresolved_calls,
            self.in_bounds_tags,
            json_str_list(&self.hot_roots),
            closures.join(","),
            boundaries.join(","),
            waivers.join(","),
            findings.join(",")
        )
    }

    /// Human-readable lines in the `file:line: [rule] message` shape the
    /// xtask lint already prints, plus the hot call path when known.
    pub fn render_findings(&self) -> Vec<String> {
        self.findings
            .iter()
            .map(|f| {
                let via = if f.path.len() > 1 {
                    format!("  (via {})", f.path.join(" -> "))
                } else {
                    String::new()
                };
                format!("{}:{}: [{}] {}{via}", f.file, f.line, f.rule, f.message)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_report_is_well_formed_enough() {
        let r = analyze_sources(&[(
            "crates/core/src/a.rs".to_string(),
            "// ANALYZE: hot\nfn f() { let b = Box::new(1); }\n".to_string(),
        )]);
        let j = r.to_json();
        assert!(j.contains("\"schema\": \"damaris-analyze/v1\""));
        assert!(j.contains("\"rule\":\"hot-alloc\""));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
    }

    #[test]
    fn render_includes_path() {
        let r = analyze_sources(&[(
            "crates/core/src/a.rs".to_string(),
            "// ANALYZE: hot\nfn f() { g(); }\nfn g() { let b = Box::new(1); }\n".to_string(),
        )]);
        let lines = r.render_findings();
        assert_eq!(lines.len(), 1);
        assert!(lines[0].contains("[hot-alloc]"));
        assert!(lines[0].contains("(via f -> g)"));
    }
}
