//! Seeded violation: a hot root whose heap allocation hides two call
//! hops away. The analyzer must carry the Alloc fact back up the call
//! graph and report it against the root with the full path.

// ANALYZE: hot
pub fn hot_root(n: usize) -> usize {
    first_hop(n)
}

fn first_hop(n: usize) -> usize {
    second_hop(n)
}

fn second_hop(n: usize) -> usize {
    let b = Box::new(n);
    *b + 1
}
