//! Seeded violation: two mutexes taken in opposite orders by two
//! functions of the same struct — the classic AB/BA deadlock shape the
//! lock-order rule exists to catch.

pub struct TwoLocks {
    a: Mutex<u32>,
    b: Mutex<u32>,
}

impl TwoLocks {
    pub fn a_then_b(&self) -> u32 {
        let ga = self.a.lock();
        let gb = self.b.lock();
        *ga + *gb
    }

    pub fn b_then_a(&self) -> u32 {
        let gb = self.b.lock();
        let ga = self.a.lock();
        *gb - *ga
    }
}
