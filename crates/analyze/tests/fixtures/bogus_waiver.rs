//! Seeded violation: waivers the accounting rules must reject — one
//! naming a rule the analyzer does not know, one missing its
//! justification, and one justified but suppressing nothing.

// ANALYZE: hot
pub fn hot_root() {
    // ANALYZE: allow(made-up-rule) — this rule name does not exist
    helper();
}

fn helper() {
    // ANALYZE: allow(hot-alloc)
    let x = 1 + 1;
    // ANALYZE: allow(hot-alloc) — suppresses nothing on this line
    let _ = x;
}
