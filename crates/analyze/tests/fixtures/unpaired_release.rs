//! Seeded violation: a field published with a Release store that no
//! reader ever loads with Acquire — the write-side half of a broken
//! message-passing pattern (readers using Relaxed would see the flag
//! without the payload it guards).

pub struct Flag {
    ready: AtomicU64,
}

impl Flag {
    pub fn publish(&self) {
        self.ready.store(1, Ordering::Release);
    }

    pub fn check(&self) -> bool {
        self.ready.load(Ordering::Relaxed) == 1
    }
}
