//! The seeded-violation corpus (`tests/fixtures/`) and the repo-level
//! accounting pins.
//!
//! Each fixture file contains exactly one class of violation and is fed
//! to the analyzer under a synthetic in-scope path; if a rule ever stops
//! firing on its fixture, the rule is broken, not the code. The repo
//! pins then freeze the *actual* waiver population: adding a waiver to
//! shipped code means updating the count here, in review.

use damaris_analyze::analyze_sources;
use std::path::Path;

fn fixture(path: &str, file: &str) -> damaris_analyze::Report {
    let src = match file {
        "hidden_alloc" => include_str!("fixtures/hidden_alloc.rs"),
        "lock_cycle" => include_str!("fixtures/lock_cycle.rs"),
        "unpaired_release" => include_str!("fixtures/unpaired_release.rs"),
        "bogus_waiver" => include_str!("fixtures/bogus_waiver.rs"),
        other => panic!("unknown fixture {other}"),
    };
    analyze_sources(&[(path.to_string(), src.to_string())])
}

#[test]
fn hidden_alloc_two_hops_fires_with_full_path() {
    let r = fixture("crates/core/src/fixture_hidden_alloc.rs", "hidden_alloc");
    let f: Vec<_> = r.findings.iter().filter(|f| f.rule == "hot-alloc").collect();
    assert_eq!(f.len(), 1, "findings: {:?}", r.findings);
    assert_eq!(f[0].path, vec!["hot_root", "first_hop", "second_hop"]);
}

#[test]
fn lock_order_cycle_fires() {
    let r = fixture("crates/shm/src/fixture_lock_cycle.rs", "lock_cycle");
    assert!(
        r.findings.iter().any(|f| f.rule == "lock-order"),
        "findings: {:?}",
        r.findings
    );
}

#[test]
fn unpaired_release_store_fires() {
    let r = fixture(
        "crates/shm/src/fixture_unpaired_release.rs",
        "unpaired_release",
    );
    let f: Vec<_> = r
        .findings
        .iter()
        .filter(|f| f.rule == "atomic-pairing")
        .collect();
    assert_eq!(f.len(), 1, "findings: {:?}", r.findings);
    assert!(f[0].message.contains("ready"));
}

#[test]
fn bogus_and_unused_waivers_fire() {
    let r = fixture("crates/core/src/fixture_bogus_waiver.rs", "bogus_waiver");
    let bogus = r.findings.iter().filter(|f| f.rule == "bogus-waiver").count();
    let unused = r.findings.iter().filter(|f| f.rule == "unused-waiver").count();
    assert_eq!(
        (bogus, unused),
        (2, 1),
        "findings: {:?}",
        r.findings
    );
}

fn repo_report() -> damaris_analyze::Report {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root")
        .to_path_buf();
    damaris_analyze::analyze_root(&root).expect("scan repo")
}

/// The repo-wide waiver population, pinned exactly. A new waiver in
/// shipped code must bump this number in the same change — that is the
/// review speed bump the waiver policy (DESIGN.md §11) wants.
#[test]
fn repo_waiver_count_is_pinned() {
    let r = repo_report();
    assert_eq!(
        r.waivers.len(),
        0,
        "waiver population changed; update this pin only with a justified waiver: {:?}",
        r.waivers
    );
    assert!(r.is_clean(), "repo has findings: {:?}", r.findings);
}

/// The paper's claim lives or dies on `write()`: its transitive closure
/// must be strict (no waivers tolerated) and waiver-free.
#[test]
fn client_write_closure_is_strict_and_waiver_free() {
    let r = repo_report();
    let c = r
        .closure("DamarisClient::write")
        .expect("DamarisClient::write is a hot root");
    assert!(c.strict, "write must be annotated hot(strict)");
    assert_eq!(c.waived, 0, "no waivers tolerated in the write closure");
    assert!(
        c.fns > 10,
        "closure suspiciously small ({} fns) — call resolution regressed?",
        c.fns
    );
}
