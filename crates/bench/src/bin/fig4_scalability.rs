//! Figure 4 — (a) scalability factor `S = N·C576/T_N` and (b) overall run
//! time of CM1 for 50 iterations plus one write phase, on Kraken.
//!
//! Paper reference points at 9216 cores: Damaris scales almost perfectly
//! (S ≈ N); file-per-process loses ~35 % of run time to I/O; collective
//! I/O runs ~3.5× longer than Damaris.

use damaris_bench::*;
use damaris_sim::experiment::{baseline_compute_time, run_simulation, scalability_of_run};
use serde_json::json;

fn main() {
    let (platform, workload) = kraken_setup();
    let iterations = 50;
    let baseline = baseline_compute_time(&platform, &workload, 576, iterations, SEED);
    println!("Baseline C576 (50 iterations, no I/O): {}", fmt_s(baseline));

    let mut rows = Vec::new();
    let mut records = Vec::new();
    for strategy in standard_strategies() {
        for &ncores in &KRAKEN_SCALES {
            let run = run_simulation(
                &platform,
                &workload,
                strategy.clone(),
                ncores,
                iterations,
                SEED,
            );
            let s = scalability_of_run(&run, baseline);
            rows.push(vec![
                run.strategy.clone(),
                ncores.to_string(),
                fmt_s(run.total_time),
                fmt_s(run.io_time),
                format!("{:.0}", s),
                format!("{:.0}%", 100.0 * s / ncores as f64),
            ]);
            records.push(json!({
                "strategy": run.strategy,
                "ncores": ncores,
                "total_time_s": run.total_time,
                "io_time_s": run.io_time,
                "scalability_factor": s,
            }));
        }
    }
    print_table(
        "Fig. 4 — run time (50 iterations + 1 write phase) and scalability factor on Kraken",
        &["strategy", "cores", "run time", "io time", "S", "S/N"],
        &rows,
    );

    // Headline ratios at 9216 cores.
    let r = |label: &str| {
        records
            .iter()
            .find(|r| r["strategy"] == label && r["ncores"] == 9216)
            .map(|r| r["total_time_s"].as_f64().expect("f64"))
            .expect("present")
    };
    let (fpp, cio, dam) = (r("file-per-process"), r("collective-io"), r("damaris"));
    println!(
        "\nAt 9216 cores: Damaris cuts run time by {:.0}% vs file-per-process (paper: 35%),",
        100.0 * (1.0 - dam / fpp)
    );
    println!(
        "and runs {:.1}× faster than collective-I/O (paper: 3.5×).",
        cio / dam
    );
    save_json(
        "fig4_scalability",
        &json!({ "baseline_c576_s": baseline, "rows": records }),
    );
}
