//! Observability overhead smoke test: the always-on trace ring must cost
//! the client write path less than 5 % of mean write-call time.
//!
//! Runs the same 4-client single-node write workload with tracing enabled
//! and disabled (`<observability enabled="false"/>` — the runtime branch,
//! which is what production toggles; the `noop` cargo feature compiles
//! the recorder away entirely and can only be cheaper).
//!
//! Measurement design, tuned so the verdict reflects the hot path and not
//! the host's scheduler (CI runners can be single-core):
//!
//! * The queue and buffer are sized so a client **never blocks on the
//!   dedicated core** — otherwise "write time" silently measures server
//!   throughput, not the client path the budget is about.
//! * Every call is sampled individually and each round is summarized by
//!   its **median** call time: a timed call that absorbs a scheduler
//!   preemption (milliseconds on a busy core) would dominate a
//!   microsecond-scale mean, while the median tracks the typical call —
//!   which the always-on instrumentation shifts wholesale, so the cost
//!   under test is fully visible in it.
//! * Rounds are interleaved off/on and the *minimum* round median across
//!   rounds is compared: contention only ever inflates a round, never
//!   deflates it below the true cost, so the per-configuration minimum
//!   estimates the uncontended write path (the `timeit` rationale) and a
//!   background hiccup in one round does not decide the verdict.
//! * A measurement over budget is retried once from scratch before the
//!   gate fails: the per-attempt false-positive tail (a contended run
//!   inflating every "on" round together) squares away, while a real
//!   regression fails both attempts.
//!
//! Prints the comparison always; exits nonzero on a >5 % regression only
//! when `OBS_GATE=1` is set (the CI `obs` job sets it), so local figure
//! regeneration never fails on a loaded laptop.

use damaris_core::{Config, NodeRuntime};
use std::path::{Path, PathBuf};
use std::sync::Mutex;
use std::time::Instant;

const CLIENTS: usize = 4;
const ITERATIONS: u32 = 60;
const WRITES_PER_ITER: u32 = 4;
const ROUNDS: usize = 9;
const BUDGET: f64 = 0.05;

fn scratch(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("damaris-obs-overhead-{tag}-{}", std::process::id()))
}

/// One full workload; returns every client write-call time in ns.
fn run_once(enabled: bool, dir: &Path) -> Vec<u64> {
    // Sized so clients never wait on the server: the queue holds every
    // event of the run (4 clients x 60 x (4 writes + 1 end) = 1200) and
    // each client's buffer region (128 MiB / 4) holds every payload it
    // writes (60 x 4 x 64 KiB = 15 MiB), even if the server never drains.
    let cfg = Config::from_xml(&format!(
        r#"<damaris>
             <buffer size="134217728" allocator="partition" queue="2048"/>
             <observability enabled="{enabled}" ring_capacity="8192"/>
             <layout name="block" type="double" dimensions="8192"/>
             <variable name="field" layout="block"/>
           </damaris>"#
    ))
    .expect("valid config");
    let runtime = NodeRuntime::start(cfg, CLIENTS, dir).expect("start node");
    let clients = runtime.clients();
    let data = vec![1.0f64; 8192]; // 64 KiB per write: memcpy-dominated
    let samples = Mutex::new(Vec::new());
    std::thread::scope(|s| {
        for client in clients {
            let samples = &samples;
            let data = &data;
            s.spawn(move || {
                let mut local = Vec::with_capacity((ITERATIONS * WRITES_PER_ITER) as usize);
                for it in 0..ITERATIONS {
                    for _ in 0..WRITES_PER_ITER {
                        let t = Instant::now();
                        client.write_f64("field", it, data).expect("write");
                        local.push(t.elapsed().as_nanos() as u64);
                    }
                    client.end_iteration(it).expect("end iteration");
                }
                samples.lock().expect("samples lock").append(&mut local);
            });
        }
    });
    runtime.finish().expect("clean shutdown");
    std::fs::remove_dir_all(dir).ok();
    samples.into_inner().expect("samples lock")
}

/// Median call time of one round — immune to the scheduler-preemption
/// tail that would dominate a microsecond-scale mean.
fn round_median(samples: &mut [u64]) -> f64 {
    samples.sort_unstable();
    samples[samples.len() / 2] as f64
}

fn min(samples: &[f64]) -> f64 {
    samples.iter().copied().fold(f64::INFINITY, f64::min)
}

/// One full measurement: interleaved rounds, min of round medians.
fn measure(attempt: usize) -> f64 {
    let mut off = Vec::with_capacity(ROUNDS);
    let mut on = Vec::with_capacity(ROUNDS);
    for round in 0..ROUNDS {
        off.push(round_median(&mut run_once(
            false,
            &scratch(&format!("off-{attempt}-{round}")),
        )));
        on.push(round_median(&mut run_once(
            true,
            &scratch(&format!("on-{attempt}-{round}")),
        )));
    }
    let m_off = min(&off);
    let m_on = min(&on);
    let overhead = (m_on - m_off) / m_off;
    println!(
        "obs overhead: median write call {:.0} ns disabled vs {:.0} ns enabled ({:+.2}% \
         — best of {ROUNDS} interleaved rounds, {CLIENTS} clients x {ITERATIONS} \
         iterations x {WRITES_PER_ITER} writes, per-round median)",
        m_off,
        m_on,
        overhead * 100.0
    );
    overhead
}

fn main() {
    // Warmup pair: page in the binary, the allocator, and the temp dir.
    run_once(false, &scratch("warm-off"));
    run_once(true, &scratch("warm-on"));

    let mut overhead = measure(0);
    if overhead > BUDGET {
        eprintln!(
            "note: {:.2}% exceeds the {:.0}% budget; re-measuring once to rule out \
             a contended run",
            overhead * 100.0,
            BUDGET * 100.0
        );
        overhead = overhead.min(measure(1));
    }
    if overhead > BUDGET {
        let gate = std::env::var("OBS_GATE").is_ok_and(|v| v == "1");
        if gate {
            eprintln!(
                "FAIL: tracing overhead {:.2}% exceeds the {:.0}% budget",
                overhead * 100.0,
                BUDGET * 100.0
            );
            std::process::exit(1);
        }
        eprintln!(
            "note: overhead {:.2}% exceeds {:.0}% but OBS_GATE is unset; not failing",
            overhead * 100.0,
            BUDGET * 100.0
        );
    }
}
