//! Figure 2 — duration of a write phase on Kraken (average and maximum)
//! for file-per-process, collective-I/O and Damaris, 576 → 9216 cores.
//!
//! Paper reference points: collective I/O reaches ~481 s average / ~800 s
//! max at 9216 cores (~70 % of run time); FPP shows ±17 s spread; Damaris
//! is a flat ~0.2 s with ~0.1 s variability. A misconfigured 32 MB Lustre
//! stripe size doubles the collective time (~1600 s).

use damaris_bench::*;
use damaris_sim::Strategy;
use serde_json::json;

fn main() {
    let (platform, workload) = kraken_setup();
    let mut rows = Vec::new();
    let mut records = Vec::new();

    for strategy in standard_strategies() {
        for &ncores in &KRAKEN_SCALES {
            let s = summarize_phases(&platform, &workload, &strategy, ncores, SEED);
            rows.push(vec![
                s.strategy.clone(),
                ncores.to_string(),
                fmt_s(s.avg_s),
                fmt_s(s.max_s),
                fmt_s(s.min_s),
                fmt_s(s.max_s - s.min_s),
            ]);
            records.push(s.to_json());
        }
    }
    print_table(
        "Fig. 2 — write-phase duration on Kraken (simulation's view)",
        &["strategy", "cores", "avg", "max", "min", "spread"],
        &rows,
    );

    // The 32 MB stripe-size misconfiguration (§IV-C1).
    let mut bad = platform.clone();
    bad.fs = bad.fs.with_stripe_size(32 << 20);
    let s_good = summarize_phases(&platform, &workload, &Strategy::CollectiveIo, 9216, SEED);
    let s_bad = summarize_phases(&bad, &workload, &Strategy::CollectiveIo, 9216, SEED);
    println!(
        "\nLustre stripe misconfiguration at 9216 cores: collective-I/O avg {} (1 MB stripes) → {} (32 MB stripes), ×{:.1}",
        fmt_s(s_good.avg_s),
        fmt_s(s_bad.avg_s),
        s_bad.avg_s / s_good.avg_s
    );
    println!(
        "Paper: ~481 s avg / 800 s max at 1 MB; ~1600 s at 32 MB; Damaris flat 0.2 s ± 0.1 s."
    );

    save_json(
        "fig2_jitter",
        &json!({
            "rows": records,
            "stripe_32mb_avg_s": s_bad.avg_s,
            "stripe_1mb_avg_s": s_good.avg_s,
        }),
    );
}
