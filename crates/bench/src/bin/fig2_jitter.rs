//! Figure 2 — duration of a write phase on Kraken (average and maximum)
//! for file-per-process, collective-I/O and Damaris, 576 → 9216 cores.
//!
//! Paper reference points: collective I/O reaches ~481 s average / ~800 s
//! max at 9216 cores (~70 % of run time); FPP shows ±17 s spread; Damaris
//! is a flat ~0.2 s with ~0.1 s variability. A misconfigured 32 MB Lustre
//! stripe size doubles the collective time (~1600 s).
//!
//! The per-phase samples are round-tripped through the binary trace
//! format (`target/figures/fig2_jitter.dtrc`), and the table below is
//! printed from the *decoded* file — so `trace-analyze` on that file
//! reproduces these numbers byte-for-byte.

use damaris_bench::*;
use damaris_obs::{read_trace, summarize_phase_samples, EventKind, TraceRecord, TraceWriter};
use damaris_sim::Strategy;
use serde_json::json;

/// One write-phase duration as a `PhaseSample` interchange record:
/// `rank` carries the strategy index, `bytes` the core count,
/// `iteration` the phase. The duration is quantized to integer
/// nanoseconds exactly once, here — every downstream consumer sees the
/// same u64.
fn phase_sample(rank: u32, iteration: u32, bytes: u64, t_ns: u64, dur_s: f64) -> TraceRecord {
    TraceRecord {
        t_ns,
        dur_ns: (dur_s * 1e9).round() as u64,
        bytes,
        rank,
        iteration,
        kind: EventKind::PhaseSample as u16,
        flags: 0,
        pad: 0,
    }
}

fn main() {
    let (platform, workload) = kraken_setup();
    let strategies = standard_strategies();
    let mut records = Vec::new();
    let mut samples: Vec<TraceRecord> = Vec::new();

    for (si, strategy) in strategies.iter().enumerate() {
        for &ncores in &KRAKEN_SCALES {
            let s = summarize_phases(&platform, &workload, strategy, ncores, SEED);
            records.push(s.to_json());
            for (phase, &d) in phase_durations(&platform, &workload, strategy, ncores, SEED)
                .iter()
                .enumerate()
            {
                // Deterministic timeline position: the emission index.
                let t = samples.len() as u64;
                samples.push(phase_sample(si as u32, phase as u32, ncores as u64, t, d));
            }
        }
    }

    let trace_path = figures_dir().join("fig2_jitter.dtrc");
    {
        let file = std::fs::File::create(&trace_path).expect("create trace file");
        let mut w = TraceWriter::new(file).expect("trace header");
        w.write_block(&samples).expect("trace block");
        w.finish().expect("trace trailer");
    }
    let decoded = read_trace(std::fs::File::open(&trace_path).expect("open trace"))
        .expect("decode trace");
    assert!(decoded.clean_close, "trace trailer missing");
    let from_file = summarize_phase_samples(&decoded.records);
    assert_eq!(
        from_file,
        summarize_phase_samples(&samples),
        "decoded trace must reproduce the in-memory summary exactly"
    );

    let rows: Vec<Vec<String>> = from_file
        .iter()
        .map(|g| {
            vec![
                strategies[g.rank as usize].label().to_string(),
                g.bytes.to_string(),
                fmt_s(g.mean_s()),
                fmt_s(g.max_ns as f64 / 1e9),
                fmt_s(g.min_ns as f64 / 1e9),
                fmt_s((g.max_ns - g.min_ns) as f64 / 1e9),
            ]
        })
        .collect();
    print_table(
        "Fig. 2 — write-phase duration on Kraken (from the decoded trace)",
        &["strategy", "cores", "avg", "max", "min", "spread"],
        &rows,
    );
    println!(
        "\ntrace: {} ({} phase samples; `trace-analyze` groups them identically)",
        trace_path.display(),
        decoded.records.len()
    );

    // The 32 MB stripe-size misconfiguration (§IV-C1).
    let mut bad = platform.clone();
    bad.fs = bad.fs.with_stripe_size(32 << 20);
    let s_good = summarize_phases(&platform, &workload, &Strategy::CollectiveIo, 9216, SEED);
    let s_bad = summarize_phases(&bad, &workload, &Strategy::CollectiveIo, 9216, SEED);
    println!(
        "\nLustre stripe misconfiguration at 9216 cores: collective-I/O avg {} (1 MB stripes) → {} (32 MB stripes), ×{:.1}",
        fmt_s(s_good.avg_s),
        fmt_s(s_bad.avg_s),
        s_bad.avg_s / s_good.avg_s
    );
    println!(
        "Paper: ~481 s avg / 800 s max at 1 MB; ~1600 s at 32 MB; Damaris flat 0.2 s ± 0.1 s."
    );

    save_json(
        "fig2_jitter",
        &json!({
            "rows": records,
            "stripe_32mb_avg_s": s_bad.avg_s,
            "stripe_1mb_avg_s": s_good.avg_s,
        }),
    );
}
