//! Hot-path microbenchmark companion to `cargo run -p xtask -- analyze`:
//! the analyzer proves the write path *cannot* allocate, lock, or panic;
//! this binary measures what that discipline buys, and pins the numbers
//! where a reviewer can see them.
//!
//! Writes `BENCH_10.json` at the repository root with schema
//! `damaris-bench/v4`:
//!
//! ```json
//! {
//!   "schema": "damaris-bench/v4",
//!   "write_latency_ns": { "p50": ..., "p99": ..., "samples": ... },
//!   "allocator": { "ops_per_sec": ..., "bytes_per_sec": ... },
//!   "queue": { "ops_per_sec": ... },
//!   "backing": {
//!     "heap": { "ops_per_sec": ..., "bytes_per_sec": ... },
//!     "file": { "ops_per_sec": ..., "bytes_per_sec": ... }
//!   },
//!   "query": {
//!     "qps": ..., "p99_latency_ns": ..., "cache_hit_rate": ...,
//!     "pruned_fraction": ..., "readers": ..., "queries": ...
//!   },
//!   "degraded": {
//!     "normal_iters_per_sec": ..., "degraded_iters_per_sec": ...,
//!     "throughput_ratio": ..., "iterations": ..., "quota_used_pct": 95
//!   },
//!   "config": { "clients": ..., "payload_bytes": ..., "iterations": ... }
//! }
//! ```
//!
//! * `write_latency_ns` — per-call `DamarisClient::write` latency over a
//!   partition-allocator, tracing-on, never-backpressured workload (the
//!   same sizing rationale as `obs_overhead`): p50 is the typical
//!   jitter-free call, p99 the tail the paper's Fig. 2 cares about.
//! * `allocator` — `PartitionAllocator` allocate+release round-trips per
//!   second from one client (ops and bytes).
//! * `queue` — `MpscQueue` push+pop pairs per second, single producer
//!   (the per-rank MPSC configuration of the event queue).
//! * `backing` — the same ring reserve→memcpy→release round-trip over
//!   the two buffer placements: a heap `SharedBuffer` (the threaded
//!   node) and a file-backed mapping under `/dev/shm` (the
//!   cross-process node). The protocol and the code are identical —
//!   [`damaris_shm::ring`] over facade words — only the placement
//!   differs, so the delta is the true cost of going multi-process.
//! * `query` — the mixed-load read tier (ISSUE 9): 4 clients append
//!   through the EPE while reader threads run point queries against the
//!   same directory through `damaris_query::QueryEngine`. Reported:
//!   sustained queries/s and p99 query latency *during the write phase*,
//!   the block-cache hit rate, and the fraction of absent-key probes the
//!   bloom + sparse index answered without a payload read.
//! * `degraded` — the same append loop under storage pressure (ISSUE 10):
//!   a baseline pass at unlimited quota, then the sentinel squeezed to
//!   95 % usage so the node runs `Degraded` (compactor paused, persist
//!   errors classified) while usage is held at the squeeze point by an
//!   external drain. The ratio pins the overhead of the pressure
//!   machinery itself: its poll is two atomic loads on the write path,
//!   so the ratio should sit near 1.0 until the quota actually exhausts.
//!
//! CI runs this advisory (never a hard gate): absolute numbers depend on
//! the runner; the JSON exists so regressions show up in review diffs.

use damaris_core::{Config, NodeRuntime};
use damaris_shm::sync::AtomicU64;
use damaris_shm::{ring, MpscQueue, PartitionAllocator, SharedBuffer};
use serde_json::json;
use std::path::PathBuf;
use std::time::Instant;

const CLIENTS: usize = 4;
const ITERATIONS: u32 = 100;
const WRITES_PER_ITER: u32 = 4;
const PAYLOAD_F64: usize = 8192; // 64 KiB per write: memcpy-dominated

fn repo_root() -> PathBuf {
    // crates/bench/../.. = repository root.
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("repo root")
}

/// Per-call write latencies (ns) for a workload sized so no client ever
/// waits on the dedicated core — the client path, not server throughput.
fn write_latencies() -> Vec<u64> {
    let dir = std::env::temp_dir().join(format!("damaris-bench7-{}", std::process::id()));
    let cfg = Config::from_xml(
        r#"<damaris>
             <buffer size="268435456" allocator="partition" queue="4096"/>
             <observability enabled="true" ring_capacity="8192"/>
             <layout name="block" type="double" dimensions="8192"/>
             <variable name="field" layout="block"/>
           </damaris>"#,
    )
    .expect("valid config");
    let runtime = NodeRuntime::start(cfg, CLIENTS, &dir).expect("start node");
    let clients = runtime.clients();
    let data = vec![1.0f64; PAYLOAD_F64];
    let samples = std::sync::Mutex::new(Vec::new());
    std::thread::scope(|s| {
        for client in clients {
            let samples = &samples;
            let data = &data;
            s.spawn(move || {
                let mut local = Vec::with_capacity((ITERATIONS * WRITES_PER_ITER) as usize);
                for it in 0..ITERATIONS {
                    for _ in 0..WRITES_PER_ITER {
                        let t = Instant::now();
                        client.write_f64("field", it, data).expect("write");
                        local.push(t.elapsed().as_nanos() as u64);
                    }
                    client.end_iteration(it).expect("end iteration");
                }
                samples.lock().expect("samples lock").append(&mut local);
            });
        }
    });
    runtime.finish().expect("clean shutdown");
    std::fs::remove_dir_all(&dir).ok();
    samples.into_inner().expect("samples lock")
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Partition-allocator allocate+release round-trips from one client.
fn allocator_throughput() -> (f64, f64) {
    const LEN: usize = 4096;
    const ROUNDS: u32 = 200_000;
    let alloc = PartitionAllocator::with_capacity(64 << 20, 1);
    // Warmup: fault in the region bookkeeping.
    for _ in 0..1000 {
        let seg = alloc.allocate(0, LEN).expect("allocate");
        alloc.release(0, seg);
    }
    let t = Instant::now();
    for _ in 0..ROUNDS {
        let seg = alloc.allocate(0, LEN).expect("allocate");
        alloc.release(0, seg);
    }
    let secs = t.elapsed().as_secs_f64();
    (
        f64::from(ROUNDS) / secs,
        f64::from(ROUNDS) * LEN as f64 / secs,
    )
}

/// Event-queue push+pop pairs per second, single producer (the per-rank
/// MPSC configuration).
fn queue_throughput() -> f64 {
    const OPS: u32 = 1_000_000;
    let q: MpscQueue<u64> = MpscQueue::new(1024);
    // Warmup.
    for i in 0..1024u64 {
        q.push(i).expect("push");
    }
    while q.pop().is_some() {}
    let t = Instant::now();
    for i in 0..OPS {
        q.push(u64::from(i)).expect("push");
        q.pop().expect("pop");
    }
    let secs = t.elapsed().as_secs_f64();
    f64::from(OPS) / secs
}

/// One ring round-trip benchmark body: reserve a segment, memcpy the
/// payload into it, release it. `reserve` hands back a start offset.
fn ring_round_trips(
    rounds: u32,
    payload: &[u8],
    mut reserve: impl FnMut(usize) -> usize,
    mut write_release: impl FnMut(usize, &[u8]),
) -> (f64, f64) {
    // Warmup: fault pages in and settle the counters.
    for _ in 0..64 {
        let pos = reserve(payload.len());
        write_release(pos, payload);
    }
    let t = Instant::now();
    for _ in 0..rounds {
        let pos = reserve(payload.len());
        write_release(pos, payload);
    }
    let secs = t.elapsed().as_secs_f64();
    (
        f64::from(rounds) / secs,
        f64::from(rounds) * payload.len() as f64 / secs,
    )
}

/// What the mixed read/write phase measured.
struct QueryPhase {
    qps: f64,
    p99_latency_ns: u64,
    cache_hit_rate: f64,
    pruned_fraction: f64,
    readers: usize,
    queries: u64,
}

/// Mixed-load read tier: 4 clients append `QUERY_ITERS` iterations while
/// `QUERY_READERS` threads run point queries over the manifest snapshots.
/// QPS and latency cover only queries issued while the writer was live.
fn query_mixed_load() -> QueryPhase {
    use damaris_query::{QueryConfig, QueryEngine};
    const QUERY_ITERS: u32 = 50;
    const QUERY_READERS: usize = 4;
    const ABSENT_PROBES: u64 = 2000;

    let dir = std::env::temp_dir().join(format!("damaris-bench9-q-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cfg = Config::from_xml(
        r#"<damaris>
             <buffer size="67108864" allocator="partition" queue="1024"/>
             <layout name="block" type="double" dimensions="4096"/>
             <variable name="field" layout="block"/>
           </damaris>"#,
    )
    .expect("valid config");
    let runtime = NodeRuntime::start(cfg, CLIENTS, &dir).expect("start node");
    let engine = std::sync::Arc::new(
        QueryEngine::open(&dir, QueryConfig { cache_bytes: 32 << 20 }).expect("engine"),
    );
    let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let data = vec![2.5f64; 4096];

    let mut latencies: Vec<u64> = Vec::new();
    let t_mixed = Instant::now();
    std::thread::scope(|s| {
        let mut readers = Vec::new();
        for reader_id in 0..QUERY_READERS {
            let engine = std::sync::Arc::clone(&engine);
            let stop = std::sync::Arc::clone(&stop);
            readers.push(s.spawn(move || {
                let mut local: Vec<u64> = Vec::new();
                let mut round = 0u32;
                while !stop.load(std::sync::atomic::Ordering::Acquire) {
                    round += 1;
                    let Ok(snap) = engine.refresh() else { continue };
                    let Some(max) = snap.max_iteration() else { continue };
                    // A burst of point probes over published data.
                    for k in 0..16u32 {
                        let it = (round + k + reader_id as u32) % (max + 1);
                        let src = (round + k) % CLIENTS as u32;
                        let t = Instant::now();
                        let got = engine.lookup(&snap, "field", it, src).expect("lookup");
                        local.push(t.elapsed().as_nanos() as u64);
                        assert!(got.is_some(), "published block present");
                    }
                }
                local
            }));
        }

        // The write side: the same client→shm→EPE→persist path as the
        // latency phase, paced so readers see many manifest generations.
        let clients = runtime.clients();
        for it in 0..QUERY_ITERS {
            for client in &clients {
                client.write_f64("field", it, &data).expect("write");
            }
            for client in &clients {
                client.end_iteration(it).expect("end iteration");
            }
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        // Let readers drain against the final generation briefly, then
        // close the mixed window.
        std::thread::sleep(std::time::Duration::from_millis(20));
        stop.store(true, std::sync::atomic::Ordering::Release);
        for handle in readers {
            latencies.append(&mut handle.join().expect("reader"));
        }
    });
    let mixed_secs = t_mixed.elapsed().as_secs_f64();
    runtime.finish().expect("clean shutdown");

    // Pruning measurement on the sealed directory: absent-key probes
    // against covered iterations; the bloom + sparse index should answer
    // nearly all of them without touching payload bytes.
    let snap = engine.refresh().expect("refresh");
    let block_reads = engine.registry().counter("query.block_reads");
    let before = block_reads.get();
    for probe in 0..ABSENT_PROBES {
        let ghost = format!("ghost-{probe}");
        let it = (probe as u32) % QUERY_ITERS;
        assert!(engine
            .lookup(&snap, &ghost, it, 0)
            .expect("lookup")
            .is_none());
    }
    let wasted = block_reads.get() - before;
    let pruned_fraction = 1.0 - wasted as f64 / ABSENT_PROBES as f64;

    let stats = engine.cache_stats();
    let cache_hit_rate = if stats.hits + stats.misses == 0 {
        0.0
    } else {
        stats.hits as f64 / (stats.hits + stats.misses) as f64
    };
    latencies.sort_unstable();
    let queries = latencies.len() as u64;
    // Sustained aggregate rate over the whole mixed window (including
    // refresh overhead between bursts — what a consumer experiences).
    let qps = if mixed_secs > 0.0 {
        queries as f64 / mixed_secs
    } else {
        0.0
    };
    let p99_latency_ns = if latencies.is_empty() {
        0
    } else {
        percentile(&latencies, 0.99)
    };
    std::fs::remove_dir_all(&dir).ok();
    QueryPhase {
        qps,
        p99_latency_ns,
        cache_hit_rate,
        pruned_fraction,
        readers: QUERY_READERS,
        queries,
    }
}

/// What the storage-pressure phase measured.
struct DegradedPhase {
    normal_iters_per_sec: f64,
    degraded_iters_per_sec: f64,
    iterations: u32,
}

/// End-to-end iteration throughput (client write → shm → EPE → committed
/// file) in `Normal` vs `Degraded`. Each iteration is paced to its commit
/// so the comparison measures the persist round trip, not pipelining —
/// and so the held-at-95 % phase can never overshoot into `ReadOnly`.
fn degraded_mode() -> DegradedPhase {
    use damaris_core::PressureState;
    use damaris_fs::{DiskSentinel, LocalDirBackend, StorageBackend};
    const ITERS: u32 = 30;

    let dir = std::env::temp_dir().join(format!("damaris-bench10-d-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let sentinel = std::sync::Arc::new(DiskSentinel::unlimited());
    let backend = std::sync::Arc::new(
        LocalDirBackend::new(&dir)
            .expect("backend")
            .with_sentinel(std::sync::Arc::clone(&sentinel)),
    );
    let cfg = Config::from_xml(
        r#"<damaris>
             <buffer size="67108864" allocator="partition" queue="1024"/>
             <layout name="block" type="double" dimensions="4096"/>
             <variable name="field" layout="block"/>
             <resilience on_disk_full="drop-iteration"/>
           </damaris>"#,
    )
    .expect("valid config");
    let runtime = NodeRuntime::start_with_backend(
        cfg,
        CLIENTS,
        std::sync::Arc::clone(&backend) as std::sync::Arc<dyn StorageBackend>,
        0,
        Vec::new(),
    )
    .expect("start node");
    let clients = runtime.clients();
    let data = vec![2.5f64; 4096];
    let paced_iteration = |it: u32| {
        for client in &clients {
            client.write_f64("field", it, &data).expect("write");
        }
        for client in &clients {
            client.end_iteration(it).expect("end iteration");
        }
        while backend.list_sdf_files().expect("list").len() < (it + 1) as usize {
            std::thread::yield_now();
        }
    };

    // Baseline: quota effectively infinite, node stays Normal.
    let t = Instant::now();
    for it in 0..ITERS {
        paced_iteration(it);
    }
    let normal_secs = t.elapsed().as_secs_f64();

    // A commit's rename is visible before its sentinel charge; the
    // manifest entry is published strictly after both. Wait for it so
    // `used` below includes every baseline charge — measuring one file
    // short would squeeze the quota low enough to ENOSPC the next commit.
    while !damaris_fs::Manifest::load(&dir)
        .map(|m| m.covers(0, ITERS - 1))
        .unwrap_or(false)
    {
        std::thread::yield_now();
    }

    // Squeeze to 95 % usage; the idle EPE loop polls the machine into
    // Degraded (compactor flags raised, gc pass run, fail-fast armed).
    let target = sentinel.used();
    sentinel.set_quota(target.saturating_mul(100) / 95);
    while runtime.pressure_state() != PressureState::Degraded {
        std::thread::yield_now();
    }

    // Same load while Degraded. An external drain (this thread) releases
    // whatever each commit charged, holding usage at the squeeze point —
    // the paced loop means at most one iteration is ever in flight, so
    // the headroom above 95 % is never overrun and nothing is shed.
    let t = Instant::now();
    for it in ITERS..2 * ITERS {
        paced_iteration(it);
        // The commit's rename is visible before its sentinel charge —
        // wait for the charge too, or the drain misses it and the leaked
        // bytes eat the headroom a few iterations later.
        while sentinel.used() <= target {
            std::thread::yield_now();
        }
        sentinel.release(sentinel.used() - target);
    }
    let degraded_secs = t.elapsed().as_secs_f64();
    assert_eq!(runtime.pressure_state(), PressureState::Degraded);

    let report = runtime.finish().expect("clean shutdown");
    assert_eq!(report.iterations_persisted, u64::from(2 * ITERS));
    assert_eq!(report.storage_pressure_sheds, 0, "phase must not shed");
    std::fs::remove_dir_all(&dir).ok();
    DegradedPhase {
        normal_iters_per_sec: f64::from(ITERS) / normal_secs,
        degraded_iters_per_sec: f64::from(ITERS) / degraded_secs,
        iterations: ITERS,
    }
}

const BACKING_SEG: usize = 65_536;
const BACKING_CAP: usize = 1 << 20;
const BACKING_ROUNDS: u32 = 50_000;

/// Heap placement: the threaded node's buffer, ring words on the heap.
fn backing_heap() -> (f64, f64) {
    let buffer = SharedBuffer::new(BACKING_CAP);
    let head = AtomicU64::new(0);
    let tail = AtomicU64::new(0);
    let payload = vec![0xA5u8; BACKING_SEG];
    ring_round_trips(
        BACKING_ROUNDS,
        &payload,
        |len| {
            ring::ring_reserve(&head, &tail, BACKING_CAP as u64, len as u64).expect("reserve")
                as usize
        },
        |pos, data| {
            let mut seg = buffer.adopt_segment(pos, data.len());
            seg.copy_from_slice(data);
            ring::ring_release(&head, &tail, BACKING_CAP as u64, pos as u64, data.len() as u64);
        },
    )
}

/// File placement: the cross-process node's mapping — same ring protocol,
/// but every word and every byte lives in a `/dev/shm`-backed file.
#[cfg(unix)]
fn backing_file() -> (f64, f64) {
    let dir = if std::path::Path::new("/dev/shm").is_dir() {
        PathBuf::from("/dev/shm")
    } else {
        std::env::temp_dir()
    };
    let path = dir.join(format!("damaris-bench8-{}.shm", std::process::id()));
    let node = damaris_shm::MappedNode::create(&path, 1, BACKING_CAP).expect("create mapping");
    let buffer = node.buffer();
    let payload = vec![0xA5u8; BACKING_SEG];
    let out = ring_round_trips(
        BACKING_ROUNDS,
        &payload,
        |len| node.reserve(&buffer, 0, len).expect("reserve").offset(),
        |pos, data| {
            let mut seg = buffer.adopt_segment(pos, data.len());
            seg.copy_from_slice(data);
            node.release(0, pos, data.len());
        },
    );
    drop(buffer);
    drop(node);
    std::fs::remove_file(&path).ok();
    out
}

#[cfg(not(unix))]
fn backing_file() -> (f64, f64) {
    (0.0, 0.0)
}

fn main() {
    // Warmup run: page in the binary and the temp dir.
    write_latencies();

    let mut lat = write_latencies();
    lat.sort_unstable();
    let p50 = percentile(&lat, 0.50);
    let p99 = percentile(&lat, 0.99);
    let (alloc_ops, alloc_bytes) = allocator_throughput();
    let queue_ops = queue_throughput();
    let (heap_ops, heap_bytes) = backing_heap();
    let (file_ops, file_bytes) = backing_file();
    let query = query_mixed_load();
    let degraded = degraded_mode();

    println!(
        "write latency: p50 {p50} ns, p99 {p99} ns ({} samples, {CLIENTS} clients x \
         {ITERATIONS} iters x {WRITES_PER_ITER} writes of {} B)",
        lat.len(),
        PAYLOAD_F64 * 8
    );
    println!("allocator: {alloc_ops:.0} alloc+release/s ({alloc_bytes:.3e} B/s)");
    println!("queue: {queue_ops:.0} push+pop/s");
    println!(
        "backing: heap {heap_ops:.0} ring round-trips/s ({heap_bytes:.3e} B/s), \
         file {file_ops:.0}/s ({file_bytes:.3e} B/s)"
    );
    println!(
        "query (mixed load, {} readers): {:.0} q/s, p99 {} ns, cache hit rate {:.3}, \
         pruned {:.3} of absent probes ({} queries)",
        query.readers,
        query.qps,
        query.p99_latency_ns,
        query.cache_hit_rate,
        query.pruned_fraction,
        query.queries
    );
    println!(
        "degraded (95% quota, compactor paused): {:.1} iters/s vs {:.1} normal \
         (ratio {:.3}, {} iterations each)",
        degraded.degraded_iters_per_sec,
        degraded.normal_iters_per_sec,
        degraded.degraded_iters_per_sec / degraded.normal_iters_per_sec,
        degraded.iterations
    );

    let record = json!({
        "schema": "damaris-bench/v4",
        "write_latency_ns": { "p50": p50, "p99": p99, "samples": lat.len() },
        "allocator": { "ops_per_sec": alloc_ops, "bytes_per_sec": alloc_bytes },
        "queue": { "ops_per_sec": queue_ops },
        "backing": {
            "heap": { "ops_per_sec": heap_ops, "bytes_per_sec": heap_bytes },
            "file": { "ops_per_sec": file_ops, "bytes_per_sec": file_bytes },
        },
        "query": {
            "qps": query.qps,
            "p99_latency_ns": query.p99_latency_ns,
            "cache_hit_rate": query.cache_hit_rate,
            "pruned_fraction": query.pruned_fraction,
            "readers": query.readers,
            "queries": query.queries,
        },
        "degraded": {
            "normal_iters_per_sec": degraded.normal_iters_per_sec,
            "degraded_iters_per_sec": degraded.degraded_iters_per_sec,
            "throughput_ratio": degraded.degraded_iters_per_sec / degraded.normal_iters_per_sec,
            "iterations": degraded.iterations,
            "quota_used_pct": 95,
        },
        "config": {
            "clients": CLIENTS,
            "payload_bytes": PAYLOAD_F64 * 8,
            "iterations": ITERATIONS,
        },
    });
    let path = repo_root().join("BENCH_10.json");
    std::fs::write(
        &path,
        serde_json::to_string_pretty(&record).expect("serialize") + "\n",
    )
    .expect("write BENCH_10.json");
    println!("(saved {})", path.display());
}
