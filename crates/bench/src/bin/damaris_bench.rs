//! Hot-path microbenchmark companion to `cargo run -p xtask -- analyze`:
//! the analyzer proves the write path *cannot* allocate, lock, or panic;
//! this binary measures what that discipline buys, and pins the numbers
//! where a reviewer can see them.
//!
//! Writes `BENCH_7.json` at the repository root with schema
//! `damaris-bench/v1`:
//!
//! ```json
//! {
//!   "schema": "damaris-bench/v1",
//!   "write_latency_ns": { "p50": ..., "p99": ..., "samples": ... },
//!   "allocator": { "ops_per_sec": ..., "bytes_per_sec": ... },
//!   "queue": { "ops_per_sec": ... },
//!   "config": { "clients": ..., "payload_bytes": ..., "iterations": ... }
//! }
//! ```
//!
//! * `write_latency_ns` — per-call `DamarisClient::write` latency over a
//!   partition-allocator, tracing-on, never-backpressured workload (the
//!   same sizing rationale as `obs_overhead`): p50 is the typical
//!   jitter-free call, p99 the tail the paper's Fig. 2 cares about.
//! * `allocator` — `PartitionAllocator` allocate+release round-trips per
//!   second from one client (ops and bytes).
//! * `queue` — `MpscQueue` push+pop pairs per second, single producer
//!   (the per-rank MPSC configuration of the event queue).
//!
//! CI runs this advisory (never a hard gate): absolute numbers depend on
//! the runner; the JSON exists so regressions show up in review diffs.

use damaris_core::{Config, NodeRuntime};
use damaris_shm::{MpscQueue, PartitionAllocator};
use serde_json::json;
use std::path::PathBuf;
use std::time::Instant;

const CLIENTS: usize = 4;
const ITERATIONS: u32 = 100;
const WRITES_PER_ITER: u32 = 4;
const PAYLOAD_F64: usize = 8192; // 64 KiB per write: memcpy-dominated

fn repo_root() -> PathBuf {
    // crates/bench/../.. = repository root.
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("repo root")
}

/// Per-call write latencies (ns) for a workload sized so no client ever
/// waits on the dedicated core — the client path, not server throughput.
fn write_latencies() -> Vec<u64> {
    let dir = std::env::temp_dir().join(format!("damaris-bench7-{}", std::process::id()));
    let cfg = Config::from_xml(
        r#"<damaris>
             <buffer size="268435456" allocator="partition" queue="4096"/>
             <observability enabled="true" ring_capacity="8192"/>
             <layout name="block" type="double" dimensions="8192"/>
             <variable name="field" layout="block"/>
           </damaris>"#,
    )
    .expect("valid config");
    let runtime = NodeRuntime::start(cfg, CLIENTS, &dir).expect("start node");
    let clients = runtime.clients();
    let data = vec![1.0f64; PAYLOAD_F64];
    let samples = std::sync::Mutex::new(Vec::new());
    std::thread::scope(|s| {
        for client in clients {
            let samples = &samples;
            let data = &data;
            s.spawn(move || {
                let mut local = Vec::with_capacity((ITERATIONS * WRITES_PER_ITER) as usize);
                for it in 0..ITERATIONS {
                    for _ in 0..WRITES_PER_ITER {
                        let t = Instant::now();
                        client.write_f64("field", it, data).expect("write");
                        local.push(t.elapsed().as_nanos() as u64);
                    }
                    client.end_iteration(it).expect("end iteration");
                }
                samples.lock().expect("samples lock").append(&mut local);
            });
        }
    });
    runtime.finish().expect("clean shutdown");
    std::fs::remove_dir_all(&dir).ok();
    samples.into_inner().expect("samples lock")
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Partition-allocator allocate+release round-trips from one client.
fn allocator_throughput() -> (f64, f64) {
    const LEN: usize = 4096;
    const ROUNDS: u32 = 200_000;
    let alloc = PartitionAllocator::with_capacity(64 << 20, 1);
    // Warmup: fault in the region bookkeeping.
    for _ in 0..1000 {
        let seg = alloc.allocate(0, LEN).expect("allocate");
        alloc.release(0, seg);
    }
    let t = Instant::now();
    for _ in 0..ROUNDS {
        let seg = alloc.allocate(0, LEN).expect("allocate");
        alloc.release(0, seg);
    }
    let secs = t.elapsed().as_secs_f64();
    (
        f64::from(ROUNDS) / secs,
        f64::from(ROUNDS) * LEN as f64 / secs,
    )
}

/// Event-queue push+pop pairs per second, single producer (the per-rank
/// MPSC configuration).
fn queue_throughput() -> f64 {
    const OPS: u32 = 1_000_000;
    let q: MpscQueue<u64> = MpscQueue::new(1024);
    // Warmup.
    for i in 0..1024u64 {
        q.push(i).expect("push");
    }
    while q.pop().is_some() {}
    let t = Instant::now();
    for i in 0..OPS {
        q.push(u64::from(i)).expect("push");
        q.pop().expect("pop");
    }
    let secs = t.elapsed().as_secs_f64();
    f64::from(OPS) / secs
}

fn main() {
    // Warmup run: page in the binary and the temp dir.
    write_latencies();

    let mut lat = write_latencies();
    lat.sort_unstable();
    let p50 = percentile(&lat, 0.50);
    let p99 = percentile(&lat, 0.99);
    let (alloc_ops, alloc_bytes) = allocator_throughput();
    let queue_ops = queue_throughput();

    println!(
        "write latency: p50 {p50} ns, p99 {p99} ns ({} samples, {CLIENTS} clients x \
         {ITERATIONS} iters x {WRITES_PER_ITER} writes of {} B)",
        lat.len(),
        PAYLOAD_F64 * 8
    );
    println!("allocator: {alloc_ops:.0} alloc+release/s ({alloc_bytes:.3e} B/s)");
    println!("queue: {queue_ops:.0} push+pop/s");

    let record = json!({
        "schema": "damaris-bench/v1",
        "write_latency_ns": { "p50": p50, "p99": p99, "samples": lat.len() },
        "allocator": { "ops_per_sec": alloc_ops, "bytes_per_sec": alloc_bytes },
        "queue": { "ops_per_sec": queue_ops },
        "config": {
            "clients": CLIENTS,
            "payload_bytes": PAYLOAD_F64 * 8,
            "iterations": ITERATIONS,
        },
    });
    let path = repo_root().join("BENCH_7.json");
    std::fs::write(
        &path,
        serde_json::to_string_pretty(&record).expect("serialize") + "\n",
    )
    .expect("write BENCH_7.json");
    println!("(saved {})", path.display());
}
