//! Figure 6 — average aggregate throughput on Kraken for the three
//! approaches.
//!
//! Paper reference points at 9216 cores: Damaris achieves ~6× the
//! file-per-process throughput and ~15× the collective-I/O throughput
//! (for Damaris the throughput is the one seen by the dedicated cores).

use damaris_bench::*;
use serde_json::json;

fn main() {
    let (platform, workload) = kraken_setup();
    let mut rows = Vec::new();
    let mut records = Vec::new();
    let mut at_9216 = std::collections::HashMap::new();

    for strategy in standard_strategies() {
        for &ncores in &KRAKEN_SCALES {
            let s = summarize_phases(&platform, &workload, &strategy, ncores, SEED);
            rows.push(vec![
                s.strategy.clone(),
                ncores.to_string(),
                fmt_rate(s.throughput),
            ]);
            if ncores == 9216 {
                at_9216.insert(s.strategy.clone(), s.throughput);
            }
            records.push(s.to_json());
        }
    }
    print_table(
        "Fig. 6 — average aggregate throughput on Kraken",
        &["strategy", "cores", "throughput"],
        &rows,
    );

    let dam = at_9216["damaris"];
    let fpp = at_9216["file-per-process"];
    let cio = at_9216["collective-io"];
    println!(
        "\nAt 9216 cores: Damaris = {:.1}× file-per-process (paper: ~6×), {:.1}× collective-I/O (paper: ~15×).",
        dam / fpp,
        dam / cio
    );
    save_json(
        "fig6_throughput",
        &json!({
            "rows": records,
            "ratio_vs_fpp_9216": dam / fpp,
            "ratio_vs_cio_9216": dam / cio,
        }),
    );
}
