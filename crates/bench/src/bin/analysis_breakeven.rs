//! §V-A — "Are all cores really needed for computation?": the closed-form
//! break-even model `p = 100/(N−1)` plus a simulated validation.
//!
//! Paper reference points: with 24 cores per node, p = 4.35 % — under the
//! commonly accepted 5 % I/O share — so dedicating a core wins on ≥24-core
//! nodes even under worst-case assumptions; memory-bus saturation widens
//! the win in practice.

use damaris_bench::*;
use damaris_sim::analysis::{breakeven_io_percent, dedication_wins_model};
use damaris_sim::experiment::run_simulation;
use damaris_sim::Strategy;
use serde_json::json;

fn main() {
    let mut rows = Vec::new();
    let mut records = Vec::new();
    for n in [4, 8, 12, 16, 24, 32, 48, 64] {
        let p = breakeven_io_percent(n);
        rows.push(vec![
            n.to_string(),
            format!("{p:.2}%"),
            if dedication_wins_model(n, 0.05) { "yes" } else { "no" }.to_string(),
        ]);
        records.push(json!({ "cores_per_node": n, "breakeven_percent": p }));
    }
    print_table(
        "§V-A — break-even I/O share p = 100/(N−1) and the 5%-I/O verdict",
        &["cores/node", "break-even p", "wins at 5% I/O"],
        &rows,
    );
    println!("Paper: p = 4.35% at 24 cores, already below the accepted 5%.");

    // Simulated validation on Kraken at 2304 cores: the model's worst case
    // assumes W_ded = N·W_std, but the measured dedicated write time is far
    // smaller — the practical reason Damaris wins even on 12-core nodes.
    let (platform, workload) = kraken_setup();
    let fpp = run_simulation(&platform, &workload, Strategy::FilePerProcess, 2304, 50, SEED);
    let dam = run_simulation(&platform, &workload, Strategy::damaris(), 2304, 50, SEED);
    let w_std = fpp.io_time;
    let w_ded = dam.dedicated_write_mean;
    println!(
        "\nSimulated Kraken @2304: W_std = {}, measured W_ded = {} — {:.1}× smaller than the \
         model's worst case N·W_std = {} (§IV-C3 'shown not to be true').",
        fmt_s(w_std),
        fmt_s(w_ded),
        (12.0 * w_std) / w_ded,
        fmt_s(12.0 * w_std),
    );
    println!(
        "Damaris total {} vs file-per-process {} — dedication wins on 12-core nodes in practice.",
        fmt_s(dam.total_time),
        fmt_s(fpp.total_time)
    );
    save_json(
        "analysis_breakeven",
        &json!({
            "rows": records,
            "kraken_2304": {
                "w_std_s": w_std,
                "w_ded_s": w_ded,
                "fpp_total_s": fpp.total_time,
                "damaris_total_s": dam.total_time,
            }
        }),
    );
}
