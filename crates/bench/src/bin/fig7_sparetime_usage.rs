//! Figure 7 — write time in the dedicated cores when enabling the
//! compression feature and the data-transfer scheduling strategy, on
//! Kraken (2304 cores) and Grid'5000 (912 cores).
//!
//! Paper reference points: scheduling reduces the dedicated-core write
//! time on both platforms (Kraken aggregate throughput 9.7 → 13.1 GB/s);
//! compression adds overhead on Kraken (CPU-bound) — a storage-vs-time
//! trade-off.

use damaris_bench::*;
#[allow(unused_imports)]
use damaris_bench::fmt_rate as _keep;
use damaris_sim::strategies::DamarisOptions;
use damaris_sim::workload::CompressionModel;
use damaris_sim::{platform, PlatformSpec, Strategy, WorkloadSpec};
use serde_json::json;

fn variants(window: f64) -> Vec<Strategy> {
    // Compression model: the paper's gzip ratio (~1.9×) at the ~60 MB/s a
    // single 2012-era core sustains with zlib. (The `compression_ratios`
    // binary measures this reproduction's own codecs on real data.)
    let comp = CompressionModel {
        ratio: 1.87,
        rate: 60.0e6,
    };
    let mk = |scheduled: bool, compression: Option<CompressionModel>| {
        Strategy::Damaris(DamarisOptions {
            dedicated_per_node: 1,
            scheduled,
            estimated_window: window,
            compression,
        })
    };
    vec![
        mk(false, None),
        mk(true, None),
        mk(false, Some(comp)),
        mk(true, Some(comp)),
    ]
}

fn section(
    title: &str,
    platform: &PlatformSpec,
    workload: &WorkloadSpec,
    ncores: usize,
    window: f64,
    records: &mut Vec<serde_json::Value>,
) {
    let mut rows = Vec::new();
    let mut base_write = 0.0;
    for strategy in variants(window) {
        let s = summarize_phases(platform, workload, &strategy, ncores, SEED);
        if s.strategy == "damaris" {
            base_write = s.dedicated_avg_s;
        }
        let speedup = if base_write > 0.0 {
            format!("{:.2}x", base_write / s.dedicated_avg_s)
        } else {
            "-".to_string()
        };
        rows.push(vec![
            s.strategy.clone(),
            fmt_s(s.dedicated_avg_s),
            fmt_s(s.dedicated_max_s),
            speedup,
        ]);
        records.push(json!({
            "platform": platform.name,
            "ncores": ncores,
            "summary": s.to_json(),
        }));
    }
    print_table(
        title,
        &["variant", "ded. write avg", "ded. write max", "write speedup"],
        &rows,
    );
}

fn main() {
    let mut records = Vec::new();

    let (kraken, kraken_wl) = kraken_setup();
    section(
        "Fig. 7 — dedicated-core write time with compression/scheduling (Kraken, 2304 cores)",
        &kraken,
        &kraken_wl,
        2304,
        210.0, // estimated 50-iteration window (~230 s in the paper)
        &mut records,
    );

    let g5k = platform::grid5000_parapluie();
    let g5k_wl = WorkloadSpec::cm1_grid5000();
    section(
        "Fig. 7 — dedicated-core write time with compression/scheduling (Grid'5000, 912 cores)",
        &g5k,
        &g5k_wl,
        912,
        560.0, // ~20 iterations of ~28 s
        &mut records,
    );

    println!(
        "\nPaper: scheduling cuts the dedicated-core write time on both platforms \
         (Kraken 9.7 → 13.1 GB/s aggregate); compression trades dedicated-core time \
         for a ~1.9× storage reduction (overhead visible on Kraken, hidden from the \
         application either way)."
    );
    save_json("fig7_sparetime_usage", &json!({ "rows": records }));
}
