//! Figure 5 — time spent by the dedicated cores writing data for each
//! iteration, and the time they spare, on (a) Kraken across scales and
//! (b) BluePrint across output sizes.
//!
//! Paper reference points: dedicated-core write time grows with scale on
//! Kraken (file-system contention — per-node data is constant) and with
//! data volume on BluePrint; across all platforms the dedicated cores
//! remain idle 75–99 % of the time.

use damaris_bench::*;
use damaris_sim::experiment::run_simulation;
use damaris_sim::{platform, Strategy, WorkloadSpec};
use serde_json::json;

fn main() {
    let mut records = Vec::new();

    // (a) Kraken: constant per-node data, growing scale.
    let (kraken, workload) = kraken_setup();
    let mut rows = Vec::new();
    for &ncores in &KRAKEN_SCALES {
        let run = run_simulation(&kraken, &workload, Strategy::damaris(), ncores, 50, SEED);
        let window = run.compute_time;
        rows.push(vec![
            ncores.to_string(),
            fmt_s(run.dedicated_write_mean),
            fmt_s(window - run.dedicated_write_mean),
            format!("{:.1}%", 100.0 * run.spare_fraction),
        ]);
        records.push(json!({
            "platform": "kraken",
            "ncores": ncores,
            "dedicated_write_s": run.dedicated_write_mean,
            "spare_fraction": run.spare_fraction,
        }));
    }
    print_table(
        "Fig. 5a — dedicated-core write vs spare time per write window (Kraken, 50-iteration window)",
        &["cores", "write", "spare", "spare %"],
        &rows,
    );

    // (b) BluePrint: constant scale (1024 cores), growing data volume.
    let blueprint = platform::blueprint();
    let mut rows = Vec::new();
    for bytes_per_point in [16.0, 32.0, 48.0, 64.0] {
        let w = WorkloadSpec::cm1_blueprint(bytes_per_point);
        let run = run_simulation(&blueprint, &w, Strategy::damaris(), 1024, 50, SEED);
        let total_gb = w.total_bytes(1024) as f64 / 1e9;
        rows.push(vec![
            format!("{total_gb:.1} GB"),
            fmt_s(run.dedicated_write_mean),
            fmt_s(run.compute_time - run.dedicated_write_mean),
            format!("{:.1}%", 100.0 * run.spare_fraction),
        ]);
        records.push(json!({
            "platform": "blueprint",
            "total_gb": total_gb,
            "dedicated_write_s": run.dedicated_write_mean,
            "spare_fraction": run.spare_fraction,
        }));
    }
    print_table(
        "Fig. 5b — dedicated-core write vs spare time per write window (BluePrint, 1024 cores)",
        &["data/phase", "write", "spare", "spare %"],
        &rows,
    );

    println!(
        "\nPaper: write time grows with scale (Kraken: network/FS contention) and with data \
         (BluePrint); dedicated cores stay idle 75–99% of the time on all platforms."
    );
    save_json("fig5_sparetime", &json!({ "rows": records }));
}
