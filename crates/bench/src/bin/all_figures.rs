//! Runs every figure/table binary in sequence (in-process) and leaves the
//! JSON records under `target/figures/`. This is the one-command
//! regeneration entry point cited by `EXPERIMENTS.md`:
//!
//! ```text
//! cargo run --release -p damaris-bench --bin all_figures
//! ```

use std::process::Command;

fn main() {
    let bins = [
        "fig2_jitter",
        "fig3_datasize",
        "fig4_scalability",
        "fig5_sparetime",
        "fig6_throughput",
        "table1_grid5000",
        "fig7_sparetime_usage",
        "compression_ratios",
        "analysis_breakeven",
        "ablation_dedicated_ratio",
        "ablation_jitter_sources",
        "ablation_output_frequency",
    ];
    let exe = std::env::current_exe().expect("own path");
    let dir = exe.parent().expect("bin dir");
    let mut failed = Vec::new();
    for bin in bins {
        println!("\n################ {bin} ################");
        let status = Command::new(dir.join(bin))
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {bin}: {e}"));
        if !status.success() {
            failed.push(bin);
        }
    }
    if failed.is_empty() {
        println!("\nAll figures regenerated. JSON records: target/figures/");
    } else {
        eprintln!("\nFAILED: {failed:?}");
        std::process::exit(1);
    }
}
