//! Figure 3 — duration of a write phase (average, maximum, minimum) using
//! file-per-process and Damaris on BluePrint (1024 cores), varying the
//! amount of data per write phase by enabling/disabling variables.
//!
//! Paper reference points: FPP write time and its variability grow with
//! the output size (tens of seconds at the largest outputs, with HDF5
//! compression enabled client-side); Damaris stays at ~0.2 s with ~0.1 s
//! variability regardless of size.

use damaris_bench::*;
use damaris_sim::{platform, Strategy, WorkloadSpec};
use serde_json::json;

fn main() {
    let platform = platform::blueprint();
    let ncores = 1024;
    let mut rows = Vec::new();
    let mut records = Vec::new();

    // 4, 8, 12, 16 enabled f32 variables per point.
    for bytes_per_point in [16.0, 32.0, 48.0, 64.0] {
        let workload = WorkloadSpec::cm1_blueprint(bytes_per_point);
        let total_gb = workload.total_bytes(ncores) as f64 / 1e9;
        for strategy in [Strategy::FilePerProcess, Strategy::damaris()] {
            let s = summarize_phases(&platform, &workload, &strategy, ncores, SEED);
            rows.push(vec![
                s.strategy.clone(),
                format!("{total_gb:.1} GB"),
                fmt_s(s.avg_s),
                fmt_s(s.max_s),
                fmt_s(s.min_s),
            ]);
            records.push(json!({
                "total_gb": total_gb,
                "summary": s.to_json(),
            }));
        }
    }
    print_table(
        "Fig. 3 — write-phase duration vs output size on BluePrint (1024 cores, FPP compresses client-side)",
        &["strategy", "data/phase", "avg", "max", "min"],
        &rows,
    );
    println!(
        "\nPaper: FPP variability grows with the amount of data; Damaris stays ~0.2 s / ~0.1 s spread."
    );
    save_json("fig3_datasize", &json!({ "rows": records }));
}
