//! §IV-D compression numbers, measured on the REAL codecs (not the
//! simulator): mini-CM1 warm-bubble output compressed with the
//! from-scratch LZSS ("gzip-like") codec, and with 16-bit precision
//! reduction stacked on top.
//!
//! Paper reference points: lossless gzip reaches a 187 % ratio on the 3D
//! arrays; reducing floats to 16 bits for visualization pushes the
//! combined ratio to ~600 %.

use damaris_bench::{fmt_rate, print_table, save_json};
use damaris_cm1::{grid::Field3, physics};
use damaris_compress::{paper_ratio_percent, Pipeline};
use serde_json::json;
use std::time::Instant;

/// Builds one rank's worth of CM1-like output (several variables over a
/// warm-bubble subdomain).
fn cm1_bytes() -> Vec<u8> {
    let (nx, ny, nz) = (44, 44, 50);
    let mut theta = Field3::new(nx, ny, nz, 1);
    physics::init_warm_bubble(&mut theta, (0, 0), (nx, ny, nz), 300.0, 5.0);
    let mut qv = Field3::new(nx, ny, nz, 1);
    physics::init_warm_bubble(&mut qv, (0, 0), (nx, ny, nz), 0.012, 0.004);
    let p = physics::PhysicsParams {
        dt: 1.0,
        dx: 500.0,
        ..Default::default()
    };
    // A few steps so the fields aren't pristine.
    let mut w = Field3::new(nx, ny, nz, 1);
    let mut prs = Field3::new(nx, ny, nz, 1);
    let mut dbz = Field3::new(nx, ny, nz, 1);
    let mut tke = Field3::new(nx, ny, nz, 1);
    // Evolve long enough that the storm's influence spreads over a
    // realistic fraction of the domain (advection wake + diffusion).
    for _ in 0..40 {
        theta = physics::advect_diffuse(&theta, &p);
        qv = physics::advect_diffuse(&qv, &p);
        physics::update_diagnostics(&theta, &mut w, &mut prs, &mut dbz, &mut tke, &p);
    }
    // Real model output has two entropy regimes: active regions carry
    // turbulence-scale noise in the low mantissa bits, while "clear air"
    // is exactly 0.0 (hydrometeor/perturbation fields) — that mixture is
    // what gzip's ~1.9× on CM1 data comes from. Perturb active points by
    // ~2.5e-4 of the field range, leave true zeros alone.
    let mut bytes = Vec::new();
    let mut h: u32 = 0x9E3779B9;
    for field in [&theta, &qv, &w, &prs, &dbz, &tke] {
        let interior = field.interior();
        let max_abs = interior.iter().fold(0.0f32, |a, v| a.max(v.abs()));
        let amp = max_abs * 2.5e-4;
        for v in interior {
            h = h.wrapping_mul(0x01000193) ^ h.rotate_left(13);
            let noise = if v == 0.0 {
                0.0
            } else {
                amp * ((h >> 8) as f32 / (1u32 << 24) as f32 - 0.5)
            };
            bytes.extend_from_slice(&(v + noise).to_le_bytes());
        }
    }
    bytes
}

fn main() {
    let data = cm1_bytes();
    let mb = data.len() as f64 / 1e6;
    println!("mini-CM1 sample: {mb:.1} MB of f32 field data (6 variables)");

    let mut rows = Vec::new();
    let mut records = Vec::new();
    for spec in [
        "rle",
        "lzss",
        "huff",
        "lzss|huff", // the gzip analogue: LZ77 + Huffman
        "precision16",
        "precision16|lzss|huff",
    ] {
        let pipeline = Pipeline::from_spec(spec).expect("valid spec");
        let t0 = Instant::now();
        let (encoded, stats) = pipeline.encode(&data).expect("encode");
        let dt = t0.elapsed().as_secs_f64();
        let ratio = paper_ratio_percent(data.len(), encoded.len());
        // Round-trip check: the bench must not report numbers for broken
        // codecs.
        let decoded = pipeline.decode(&encoded).expect("decode");
        assert_eq!(decoded.len(), data.len());
        if !pipeline.is_lossy() {
            assert_eq!(decoded, data, "lossless codec must round-trip");
        }
        rows.push(vec![
            spec.to_string(),
            format!("{ratio:.0}%"),
            fmt_rate(data.len() as f64 / dt),
        ]);
        records.push(json!({
            "pipeline": spec,
            "ratio_percent": ratio,
            "throughput_bytes_per_s": data.len() as f64 / dt,
            "output_bytes": stats.output_bytes,
        }));
    }
    print_table(
        "§IV-D — compression of mini-CM1 output with the real codecs",
        &["pipeline", "ratio", "encode rate"],
        &rows,
    );
    println!(
        "\nPaper: gzip ≈ 187%; 16-bit precision + gzip ≈ 600% \
         (apparent dedicated-core throughput 4.1 GB/s)."
    );
    save_json("compression_ratios", &json!({ "rows": records }));
}
