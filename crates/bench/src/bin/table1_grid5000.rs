//! Table I — average aggregate throughput on Grid'5000 with CM1 on 672
//! cores — plus the §IV-C1 jitter observations on the same runs.
//!
//! Paper reference points: file-per-process 695 MB/s, collective-I/O
//! 636 MB/s, Damaris 4.32 GB/s (>6× both); with FPP, CM1 spends 4.22 % of
//! its time in I/O, the fastest processes finish in <1 s and the slowest
//! take >25 s.

use damaris_bench::*;
use damaris_sim::experiment::run_simulation;
use damaris_sim::{platform, WorkloadSpec};
use serde_json::json;

fn main() {
    let platform = platform::grid5000_parapluie();
    let workload = WorkloadSpec::cm1_grid5000();
    let ncores = 672;

    let mut rows = Vec::new();
    let mut records = Vec::new();
    let mut by_label = std::collections::HashMap::new();
    for strategy in standard_strategies() {
        let s = summarize_phases(&platform, &workload, &strategy, ncores, SEED);
        rows.push(vec![s.strategy.clone(), fmt_rate(s.throughput)]);
        by_label.insert(s.strategy.clone(), s.clone());
        records.push(s.to_json());
    }
    print_table(
        "Table I — average aggregate throughput on Grid'5000 (CM1, 672 cores)",
        &["strategy", "throughput"],
        &rows,
    );
    println!("Paper: FPP 695 MB/s, collective-I/O 636 MB/s, Damaris 4.32 GB/s.");

    // §IV-C1 jitter text: I/O share of run time and per-process spread.
    let fpp = &by_label["file-per-process"];
    let run = run_simulation(
        &platform,
        &workload,
        damaris_sim::Strategy::FilePerProcess,
        ncores,
        workload.iterations_per_write * 3,
        SEED,
    );
    let io_pct = 100.0 * run.io_time / run.total_time;
    println!(
        "\nFPP at 672 cores: {:.2}% of run time in I/O (paper: 4.22%), fastest process {} \
         (paper: <1 s), slowest phase {} (paper: >25 s).",
        io_pct,
        fmt_s(fpp.fastest_proc_s),
        fmt_s(fpp.max_s),
    );
    save_json(
        "table1_grid5000",
        &json!({
            "rows": records,
            "fpp_io_percent": io_pct,
            "fpp_fastest_proc_s": fpp.fastest_proc_s,
            "fpp_slowest_phase_s": fpp.max_s,
        }),
    );
}
