//! Ablation (paper §VI, future work): "quantify the optimal ratio between
//! I/O cores and computation cores within a node".
//!
//! Sweeps the number of dedicated cores per node on each platform and
//! reports total run time (50 iterations + write phases) plus the
//! dedicated-core write/spare balance. More dedicated cores cost compute
//! throughput once the memory bus is no longer saturated, but shorten the
//! per-core write burst — the optimum is workload-dependent.

use damaris_bench::*;
use damaris_sim::experiment::run_simulation;
use damaris_sim::strategies::DamarisOptions;
use damaris_sim::{platform, Strategy, WorkloadSpec};
use serde_json::json;

fn main() {
    let mut records = Vec::new();
    let cases = [
        ("kraken", platform::kraken(), WorkloadSpec::cm1_kraken(), 2304usize),
        (
            "grid5000",
            platform::grid5000_parapluie(),
            WorkloadSpec::cm1_grid5000(),
            672,
        ),
        (
            "blueprint",
            platform::blueprint(),
            WorkloadSpec::cm1_blueprint(64.0),
            1024,
        ),
    ];

    for (name, platform, workload, ncores) in cases {
        let mut rows = Vec::new();
        // Baseline: no dedication (file-per-process).
        let fpp = run_simulation(
            &platform,
            &workload,
            Strategy::FilePerProcess,
            ncores,
            50,
            SEED,
        );
        rows.push(vec![
            "0 (fpp)".to_string(),
            fmt_s(fpp.total_time),
            fmt_s(fpp.io_time),
            "-".into(),
            "-".into(),
        ]);
        let mut best: Option<(usize, f64)> = None;
        for dedicated in 1..=4usize {
            if dedicated >= platform.cores_per_node {
                break;
            }
            let strategy = Strategy::Damaris(DamarisOptions {
                dedicated_per_node: dedicated,
                ..Default::default()
            });
            let run = run_simulation(&platform, &workload, strategy, ncores, 50, SEED);
            rows.push(vec![
                dedicated.to_string(),
                fmt_s(run.total_time),
                fmt_s(run.io_time),
                fmt_s(run.dedicated_write_mean),
                format!("{:.1}%", 100.0 * run.spare_fraction),
            ]);
            records.push(json!({
                "platform": name,
                "ncores": ncores,
                "dedicated": dedicated,
                "total_time_s": run.total_time,
                "dedicated_write_s": run.dedicated_write_mean,
                "spare_fraction": run.spare_fraction,
            }));
            if best.is_none_or(|(_, t)| run.total_time < t) {
                best = Some((dedicated, run.total_time));
            }
        }
        print_table(
            &format!("Dedicated-core ratio sweep — {name}, {ncores} cores"),
            &["dedicated/node", "run time", "io time", "ded. write", "spare %"],
            &rows,
        );
        if let Some((d, t)) = best {
            println!("optimum on {name}: {d} dedicated core(s)/node at {}", fmt_s(t));
        }
    }
    println!(
        "\nPaper (§V-A): one dedicated core per node 'turned out to be an optimal choice' on \
         these workloads — additional cores only pay once compute is no longer bus-bound."
    );
    save_json("ablation_dedicated_ratio", &json!({ "rows": records }));
}
