//! Ablation (paper §IV-C2): "without impacting the application, we could
//! further increase the frequency of outputs".
//!
//! Sweeps the output cadence on Kraken at 2304 cores. With the standard
//! approaches, writing more often multiplies the visible I/O cost; with
//! Damaris the client-side cost stays a memcpy per phase while only the
//! dedicated cores' spare time shrinks — until the cadence outruns the
//! window and the spare fraction collapses.

use damaris_bench::*;
use damaris_sim::experiment::run_simulation;
use damaris_sim::Strategy;
use serde_json::json;

fn main() {
    let (platform, base_workload) = kraken_setup();
    let ncores = 2304;
    let iterations = 100;
    let mut rows = Vec::new();
    let mut records = Vec::new();

    for every in [50u32, 25, 10, 5, 2] {
        let mut workload = base_workload.clone();
        workload.iterations_per_write = every;
        for strategy in [Strategy::FilePerProcess, Strategy::damaris()] {
            let run = run_simulation(&platform, &workload, strategy, ncores, iterations, SEED);
            let io_share = 100.0 * run.io_time / run.total_time;
            rows.push(vec![
                format!("every {every}"),
                run.strategy.clone(),
                fmt_s(run.total_time),
                format!("{io_share:.1}%"),
                if run.spare_fraction > 0.0 {
                    format!("{:.1}%", 100.0 * run.spare_fraction)
                } else {
                    "-".into()
                },
            ]);
            records.push(json!({
                "iterations_per_write": every,
                "strategy": run.strategy,
                "total_time_s": run.total_time,
                "io_share_percent": io_share,
                "spare_fraction": run.spare_fraction,
            }));
        }
    }
    print_table(
        &format!(
            "Output-frequency sweep — Kraken, {ncores} cores, {iterations} iterations"
        ),
        &["cadence", "strategy", "run time", "app io share", "ded. spare"],
        &rows,
    );
    println!(
        "\nReading: at 25× the paper's output frequency, the application's I/O share under \
         Damaris stays near zero (memcpy only) while file-per-process drowns; the cost \
         surfaces only as shrinking dedicated-core spare time — the paper's claim that \
         higher output frequency (e.g. for inline visualization) is affordable."
    );
    save_json("ablation_output_frequency", &json!({ "rows": records }));
}
