//! Ablation of the jitter taxonomy (paper §II-A): which of the four causes
//! drives each strategy's variability?
//!
//! The paper lists (1) intra-node resource contention, (2) communication/
//! synchronization, (3) OS noise, (4) cross-application contention, and
//! argues Damaris removes the application's exposure to all of them during
//! I/O. This ablation toggles the injectable causes (3) and (4) in the
//! simulator and measures the write-phase spread; causes (1) and (2) are
//! emergent from the queueing model and visible as the residual spread.

use damaris_bench::*;
use damaris_sim::noise::{Interference, OsNoise};
use damaris_sim::{PlatformSpec, Strategy};
use serde_json::json;

fn variant(base: &PlatformSpec, os_noise: bool, interference: bool) -> PlatformSpec {
    let mut p = base.clone();
    if !os_noise {
        p.os_noise = OsNoise { sigma: 0.0 };
    }
    if !interference {
        p.interference = Interference::none();
    }
    p
}

fn main() {
    let (base, workload) = kraken_setup();
    let ncores = 2304;
    let mut records = Vec::new();
    let mut rows = Vec::new();

    for (label, os, interf) in [
        ("all jitter sources", true, true),
        ("no cross-app interference", true, false),
        ("no OS noise", false, true),
        ("neither (contention only)", false, false),
    ] {
        let platform = variant(&base, os, interf);
        for strategy in [Strategy::FilePerProcess, Strategy::damaris()] {
            let s = summarize_phases(&platform, &workload, &strategy, ncores, SEED);
            rows.push(vec![
                label.to_string(),
                s.strategy.clone(),
                fmt_s(s.avg_s),
                fmt_s(s.max_s - s.min_s),
            ]);
            records.push(json!({
                "jitter": label,
                "summary": s.to_json(),
            }));
        }
    }
    print_table(
        &format!("Jitter-source ablation — Kraken, {ncores} cores, write-phase duration"),
        &["injected jitter", "strategy", "phase avg", "phase spread"],
        &rows,
    );
    println!(
        "\nReading: file-per-process variability collapses only when cross-application \
         interference is removed — confirming §II-A cause (4) as the phase-to-phase driver, \
         with intra-application contention (causes 1–2) as the residual. Damaris' client-side \
         write is flat in every row: it is not exposed to the file system at all."
    );
    save_json("ablation_jitter_sources", &json!({ "rows": records }));
}
