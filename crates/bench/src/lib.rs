//! # damaris-bench
//!
//! The experiment harness: one binary per table/figure of the paper's
//! evaluation section (§IV), plus criterion micro-benchmarks over the real
//! (non-simulated) components.
//!
//! | binary                | reproduces |
//! |-----------------------|------------|
//! | `fig2_jitter`         | Fig. 2 — write-phase duration (avg/max) on Kraken |
//! | `fig3_datasize`       | Fig. 3 — write time vs output size on BluePrint |
//! | `fig4_scalability`    | Fig. 4a/4b — scalability factor and run time |
//! | `fig5_sparetime`      | Fig. 5a/5b — dedicated-core write vs spare time |
//! | `fig6_throughput`     | Fig. 6 — aggregate throughput on Kraken |
//! | `table1_grid5000`     | Table I + §IV-C1 text — Grid'5000 throughput and jitter |
//! | `fig7_sparetime_usage`| Fig. 7 — compression & scheduling in the dedicated cores |
//! | `compression_ratios`  | §IV-D — real codec ratios on mini-CM1 data |
//! | `analysis_breakeven`  | §V-A — the 100/(N−1) break-even model |
//! | `ablation_dedicated_ratio` | §VI — optimal I/O-core : compute-core ratio |
//! | `ablation_jitter_sources`  | §II-A — which jitter cause drives which strategy |
//! | `ablation_output_frequency`| §IV-C2 — cost of writing more often |
//! | `all_figures`         | runs everything, writes results under `target/figures/` |
//!
//! Each binary prints a human-readable table and appends a JSON record to
//! `target/figures/<name>.json` so `EXPERIMENTS.md` can cite exact values.

use damaris_sim::metrics::format_rate;
use damaris_sim::{experiment, platform, PlatformSpec, Strategy, WorkloadSpec};
use serde_json::json;
use std::io::Write as _;
use std::path::PathBuf;

/// Kraken core counts used across the figures (the paper scales 576→9216).
pub const KRAKEN_SCALES: [usize; 5] = [576, 1152, 2304, 4608, 9216];

/// Write phases sampled per configuration (avg/max across phases).
pub const PHASES: u64 = 5;

/// Base seed; figure binaries offset it per configuration.
pub const SEED: u64 = 20120924; // CLUSTER 2012, Beijing

/// Where JSON records land.
pub fn figures_dir() -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../target/figures");
    std::fs::create_dir_all(&dir).expect("create target/figures");
    dir
}

/// Writes a JSON record for EXPERIMENTS.md.
pub fn save_json(name: &str, value: &serde_json::Value) {
    let path = figures_dir().join(format!("{name}.json"));
    let mut f = std::fs::File::create(&path).expect("create json");
    f.write_all(serde_json::to_string_pretty(value).expect("serialize").as_bytes())
        .expect("write json");
    eprintln!("(saved {})", path.display());
}

/// Per-(strategy, scale) summary over several simulated write phases.
///
/// `avg_s`/`max_s`/`min_s` follow the paper's Fig. 2/3 semantics: the
/// statistics of the barrier-to-barrier *phase duration* across phases.
#[derive(Debug, Clone)]
pub struct PhaseSummary {
    pub strategy: String,
    pub ncores: usize,
    /// Mean phase duration over the sampled phases.
    pub avg_s: f64,
    /// Worst phase duration.
    pub max_s: f64,
    /// Best phase duration.
    pub min_s: f64,
    /// Fastest single process observed in any phase (§IV-C1's "fastest
    /// processes terminate their I/O in less than 1 sec").
    pub fastest_proc_s: f64,
    /// Mean aggregate throughput (bytes/s).
    pub throughput: f64,
    /// Mean of per-phase mean dedicated-core write time (Damaris only).
    pub dedicated_avg_s: f64,
    /// Max dedicated-core write time (Damaris only).
    pub dedicated_max_s: f64,
}

/// Runs `PHASES` simulated write phases and summarizes.
pub fn summarize_phases(
    platform: &PlatformSpec,
    workload: &WorkloadSpec,
    strategy: &Strategy,
    ncores: usize,
    seed: u64,
) -> PhaseSummary {
    let mut avg = 0.0;
    let mut max = f64::MIN;
    let mut min = f64::MAX;
    let mut fastest = f64::MAX;
    let mut thr = 0.0;
    let mut ded_avg = 0.0;
    let mut ded_max: f64 = 0.0;
    for phase in 0..PHASES {
        let report = experiment::run_io_phase(
            platform,
            workload,
            strategy.clone(),
            ncores,
            seed.wrapping_add(phase * 7919),
        );
        avg += report.phase_duration;
        max = max.max(report.phase_duration);
        min = min.min(report.phase_duration);
        fastest = fastest.min(report.client_stats.min);
        thr += report.aggregate_throughput;
        ded_avg += report.dedicated_stats.mean;
        ded_max = ded_max.max(report.dedicated_stats.max);
    }
    let n = PHASES as f64;
    PhaseSummary {
        strategy: strategy.label().to_string(),
        ncores,
        avg_s: avg / n,
        max_s: max,
        min_s: min,
        fastest_proc_s: fastest,
        throughput: thr / n,
        dedicated_avg_s: ded_avg / n,
        dedicated_max_s: ded_max,
    }
}

impl PhaseSummary {
    /// JSON record for saving.
    pub fn to_json(&self) -> serde_json::Value {
        json!({
            "strategy": self.strategy,
            "ncores": self.ncores,
            "avg_s": self.avg_s,
            "max_s": self.max_s,
            "min_s": self.min_s,
            "fastest_proc_s": self.fastest_proc_s,
            "throughput_bytes_per_s": self.throughput,
            "dedicated_avg_s": self.dedicated_avg_s,
            "dedicated_max_s": self.dedicated_max_s,
        })
    }
}

/// Per-phase write durations for one (strategy, scale) cell: the raw
/// samples [`summarize_phases`] aggregates, exposed so figure binaries
/// can also emit them as `PhaseSample` trace records. Same seeds, so the
/// simulation reproduces the summary's numbers exactly.
pub fn phase_durations(
    platform: &PlatformSpec,
    workload: &WorkloadSpec,
    strategy: &Strategy,
    ncores: usize,
    seed: u64,
) -> Vec<f64> {
    (0..PHASES)
        .map(|phase| {
            experiment::run_io_phase(
                platform,
                workload,
                strategy.clone(),
                ncores,
                seed.wrapping_add(phase * 7919),
            )
            .phase_duration
        })
        .collect()
}

/// The three compared strategies with paper-default options.
pub fn standard_strategies() -> Vec<Strategy> {
    vec![
        Strategy::FilePerProcess,
        Strategy::CollectiveIo,
        Strategy::damaris(),
    ]
}

/// The Kraken platform + workload pair most figures use.
pub fn kraken_setup() -> (PlatformSpec, WorkloadSpec) {
    (platform::kraken(), WorkloadSpec::cm1_kraken())
}

/// Prints a header + rows as a fixed-width table.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n=== {title} ===");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
            .collect::<Vec<_>>()
            .join("  ")
    };
    println!(
        "{}",
        fmt_row(&header.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    );
    println!("{}", "-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

/// Formats seconds compactly.
pub fn fmt_s(v: f64) -> String {
    if v >= 100.0 {
        format!("{v:.0} s")
    } else if v >= 1.0 {
        format!("{v:.1} s")
    } else {
        format!("{:.2} s", v)
    }
}

/// Formats a throughput.
pub fn fmt_rate(v: f64) -> String {
    format_rate(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summaries_are_deterministic() {
        let (p, w) = kraken_setup();
        let a = summarize_phases(&p, &w, &Strategy::damaris(), 576, 1);
        let b = summarize_phases(&p, &w, &Strategy::damaris(), 576, 1);
        assert_eq!(a.avg_s, b.avg_s);
        assert_eq!(a.throughput, b.throughput);
    }

    #[test]
    fn formatting() {
        assert_eq!(fmt_s(481.2), "481 s");
        assert_eq!(fmt_s(17.26), "17.3 s");
        assert_eq!(fmt_s(0.207), "0.21 s");
    }
}
