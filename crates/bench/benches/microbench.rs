//! Criterion micro-benchmarks over the *real* components (no simulation):
//!
//! * the Damaris hot path — segment reservation + memcpy + event push for
//!   both allocators (the paper's claim that a client write costs a
//!   memcpy lives or dies here);
//! * the shared event queue;
//! * the codecs (§IV-D);
//! * SDF dataset writes;
//! * mini-MPI collectives;
//! * one mini-CM1 physics step.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use damaris_shm::{MpscQueue, MutexAllocator, PartitionAllocator};
use std::hint::black_box;

/// CM1-like payload: smooth field with noisy low bits.
fn field_bytes(n_values: usize) -> Vec<u8> {
    let mut h = 0x1234_5678u32;
    let mut out = Vec::with_capacity(n_values * 4);
    for i in 0..n_values {
        h = h.wrapping_mul(0x0100_0193) ^ h.rotate_left(13);
        let v = 300.0f32 + (i as f32 * 0.003).sin() * 4.0 + 1e-4 * (h >> 16) as f32;
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

fn bench_shm_write(c: &mut Criterion) {
    let mut group = c.benchmark_group("shm_write_path");
    let payload = field_bytes(64 * 1024); // 256 KiB
    group.throughput(Throughput::Bytes(payload.len() as u64));

    group.bench_function("mutex_allocator", |b| {
        let alloc = MutexAllocator::with_capacity(4 << 20);
        b.iter(|| {
            let mut seg = alloc.allocate(payload.len()).expect("fits");
            seg.copy_from_slice(black_box(&payload));
            alloc.release(seg);
        });
    });

    group.bench_function("partition_allocator", |b| {
        let alloc = PartitionAllocator::with_capacity(4 << 20, 1);
        b.iter(|| {
            let mut seg = alloc.allocate(0, payload.len()).expect("fits");
            seg.copy_from_slice(black_box(&payload));
            alloc.release(0, seg);
        });
    });

    group.bench_function("plain_memcpy_baseline", |b| {
        let mut dst = vec![0u8; payload.len()];
        b.iter(|| {
            dst.copy_from_slice(black_box(&payload));
            black_box(&dst);
        });
    });
    group.finish();
}

fn bench_event_queue(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_queue");
    group.bench_function("push_pop_cycle", |b| {
        let q: MpscQueue<u64> = MpscQueue::new(1024);
        b.iter(|| {
            q.push(black_box(7)).expect("space");
            black_box(q.pop().expect("item"));
        });
    });
    group.finish();
}

fn bench_codecs(c: &mut Criterion) {
    let mut group = c.benchmark_group("codecs");
    let data = field_bytes(256 * 1024); // 1 MiB
    group.throughput(Throughput::Bytes(data.len() as u64));
    group.sample_size(10);

    for name in ["rle", "lzss", "huff"] {
        let codec = damaris_compress::codec_by_name(name).expect("known codec");
        group.bench_with_input(BenchmarkId::new("encode", name), &data, |b, data| {
            b.iter(|| black_box(codec.encode_vec(black_box(data))));
        });
        let encoded = codec.encode_vec(&data);
        group.bench_with_input(BenchmarkId::new("decode", name), &encoded, |b, enc| {
            b.iter(|| black_box(codec.decode_vec(black_box(enc)).expect("valid")));
        });
    }

    let pipeline = damaris_compress::Pipeline::from_spec("precision16|lzss|huff").unwrap();
    group.bench_function("encode/precision16|lzss|huff", |b| {
        b.iter(|| black_box(pipeline.encode(black_box(&data)).expect("encode")));
    });
    group.finish();
}

fn bench_sdf(c: &mut Criterion) {
    use damaris_format::{DataType, Layout, SdfWriter};
    let mut group = c.benchmark_group("sdf_format");
    group.sample_size(20);
    let data: Vec<f32> = (0..128 * 1024).map(|i| i as f32).collect();
    let layout = Layout::new(DataType::F32, &[128 * 1024]);
    group.throughput(Throughput::Bytes((data.len() * 4) as u64));
    let dir = std::env::temp_dir().join(format!("damaris-bench-sdf-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");

    group.bench_function("write_dataset_512KiB", |b| {
        let mut n = 0u64;
        b.iter(|| {
            let path = dir.join(format!("bench-{n}.sdf"));
            n += 1;
            let mut w = SdfWriter::create(&path).expect("create");
            w.write_dataset_f32("/v", &layout, black_box(&data)).expect("write");
            black_box(w.finish().expect("finish"));
        });
    });
    group.finish();
    std::fs::remove_dir_all(&dir).ok();
}

fn bench_mpi(c: &mut Criterion) {
    use damaris_mpi::World;
    let mut group = c.benchmark_group("mini_mpi");
    group.sample_size(10);

    group.bench_function("allreduce_8ranks_x100", |b| {
        b.iter(|| {
            World::run(8, |comm| {
                let mut acc = 0.0;
                for i in 0..100 {
                    acc += comm.allreduce_sum_f64(&[f64::from(i)])[0];
                }
                black_box(acc);
            });
        });
    });

    group.bench_function("alltoallv_8ranks_64KiB_x10", |b| {
        b.iter(|| {
            World::run(8, |comm| {
                let chunk = bytes::Bytes::from(vec![0u8; 64 << 10]);
                for _ in 0..10 {
                    let chunks = vec![chunk.clone(); comm.size()];
                    black_box(comm.alltoallv(chunks));
                }
            });
        });
    });
    group.finish();
}

fn bench_cm1_step(c: &mut Criterion) {
    use damaris_cm1::{grid::Field3, physics};
    let mut group = c.benchmark_group("cm1_physics");
    let p = physics::PhysicsParams::default();
    let mut theta = Field3::new(44, 44, 50, 1);
    physics::init_warm_bubble(&mut theta, (0, 0), (44, 44, 50), 300.0, 5.0);
    group.throughput(Throughput::Elements((44 * 44 * 50) as u64));
    group.bench_function("advect_diffuse_44x44x50", |b| {
        b.iter(|| black_box(physics::advect_diffuse(black_box(&theta), &p)));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_shm_write,
    bench_event_queue,
    bench_codecs,
    bench_sdf,
    bench_mpi,
    bench_cm1_step
);
criterion_main!(benches);
