//! Criterion wrappers that tie `cargo bench` to the paper's evaluation:
//! one benchmark per figure/table, each running a representative slice of
//! the corresponding experiment (the full sweeps live in the `fig*_*`
//! binaries; see `cargo run -p damaris-bench --bin all_figures`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use damaris_sim::experiment::{run_io_phase, run_simulation};
use damaris_sim::{platform, Strategy, WorkloadSpec};
use std::hint::black_box;

fn fig2_write_phase(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig2_write_phase_kraken_2304");
    group.sample_size(10);
    let p = platform::kraken();
    let w = WorkloadSpec::cm1_kraken();
    for strategy in [
        Strategy::FilePerProcess,
        Strategy::CollectiveIo,
        Strategy::damaris(),
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(strategy.label()),
            &strategy,
            |b, s| {
                let mut seed = 0u64;
                b.iter(|| {
                    seed += 1;
                    black_box(run_io_phase(&p, &w, s.clone(), 2304, seed));
                });
            },
        );
    }
    group.finish();
}

fn fig3_blueprint_phase(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3_write_phase_blueprint_1024");
    group.sample_size(10);
    let p = platform::blueprint();
    let w = WorkloadSpec::cm1_blueprint(64.0);
    for strategy in [Strategy::FilePerProcess, Strategy::damaris()] {
        group.bench_with_input(
            BenchmarkId::from_parameter(strategy.label()),
            &strategy,
            |b, s| {
                let mut seed = 0u64;
                b.iter(|| {
                    seed += 1;
                    black_box(run_io_phase(&p, &w, s.clone(), 1024, seed));
                });
            },
        );
    }
    group.finish();
}

fn fig4_full_run(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4_run_50iters_kraken_1152");
    group.sample_size(10);
    let p = platform::kraken();
    let w = WorkloadSpec::cm1_kraken();
    for strategy in [
        Strategy::FilePerProcess,
        Strategy::CollectiveIo,
        Strategy::damaris(),
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(strategy.label()),
            &strategy,
            |b, s| {
                let mut seed = 0u64;
                b.iter(|| {
                    seed += 1;
                    black_box(run_simulation(&p, &w, s.clone(), 1152, 50, seed));
                });
            },
        );
    }
    group.finish();
}

fn table1_grid5000_phase(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_write_phase_grid5000_672");
    group.sample_size(10);
    let p = platform::grid5000_parapluie();
    let w = WorkloadSpec::cm1_grid5000();
    for strategy in [
        Strategy::FilePerProcess,
        Strategy::CollectiveIo,
        Strategy::damaris(),
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(strategy.label()),
            &strategy,
            |b, s| {
                let mut seed = 0u64;
                b.iter(|| {
                    seed += 1;
                    black_box(run_io_phase(&p, &w, s.clone(), 672, seed));
                });
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    fig2_write_phase,
    fig3_blueprint_phase,
    fig4_full_run,
    table1_grid5000_phase
);
criterion_main!(benches);
