//! Storage-pressure degradation, end to end: a live node driven to
//! `ENOSPC` by squeezing its [`DiskSentinel`] quota mid-run (the same
//! lever the chaos harness uses), verified through every `on_disk_full`
//! policy — and back to `Normal` once the quota lifts.

use damaris_core::{Config, NodeRuntime, PressureState};
use damaris_fs::{DiskSentinel, LocalDirBackend, StorageBackend};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn scratch(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let n = N.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("damaris-pressure-{tag}-{}-{n}", std::process::id()))
}

/// Polls `cond` until it holds or the 10s deadline passes.
fn wait_for(what: &str, mut cond: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(2));
    }
}

fn config(on_disk_full: &str, extra_resilience: &str) -> Config {
    Config::from_xml(&format!(
        r#"<damaris>
             <buffer size="4194304" allocator="partition" queue="64"/>
             <layout name="grid" type="real" dimensions="256"/>
             <variable name="theta" layout="grid"/>
             <resilience on_disk_full="{on_disk_full}" {extra_resilience}/>
           </damaris>"#
    ))
    .unwrap()
}

fn quota_backend(tag: &str) -> (Arc<LocalDirBackend>, Arc<DiskSentinel>, PathBuf) {
    let sentinel = Arc::new(DiskSentinel::unlimited());
    let dir = scratch(tag);
    let backend = Arc::new(
        LocalDirBackend::new(&dir)
            .unwrap()
            .with_sentinel(Arc::clone(&sentinel)),
    );
    (backend, sentinel, dir)
}

/// `drop-iteration`: iterations becoming ready while read-only are shed
/// whole (memory released, nothing persisted, counted to the digit), and
/// the node re-ascends to Normal when the quota lifts.
#[test]
fn squeeze_sheds_then_reascends_under_drop_policy() {
    let (backend, sentinel, dir) = quota_backend("drop");
    let runtime = NodeRuntime::start_with_backend(
        config("drop-iteration", ""),
        4,
        Arc::clone(&backend) as Arc<dyn StorageBackend>,
        0,
        Vec::new(),
    )
    .unwrap();
    let clients = runtime.clients();
    let write_iteration = |it: u32| {
        for (i, c) in clients.iter().enumerate() {
            c.write_f32("theta", it, &vec![i as f32; 256]).unwrap();
            c.end_iteration(it).unwrap();
        }
    };

    // Phase 1: two clean iterations land on disk.
    write_iteration(0);
    write_iteration(1);
    wait_for("phase-1 files", || {
        backend.list_sdf_files().unwrap().len() == 2
    });
    assert_eq!(runtime.pressure_state(), PressureState::Normal);

    // Phase 2: squeeze the quota to exactly what's used — the disk is
    // now full. The idle poll takes the node Normal → Degraded →
    // ReadOnly, and the next two iterations are shed.
    sentinel.set_quota(sentinel.used());
    wait_for("read-only", || {
        runtime.pressure_state() == PressureState::ReadOnly
    });
    write_iteration(2);
    write_iteration(3);
    wait_for("sheds", || {
        runtime.metrics_snapshot().counter("node.storage_pressure_sheds") == 2
    });
    assert_eq!(backend.list_sdf_files().unwrap().len(), 2);

    // Phase 3: lift the quota; the node steps back to Normal and the next
    // iteration persists again.
    sentinel.set_quota(u64::MAX);
    wait_for("recovery", || {
        runtime.pressure_state() == PressureState::Normal
    });
    write_iteration(4);
    wait_for("phase-3 file", || {
        backend.list_sdf_files().unwrap().len() == 3
    });

    wait_for("shm drained", || runtime.buffer_in_use() == 0);
    let report = runtime.finish().unwrap();
    assert_eq!(report.iterations_persisted, 3);
    assert_eq!(report.storage_pressure_sheds, 2);
    assert_eq!(report.iterations_degraded, 2);
    // Squeeze: Normal → Degraded → ReadOnly. Lift: ReadOnly → Degraded →
    // Normal. Exactly one read-only episode, two Degraded entries.
    assert_eq!(report.storage_pressure_degraded, 2);
    assert_eq!(report.storage_pressure_readonly, 1);
    assert_eq!(report.storage_pressure_recovered, 1);
    assert_eq!(report.persist_retries, 0, "no retry spinning on ENOSPC");
    std::fs::remove_dir_all(&dir).ok();
}

/// `block` (the default): ready iterations are held resident while
/// read-only — nothing is lost — and fire as soon as space returns.
#[test]
fn block_policy_holds_iterations_until_space_returns() {
    let (backend, sentinel, dir) = quota_backend("block");
    let runtime = NodeRuntime::start_with_backend(
        config("block", ""),
        1,
        Arc::clone(&backend) as Arc<dyn StorageBackend>,
        0,
        Vec::new(),
    )
    .unwrap();
    let client = &runtime.clients()[0];

    client.write_f32("theta", 0, &[1.0; 256]).unwrap();
    client.end_iteration(0).unwrap();
    wait_for("iteration 0", || {
        backend.list_sdf_files().unwrap().len() == 1
    });

    sentinel.set_quota(sentinel.used());
    wait_for("read-only", || {
        runtime.pressure_state() == PressureState::ReadOnly
    });
    client.write_f32("theta", 1, &[2.0; 256]).unwrap();
    client.end_iteration(1).unwrap();
    // The iteration is complete but held: resident in shared memory, not
    // on disk, not dropped.
    std::thread::sleep(Duration::from_millis(20));
    assert_eq!(backend.list_sdf_files().unwrap().len(), 1);
    assert!(runtime.buffer_in_use() > 0, "held iteration stays resident");
    assert_eq!(runtime.pressure_state(), PressureState::ReadOnly);

    // Space returns → the held iteration fires without any new event.
    sentinel.set_quota(u64::MAX);
    wait_for("held iteration fires", || {
        backend.list_sdf_files().unwrap().len() == 2
    });
    wait_for("shm drained", || runtime.buffer_in_use() == 0);

    let report = runtime.finish().unwrap();
    assert_eq!(report.iterations_persisted, 2);
    assert_eq!(report.iterations_degraded, 0);
    assert_eq!(report.storage_pressure_sheds, 0);
    assert_eq!(report.storage_pressure_recovered, 1);
    std::fs::remove_dir_all(&dir).ok();
}

/// `partial`: iterations fire while read-only and persist fails *fast* —
/// the permanent `ENOSPC` skips the whole retry/backoff budget (the
/// deadline below is 60s: if classification regressed to treating ENOSPC
/// as transient, this test would hang it out).
#[test]
fn partial_policy_fails_fast_without_retry_spin() {
    let (backend, sentinel, dir) = quota_backend("partial");
    let runtime = NodeRuntime::start_with_backend(
        config(
            "partial",
            r#"persist_retries="100" retry_base_ms="100" persist_deadline_ms="60000""#,
        ),
        1,
        Arc::clone(&backend) as Arc<dyn StorageBackend>,
        0,
        Vec::new(),
    )
    .unwrap();
    let client = &runtime.clients()[0];

    client.write_f32("theta", 0, &[1.0; 256]).unwrap();
    client.end_iteration(0).unwrap();
    wait_for("iteration 0", || {
        backend.list_sdf_files().unwrap().len() == 1
    });

    sentinel.set_quota(sentinel.used());
    wait_for("read-only", || {
        runtime.pressure_state() == PressureState::ReadOnly
    });
    let start = Instant::now();
    client.write_f32("theta", 1, &[2.0; 256]).unwrap();
    client.end_iteration(1).unwrap();
    wait_for("fast degrade", || {
        runtime.metrics_snapshot().counter("node.iterations_degraded") == 1
    });
    assert!(
        start.elapsed() < Duration::from_secs(30),
        "ENOSPC must short-circuit the 60s retry deadline"
    );
    wait_for("shm drained", || runtime.buffer_in_use() == 0);

    let report = runtime.finish().unwrap();
    // Iteration 1 *fired* (so it counts as processed, like any persist
    // exhaustion) but its data never reached disk.
    assert_eq!(report.iterations_persisted, 2);
    assert_eq!(backend.list_sdf_files().unwrap().len(), 1);
    assert_eq!(report.iterations_degraded, 1);
    assert_eq!(report.storage_pressure_sheds, 1);
    assert_eq!(report.persist_retries, 0, "permanent errors are not retried");
    std::fs::remove_dir_all(&dir).ok();
}
