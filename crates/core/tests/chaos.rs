//! Fault-injection (chaos) tests: a CM1-style workload driven through
//! [`FaultyBackend`] with a deterministic fault plan, exercising every
//! degradation policy end to end — persist retries, torn-write recovery,
//! plugin quarantine, and the client backpressure policies.

use damaris_core::{
    ActionContext, Config, DamarisError, EventInfo, NodeRuntime, Plugin, PluginFactory,
};
use damaris_format::SdfReader;
use damaris_fs::{recover_dir, FaultOp, FaultPlan, FaultyBackend, LocalDirBackend};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

fn scratch(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let n = N.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("damaris-chaos-{tag}-{}-{n}", std::process::id()))
}

/// A plugin that panics on every invocation — the misbehaving user action
/// the quarantine exists for.
struct PanickyPlugin;

impl Plugin for PanickyPlugin {
    fn name(&self) -> &str {
        "panicky"
    }
    fn handle(
        &mut self,
        _ctx: &mut ActionContext<'_>,
        event: &EventInfo,
    ) -> Result<(), DamarisError> {
        panic!("synthetic plugin panic at iteration {}", event.iteration);
    }
}

/// The acceptance scenario: a multi-iteration CM1-style workload survives
/// transient storage errors, one torn write, and a panicking plugin; the
/// surviving files CRC-validate, the torn file is quarantined by the
/// recovery scan, and the report's counters match the fault plan exactly.
#[test]
fn cm1_workload_survives_fault_plan() {
    let cfg = Config::from_xml(
        r#"<damaris>
             <buffer size="4194304" allocator="partition" queue="64"/>
             <layout name="grid" type="real" dimensions="512"/>
             <variable name="theta" layout="grid" unit="K"/>
             <variable name="wind" layout="grid" unit="m/s"/>
             <event name="chaos_panic" action="panicky"/>
             <resilience persist_retries="3" retry_base_ms="1"
                         persist_deadline_ms="2000" plugin_quarantine="2"/>
           </damaris>"#,
    )
    .unwrap();
    let dir = scratch("cm1");

    // Deterministic script (single client → one persist per iteration, in
    // order; begin/commit ordinals are 0-based per operation):
    //   iter 0: begin 0, commit 0                    — clean
    //   iter 1: commit 1 fails   → retry: begin 2, commit 2 — 1 retry
    //   iter 2: commit 3 tears   → published corrupt, "succeeds"
    //   iter 3: begin 4 fails    → retry: begin 5, commit 4 — 1 retry
    //   iter 4/5: clean
    let plan = FaultPlan::new()
        .fail_nth(FaultOp::Commit, 1)
        .tear_nth_commit(3, 1, 3)
        .fail_nth(FaultOp::Begin, 4);
    let backend = Arc::new(FaultyBackend::new(
        LocalDirBackend::new(&dir).unwrap(),
        plan,
    ));

    let panicky: PluginFactory = Box::new(|_| Ok(Box::new(PanickyPlugin) as Box<dyn Plugin>));
    let runtime = NodeRuntime::start_with_backend(
        cfg,
        1,
        Arc::clone(&backend) as Arc<dyn damaris_fs::StorageBackend>,
        0,
        vec![("panicky".to_string(), panicky)],
    )
    .unwrap();

    let client = &runtime.clients()[0];
    let iterations = 6u32;
    for it in 0..iterations {
        let theta: Vec<f32> = (0..512).map(|i| (it * 1000 + i) as f32).collect();
        let wind: Vec<f32> = theta.iter().map(|v| -v).collect();
        client.write_f32("theta", it, &theta).unwrap();
        client.write_f32("wind", it, &wind).unwrap();
        // Two panics quarantine the plugin; the third signal is absorbed
        // by the (now disabled) binding without counting a failure.
        if (1..=3).contains(&it) {
            client.signal("chaos_panic", it).unwrap();
        }
        client.end_iteration(it).unwrap();
    }
    let report = runtime.finish().expect("run completes despite the fault plan");

    // Counters match the injected plan to the digit.
    assert_eq!(report.iterations_persisted, 6);
    assert_eq!(report.persist_retries, 2);
    assert_eq!(report.iterations_degraded, 0);
    assert_eq!(report.plugin_failures, 2);
    assert_eq!(report.plugins_quarantined, 1);
    assert_eq!(report.user_events, 3);
    assert_eq!(report.recovery_actions, 0); // started from a clean dir
    assert_eq!(report.files_created, 6); // every commit eventually landed
    let injected = backend.injected();
    assert_eq!(injected.transient_errors.load(Ordering::SeqCst), 2);
    assert_eq!(injected.torn_writes.load(Ordering::SeqCst), 1);

    // Surviving iterations CRC-validate and hold the right data; the torn
    // iteration is detectably corrupt.
    for it in [0u32, 1, 3, 4, 5] {
        let path = dir.join(format!("node-0/iter-{it:06}.sdf"));
        let reader = SdfReader::open(&path).unwrap();
        reader.validate().unwrap();
        let theta = reader.read_f32(&format!("/iter-{it}/rank-0/theta")).unwrap();
        assert_eq!(theta[7], (it * 1000 + 7) as f32, "iteration {it}");
    }
    assert!(SdfReader::open(dir.join("node-0/iter-000002.sdf"))
        .and_then(|r| r.validate())
        .is_err());

    // The recovery scan (what the next startup runs) quarantines exactly
    // the torn file and leaves the five good ones.
    let scan = recover_dir(&dir).unwrap();
    assert_eq!(
        scan.quarantined,
        vec![PathBuf::from("node-0/iter-000002.sdf")]
    );
    assert_eq!(scan.valid.len(), 5);
    assert!(dir.join("node-0/iter-000002.sdf.quarantined").exists());
    std::fs::remove_dir_all(&dir).ok();
}

/// Persist exhausting its retry budget degrades the iteration — data is
/// dropped, shared memory is released, and later iterations still persist.
#[test]
fn exhausted_retries_degrade_not_abort() {
    let cfg = Config::from_xml(
        r#"<damaris>
             <buffer size="65536" allocator="mutex"/>
             <layout name="grid" type="real" dimensions="64"/>
             <variable name="v" layout="grid"/>
             <resilience persist_retries="2" retry_base_ms="1"
                         persist_deadline_ms="5000"/>
           </damaris>"#,
    )
    .unwrap();
    let dir = scratch("degraded");
    // First 6 commits fail: iteration 0 burns attempts 0..=2 and degrades,
    // iteration 1 burns 3..=5 and degrades, iteration 2 commits cleanly.
    let backend = Arc::new(FaultyBackend::new(
        LocalDirBackend::new(&dir).unwrap(),
        FaultPlan::new().fail_first(FaultOp::Commit, 6),
    ));
    let runtime = NodeRuntime::start_with_backend(
        cfg,
        1,
        backend as Arc<dyn damaris_fs::StorageBackend>,
        0,
        Vec::new(),
    )
    .unwrap();
    let client = &runtime.clients()[0];
    for it in 0..3u32 {
        client.write_f32("v", it, &[it as f32; 64]).unwrap();
        client.end_iteration(it).unwrap();
    }
    let report = runtime.finish().unwrap();
    assert_eq!(report.iterations_degraded, 2);
    assert_eq!(report.persist_retries, 4);
    assert_eq!(report.iterations_persisted, 3); // events all fired
    assert_eq!(report.files_created, 1); // only iteration 2 landed
    let reader = SdfReader::open(dir.join("node-0/iter-000002.sdf")).unwrap();
    assert_eq!(reader.read_f32("/iter-2/rank-0/v").unwrap(), [2.0; 64]);
    std::fs::remove_dir_all(&dir).ok();
}

/// The `block` policy's hard timeout: a write that can never be satisfied
/// (the iteration holding the space is never ended) surfaces as
/// [`DamarisError::Buffer`] instead of hanging forever.
#[test]
fn block_policy_times_out_with_buffer_error() {
    let cfg = Config::from_xml(
        r#"<damaris>
             <buffer size="4096" allocator="mutex"/>
             <layout name="big" type="real" dimensions="768"/>
             <variable name="a" layout="big"/>
             <variable name="b" layout="big"/>
             <resilience backpressure="block" timeout_ms="150"/>
           </damaris>"#,
    )
    .unwrap();
    let dir = scratch("block-timeout");
    let runtime = NodeRuntime::start(cfg, 1, &dir).unwrap();
    let client = &runtime.clients()[0];
    client.write_f32("a", 0, &[1.0; 768]).unwrap();
    // 3072 of 4096 bytes are resident and the iteration never ends, so
    // this reservation can never succeed.
    let t0 = std::time::Instant::now();
    let err = client.write_f32("b", 0, &[2.0; 768]).unwrap_err();
    assert!(matches!(err, DamarisError::Buffer(_)), "{err}");
    assert!(t0.elapsed() >= std::time::Duration::from_millis(150));
    drop(runtime); // terminate flushes the half-finished iteration
    std::fs::remove_dir_all(&dir).ok();
}

/// The `drop` policy: a write hitting a full buffer is counted and
/// discarded; the client and the rest of the iteration continue.
#[test]
fn drop_policy_sheds_writes_under_pressure() {
    let cfg = Config::from_xml(
        r#"<damaris>
             <buffer size="4096" allocator="mutex"/>
             <layout name="big" type="real" dimensions="768"/>
             <variable name="a" layout="big"/>
             <variable name="b" layout="big"/>
             <resilience backpressure="drop"/>
           </damaris>"#,
    )
    .unwrap();
    let dir = scratch("drop");
    let runtime = NodeRuntime::start(cfg, 1, &dir).unwrap();
    let client = &runtime.clients()[0];
    client.write_f32("a", 0, &[1.0; 768]).unwrap();
    client.write_f32("b", 0, &[2.0; 768]).unwrap(); // dropped, still Ok
    client.end_iteration(0).unwrap();
    let report = runtime.finish().unwrap();
    assert_eq!(report.writes_dropped, 1);
    assert_eq!(report.variables_received, 1);
    let reader = SdfReader::open(dir.join("node-0/iter-000000.sdf")).unwrap();
    assert!(reader.read_f32("/iter-0/rank-0/a").is_ok());
    assert!(reader.read_f32("/iter-0/rank-0/b").is_err());
    std::fs::remove_dir_all(&dir).ok();
}

/// The `sync-fallback` policy: the payload bypasses shared memory and is
/// written (crash-consistently) by the compute core itself.
#[test]
fn sync_fallback_writes_through_to_storage() {
    let cfg = Config::from_xml(
        r#"<damaris>
             <buffer size="4096" allocator="mutex"/>
             <layout name="big" type="real" dimensions="768"/>
             <variable name="a" layout="big"/>
             <variable name="b" layout="big"/>
             <resilience backpressure="sync-fallback"/>
           </damaris>"#,
    )
    .unwrap();
    let dir = scratch("sync-fallback");
    let runtime = NodeRuntime::start(cfg, 1, &dir).unwrap();
    let client = &runtime.clients()[0];
    client.write_f32("a", 0, &[1.0; 768]).unwrap();
    let data: Vec<f32> = (0..768).map(|i| i as f32).collect();
    client.write_f32("b", 0, &data).unwrap(); // diverted to storage
    client.end_iteration(0).unwrap();
    let report = runtime.finish().unwrap();
    assert_eq!(report.sync_fallback_writes, 1);
    assert_eq!(report.variables_received, 1);

    let fallback = dir.join("sync-fallback/rank-0/iter-000000-b.sdf");
    let reader = SdfReader::open(&fallback).unwrap();
    reader.validate().unwrap();
    assert_eq!(reader.read_f32("/iter-0/rank-0/b").unwrap(), data);
    let info = reader.info("/iter-0/rank-0/b").unwrap();
    assert_eq!(info.attr("sync_fallback").unwrap().as_i64(), Some(1));
    std::fs::remove_dir_all(&dir).ok();
}

/// Startup recovery: a directory left dirty by a "crashed" run is cleaned
/// (orphan tmp removed, torn file quarantined) before serving, and the
/// actions are reported.
#[test]
fn startup_recovery_cleans_dirty_directory() {
    let dir = scratch("startup-recovery");
    {
        let b = LocalDirBackend::new(&dir).unwrap();
        let layout = damaris_format::Layout::new(damaris_format::DataType::F32, &[32]);
        // A committed-then-torn file…
        let mut w = b.begin_sdf("node-0/iter-000099.sdf").unwrap();
        w.write_dataset_f32("/v", &layout, &[1.0; 32]).unwrap();
        b.commit_sdf(w).unwrap();
        let path = b.path_of("node-0/iter-000099.sdf");
        let len = std::fs::metadata(&path).unwrap().len();
        std::fs::OpenOptions::new()
            .write(true)
            .open(&path)
            .unwrap()
            .set_len(len / 2)
            .unwrap();
        // …and an orphan tmp from an interrupted commit.
        let mut w = b.begin_sdf("node-0/iter-000100.sdf").unwrap();
        w.write_dataset_f32("/v", &layout, &[2.0; 32]).unwrap();
        drop(w);
    }

    let cfg = Config::from_xml(
        r#"<damaris>
             <buffer size="65536"/>
             <layout name="grid" type="real" dimensions="32"/>
             <variable name="v" layout="grid"/>
           </damaris>"#,
    )
    .unwrap();
    let runtime = NodeRuntime::start(cfg, 1, &dir).unwrap();
    let client = &runtime.clients()[0];
    client.write_f32("v", 0, &[3.0; 32]).unwrap();
    client.end_iteration(0).unwrap();
    let report = runtime.finish().unwrap();
    assert_eq!(report.recovery_actions, 2);
    assert!(dir.join("node-0/iter-000099.sdf.quarantined").exists());
    assert!(!dir.join("node-0/iter-000100.sdf.tmp").exists());
    // The new run's output is fine.
    SdfReader::open(dir.join("node-0/iter-000000.sdf"))
        .unwrap()
        .validate()
        .unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

/// With `plugin_quarantine="0"` (the default), a failing plugin still
/// fails the run — but a *panicking* plugin now surfaces as a plugin
/// error instead of poisoning the dedicated-core thread.
#[test]
fn fail_fast_default_converts_panic_to_error() {
    let cfg = Config::from_xml(
        r#"<damaris>
             <buffer size="65536"/>
             <event name="boom" action="panicky"/>
           </damaris>"#,
    )
    .unwrap();
    let dir = scratch("fail-fast-panic");
    let panicky: PluginFactory = Box::new(|_| Ok(Box::new(PanickyPlugin) as Box<dyn Plugin>));
    let runtime =
        NodeRuntime::start_with_backend(
            cfg,
            1,
            Arc::new(LocalDirBackend::new(&dir).unwrap()),
            0,
            vec![("panicky".to_string(), panicky)],
        )
        .unwrap();
    runtime.clients()[0].signal("boom", 0).unwrap();
    let err = runtime.finish().unwrap_err();
    assert!(
        err.to_string().contains("synthetic plugin panic"),
        "{err}"
    );
    std::fs::remove_dir_all(&dir).ok();
}
