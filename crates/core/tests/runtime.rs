//! End-to-end tests of the node runtime: clients on real threads, the
//! dedicated-core server, both allocators, plugins, and SDF output.

use damaris_core::{Config, DamarisError, NodeRuntime};
use damaris_format::SdfReader;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

fn scratch(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let n = N.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("damaris-core-test-{tag}-{}-{n}", std::process::id()))
}

fn config(allocator: &str) -> Config {
    Config::from_xml(&format!(
        r#"<damaris>
             <buffer size="4194304" allocator="{allocator}" queue="64"/>
             <layout name="grid3d" type="real" dimensions="8,4,2"/>
             <layout name="scalars" type="double" dimensions="4"/>
             <variable name="theta" layout="grid3d" unit="K"/>
             <variable name="wind" layout="grid3d" unit="m/s"/>
             <variable name="diag" layout="scalars"/>
           </damaris>"#
    ))
    .expect("valid config")
}

#[test]
fn single_client_roundtrip() {
    let dir = scratch("single");
    let runtime = NodeRuntime::start(config("mutex"), 1, &dir).unwrap();
    let client = &runtime.clients()[0];

    let theta: Vec<f32> = (0..64).map(|i| 250.0 + i as f32).collect();
    let diag = [1.0f64, 2.0, 3.0, 4.0];
    client.write_f32("theta", 0, &theta).unwrap();
    client.write_f64("diag", 0, &diag).unwrap();
    client.end_iteration(0).unwrap();

    let report = runtime.finish().unwrap();
    assert_eq!(report.iterations_persisted, 1);
    assert_eq!(report.variables_received, 2);
    assert_eq!(report.bytes_received, 64 * 4 + 32);
    assert_eq!(report.files_created, 1);

    let reader = SdfReader::open(dir.join("node-0/iter-000000.sdf")).unwrap();
    assert_eq!(reader.read_f32("/iter-0/rank-0/theta").unwrap(), theta);
    assert_eq!(reader.read_f64("/iter-0/rank-0/diag").unwrap(), diag);
    let info = reader.info("/iter-0/rank-0/theta").unwrap();
    assert_eq!(info.attr("unit").unwrap().as_str(), Some("K"));
    assert_eq!(info.attr("iteration").unwrap().as_i64(), Some(0));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn multi_client_multi_iteration_both_allocators() {
    for allocator in ["mutex", "partition"] {
        let dir = scratch(&format!("multi-{allocator}"));
        let clients_n = 4;
        let iterations = 5u32;
        let runtime = NodeRuntime::start(config(allocator), clients_n, &dir).unwrap();
        let clients = runtime.clients();

        std::thread::scope(|s| {
            for client in clients {
                s.spawn(move || {
                    for it in 0..iterations {
                        let value = (client.id() * 1000 + it) as f32;
                        client.write_f32("theta", it, &vec![value; 64]).unwrap();
                        client.write_f32("wind", it, &vec![-value; 64]).unwrap();
                        client.end_iteration(it).unwrap();
                    }
                });
            }
        });

        let report = runtime.finish().unwrap();
        assert_eq!(report.iterations_persisted, u64::from(iterations), "{allocator}");
        assert_eq!(
            report.variables_received,
            u64::from(iterations) * clients_n as u64 * 2
        );
        assert_eq!(report.files_created, u64::from(iterations));

        // Every (iteration, rank, variable) persisted with correct content.
        for it in 0..iterations {
            let path = dir.join(format!("node-0/iter-{it:06}.sdf"));
            let reader = SdfReader::open(&path).unwrap();
            assert_eq!(reader.len(), clients_n * 2);
            for rank in 0..clients_n {
                let value = (rank as u32 * 1000 + it) as f32;
                let theta = reader
                    .read_f32(&format!("/iter-{it}/rank-{rank}/theta"))
                    .unwrap();
                assert!(theta.iter().all(|&v| v == value));
                let wind = reader
                    .read_f32(&format!("/iter-{it}/rank-{rank}/wind"))
                    .unwrap();
                assert!(wind.iter().all(|&v| v == -value));
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn zero_copy_alloc_commit() {
    let dir = scratch("alloc");
    let runtime = NodeRuntime::start(config("mutex"), 1, &dir).unwrap();
    let client = &runtime.clients()[0];

    let mut region = client.alloc("theta", 3).unwrap();
    for (i, v) in region.as_mut_f32().iter_mut().enumerate() {
        *v = i as f32 * 0.5;
    }
    region.commit().unwrap();
    client.end_iteration(3).unwrap();

    let report = runtime.finish().unwrap();
    assert_eq!(report.iterations_persisted, 1);
    let reader = SdfReader::open(dir.join("node-0/iter-000003.sdf")).unwrap();
    let data = reader.read_f32("/iter-3/rank-0/theta").unwrap();
    assert_eq!(data[10], 5.0);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn dropped_region_releases_without_writing() {
    let dir = scratch("drop");
    let runtime = NodeRuntime::start(config("mutex"), 1, &dir).unwrap();
    let client = &runtime.clients()[0];
    drop(client.alloc("theta", 0).unwrap());
    client.end_iteration(0).unwrap();
    let report = runtime.finish().unwrap();
    // No variable received: nothing persisted for the iteration… but the
    // end-of-iteration still fired with an empty store (no file created).
    assert_eq!(report.variables_received, 0);
    assert_eq!(report.files_created, 0);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn api_errors() {
    let dir = scratch("errors");
    let runtime = NodeRuntime::start(config("mutex"), 1, &dir).unwrap();
    let client = &runtime.clients()[0];

    assert!(matches!(
        client.write_f32("nope", 0, &[0.0]).unwrap_err(),
        DamarisError::UnknownVariable(_)
    ));
    assert!(matches!(
        client.write_f32("theta", 0, &[0.0; 10]).unwrap_err(),
        DamarisError::LayoutMismatch { .. }
    ));
    assert!(matches!(
        client.signal("unbound_event", 0).unwrap_err(),
        DamarisError::UnknownEvent(_)
    ));
    runtime.finish().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn oversized_variable_rejected_not_deadlocked() {
    // A variable bigger than the whole buffer must error (TooLarge), not
    // spin forever waiting for space.
    let cfg = Config::from_xml(
        r#"<damaris>
             <buffer size="1024" allocator="mutex"/>
             <layout name="big" type="real" dimensions="1024"/>
             <variable name="v" layout="big"/>
           </damaris>"#,
    )
    .unwrap();
    let dir = scratch("oversize");
    let runtime = NodeRuntime::start(cfg, 1, &dir).unwrap();
    let client = &runtime.clients()[0];
    let err = client.write_f32("v", 0, &[0.0; 1024]).unwrap_err();
    assert!(matches!(err, DamarisError::Buffer(_)));
    runtime.finish().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn buffer_pressure_resolves_by_draining() {
    // Buffer fits ~4 variables; write 40 per client: clients must block on
    // Full and make progress as the server persists and releases.
    let cfg = Config::from_xml(
        r#"<damaris>
             <buffer size="8192" allocator="mutex" queue="8"/>
             <layout name="chunk" type="real" dimensions="256"/>
             <variable name="v" layout="chunk"/>
           </damaris>"#,
    )
    .unwrap();
    let dir = scratch("pressure");
    let runtime = NodeRuntime::start(cfg, 2, &dir).unwrap();
    let clients = runtime.clients();
    // Clients synchronize per iteration, as a halo-exchanging simulation
    // does; unbounded skew between clients would need a buffer sized for
    // it (see DamarisClient docs).
    let gate = std::sync::Barrier::new(2);
    std::thread::scope(|s| {
        for client in clients {
            let gate = &gate;
            s.spawn(move || {
                for it in 0..40u32 {
                    client
                        .write_f32("v", it, &vec![it as f32; 256])
                        .unwrap();
                    client.end_iteration(it).unwrap();
                    gate.wait();
                }
            });
        }
    });
    let report = runtime.finish().unwrap();
    assert_eq!(report.iterations_persisted, 40);
    assert_eq!(report.variables_received, 80);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn compression_via_persist_filter() {
    let cfg = Config::from_xml(
        r#"<damaris>
             <buffer size="4194304"/>
             <layout name="grid" type="real" dimensions="4096"/>
             <variable name="field" layout="grid"/>
             <event name="end_of_iteration" action="persist" using="lzss"/>
           </damaris>"#,
    )
    .unwrap();
    let dir = scratch("compress");
    let runtime = NodeRuntime::start(cfg, 1, &dir).unwrap();
    let client = &runtime.clients()[0];
    // Highly compressible field.
    client.write_f32("field", 0, &vec![288.15; 4096]).unwrap();
    client.end_iteration(0).unwrap();
    let report = runtime.finish().unwrap();
    assert!(
        report.bytes_stored < report.bytes_received / 2,
        "stored {} of {}",
        report.bytes_stored,
        report.bytes_received
    );
    // And it reads back exactly.
    let reader = SdfReader::open(dir.join("node-0/iter-000000.sdf")).unwrap();
    let back = reader.read_f32("/iter-0/rank-0/field").unwrap();
    assert!(back.iter().all(|&v| v == 288.15));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn stats_plugin_via_signal() {
    let cfg = Config::from_xml(
        r#"<damaris>
             <buffer size="1048576"/>
             <layout name="grid" type="real" dimensions="128"/>
             <variable name="field" layout="grid"/>
             <event name="analyze" action="stats"/>
           </damaris>"#,
    )
    .unwrap();
    let dir = scratch("stats");
    let runtime = NodeRuntime::start(cfg, 1, &dir).unwrap();
    let client = &runtime.clients()[0];
    let data: Vec<f32> = (0..128).map(|i| i as f32).collect();
    client.write_f32("field", 7, &data).unwrap();
    client.signal("analyze", 7).unwrap();
    client.end_iteration(7).unwrap();
    let report = runtime.finish().unwrap();
    assert_eq!(report.user_events, 1);

    let stats = SdfReader::open(dir.join("node-0/stats-iter-000007.sdf")).unwrap();
    let row = stats.read_f64("/iter-7/rank-0/field.stats").unwrap();
    assert_eq!(row, vec![0.0, 127.0, 63.5]);
    // Data still persisted afterwards (stats is non-consuming).
    let data_file = SdfReader::open(dir.join("node-0/iter-000007.sdf")).unwrap();
    assert_eq!(data_file.read_f32("/iter-7/rank-0/field").unwrap(), data);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn unfinished_iteration_flushed_on_terminate() {
    let dir = scratch("flush");
    let runtime = NodeRuntime::start(config("mutex"), 2, &dir).unwrap();
    let clients = runtime.clients();
    clients[0].write_f32("theta", 0, &[1.0; 64]).unwrap();
    clients[0].end_iteration(0).unwrap();
    // Client 1 never ends the iteration; finish() must still persist.
    let report = runtime.finish().unwrap();
    assert_eq!(report.iterations_persisted, 1);
    let reader = SdfReader::open(dir.join("node-0/iter-000000.sdf")).unwrap();
    assert_eq!(reader.len(), 1);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn custom_plugin_receives_events() {
    use damaris_core::{ActionContext, EventInfo, Plugin, PluginFactory};
    use std::sync::atomic::AtomicU32;
    use std::sync::Arc;

    static FIRED: AtomicU32 = AtomicU32::new(0);

    struct Counter;
    impl Plugin for Counter {
        fn name(&self) -> &str {
            "counter"
        }
        fn handle(
            &mut self,
            _ctx: &mut ActionContext<'_>,
            event: &EventInfo,
        ) -> Result<(), DamarisError> {
            assert_eq!(event.name, "tick");
            FIRED.fetch_add(1, Ordering::SeqCst);
            Ok(())
        }
    }

    let cfg = Config::from_xml(
        r#"<damaris>
             <buffer size="65536"/>
             <event name="tick" action="count_ticks"/>
           </damaris>"#,
    )
    .unwrap();
    let dir = scratch("plugin");
    let factory: PluginFactory = Box::new(|_b| Ok(Box::new(Counter) as Box<dyn Plugin>));
    let runtime = NodeRuntime::start_with(
        cfg,
        1,
        &dir,
        3,
        vec![("count_ticks".to_string(), factory)],
    )
    .unwrap();
    let client = &runtime.clients()[0];
    let _ = Arc::new(());
    for it in 0..5 {
        client.signal("tick", it).unwrap();
    }
    let report = runtime.finish().unwrap();
    assert_eq!(report.user_events, 5);
    assert_eq!(FIRED.load(Ordering::SeqCst), 5);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn write_is_fast_relative_to_persist() {
    // The paper's core claim at library scale: the client-visible cost is a
    // memcpy, not the storage I/O. Compare time spent in write() vs the
    // wall time the server needs to drain everything.
    let cfg = Config::from_xml(
        r#"<damaris>
             <buffer size="67108864" allocator="partition"/>
             <layout name="big" type="real" dimensions="262144"/>
             <variable name="field" layout="big"/>
           </damaris>"#,
    )
    .unwrap();
    let dir = scratch("fast");
    let runtime = NodeRuntime::start(cfg, 2, &dir).unwrap();
    let clients = runtime.clients();
    let data = vec![1.0f32; 262_144]; // 1 MiB per write
    let t0 = std::time::Instant::now();
    std::thread::scope(|s| {
        for client in clients {
            let data = &data;
            s.spawn(move || {
                for it in 0..8u32 {
                    client.write_f32("field", it, data).unwrap();
                    client.end_iteration(it).unwrap();
                }
            });
        }
    });
    let client_time = t0.elapsed();
    let report = runtime.finish().unwrap();
    let total_time = t0.elapsed();
    assert_eq!(report.iterations_persisted, 8);
    // Clients must not be slower than the full pipeline end-to-end.
    assert!(client_time <= total_time);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn dynamic_shape_particle_writes() {
    // The paper's particle-simulation API: per-rank, per-iteration particle
    // counts vary; the shape travels with each write (§III-D).
    let cfg = Config::from_xml(
        r#"<damaris>
             <buffer size="1048576" allocator="mutex"/>
             <layout name="particles" type="real" dimensions="?"/>
             <variable name="pos" layout="particles"/>
           </damaris>"#,
    )
    .unwrap();
    let dir = scratch("dynamic");
    let runtime = NodeRuntime::start(cfg, 2, &dir).unwrap();
    let clients = runtime.clients();
    std::thread::scope(|s| {
        for client in clients {
            s.spawn(move || {
                for it in 0..3u32 {
                    // Particle count varies by rank and iteration.
                    let n = 10 + client.id() as usize * 5 + it as usize * 2;
                    let data: Vec<f32> = (0..n * 3).map(|i| i as f32).collect();
                    client
                        .write_dynamic_f32("pos", it, &[n as u64, 3], &data)
                        .unwrap();
                    client.end_iteration(it).unwrap();
                }
            });
        }
    });
    let report = runtime.finish().unwrap();
    assert_eq!(report.iterations_persisted, 3);

    // Shapes round-trip per (rank, iteration).
    for it in 0..3u32 {
        let reader = SdfReader::open(dir.join(format!("node-0/iter-{it:06}.sdf"))).unwrap();
        for rank in 0..2u32 {
            let n = 10 + rank as u64 * 5 + u64::from(it) * 2;
            let info = reader
                .info(&format!("/iter-{it}/rank-{rank}/pos"))
                .expect("dataset exists");
            assert_eq!(info.layout.dims, vec![n, 3], "it {it} rank {rank}");
            let data = reader
                .read_f32(&format!("/iter-{it}/rank-{rank}/pos"))
                .unwrap();
            assert_eq!(data.len() as u64, n * 3);
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn dynamic_and_static_apis_are_not_interchangeable() {
    let cfg = Config::from_xml(
        r#"<damaris>
             <buffer size="65536"/>
             <layout name="particles" type="real" dimensions="?"/>
             <layout name="grid" type="real" dimensions="8"/>
             <variable name="pos" layout="particles"/>
             <variable name="field" layout="grid"/>
           </damaris>"#,
    )
    .unwrap();
    let dir = scratch("dynmix");
    let runtime = NodeRuntime::start(cfg, 1, &dir).unwrap();
    let client = &runtime.clients()[0];
    // Static write on a dynamic variable → guided error.
    let err = client.write_f32("pos", 0, &[0.0; 8]).unwrap_err();
    assert!(err.to_string().contains("write_dynamic"), "{err}");
    // Dynamic write on a static variable → guided error.
    let err = client
        .write_dynamic_f32("field", 0, &[8], &[0.0; 8])
        .unwrap_err();
    assert!(err.to_string().contains("static layout"), "{err}");
    // Shape/size mismatch → layout error.
    let err = client
        .write_dynamic_f32("pos", 0, &[4, 3], &[0.0; 5])
        .unwrap_err();
    assert!(matches!(err, DamarisError::LayoutMismatch { .. }));
    runtime.finish().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn plugin_failure_surfaces_in_finish() {
    use damaris_core::{ActionContext, EventInfo, Plugin, PluginFactory};

    struct Exploder;
    impl Plugin for Exploder {
        fn name(&self) -> &str {
            "exploder"
        }
        fn handle(
            &mut self,
            _ctx: &mut ActionContext<'_>,
            _event: &EventInfo,
        ) -> Result<(), DamarisError> {
            Err(DamarisError::Plugin {
                plugin: "exploder".into(),
                message: "synthetic failure".into(),
            })
        }
    }

    let cfg = Config::from_xml(
        r#"<damaris>
             <buffer size="65536"/>
             <event name="boom" action="explode"/>
           </damaris>"#,
    )
    .unwrap();
    let dir = scratch("explode");
    let factory: PluginFactory = Box::new(|_| Ok(Box::new(Exploder) as Box<dyn Plugin>));
    let runtime =
        NodeRuntime::start_with(cfg, 1, &dir, 0, vec![("explode".into(), factory)]).unwrap();
    runtime.clients()[0].signal("boom", 0).unwrap();
    let err = runtime.finish().unwrap_err();
    assert!(err.to_string().contains("synthetic failure"), "{err}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn visualize_action_renders_previews() {
    let cfg = Config::from_xml(
        r#"<damaris>
             <buffer size="1048576"/>
             <layout name="grid" type="real" dimensions="4,8,8"/>
             <variable name="theta" layout="grid"/>
             <event name="end_of_iteration" action="visualize"/>
             <event name="end_of_iteration" action="persist"/>
           </damaris>"#,
    )
    .unwrap();
    let dir = scratch("viz");
    let runtime = NodeRuntime::start(cfg, 1, &dir).unwrap();
    let client = &runtime.clients()[0];
    let data: Vec<f32> = (0..4 * 8 * 8).map(|i| (i % 13) as f32).collect();
    client.write_f32("theta", 0, &data).unwrap();
    client.end_iteration(0).unwrap();
    let report = runtime.finish().unwrap();
    assert_eq!(report.iterations_persisted, 1);

    // A PGM preview and a preview SDF exist alongside the data file.
    let pgm = dir.join("node-0/preview-iter-000000-rank-0-theta.pgm");
    let bytes = std::fs::read(&pgm).expect("pgm rendered");
    assert!(bytes.starts_with(b"P5\n8 8\n255\n"));
    let preview = SdfReader::open(dir.join("node-0/preview-iter-000000.sdf")).unwrap();
    let pixels = preview.read_bytes("/iter-0/rank-0-theta").unwrap();
    assert_eq!(pixels.len(), 64);
    // Data still persisted (visualize is non-consuming, fires first).
    let data_file = SdfReader::open(dir.join("node-0/iter-000000.sdf")).unwrap();
    assert_eq!(data_file.read_f32("/iter-0/rank-0/theta").unwrap(), data);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn peak_residency_reported() {
    let cfg = Config::from_xml(
        r#"<damaris>
             <buffer size="1048576"/>
             <layout name="grid" type="real" dimensions="1024"/>
             <variable name="a" layout="grid"/>
             <variable name="b" layout="grid"/>
           </damaris>"#,
    )
    .unwrap();
    let dir = scratch("peak");
    let runtime = NodeRuntime::start(cfg, 1, &dir).unwrap();
    let client = &runtime.clients()[0];
    client.write_f32("a", 0, &[1.0; 1024]).unwrap();
    client.write_f32("b", 0, &[2.0; 1024]).unwrap();
    client.end_iteration(0).unwrap();
    let report = runtime.finish().unwrap();
    // Both variables were resident simultaneously before the persist.
    assert_eq!(report.peak_resident_bytes, 2 * 1024 * 4);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn external_tools_can_inject_events() {
    // §III-A: events come from the simulation OR from external tools — a
    // thread that holds no client triggers configured actions directly on
    // the runtime.
    let cfg = Config::from_xml(
        r#"<damaris>
             <buffer size="65536"/>
             <layout name="grid" type="real" dimensions="16"/>
             <variable name="field" layout="grid"/>
             <event name="steer" action="stats"/>
           </damaris>"#,
    )
    .unwrap();
    let dir = scratch("inject");
    let runtime = NodeRuntime::start(cfg, 1, &dir).unwrap();
    let client = &runtime.clients()[0];
    client.write_f32("field", 0, &[4.0; 16]).unwrap();

    // The "external tool": no DamarisClient, just the runtime handle.
    runtime.inject_event("steer", 0).unwrap();
    assert!(matches!(
        runtime.inject_event("unbound", 0).unwrap_err(),
        DamarisError::UnknownEvent(_)
    ));

    client.end_iteration(0).unwrap();
    let report = runtime.finish().unwrap();
    assert_eq!(report.user_events, 1);
    let stats = SdfReader::open(dir.join("node-0/stats-iter-000000.sdf")).unwrap();
    let row = stats.read_f64("/iter-0/rank-0/field.stats").unwrap();
    assert_eq!(row, vec![4.0, 4.0, 4.0]);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn rewrites_across_iterations_respect_fifo_release() {
    // Regression: a same-(iteration, variable, source) rewrite used to
    // release the displaced segment on the spot. With the partitioned
    // allocator that is an out-of-order release whenever an *older*
    // retained segment is still live — here, client 0 runs a full
    // iteration ahead while client 1 has not ended the iteration yet —
    // and the broken tail arithmetic wedged the region permanently
    // "full". Displaced segments are now held until their iteration
    // fires. (Found by the obs_overhead gate in crates/bench.)
    let dir = scratch("fifo-rewrite");
    let runtime = NodeRuntime::start(config("partition"), 2, &dir).unwrap();
    let clients = runtime.clients();
    let (fast, slow) = (&clients[0], &clients[1]);
    let iterations = 8u32;
    for it in 0..iterations {
        // Rewrite: the second copy displaces the first server-side while
        // the previous iteration's retained segment is still resident.
        fast.write_f64("diag", it, &[0.0; 4]).unwrap();
        fast.write_f64("diag", it, &[f64::from(it); 4]).unwrap();
        fast.end_iteration(it).unwrap();
    }
    for it in 0..iterations {
        slow.write_f64("diag", it, &[-f64::from(it); 4]).unwrap();
        slow.end_iteration(it).unwrap();
    }
    let report = runtime.finish().unwrap();
    assert_eq!(report.iterations_persisted, u64::from(iterations));
    // The last copy of each rewrite is the one that persisted.
    for it in 0..iterations {
        let reader = SdfReader::open(dir.join(format!("node-0/iter-{it:06}.sdf"))).unwrap();
        assert_eq!(
            reader.read_f64(&format!("/iter-{it}/rank-0/diag")).unwrap(),
            [f64::from(it); 4]
        );
        assert_eq!(
            reader.read_f64(&format!("/iter-{it}/rank-1/diag")).unwrap(),
            [-f64::from(it); 4]
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}
