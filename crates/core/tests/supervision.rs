//! Dedicated-core crash recovery acceptance tests: the supervisor respawns
//! a dead event-processing engine, the write-ahead journal replays
//! unprocessed events exactly once, re-adopted shared memory balances to
//! zero, and clients watching the heartbeat degrade per their
//! backpressure policy when no respawn arrives.

use damaris_core::{
    ActionContext, Config, DamarisError, EventInfo, NodeRuntime, Plugin, PluginFactory,
};
use damaris_fs::LocalDirBackend;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

fn scratch(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let n = N.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("damaris-sup-{tag}-{}-{n}", std::process::id()))
}

/// Kills the server on its first invocation (error return), succeeds on
/// later ones — the "EPE crash" trigger for respawn tests.
struct KillOnce {
    fired: Arc<AtomicU64>,
}

impl Plugin for KillOnce {
    fn name(&self) -> &str {
        "kill-once"
    }
    fn handle(
        &mut self,
        _ctx: &mut ActionContext<'_>,
        _event: &EventInfo,
    ) -> Result<(), DamarisError> {
        if self.fired.fetch_add(1, Ordering::SeqCst) == 0 {
            // Let the (fast, non-blocking) client pushes queued behind this
            // event land in the journal before the crash, so replay sees
            // the full backlog and the counter assertions are exact.
            std::thread::sleep(std::time::Duration::from_millis(200));
            return Err(DamarisError::Plugin {
                plugin: "kill-once".into(),
                message: "synthetic dedicated-core crash".into(),
            });
        }
        Ok(())
    }
}

/// Panics (instead of erroring) on first invocation — exercises the
/// supervisor's catch-the-poisoned-thread respawn path.
struct PanicOnce {
    fired: Arc<AtomicU64>,
}

impl Plugin for PanicOnce {
    fn name(&self) -> &str {
        "panic-once"
    }
    fn handle(
        &mut self,
        _ctx: &mut ActionContext<'_>,
        _event: &EventInfo,
    ) -> Result<(), DamarisError> {
        if self.fired.fetch_add(1, Ordering::SeqCst) == 0 {
            panic!("synthetic dedicated-core panic");
        }
        Ok(())
    }
}

fn kill_once_factory(counter: &Arc<AtomicU64>) -> PluginFactory {
    let fired = Arc::clone(counter);
    Box::new(move |_| {
        Ok(Box::new(KillOnce {
            fired: Arc::clone(&fired),
        }) as Box<dyn Plugin>)
    })
}

const SUP_XML: &str = r#"<damaris>
     <buffer size="1048576" allocator="partition" queue="64"/>
     <layout name="grid" type="real" dimensions="256"/>
     <variable name="theta" layout="grid" unit="K"/>
     <event name="kill" action="kill-once"/>
     <resilience epe_respawn="1"/>
   </damaris>"#;

/// The tentpole acceptance test: 4 clients on one node, the dedicated core
/// is killed mid-queue by a poisoned event, the supervisor respawns it
/// with a bumped epoch, and the journal replay re-adopts every resident
/// segment and replays every unprocessed notification exactly once — the
/// persisted SDF file is byte-identical to an uninterrupted run's, and the
/// allocator accounting balances back to zero.
#[test]
fn epe_kill_replays_exactly_once_and_output_is_byte_identical() {
    // --- Interrupted run -------------------------------------------------
    let dir = scratch("kill");
    let cfg = Config::from_xml(SUP_XML).unwrap();
    let fired = Arc::new(AtomicU64::new(0));
    let runtime = NodeRuntime::start_with_backend(
        cfg,
        4,
        Arc::new(LocalDirBackend::new(&dir).unwrap()),
        0,
        vec![("kill-once".to_string(), kill_once_factory(&fired))],
    )
    .unwrap();
    let clients = runtime.clients();
    // Queue order: w0 w1 w2 w3, K (server dies mid-event), e0 e1 e2 e3.
    for client in &clients {
        let data: Vec<f32> = (0..256).map(|i| (client.id() * 1000 + i) as f32).collect();
        client.write_f32("theta", 0, &data).unwrap();
    }
    clients[0].signal("kill", 0).unwrap();
    for client in &clients {
        client.end_iteration(0).unwrap();
    }
    let report = runtime.finish().expect("respawned server completes the run");

    // The poisoned event fired exactly once: it was journaled Applied
    // *before* dispatch, so the respawn did not re-fire it (at-most-once
    // for side-effecting user events).
    assert_eq!(fired.load(Ordering::SeqCst), 1);
    assert_eq!(report.epe_respawns, 1);
    // Replay re-adopted the 4 resident writes and replayed the 4 journaled
    // end-of-iteration notifications the dead incarnation never popped…
    assert_eq!(report.events_replayed, 8);
    // …whose stale queue copies were then rejected by claim arbitration.
    assert_eq!(report.stale_events_rejected, 4);
    assert_eq!(report.variables_received, 4);
    assert_eq!(report.iterations_persisted, 1);
    assert_eq!(report.bytes_received, 4 * 256 * 4);
    // No shared-memory leaks: every segment the dead incarnation held was
    // re-adopted and eventually released.
    assert_eq!(clients[0].buffer_in_use(), 0);

    // --- Uninterrupted control run ---------------------------------------
    let control_dir = scratch("control");
    let cfg = Config::from_xml(SUP_XML).unwrap();
    let fired_control = Arc::new(AtomicU64::new(0));
    let control = NodeRuntime::start_with_backend(
        cfg,
        4,
        Arc::new(LocalDirBackend::new(&control_dir).unwrap()),
        0,
        vec![("kill-once".to_string(), kill_once_factory(&fired_control))],
    )
    .unwrap();
    let control_clients = control.clients();
    for client in &control_clients {
        let data: Vec<f32> = (0..256).map(|i| (client.id() * 1000 + i) as f32).collect();
        client.write_f32("theta", 0, &data).unwrap();
    }
    for client in &control_clients {
        client.end_iteration(0).unwrap();
    }
    let control_report = control.finish().unwrap();
    assert_eq!(control_report.epe_respawns, 0);
    assert_eq!(control_report.iterations_persisted, 1);

    // Crash, respawn, replay — and the persisted file is bit-for-bit what
    // an undisturbed dedicated core would have produced.
    let interrupted = std::fs::read(dir.join("node-0/iter-000000.sdf")).unwrap();
    let uninterrupted = std::fs::read(control_dir.join("node-0/iter-000000.sdf")).unwrap();
    assert_eq!(interrupted, uninterrupted);

    std::fs::remove_dir_all(&dir).ok();
    std::fs::remove_dir_all(&control_dir).ok();
}

/// Heartbeat staleness under the `block` policy: when the dedicated core
/// dies and no respawn budget remains, a blocked client surfaces
/// [`DamarisError::EpeUnavailable`] with the node and last epoch attached
/// instead of hanging until the block timeout lies to it.
#[test]
fn stale_heartbeat_block_policy_reports_epe_unavailable() {
    let cfg = Config::from_xml(
        r#"<damaris>
             <buffer size="4096" allocator="mutex"/>
             <layout name="big" type="real" dimensions="768"/>
             <variable name="a" layout="big"/>
             <variable name="b" layout="big"/>
             <event name="boom" action="kill-once"/>
             <resilience backpressure="block" timeout_ms="900"
                         heartbeat_timeout_ms="200"/>
           </damaris>"#,
    )
    .unwrap();
    let dir = scratch("stale-block");
    let fired = Arc::new(AtomicU64::new(0));
    let runtime = NodeRuntime::start_with_backend(
        cfg,
        1,
        Arc::new(LocalDirBackend::new(&dir).unwrap()),
        0,
        vec![("kill-once".to_string(), kill_once_factory(&fired))],
    )
    .unwrap();
    let client = runtime.clients().remove(0);
    // Kill the server (epe_respawn defaults to 0: no successor will come).
    client.signal("boom", 0).unwrap();
    // Space for this one lands fine — allocation never needs the server.
    client.write_f32("a", 0, &[1.0; 768]).unwrap();
    // This one can never be satisfied; the heartbeat goes stale ~200ms in
    // and the block policy parks for a new epoch that never arrives.
    let t0 = std::time::Instant::now();
    let err = client.write_f32("b", 0, &[2.0; 768]).unwrap_err();
    match err {
        DamarisError::EpeUnavailable { node_id, epoch } => {
            assert_eq!(node_id, 0);
            assert_eq!(epoch, 0);
        }
        other => panic!("expected EpeUnavailable, got {other}"),
    }
    // It waited out the full block budget hoping for a respawn…
    assert!(t0.elapsed() >= std::time::Duration::from_millis(700));
    // …and the failed run still reports the crash, not a clean exit.
    let run_err = runtime.finish().unwrap_err();
    assert!(run_err.to_string().contains("synthetic"), "{run_err}");
    std::fs::remove_dir_all(&dir).ok();
}

/// Heartbeat staleness under `sync-fallback`: writes divert to storage
/// immediately once the dedicated core is presumed dead, and the liveness
/// trigger is counted separately from ordinary buffer-full fallbacks.
#[test]
fn stale_heartbeat_sync_fallback_diverts_and_counts() {
    let cfg = Config::from_xml(
        r#"<damaris>
             <buffer size="4096" allocator="mutex"/>
             <layout name="big" type="real" dimensions="768"/>
             <variable name="a" layout="big"/>
             <variable name="b" layout="big"/>
             <event name="boom" action="kill-once"/>
             <resilience backpressure="sync-fallback" heartbeat_timeout_ms="150"/>
           </damaris>"#,
    )
    .unwrap();
    let dir = scratch("stale-sync");
    let fired = Arc::new(AtomicU64::new(0));
    let runtime = NodeRuntime::start_with_backend(
        cfg,
        1,
        Arc::new(LocalDirBackend::new(&dir).unwrap()),
        0,
        vec![("kill-once".to_string(), kill_once_factory(&fired))],
    )
    .unwrap();
    let client = runtime.clients().remove(0);
    client.signal("boom", 0).unwrap(); // server dies, heartbeat freezes
    client.write_f32("a", 0, &[1.0; 768]).unwrap(); // fills the buffer
    // First diversion: ordinary buffer-full fallback (grace expires before
    // the liveness window does); it also primes the staleness tracker.
    client.write_f32("b", 0, &[2.0; 768]).unwrap();
    std::thread::sleep(std::time::Duration::from_millis(250));
    // Second diversion: the heartbeat has now been flat past the window —
    // the client sheds to storage on the *first* failed reservation.
    let t0 = std::time::Instant::now();
    client.write_f32("b", 1, &[3.0; 768]).unwrap();
    assert!(t0.elapsed() < std::time::Duration::from_millis(100));
    assert_eq!(runtime.heartbeat_stale_observed(), 1);

    // Both payloads reached storage through the write-through path, fully
    // readable (the run itself ends in the synthetic crash error).
    for (iter, val) in [(0u32, 2.0f32), (1, 3.0)] {
        let path = dir.join(format!("sync-fallback/rank-0/iter-{iter:06}-b.sdf"));
        let reader = damaris_format::SdfReader::open(&path).unwrap();
        reader.validate().unwrap();
        assert_eq!(
            reader.read_f32(&format!("/iter-{iter}/rank-0/b")).unwrap(),
            [val; 768]
        );
    }
    let run_err = runtime.finish().unwrap_err();
    assert!(run_err.to_string().contains("synthetic"), "{run_err}");
    std::fs::remove_dir_all(&dir).ok();
}

/// A *panicking* (not erroring) dedicated core is also respawned, and the
/// run completes: the supervisor's poisoned-thread path works too.
#[test]
fn panicked_epe_is_respawned_within_budget() {
    let cfg = Config::from_xml(
        r#"<damaris>
             <buffer size="262144" allocator="mutex"/>
             <layout name="grid" type="real" dimensions="64"/>
             <variable name="v" layout="grid"/>
             <event name="panic" action="panic-once"/>
             <resilience epe_respawn="2" plugin_quarantine="0"/>
           </damaris>"#,
    )
    .unwrap();
    let dir = scratch("panic-respawn");
    let fired = Arc::new(AtomicU64::new(0));
    let fired2 = Arc::clone(&fired);
    let factory: PluginFactory = Box::new(move |_| {
        Ok(Box::new(PanicOnce {
            fired: Arc::clone(&fired2),
        }) as Box<dyn Plugin>)
    });
    let runtime = NodeRuntime::start_with_backend(
        cfg,
        1,
        Arc::new(LocalDirBackend::new(&dir).unwrap()),
        0,
        vec![("panic-once".to_string(), factory)],
    )
    .unwrap();
    let client = runtime.clients().remove(0);
    client.write_f32("v", 0, &[5.0; 64]).unwrap();
    client.signal("panic", 0).unwrap(); // thread dies by panic
    client.end_iteration(0).unwrap();
    let report = runtime.finish().expect("respawn absorbs the panic");
    assert_eq!(report.epe_respawns, 1);
    assert_eq!(report.iterations_persisted, 1);
    let reader =
        damaris_format::SdfReader::open(dir.join("node-0/iter-000000.sdf")).unwrap();
    assert_eq!(reader.read_f32("/iter-0/rank-0/v").unwrap(), [5.0; 64]);
    std::fs::remove_dir_all(&dir).ok();
}
