//! Client-rank failure containment (liveness leases): a rank that stops
//! renewing its lease is fenced by the dedicated core's sweeper, its
//! shared-memory partition is reclaimed, torn segments are quarantined by
//! the end-to-end CRC, and the surviving ranks keep flowing under the
//! configured `on_client_failure` policy.
//!
//! The sweeper's deadlines run on the backend's [`IoClock`], so these
//! tests drive a [`VirtualClock`]: lease expiry costs no wall time and the
//! kill points are deterministic.

use damaris_core::{Config, DamarisError, NodeRuntime};
use damaris_format::SdfReader;
use damaris_fs::{recover_dir, FaultPlan, FaultyBackend, IoClock, LocalDirBackend, VirtualClock};
use proptest::prelude::*;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn scratch(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let n = N.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("damaris-lease-{tag}-{}-{n}", std::process::id()))
}

fn resilient_config(policy: &str) -> Config {
    Config::from_xml(&format!(
        r#"<damaris>
             <buffer size="4194304" allocator="partition" queue="64"/>
             <layout name="grid" type="real" dimensions="512"/>
             <variable name="theta" layout="grid"/>
             <resilience on_client_failure="{policy}" client_lease_timeout_ms="500"/>
           </damaris>"#
    ))
    .unwrap()
}

/// Per-(iteration, rank) payload — varying the bytes matters: a torn
/// `memcpy` into a recycled partition slot could otherwise leave exactly
/// the previous iteration's identical bytes behind and defeat the CRC.
fn payload(iteration: u32, rank: u32) -> Vec<f32> {
    (0..512)
        .map(|i| (iteration * 100_000 + rank * 1000 + i) as f32)
        .collect()
}

fn start_virtual(
    policy: &str,
    n_clients: usize,
    dir: &PathBuf,
) -> (NodeRuntime, Arc<VirtualClock>) {
    let clock = Arc::new(VirtualClock::new());
    let backend = Arc::new(
        FaultyBackend::new(LocalDirBackend::new(dir).unwrap(), FaultPlan::new())
            .with_clock(Arc::clone(&clock) as Arc<dyn IoClock>),
    );
    let runtime =
        NodeRuntime::start_with_backend(resilient_config(policy), n_clients, backend, 0, vec![])
            .unwrap();
    (runtime, clock)
}

/// Advances virtual time until the sweeper has fenced a rank (observed
/// through the live `node.client_leases_expired` counter — calling the
/// dead rank's API would *renew* its lease and keep it alive). The
/// `survivors` keep renewing, as live ranks naturally do on every API
/// call — otherwise the sweeper would see *their* snapshots frozen past
/// the deadline and fence them too.
fn wait_for_fence(
    runtime: &NodeRuntime,
    clock: &VirtualClock,
    survivors: &[&damaris_core::DamarisClient],
) {
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    while runtime
        .metrics_snapshot()
        .counter("node.client_leases_expired")
        == 0
    {
        for c in survivors {
            c.renew_lease().unwrap();
        }
        clock.advance(Duration::from_millis(50));
        assert!(
            std::time::Instant::now() < deadline,
            "sweeper never fenced the dead rank"
        );
        std::thread::sleep(Duration::from_millis(1));
    }
}

/// S1 regression: a client dropping an uncommitted [`AllocatedRegion`]
/// must NOT release the segment from the compute core. An older write of
/// the same rank is still resident on the server, so a client-side release
/// is out of FIFO order — the old `Drop` impl panicked the partitioned
/// allocator here. The fix journals an `Abandon` and ships the segment to
/// the dedicated core, which releases it with the iteration's flush.
#[test]
fn abandoned_region_defers_release_to_the_dedicated_core() {
    let cfg = Config::from_xml(
        r#"<damaris>
             <buffer size="1048576" allocator="partition" queue="16"/>
             <layout name="grid" type="real" dimensions="512"/>
             <variable name="theta" layout="grid"/>
             <variable name="wind" layout="grid"/>
           </damaris>"#,
    )
    .unwrap();
    let dir = scratch("abandon");
    let runtime = NodeRuntime::start(cfg, 1, &dir).unwrap();
    let clients = runtime.clients();
    let client = &clients[0];

    let theta = payload(0, 0);
    client.write_f32("theta", 0, &theta).unwrap();
    // The write above is still resident server-side, so this later
    // allocation sits *behind* it in the partition FIFO.
    let region = client.alloc("wind", 0).unwrap();
    drop(region);
    client.end_iteration(0).unwrap();

    let report = runtime.finish().unwrap();
    assert_eq!(report.iterations_persisted, 1);
    // Both the written and the abandoned segment came back, in order.
    assert_eq!(client.buffer_in_use(), 0);
    // The abandoned region was never committed: only theta persisted.
    let reader = SdfReader::open(dir.join("node-0/iter-000000.sdf")).unwrap();
    assert_eq!(reader.read_f32("/iter-0/rank-0/theta").unwrap(), theta);
    assert!(reader.read_f32("/iter-0/rank-0/wind").is_err());
    std::fs::remove_dir_all(&dir).ok();
}

/// The tentpole E2E under `on_client_failure="partial"`: rank 1 of four
/// dies mid-`memcpy` (torn segment, notification already out) and leaks an
/// un-journaled reservation. The sweeper fences it within the lease
/// window, reclaims its partition, the CRC gate quarantines the torn
/// segment, the affected iterations persist partially with a presence
/// bitmap the recovery scan reads back, and the survivors run a further
/// full iteration without ever blocking on a full buffer.
#[test]
fn dead_client_is_fenced_reclaimed_and_survivors_keep_flowing() {
    let dir = scratch("partial");
    let (runtime, clock) = start_virtual("partial", 4, &dir);
    let clients = runtime.clients();
    let survivors = [&clients[0], &clients[2], &clients[3]];

    // Iteration 0: everyone completes.
    for c in &clients {
        c.write_f32("theta", 0, &payload(0, c.id())).unwrap();
        c.end_iteration(0).unwrap();
    }

    // Iteration 1: rank 1 tears its write, leaks a reservation, and goes
    // silent; the other three complete normally.
    let intended: Vec<u8> = payload(1, 1).iter().flat_map(|v| v.to_le_bytes()).collect();
    clients[1].die_during_write("theta", 1, &intended).unwrap();
    let leaked = clients[1].die_during_alloc("theta").unwrap();
    assert!(leaked > 0);
    for c in survivors {
        c.write_f32("theta", 1, &payload(1, c.id())).unwrap();
        c.end_iteration(1).unwrap();
    }

    wait_for_fence(&runtime, &clock, &survivors);

    // Every API call of the fenced rank now fails fast with its identity.
    assert!(clients[1].renew_lease().is_err());
    match clients[1].write_f32("theta", 2, &payload(2, 1)) {
        Err(DamarisError::ClientFenced { client: 1, .. }) => {}
        other => panic!("expected ClientFenced for rank 1, got {other:?}"),
    }

    // Survivors run a whole further iteration after the death.
    for c in survivors {
        c.write_f32("theta", 2, &payload(2, c.id())).unwrap();
        c.end_iteration(2).unwrap();
    }

    let report = runtime.finish().unwrap();
    assert_eq!(report.iterations_persisted, 3);
    assert_eq!(report.client_leases_expired, 1);
    assert_eq!(report.crc_quarantined, 1, "torn write must be quarantined");
    assert!(
        report.partial_iterations >= 2,
        "iterations 1 and 2 fired without rank 1: {report:?}"
    );
    assert!(
        report.segments_reclaimed as usize >= leaked,
        "reclaim ({}) must cover at least the leaked reservation ({leaked})",
        report.segments_reclaimed
    );
    // Zero leaked bytes: the whole buffer is back, including the dead
    // rank's torn segment, its abandoned reservation, and its partition.
    assert_eq!(clients[0].buffer_in_use(), 0);

    // Iteration 0 holds all four ranks; iteration 1 lost rank 1's data to
    // the quarantine but kept the survivors'.
    let it0 = SdfReader::open(dir.join("node-0/iter-000000.sdf")).unwrap();
    assert_eq!(it0.read_f32("/iter-0/rank-1/theta").unwrap(), payload(0, 1));
    let it1 = SdfReader::open(dir.join("node-0/iter-000001.sdf")).unwrap();
    assert!(it1.read_f32("/iter-1/rank-1/theta").is_err());
    assert_eq!(it1.read_f32("/iter-1/rank-0/theta").unwrap(), payload(1, 0));

    // The presence bitmap (ranks 0, 2, 3 = 0b1101) round-trips through
    // the recovery scan on both partial files.
    let scan = recover_dir(&dir).unwrap();
    assert!(scan.is_clean());
    let partial: std::collections::BTreeMap<PathBuf, u64> = scan.partial.into_iter().collect();
    assert_eq!(
        partial.get(&PathBuf::from("node-0/iter-000001.sdf")),
        Some(&0b1101)
    );
    assert_eq!(
        partial.get(&PathBuf::from("node-0/iter-000002.sdf")),
        Some(&0b1101)
    );
    assert!(!partial.contains_key(&PathBuf::from("node-0/iter-000000.sdf")));
    std::fs::remove_dir_all(&dir).ok();
}

/// Under `on_client_failure="drop-iteration"` an iteration missing a
/// fenced rank is dropped whole — the operator chose "only complete files"
/// over partial ones. The survivors' resident data for the dropped
/// iteration is still released (no leak), and earlier complete iterations
/// are untouched.
#[test]
fn drop_iteration_policy_discards_incomplete_iterations() {
    let dir = scratch("drop");
    let (runtime, clock) = start_virtual("drop-iteration", 2, &dir);
    let clients = runtime.clients();

    for c in &clients {
        c.write_f32("theta", 0, &payload(0, c.id())).unwrap();
        c.end_iteration(0).unwrap();
    }
    // Iteration 1: rank 1 dies without a trace (no write, no end).
    clients[0].write_f32("theta", 1, &payload(1, 0)).unwrap();
    clients[0].end_iteration(1).unwrap();

    wait_for_fence(&runtime, &clock, &[&clients[0]]);

    let report = runtime.finish().unwrap();
    assert_eq!(report.iterations_persisted, 1);
    assert_eq!(report.client_leases_expired, 1);
    assert!(report.iterations_degraded >= 1, "{report:?}");
    assert_eq!(report.partial_iterations, 0, "drop policy never fires partially");
    assert_eq!(clients[0].buffer_in_use(), 0);

    assert!(dir.join("node-0/iter-000000.sdf").exists());
    assert!(!dir.join("node-0/iter-000001.sdf").exists());
    assert!(recover_dir(&dir).unwrap().partial.is_empty());
    std::fs::remove_dir_all(&dir).ok();
}

/// Everything that reached storage must be bit-exact — a torn segment
/// never lands, whichever policy handled the death.
fn assert_persisted_bit_exact(dir: &Path, valid: &[PathBuf]) {
    for rel in valid {
        let reader = SdfReader::open(dir.join(rel)).unwrap();
        for name in reader.dataset_names() {
            let got = reader.read_f32(&name).unwrap();
            let rank = if name.contains("rank-1") { 1 } else { 0 };
            let it: u32 = name
                .trim_start_matches("/iter-")
                .split('/')
                .next()
                .unwrap()
                .parse()
                .unwrap();
            assert_eq!(got, payload(it, rank), "{rel:?} {name}");
        }
    }
}

/// One cell of the CI client-kill matrix (kill phase × failure policy):
/// rank 1 of two dies at iteration 1 of three in the given phase; the
/// survivor completes all three. Asserts the per-policy containment
/// contract — and, for every combination, that nothing CRC-invalid was
/// persisted and no bytes leak beyond what the policy documents.
fn client_kill_case(policy: &str, phase: usize) {
    let dir = scratch(&format!("matrix-{policy}-{phase}"));
    let (runtime, clock) = start_virtual(policy, 2, &dir);
    let clients = runtime.clients();

    let mut torn = 0u64;
    let mut leaked = 0usize;
    for it in 0..3u32 {
        clients[0].write_f32("theta", it, &payload(it, 0)).unwrap();
        clients[0].end_iteration(it).unwrap();
        if it == 0 {
            clients[1].write_f32("theta", it, &payload(it, 1)).unwrap();
            clients[1].end_iteration(it).unwrap();
        } else if it == 1 {
            match phase {
                0 => leaked = clients[1].die_during_alloc("theta").unwrap(),
                1 => {
                    let bytes: Vec<u8> =
                        payload(it, 1).iter().flat_map(|v| v.to_le_bytes()).collect();
                    clients[1].die_during_write("theta", it, &bytes).unwrap();
                    torn = 1;
                }
                _ => clients[1].write_f32("theta", it, &payload(it, 1)).unwrap(),
            }
        }
    }

    // `wait` keeps no sweeper — the other policies fence the dead rank.
    let sweeping = policy != "wait";
    if sweeping {
        wait_for_fence(&runtime, &clock, &[&clients[0]]);
    }
    let report = runtime.finish().unwrap();
    assert_eq!(report.client_leases_expired, u64::from(sweeping));
    // Under drop-iteration the torn segment is discarded with its
    // iteration before persist ever sees it; the other policies must
    // quarantine it at the CRC gate.
    let expected_quarantine = if policy == "drop-iteration" { 0 } else { torn };
    assert_eq!(report.crc_quarantined, expected_quarantine);
    // The wait policy's documented cost: an un-journaled reservation of a
    // dead rank stays leaked (nothing ever fences it). Every other
    // combination returns the full buffer.
    let expected_leak = if !sweeping && phase == 0 { leaked } else { 0 };
    assert_eq!(clients[0].buffer_in_use(), expected_leak, "policy {policy} phase {phase}");

    let scan = recover_dir(&dir).unwrap();
    assert!(scan.is_clean());
    if policy == "drop-iteration" {
        // Complete iterations persist; the ones the death touched do not.
        assert!(dir.join("node-0/iter-000000.sdf").exists());
        assert!(!dir.join("node-0/iter-000001.sdf").exists());
        assert!(!dir.join("node-0/iter-000002.sdf").exists());
        assert!(report.iterations_degraded >= 2, "{report:?}");
        assert!(scan.partial.is_empty());
    } else {
        assert_eq!(report.iterations_persisted, 3);
        if policy == "partial" {
            let partial: std::collections::BTreeMap<PathBuf, u64> =
                scan.partial.iter().cloned().collect();
            assert_eq!(
                partial.get(&PathBuf::from("node-0/iter-000002.sdf")),
                Some(&0b01),
                "survivor-only bitmap on the post-death iteration"
            );
        } else {
            // wait: iterations only fire complete (here: at shutdown,
            // with the dead rank's journal state resolved) — no file
            // claims partiality.
            assert!(scan.partial.is_empty());
        }
    }
    assert_persisted_bit_exact(&dir, &scan.valid);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn kill_alloc_under_wait() {
    client_kill_case("wait", 0);
}
#[test]
fn kill_memcpy_under_wait() {
    client_kill_case("wait", 1);
}
#[test]
fn kill_post_commit_under_wait() {
    client_kill_case("wait", 2);
}
#[test]
fn kill_alloc_under_partial() {
    client_kill_case("partial", 0);
}
#[test]
fn kill_memcpy_under_partial() {
    client_kill_case("partial", 1);
}
#[test]
fn kill_post_commit_under_partial() {
    client_kill_case("partial", 2);
}
#[test]
fn kill_alloc_under_drop() {
    client_kill_case("drop-iteration", 0);
}
#[test]
fn kill_memcpy_under_drop() {
    client_kill_case("drop-iteration", 1);
}
#[test]
fn kill_post_commit_under_drop() {
    client_kill_case("drop-iteration", 2);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// S3: whatever the kill point — during `alloc` (leaked un-journaled
    /// reservation), during `memcpy` (torn segment with the notification
    /// out), or post-commit (valid data, rank dies before `end_iteration`)
    /// — and whichever iteration it lands on, the node finishes with zero
    /// leaked shared-memory bytes and never persists a CRC-invalid
    /// segment.
    #[test]
    fn random_kill_points_never_leak_or_persist_torn_data(
        phase in 0usize..3,
        kill_at in 0u32..3,
    ) {
        let dir = scratch("prop");
        let (runtime, clock) = start_virtual("partial", 2, &dir);
        let clients = runtime.clients();

        let mut torn_pushed = 0u64;
        for it in 0..3u32 {
            clients[0].write_f32("theta", it, &payload(it, 0)).unwrap();
            clients[0].end_iteration(it).unwrap();
            if it < kill_at {
                clients[1].write_f32("theta", it, &payload(it, 1)).unwrap();
                clients[1].end_iteration(it).unwrap();
            } else if it == kill_at {
                match phase {
                    0 => {
                        clients[1].die_during_alloc("theta").unwrap();
                    }
                    1 => {
                        let bytes: Vec<u8> = payload(it, 1)
                            .iter()
                            .flat_map(|v| v.to_le_bytes())
                            .collect();
                        clients[1].die_during_write("theta", it, &bytes).unwrap();
                        torn_pushed = 1;
                    }
                    _ => {
                        // Post-commit kill: the write is whole and valid,
                        // the rank just never ends the iteration.
                        clients[1].write_f32("theta", it, &payload(it, 1)).unwrap();
                    }
                }
            }
        }

        wait_for_fence(&runtime, &clock, &[&clients[0]]);

        let report = runtime.finish().unwrap();
        prop_assert_eq!(report.client_leases_expired, 1);
        prop_assert_eq!(report.crc_quarantined, torn_pushed);
        prop_assert_eq!(clients[0].buffer_in_use(), 0);

        // Everything that reached storage is bit-exact — a torn segment
        // never lands, whichever path it took.
        let scan = recover_dir(&dir).unwrap();
        prop_assert!(scan.is_clean());
        for rel in &scan.valid {
            let reader = SdfReader::open(dir.join(rel)).unwrap();
            for name in reader.dataset_names() {
                let got = reader.read_f32(&name).unwrap();
                let rank = if name.contains("rank-1") { 1 } else { 0 };
                let it: u32 = name
                    .trim_start_matches("/iter-")
                    .split('/')
                    .next()
                    .unwrap()
                    .parse()
                    .unwrap();
                prop_assert_eq!(got, payload(it, rank));
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
