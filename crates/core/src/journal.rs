//! Write-ahead journal for the node's shared event queue.
//!
//! The dedicated core (EPE) runs as a thread; if it dies, the queue, the
//! shared buffer, and this journal all survive in [`crate::node::NodeShared`],
//! but the server's in-flight state — its metadata store, its
//! end-of-iteration counts — dies with its stack. The journal is what lets
//! a respawned server reconstruct that state:
//!
//! * every client-originated event (`Write`, `User`, `EndIteration`) is
//!   appended here **before** it is pushed onto the queue, carrying the
//!   assigned sequence number in the event itself;
//! * the server *claims* each sequence number as it pops the event
//!   ([`EventJournal::claim`]), and marks it *applied* once its side
//!   effects are durable (segment released, iteration fired);
//! * a respawned server replays every non-applied record in sequence
//!   order, re-adopting the shared-memory segments the dead server had
//!   resident, and the stale queue copies of replayed events are rejected
//!   when they eventually pop — `claim` is the exactly-once arbiter
//!   closing the race between the replay snapshot and late queue pops.
//!
//! Records carry a CRC over their header (computed with the same
//! `damaris-format` CRC-32 the SDF files use); a corrupted record is
//! skipped at replay rather than poisoning the new epoch.
//!
//! # Invariants
//!
//! * Sequence numbers are assigned by one atomic counter and never reused:
//!   the journal's iteration order *is* the global notification order, and
//!   per client it matches queue order (each client appends, then pushes).
//! * A record moves `Pending → Resident → Applied`, never backwards; only
//!   `claim` performs `Pending → Resident` and it succeeds exactly once.
//! * `Applied` records are dead weight; [`EventJournal::compact`] drops
//!   them (a missing record claims as `Stale`, preserving at-most-once).

//! # Fast path
//!
//! The overwhelmingly common record — a static-layout `Write` from a
//! low-numbered source — never touches the mutex or the heap on append:
//! it is staged as a fixed-size [`FixedWriteRecord`] in a lock-free slab
//! and folded into the `BTreeMap` by whichever mutex entry point runs
//! next (`claim` on the dedicated core's pop, `fence`, `replay_snapshot`,
//! …). Appends and fences race by design; the slab's publish/recheck
//! protocol (see [`EventJournal::append_write`]) guarantees a fenced
//! source's staged record is either collected by the fence or cancelled
//! by the appender — never silently retained.

use damaris_format::Layout;
use damaris_shm::sync::{AtomicU64, Mutex, Ordering, ShmCell};
use std::collections::{BTreeMap, BTreeSet};

/// What a journaled notification said, minus the live [`damaris_shm::Segment`]
/// handle (the journal stores the segment's coordinates so a new server
/// can re-adopt it from the allocator).
#[derive(Debug, Clone)]
pub enum JournalPayload {
    /// A write-notification: `offset`/`len` locate the payload in the
    /// shared buffer for re-adoption after a crash; `data_crc` is the
    /// CRC-32 the client computed over its *source* bytes before the
    /// `memcpy`, verified end-to-end by the persist plugin so a torn shm
    /// copy (rank dying mid-`memcpy`) is quarantined instead of persisted.
    Write {
        variable_id: u32,
        iteration: u32,
        source: u32,
        offset: usize,
        len: usize,
        dynamic_layout: Option<Layout>,
        data_crc: u32,
    },
    /// A user-defined event (`df_signal`).
    User {
        name: String,
        iteration: u32,
        source: u32,
    },
    /// A client's end-of-iteration notification.
    EndIteration { iteration: u32, source: u32 },
    /// A client abandoned an allocated-but-never-committed region
    /// (`dc_alloc` handle dropped without `commit`). The owning client may
    /// not release shared memory itself — partition-mode reclamation is
    /// FIFO and single-consumer — so it journals the segment's coordinates
    /// and the dedicated core releases it in order at the iteration's
    /// flush.
    Abandon {
        iteration: u32,
        source: u32,
        offset: usize,
        len: usize,
    },
}

impl JournalPayload {
    /// The client that originated this notification.
    pub fn source(&self) -> u32 {
        match self {
            JournalPayload::Write { source, .. }
            | JournalPayload::User { source, .. }
            | JournalPayload::EndIteration { source, .. }
            | JournalPayload::Abandon { source, .. } => *source,
        }
    }
}

/// [`EventJournal::append`] rejected the record: the source has been
/// fenced by the lease sweeper and may no longer journal notifications.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fenced {
    pub source: u32,
}

/// Lifecycle of a journal record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecordState {
    /// Appended, not yet claimed by any server epoch (the event is still
    /// in the queue, or was, when the previous server died).
    Pending,
    /// Claimed by a server: a `Write` is resident in the metadata store,
    /// an `EndIteration` is counted, a `User` is about to fire.
    Resident,
    /// Side effects durable; the record is garbage awaiting [`EventJournal::compact`].
    Applied,
}

/// One journaled notification.
#[derive(Debug, Clone)]
pub struct JournalRecord {
    pub seq: u64,
    /// Heartbeat epoch of the *appending* side at append time (0 for
    /// clients started before any respawn). Diagnostic only.
    pub epoch: u32,
    /// CRC-32 over the encoded header; verified at replay.
    pub crc: u32,
    pub payload: JournalPayload,
    pub state: RecordState,
}

/// Outcome of [`EventJournal::claim`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Claim {
    /// First claim — process the event.
    Fresh,
    /// Already claimed (by a previous epoch's replay or processing) —
    /// drop the event without side effects.
    Stale,
}

/// What a replaying server gets for each surviving record.
#[derive(Debug, Clone)]
pub struct ReplayEntry {
    pub seq: u64,
    pub state: RecordState,
    pub payload: JournalPayload,
}

#[derive(Debug, Default)]
struct JournalInner {
    records: BTreeMap<u64, JournalRecord>,
    /// Sources whose leases were revoked: appends from them are rejected.
    /// Lives under the same lock as the records so fencing and the
    /// collection of a dead client's pending seqnos are one atomic step —
    /// no append can slip in between.
    fenced: BTreeSet<u32>,
}

/// Slot states, packed into the low 2 bits of the state word; the upper
/// 62 bits carry the staged record's sequence number, which makes every
/// state transition ABA-proof (a recycled slot never matches a stale
/// compare-exchange expectation).
const SLOT_FREE: u64 = 0;
const SLOT_CLAIMED: u64 = 1;
const SLOT_READY: u64 = 2;
const SLOT_DRAINING: u64 = 3;
const STATE_TAG_MASK: u64 = 0b11;

/// Sources `0..FAST_SOURCES` get a fence bit in `fenced_mask` and may use
/// the lock-free append path; higher sources fall back to the mutex.
const FAST_SOURCES: u32 = 64;

/// Staging capacity shared by all fast-path appenders. Exhaustion is not
/// an error — appends overflow to the mutex path — but it only happens
/// when the dedicated core has not popped (and therefore not drained) for
/// a full slab of writes.
const STAGING_SLOTS: usize = 64;

fn pack(tag: u64, seq: u64) -> u64 {
    (seq << 2) | tag
}

/// The fixed-size, heap-free image of a static-layout `Write` record —
/// everything [`JournalPayload::Write`] carries except `dynamic_layout`
/// (dynamic writes take the mutex path; they allocate regardless).
#[repr(C)]
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FixedWriteRecord {
    pub variable_id: u32,
    pub iteration: u32,
    pub source: u32,
    pub data_crc: u32,
    pub offset: u64,
    pub len: u64,
    pub epoch: u32,
    /// Header CRC, computed at append over [`encode_fixed_write_header`].
    pub crc: u32,
}

/// One lock-free staging slot.
struct StagingSlot {
    state: AtomicU64,
    rec: ShmCell<FixedWriteRecord>,
}

/// The write-ahead journal shared by a node's clients and its (current)
/// dedicated-core thread.
pub struct EventJournal {
    next_seq: AtomicU64,
    inner: Mutex<JournalInner>,
    staging: Box<[StagingSlot]>,
    /// One fence bit per fast-path source; the lock-free counterpart of
    /// `JournalInner::fenced` (which remains authoritative for all
    /// sources). Written only by [`fence`](Self::fence).
    fenced_mask: AtomicU64,
}

impl Default for EventJournal {
    fn default() -> Self {
        let staging: Vec<StagingSlot> = (0..STAGING_SLOTS)
            .map(|_| StagingSlot {
                state: AtomicU64::new(pack(SLOT_FREE, 0)),
                rec: ShmCell::new(FixedWriteRecord::default()),
            })
            .collect();
        EventJournal {
            next_seq: AtomicU64::new(0),
            inner: Mutex::default(),
            staging: staging.into_boxed_slice(),
            fenced_mask: AtomicU64::new(0),
        }
    }
}

impl std::fmt::Debug for EventJournal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "EventJournal(next_seq={})",
            self.next_seq.load(Ordering::Relaxed)
        )
    }
}

/// Byte-identical to [`encode_header`] for a static-layout `Write`
/// payload (asserted by test): 8 seq + 1 tag + 4 variable_id +
/// 4 iteration + 4 source + 8 offset + 8 len + 4 data_crc.
pub fn encode_fixed_write_header(seq: u64, r: &FixedWriteRecord) -> [u8; 41] {
    // Cursor-style fill: no slice indexing, so the encoder itself stays
    // panic-free on the hot path.
    fn put(buf: &mut [u8; 41], at: usize, bytes: &[u8]) {
        for (d, s) in buf.iter_mut().skip(at).zip(bytes) {
            *d = *s;
        }
    }
    let mut buf = [0u8; 41];
    put(&mut buf, 0, &seq.to_le_bytes());
    put(&mut buf, 8, &[0]); // tag: Write
    put(&mut buf, 9, &r.variable_id.to_le_bytes());
    put(&mut buf, 13, &r.iteration.to_le_bytes());
    put(&mut buf, 17, &r.source.to_le_bytes());
    put(&mut buf, 21, &r.offset.to_le_bytes());
    put(&mut buf, 29, &r.len.to_le_bytes());
    put(&mut buf, 37, &r.data_crc.to_le_bytes());
    buf
}

/// Encodes the integrity-protected header fields of a record.
fn encode_header(seq: u64, payload: &JournalPayload) -> Vec<u8> {
    let mut buf = Vec::with_capacity(64);
    buf.extend_from_slice(&seq.to_le_bytes());
    match payload {
        JournalPayload::Write {
            variable_id,
            iteration,
            source,
            offset,
            len,
            data_crc,
            ..
        } => {
            buf.push(0);
            buf.extend_from_slice(&variable_id.to_le_bytes());
            buf.extend_from_slice(&iteration.to_le_bytes());
            buf.extend_from_slice(&source.to_le_bytes());
            buf.extend_from_slice(&(*offset as u64).to_le_bytes());
            buf.extend_from_slice(&(*len as u64).to_le_bytes());
            buf.extend_from_slice(&data_crc.to_le_bytes());
        }
        JournalPayload::User {
            name,
            iteration,
            source,
        } => {
            buf.push(1);
            buf.extend_from_slice(name.as_bytes());
            buf.extend_from_slice(&iteration.to_le_bytes());
            buf.extend_from_slice(&source.to_le_bytes());
        }
        JournalPayload::EndIteration { iteration, source } => {
            buf.push(2);
            buf.extend_from_slice(&iteration.to_le_bytes());
            buf.extend_from_slice(&source.to_le_bytes());
        }
        JournalPayload::Abandon {
            iteration,
            source,
            offset,
            len,
        } => {
            buf.push(3);
            buf.extend_from_slice(&iteration.to_le_bytes());
            buf.extend_from_slice(&source.to_le_bytes());
            buf.extend_from_slice(&(*offset as u64).to_le_bytes());
            buf.extend_from_slice(&(*len as u64).to_le_bytes());
        }
    }
    buf
}

impl EventJournal {
    pub fn new() -> Self {
        Self::default()
    }

    /// Journals a notification and returns its sequence number. Called by
    /// clients *before* the matching queue push. Fails if the source has
    /// been fenced ([`fence`](Self::fence)) — the caller must abandon the
    /// operation and surface a `ClientFenced` error instead of pushing.
    ///
    /// This is the mutex path, for control-plane record kinds and
    /// dynamic-layout writes; static writes go through
    /// [`append_write`](Self::append_write).
    // ANALYZE: cold — control-plane record kinds (User/EndIteration/Abandon, dynamic Write) take the mutex by design
    pub fn append(&self, epoch: u32, payload: JournalPayload) -> Result<u64, Fenced> {
        let seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
        self.append_with_seq(seq, epoch, payload)
    }

    fn append_with_seq(&self, seq: u64, epoch: u32, payload: JournalPayload) -> Result<u64, Fenced> {
        let source = payload.source();
        let crc = damaris_format::crc32(&encode_header(seq, &payload));
        let record = JournalRecord {
            seq,
            epoch,
            crc,
            payload,
            state: RecordState::Pending,
        };
        let mut inner = self.inner.lock();
        self.drain_staged(&mut inner);
        if inner.fenced.contains(&source) {
            return Err(Fenced { source });
        }
        inner.records.insert(seq, record);
        Ok(seq)
    }

    /// Journals a static-layout write **without locking or allocating** —
    /// the jitter-free counterpart of [`append`](Self::append) on the
    /// client `write()` path.
    ///
    /// Protocol (the fence race is the whole game):
    ///
    /// 1. check the fence bit — cheap early out;
    /// 2. claim a `FREE` staging slot by seq-tagged compare-exchange;
    /// 3. fill the record, publish `READY` with a SeqCst store;
    /// 4. re-check the fence bit with a SeqCst load. [`fence`] sets the
    ///    bit (SeqCst RMW) *before* scanning the slab, so in the SeqCst
    ///    total order either our `READY` precedes the scan (the fence
    ///    collects the record and hands it to the sweeper) or the scan
    ///    precedes our re-check (we see the bit). If we see the bit we
    ///    try to cancel `READY → FREE`; losing that race means the fence
    ///    collected it — both outcomes return `Err(Fenced)` and the
    ///    record is cancelled through the claim lattice, exactly like a
    ///    mutex-path append that lost to the fence.
    ///
    /// Slab exhaustion and sources above the fence-bit range fall back to
    /// the mutex path — correctness is identical, only latency differs.
    // ANALYZE: hot
    #[allow(clippy::too_many_arguments)]
    pub fn append_write(
        &self,
        epoch: u32,
        variable_id: u32,
        iteration: u32,
        source: u32,
        offset: usize,
        len: usize,
        data_crc: u32,
    ) -> Result<u64, Fenced> {
        // Relaxed: the counter only hands out unique tickets; record
        // visibility is ordered by the slot state below (or the mutex).
        let seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
        if source >= FAST_SOURCES {
            return self.append_write_slow(seq, epoch, variable_id, iteration, source, offset, len, data_crc);
        }
        let bit = 1u64 << source;
        // seqcst: fence-vs-append is a store-buffering (Dekker) pattern —
        // this early check only saves work; the re-check after publish is
        // the one the argument rests on, and both must be in the same
        // total order as fence()'s fetch_or + slab scan.
        if self.fenced_mask.load(Ordering::SeqCst) & bit != 0 {
            return Err(Fenced { source });
        }
        let mut rec = FixedWriteRecord {
            variable_id,
            iteration,
            source,
            data_crc,
            offset: offset as u64,
            len: len as u64,
            epoch,
            crc: 0,
        };
        rec.crc = damaris_format::crc32(&encode_fixed_write_header(seq, &rec));
        for slot in self.staging.iter() {
            // Relaxed probe: the claim CAS below re-validates the word.
            let cur = slot.state.load(Ordering::Relaxed);
            if cur & STATE_TAG_MASK != SLOT_FREE {
                continue;
            }
            // Acquire: pairs with the drainer's Release store of FREE so
            // our overwrite of the cell happens-after its copy-out.
            if slot
                .state
                .compare_exchange(cur, pack(SLOT_CLAIMED, seq), Ordering::Acquire, Ordering::Relaxed)
                .is_err()
            {
                continue;
            }
            // SAFETY: the CAS above made us the slot's unique owner; no
            // other thread touches the cell until we publish READY.
            slot.rec.with_mut(|p| unsafe { *p = rec });
            // seqcst: publish half of the Dekker pattern — must be
            // ordered before the fence-bit re-check below in the global
            // SeqCst order so a racing fence() either sees READY in its
            // scan or its bit is seen by our re-check. Release is not
            // enough: store-buffering allows both sides to miss.
            slot.state.store(pack(SLOT_READY, seq), Ordering::SeqCst);
            // seqcst: re-check half of the Dekker pattern (see above).
            if self.fenced_mask.load(Ordering::SeqCst) & bit != 0 {
                // Cancel if the fence's drain has not collected the slot;
                // if the CAS fails the fence owns the record and will
                // cancel it through the claim lattice. AcqRel success:
                // release our cell write, acquire nothing in particular.
                let _ = slot.state.compare_exchange(
                    pack(SLOT_READY, seq),
                    pack(SLOT_FREE, seq),
                    Ordering::AcqRel,
                    Ordering::Relaxed,
                );
                return Err(Fenced { source });
            }
            return Ok(seq);
        }
        self.append_write_slow(seq, epoch, variable_id, iteration, source, offset, len, data_crc)
    }

    /// Mutex fallback for [`append_write`](Self::append_write): slab full
    /// or source outside the fence-bit range.
    // ANALYZE: cold — overflow fallback takes the mutex by design; bounded jitter, correctness identical
    #[cold]
    #[allow(clippy::too_many_arguments)]
    fn append_write_slow(
        &self,
        seq: u64,
        epoch: u32,
        variable_id: u32,
        iteration: u32,
        source: u32,
        offset: usize,
        len: usize,
        data_crc: u32,
    ) -> Result<u64, Fenced> {
        self.append_with_seq(seq, epoch, JournalPayload::Write {
            variable_id,
            iteration,
            source,
            offset,
            len,
            dynamic_layout: None,
            data_crc,
        })
    }

    /// Folds every `READY` staging slot into the record map. Called with
    /// the journal lock held by **every** mutex entry point, so staged
    /// records are visible to any observer that could act on them.
    fn drain_staged(&self, inner: &mut JournalInner) {
        for slot in self.staging.iter() {
            let cur = slot.state.load(Ordering::Relaxed);
            if cur & STATE_TAG_MASK != SLOT_READY {
                continue;
            }
            // Acquire: pairs with the appender's READY publish so the
            // record bytes are visible; the CAS also arbitrates against
            // the appender's own cancel (exactly one of us wins).
            if slot
                .state
                .compare_exchange(
                    cur,
                    (cur & !STATE_TAG_MASK) | SLOT_DRAINING,
                    Ordering::Acquire,
                    Ordering::Relaxed,
                )
                .is_err()
            {
                continue;
            }
            let seq = cur >> 2;
            // SAFETY: DRAINING excludes both slot reuse and the
            // appender's cancel CAS; the cell is ours to read.
            let rec = slot.rec.with(|p| unsafe { *p });
            if inner.fenced.contains(&rec.source) {
                // The source was fenced *before* this drain. fence() sets
                // its bit and scans the slab in one critical section
                // before marking the source fenced here, so any record it
                // could collect, it did; a staged record still visible
                // from an already-fenced source was published by an
                // appender that observed the fence bit at its re-check
                // and returned `Err` — we won its cancel race, so we
                // complete the cancellation by dropping the record
                // instead of inserting a ghost nobody would ever claim.
                slot.state.store(pack(SLOT_FREE, seq), Ordering::Release);
                continue;
            }
            inner.records.insert(seq, JournalRecord {
                seq,
                epoch: rec.epoch,
                crc: rec.crc,
                payload: JournalPayload::Write {
                    variable_id: rec.variable_id,
                    iteration: rec.iteration,
                    source: rec.source,
                    offset: rec.offset as usize,
                    len: rec.len as usize,
                    dynamic_layout: None,
                    data_crc: rec.data_crc,
                },
                state: RecordState::Pending,
            });
            // Release: hands the slot back; pairs with a future
            // appender's Acquire claim CAS.
            slot.state.store(pack(SLOT_FREE, seq), Ordering::Release);
        }
    }

    /// Fences `source` — all further appends from it fail — and returns
    /// the still-`Pending` records of that source, in sequence order, so
    /// the sweeper can cancel them through the [`claim`](Self::claim)
    /// lattice (re-adopting `Write`/`Abandon` segments by their journaled
    /// coordinates). One critical section: no append can land between the
    /// fence and the collection.
    pub fn fence(&self, source: u32) -> Vec<(u64, JournalPayload)> {
        if source < FAST_SOURCES {
            // seqcst: fence half of the Dekker pattern — the bit must be
            // set in the global SeqCst order *before* the slab scan below
            // (inside drain_staged) so a racing append_write either gets
            // its READY collected here or observes the bit at its
            // re-check. See append_write for the full argument.
            self.fenced_mask.fetch_or(1u64 << source, Ordering::SeqCst);
        }
        let mut inner = self.inner.lock();
        self.drain_staged(&mut inner);
        inner.fenced.insert(source);
        inner
            .records
            .values()
            .filter(|rec| rec.state == RecordState::Pending && rec.payload.source() == source)
            .map(|rec| (rec.seq, rec.payload.clone()))
            .collect()
    }

    /// Whether `source` has been fenced.
    pub fn is_fenced(&self, source: u32) -> bool {
        self.inner.lock().fenced.contains(&source)
    }

    /// Claims a sequence number for processing: `Pending → Resident`,
    /// exactly once. Any other state — including a record already dropped
    /// by [`compact`](Self::compact) — is `Stale`, and the caller must
    /// discard the event without side effects.
    pub fn claim(&self, seq: u64) -> Claim {
        let mut inner = self.inner.lock();
        self.drain_staged(&mut inner);
        match inner.records.get_mut(&seq) {
            Some(rec) if rec.state == RecordState::Pending => {
                rec.state = RecordState::Resident;
                Claim::Fresh
            }
            _ => Claim::Stale,
        }
    }

    /// Marks a record's side effects durable. Idempotent; unknown
    /// sequence numbers (already compacted) are ignored.
    pub fn mark_applied(&self, seq: u64) {
        let mut inner = self.inner.lock();
        self.drain_staged(&mut inner);
        if let Some(rec) = inner.records.get_mut(&seq) {
            rec.state = RecordState::Applied;
        }
    }

    /// Snapshot of every non-applied record in sequence order, for a
    /// respawned server to replay. CRC-corrupted records are skipped; the
    /// second element counts them.
    pub fn replay_snapshot(&self) -> (Vec<ReplayEntry>, usize) {
        let mut inner = self.inner.lock();
        self.drain_staged(&mut inner);
        let mut entries = Vec::new();
        let mut corrupt = 0;
        for rec in inner.records.values() {
            if rec.state == RecordState::Applied {
                continue;
            }
            if damaris_format::crc32(&encode_header(rec.seq, &rec.payload)) != rec.crc {
                corrupt += 1;
                continue;
            }
            entries.push(ReplayEntry {
                seq: rec.seq,
                state: rec.state,
                payload: rec.payload.clone(),
            });
        }
        (entries, corrupt)
    }

    /// Drops applied records; returns how many were removed.
    pub fn compact(&self) -> usize {
        let mut inner = self.inner.lock();
        self.drain_staged(&mut inner);
        let before = inner.records.len();
        inner.records.retain(|_, rec| rec.state != RecordState::Applied);
        before - inner.records.len()
    }

    /// Records currently retained (any state), staged ones included.
    pub fn len(&self) -> usize {
        let mut inner = self.inner.lock();
        self.drain_staged(&mut inner);
        inner.records.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Test hook: flip a record's stored CRC so replay sees corruption.
    #[cfg(test)]
    fn corrupt_for_test(&self, seq: u64) {
        let mut inner = self.inner.lock();
        self.drain_staged(&mut inner);
        if let Some(rec) = inner.records.get_mut(&seq) {
            rec.crc ^= 0xdead_beef;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write_payload(source: u32) -> JournalPayload {
        JournalPayload::Write {
            variable_id: 1,
            iteration: 0,
            source,
            offset: 128,
            len: 64,
            dynamic_layout: None,
            data_crc: 0,
        }
    }

    #[test]
    fn seqnos_are_monotonic_and_claims_are_exactly_once() {
        let j = EventJournal::new();
        let a = j.append(0, write_payload(0)).unwrap();
        let b = j
            .append(0, JournalPayload::EndIteration {
                iteration: 0,
                source: 0,
            })
            .unwrap();
        assert!(b > a);
        assert_eq!(j.claim(a), Claim::Fresh);
        assert_eq!(j.claim(a), Claim::Stale);
        assert_eq!(j.claim(b), Claim::Fresh);
        // Unknown (never appended / compacted) seqnos are stale too.
        assert_eq!(j.claim(b + 1000), Claim::Stale);
    }

    #[test]
    fn replay_skips_applied_and_orders_by_seq() {
        let j = EventJournal::new();
        let a = j.append(0, write_payload(0)).unwrap();
        let b = j.append(0, write_payload(1)).unwrap();
        let c = j
            .append(0, JournalPayload::User {
                name: "snap".into(),
                iteration: 0,
                source: 1,
            })
            .unwrap();
        j.claim(a);
        j.mark_applied(a);
        j.claim(b); // resident, not applied: must replay
        let (entries, corrupt) = j.replay_snapshot();
        assert_eq!(corrupt, 0);
        let seqs: Vec<u64> = entries.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![b, c]);
        assert_eq!(entries[0].state, RecordState::Resident);
        assert_eq!(entries[1].state, RecordState::Pending);
    }

    #[test]
    fn corrupt_records_are_skipped_not_replayed() {
        let j = EventJournal::new();
        let a = j.append(0, write_payload(0)).unwrap();
        let b = j.append(0, write_payload(1)).unwrap();
        j.corrupt_for_test(a);
        let (entries, corrupt) = j.replay_snapshot();
        assert_eq!(corrupt, 1);
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].seq, b);
    }

    #[test]
    fn compact_drops_only_applied() {
        let j = EventJournal::new();
        let a = j.append(0, write_payload(0)).unwrap();
        let b = j.append(0, write_payload(1)).unwrap();
        j.claim(a);
        j.mark_applied(a);
        assert_eq!(j.compact(), 1);
        assert_eq!(j.len(), 1);
        // The compacted record stays at-most-once.
        assert_eq!(j.claim(a), Claim::Stale);
        assert_eq!(j.claim(b), Claim::Fresh);
    }

    #[test]
    fn fence_rejects_appends_and_collects_pending() {
        let j = EventJournal::new();
        let a = j.append(0, write_payload(3)).unwrap();
        let b = j.append(0, write_payload(3)).unwrap();
        let other = j.append(0, write_payload(1)).unwrap();
        // One record of the doomed client is already claimed (resident):
        // the fence only hands back the still-pending ones.
        assert_eq!(j.claim(a), Claim::Fresh);
        assert!(!j.is_fenced(3));
        let pending = j.fence(3);
        assert_eq!(pending.len(), 1);
        assert_eq!(pending[0].0, b);
        assert!(matches!(pending[0].1, JournalPayload::Write { source: 3, .. }));
        assert!(j.is_fenced(3));
        // Fenced source can no longer journal; others can.
        assert!(matches!(j.append(0, write_payload(3)), Err(Fenced { source: 3 })));
        assert!(j.append(0, write_payload(1)).is_ok());
        // Fencing twice is idempotent (the pending set may have shrunk).
        assert_eq!(j.claim(b), Claim::Fresh);
        assert!(j.fence(3).is_empty());
        // The unrelated client's record is untouched.
        assert_eq!(j.claim(other), Claim::Fresh);
    }

    #[test]
    fn fixed_header_is_byte_identical_to_dynamic_encoding() {
        let rec = FixedWriteRecord {
            variable_id: 7,
            iteration: 3,
            source: 42,
            data_crc: 0xdead_beef,
            offset: 4096,
            len: 1024,
            epoch: 9,
            crc: 0,
        };
        let payload = JournalPayload::Write {
            variable_id: 7,
            iteration: 3,
            source: 42,
            offset: 4096,
            len: 1024,
            dynamic_layout: None,
            data_crc: 0xdead_beef,
        };
        let fixed = encode_fixed_write_header(0x0123_4567_89ab, &rec);
        let dynamic = encode_header(0x0123_4567_89ab, &payload);
        assert_eq!(&fixed[..], &dynamic[..]);
    }

    #[test]
    fn fast_append_is_visible_claimable_and_crc_clean() {
        let j = EventJournal::new();
        let seq = j.append_write(5, 7, 3, 2, 4096, 1024, 0xabcd).unwrap();
        // Any mutex entry point folds the staged record in.
        assert_eq!(j.len(), 1);
        let (entries, corrupt) = j.replay_snapshot();
        assert_eq!(corrupt, 0, "staged record must replay with a valid CRC");
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].seq, seq);
        assert!(matches!(
            entries[0].payload,
            JournalPayload::Write {
                variable_id: 7,
                iteration: 3,
                source: 2,
                offset: 4096,
                len: 1024,
                dynamic_layout: None,
                data_crc: 0xabcd,
            }
        ));
        assert_eq!(j.claim(seq), Claim::Fresh);
        assert_eq!(j.claim(seq), Claim::Stale);
    }

    #[test]
    fn fast_append_after_fence_is_rejected_without_leaking() {
        let j = EventJournal::new();
        j.fence(2);
        assert!(matches!(j.append_write(0, 1, 0, 2, 0, 8, 0), Err(Fenced { source: 2 })));
        // No record leaked into the map, and no staging slot is stuck.
        assert!(j.is_empty());
        // Other sources still append lock-free.
        assert!(j.append_write(0, 1, 0, 3, 0, 8, 0).is_ok());
        assert_eq!(j.len(), 1);
    }

    #[test]
    fn high_source_overflow_path_works_and_respects_fence() {
        let j = EventJournal::new();
        let seq = j.append_write(0, 1, 0, 200, 0, 8, 0).unwrap();
        assert_eq!(j.claim(seq), Claim::Fresh);
        j.fence(200);
        assert!(matches!(
            j.append_write(0, 1, 0, 200, 0, 8, 0),
            Err(Fenced { source: 200 })
        ));
    }

    #[test]
    fn slab_exhaustion_overflows_to_the_mutex_without_loss() {
        let j = EventJournal::new();
        // One more append than staging slots, with no intervening drain:
        // the last one must take the mutex path, and none may be lost.
        let seqs: Vec<u64> = (0..65)
            .map(|i| j.append_write(0, 1, 0, i % 8, 0, 8, 0).unwrap())
            .collect();
        assert_eq!(j.len(), 65);
        for seq in seqs {
            assert_eq!(j.claim(seq), Claim::Fresh);
        }
    }

    #[test]
    fn concurrent_fast_appends_and_fences_never_lose_or_leak_records() {
        use std::sync::atomic::{AtomicBool, Ordering as StdOrdering};
        let j = std::sync::Arc::new(EventJournal::new());
        let stop = std::sync::Arc::new(AtomicBool::new(false));
        let writers: Vec<_> = (0u32..4)
            .map(|source| {
                let j = std::sync::Arc::clone(&j);
                let stop = std::sync::Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut ok = Vec::new();
                    while !stop.load(StdOrdering::Relaxed) {
                        match j.append_write(0, 1, 0, source, 0, 8, 0) {
                            Ok(seq) => ok.push(seq),
                            Err(Fenced { .. }) => break,
                        }
                    }
                    ok
                })
            })
            .collect();
        // Let the writers run, then fence two of them mid-flight.
        std::thread::sleep(std::time::Duration::from_millis(10));
        let pending_of_fenced: Vec<(u64, JournalPayload)> =
            [0u32, 1].iter().flat_map(|&s| j.fence(s)).collect();
        std::thread::sleep(std::time::Duration::from_millis(5));
        stop.store(true, StdOrdering::Relaxed);
        let ok_seqs: Vec<Vec<u64>> = writers.into_iter().map(|h| h.join().unwrap()).collect();
        // Every seq whose append returned Ok must be claimable exactly once
        // — a fence may not have eaten an acknowledged record.
        for seq in ok_seqs.iter().flatten() {
            assert_eq!(j.claim(*seq), Claim::Fresh, "acknowledged seq {seq} lost");
        }
        // Conversely, every still-pending record in the journal is either
        // acknowledged or was handed to the fence for cancellation: a
        // cancelled fast append may not linger as a claimable ghost.
        let acknowledged: std::collections::BTreeSet<u64> =
            ok_seqs.iter().flatten().copied().collect();
        let fenced_pending: std::collections::BTreeSet<u64> =
            pending_of_fenced.iter().map(|(s, _)| *s).collect();
        let (entries, corrupt) = j.replay_snapshot();
        assert_eq!(corrupt, 0);
        for e in &entries {
            assert!(
                acknowledged.contains(&e.seq) || fenced_pending.contains(&e.seq),
                "seq {} in journal but neither acknowledged nor fence-collected",
                e.seq
            );
        }
    }

    #[test]
    fn data_crc_is_integrity_protected() {
        // Two Write payloads differing only in data_crc must have
        // different header CRCs — the end-to-end checksum is itself
        // covered by the journal's integrity guard.
        let j = EventJournal::new();
        let a = j
            .append(0, JournalPayload::Write {
                variable_id: 1,
                iteration: 0,
                source: 0,
                offset: 0,
                len: 8,
                dynamic_layout: None,
                data_crc: 0x1111,
            })
            .unwrap();
        let (entries, _) = j.replay_snapshot();
        let rec_crc = |seq: u64| {
            entries
                .iter()
                .find(|e| e.seq == seq)
                .map(|e| damaris_format::crc32(&encode_header(e.seq, &e.payload)))
                .unwrap()
        };
        let crc_a = rec_crc(a);
        // Same seq, same fields, different data_crc → different header CRC.
        let altered = JournalPayload::Write {
            variable_id: 1,
            iteration: 0,
            source: 0,
            offset: 0,
            len: 8,
            dynamic_layout: None,
            data_crc: 0x2222,
        };
        assert_ne!(crc_a, damaris_format::crc32(&encode_header(a, &altered)));
    }
}
