//! Write-ahead journal for the node's shared event queue.
//!
//! The dedicated core (EPE) runs as a thread; if it dies, the queue, the
//! shared buffer, and this journal all survive in [`crate::node::NodeShared`],
//! but the server's in-flight state — its metadata store, its
//! end-of-iteration counts — dies with its stack. The journal is what lets
//! a respawned server reconstruct that state:
//!
//! * every client-originated event (`Write`, `User`, `EndIteration`) is
//!   appended here **before** it is pushed onto the queue, carrying the
//!   assigned sequence number in the event itself;
//! * the server *claims* each sequence number as it pops the event
//!   ([`EventJournal::claim`]), and marks it *applied* once its side
//!   effects are durable (segment released, iteration fired);
//! * a respawned server replays every non-applied record in sequence
//!   order, re-adopting the shared-memory segments the dead server had
//!   resident, and the stale queue copies of replayed events are rejected
//!   when they eventually pop — `claim` is the exactly-once arbiter
//!   closing the race between the replay snapshot and late queue pops.
//!
//! Records carry a CRC over their header (computed with the same
//! `damaris-format` CRC-32 the SDF files use); a corrupted record is
//! skipped at replay rather than poisoning the new epoch.
//!
//! # Invariants
//!
//! * Sequence numbers are assigned by one atomic counter and never reused:
//!   the journal's iteration order *is* the global notification order, and
//!   per client it matches queue order (each client appends, then pushes).
//! * A record moves `Pending → Resident → Applied`, never backwards; only
//!   `claim` performs `Pending → Resident` and it succeeds exactly once.
//! * `Applied` records are dead weight; [`EventJournal::compact`] drops
//!   them (a missing record claims as `Stale`, preserving at-most-once).

use damaris_format::Layout;
use damaris_shm::sync::{AtomicU64, Mutex, Ordering};
use std::collections::{BTreeMap, BTreeSet};

/// What a journaled notification said, minus the live [`damaris_shm::Segment`]
/// handle (the journal stores the segment's coordinates so a new server
/// can re-adopt it from the allocator).
#[derive(Debug, Clone)]
pub enum JournalPayload {
    /// A write-notification: `offset`/`len` locate the payload in the
    /// shared buffer for re-adoption after a crash; `data_crc` is the
    /// CRC-32 the client computed over its *source* bytes before the
    /// `memcpy`, verified end-to-end by the persist plugin so a torn shm
    /// copy (rank dying mid-`memcpy`) is quarantined instead of persisted.
    Write {
        variable_id: u32,
        iteration: u32,
        source: u32,
        offset: usize,
        len: usize,
        dynamic_layout: Option<Layout>,
        data_crc: u32,
    },
    /// A user-defined event (`df_signal`).
    User {
        name: String,
        iteration: u32,
        source: u32,
    },
    /// A client's end-of-iteration notification.
    EndIteration { iteration: u32, source: u32 },
    /// A client abandoned an allocated-but-never-committed region
    /// (`dc_alloc` handle dropped without `commit`). The owning client may
    /// not release shared memory itself — partition-mode reclamation is
    /// FIFO and single-consumer — so it journals the segment's coordinates
    /// and the dedicated core releases it in order at the iteration's
    /// flush.
    Abandon {
        iteration: u32,
        source: u32,
        offset: usize,
        len: usize,
    },
}

impl JournalPayload {
    /// The client that originated this notification.
    pub fn source(&self) -> u32 {
        match self {
            JournalPayload::Write { source, .. }
            | JournalPayload::User { source, .. }
            | JournalPayload::EndIteration { source, .. }
            | JournalPayload::Abandon { source, .. } => *source,
        }
    }
}

/// [`EventJournal::append`] rejected the record: the source has been
/// fenced by the lease sweeper and may no longer journal notifications.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fenced {
    pub source: u32,
}

/// Lifecycle of a journal record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecordState {
    /// Appended, not yet claimed by any server epoch (the event is still
    /// in the queue, or was, when the previous server died).
    Pending,
    /// Claimed by a server: a `Write` is resident in the metadata store,
    /// an `EndIteration` is counted, a `User` is about to fire.
    Resident,
    /// Side effects durable; the record is garbage awaiting [`EventJournal::compact`].
    Applied,
}

/// One journaled notification.
#[derive(Debug, Clone)]
pub struct JournalRecord {
    pub seq: u64,
    /// Heartbeat epoch of the *appending* side at append time (0 for
    /// clients started before any respawn). Diagnostic only.
    pub epoch: u32,
    /// CRC-32 over the encoded header; verified at replay.
    pub crc: u32,
    pub payload: JournalPayload,
    pub state: RecordState,
}

/// Outcome of [`EventJournal::claim`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Claim {
    /// First claim — process the event.
    Fresh,
    /// Already claimed (by a previous epoch's replay or processing) —
    /// drop the event without side effects.
    Stale,
}

/// What a replaying server gets for each surviving record.
#[derive(Debug, Clone)]
pub struct ReplayEntry {
    pub seq: u64,
    pub state: RecordState,
    pub payload: JournalPayload,
}

#[derive(Debug, Default)]
struct JournalInner {
    records: BTreeMap<u64, JournalRecord>,
    /// Sources whose leases were revoked: appends from them are rejected.
    /// Lives under the same lock as the records so fencing and the
    /// collection of a dead client's pending seqnos are one atomic step —
    /// no append can slip in between.
    fenced: BTreeSet<u32>,
}

/// The write-ahead journal shared by a node's clients and its (current)
/// dedicated-core thread.
#[derive(Debug, Default)]
pub struct EventJournal {
    next_seq: AtomicU64,
    inner: Mutex<JournalInner>,
}

/// Encodes the integrity-protected header fields of a record.
fn encode_header(seq: u64, payload: &JournalPayload) -> Vec<u8> {
    let mut buf = Vec::with_capacity(64);
    buf.extend_from_slice(&seq.to_le_bytes());
    match payload {
        JournalPayload::Write {
            variable_id,
            iteration,
            source,
            offset,
            len,
            data_crc,
            ..
        } => {
            buf.push(0);
            buf.extend_from_slice(&variable_id.to_le_bytes());
            buf.extend_from_slice(&iteration.to_le_bytes());
            buf.extend_from_slice(&source.to_le_bytes());
            buf.extend_from_slice(&(*offset as u64).to_le_bytes());
            buf.extend_from_slice(&(*len as u64).to_le_bytes());
            buf.extend_from_slice(&data_crc.to_le_bytes());
        }
        JournalPayload::User {
            name,
            iteration,
            source,
        } => {
            buf.push(1);
            buf.extend_from_slice(name.as_bytes());
            buf.extend_from_slice(&iteration.to_le_bytes());
            buf.extend_from_slice(&source.to_le_bytes());
        }
        JournalPayload::EndIteration { iteration, source } => {
            buf.push(2);
            buf.extend_from_slice(&iteration.to_le_bytes());
            buf.extend_from_slice(&source.to_le_bytes());
        }
        JournalPayload::Abandon {
            iteration,
            source,
            offset,
            len,
        } => {
            buf.push(3);
            buf.extend_from_slice(&iteration.to_le_bytes());
            buf.extend_from_slice(&source.to_le_bytes());
            buf.extend_from_slice(&(*offset as u64).to_le_bytes());
            buf.extend_from_slice(&(*len as u64).to_le_bytes());
        }
    }
    buf
}

impl EventJournal {
    pub fn new() -> Self {
        Self::default()
    }

    /// Journals a notification and returns its sequence number. Called by
    /// clients *before* the matching queue push. Fails if the source has
    /// been fenced ([`fence`](Self::fence)) — the caller must abandon the
    /// operation and surface a `ClientFenced` error instead of pushing.
    pub fn append(&self, epoch: u32, payload: JournalPayload) -> Result<u64, Fenced> {
        let source = payload.source();
        let seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
        let crc = damaris_format::crc32(&encode_header(seq, &payload));
        let record = JournalRecord {
            seq,
            epoch,
            crc,
            payload,
            state: RecordState::Pending,
        };
        let mut inner = self.inner.lock();
        if inner.fenced.contains(&source) {
            return Err(Fenced { source });
        }
        inner.records.insert(seq, record);
        Ok(seq)
    }

    /// Fences `source` — all further appends from it fail — and returns
    /// the still-`Pending` records of that source, in sequence order, so
    /// the sweeper can cancel them through the [`claim`](Self::claim)
    /// lattice (re-adopting `Write`/`Abandon` segments by their journaled
    /// coordinates). One critical section: no append can land between the
    /// fence and the collection.
    pub fn fence(&self, source: u32) -> Vec<(u64, JournalPayload)> {
        let mut inner = self.inner.lock();
        inner.fenced.insert(source);
        inner
            .records
            .values()
            .filter(|rec| rec.state == RecordState::Pending && rec.payload.source() == source)
            .map(|rec| (rec.seq, rec.payload.clone()))
            .collect()
    }

    /// Whether `source` has been fenced.
    pub fn is_fenced(&self, source: u32) -> bool {
        self.inner.lock().fenced.contains(&source)
    }

    /// Claims a sequence number for processing: `Pending → Resident`,
    /// exactly once. Any other state — including a record already dropped
    /// by [`compact`](Self::compact) — is `Stale`, and the caller must
    /// discard the event without side effects.
    pub fn claim(&self, seq: u64) -> Claim {
        let mut inner = self.inner.lock();
        match inner.records.get_mut(&seq) {
            Some(rec) if rec.state == RecordState::Pending => {
                rec.state = RecordState::Resident;
                Claim::Fresh
            }
            _ => Claim::Stale,
        }
    }

    /// Marks a record's side effects durable. Idempotent; unknown
    /// sequence numbers (already compacted) are ignored.
    pub fn mark_applied(&self, seq: u64) {
        if let Some(rec) = self.inner.lock().records.get_mut(&seq) {
            rec.state = RecordState::Applied;
        }
    }

    /// Snapshot of every non-applied record in sequence order, for a
    /// respawned server to replay. CRC-corrupted records are skipped; the
    /// second element counts them.
    pub fn replay_snapshot(&self) -> (Vec<ReplayEntry>, usize) {
        let inner = self.inner.lock();
        let mut entries = Vec::new();
        let mut corrupt = 0;
        for rec in inner.records.values() {
            if rec.state == RecordState::Applied {
                continue;
            }
            if damaris_format::crc32(&encode_header(rec.seq, &rec.payload)) != rec.crc {
                corrupt += 1;
                continue;
            }
            entries.push(ReplayEntry {
                seq: rec.seq,
                state: rec.state,
                payload: rec.payload.clone(),
            });
        }
        (entries, corrupt)
    }

    /// Drops applied records; returns how many were removed.
    pub fn compact(&self) -> usize {
        let mut inner = self.inner.lock();
        let before = inner.records.len();
        inner.records.retain(|_, rec| rec.state != RecordState::Applied);
        before - inner.records.len()
    }

    /// Records currently retained (any state).
    pub fn len(&self) -> usize {
        self.inner.lock().records.len()
    }

    pub fn is_empty(&self) -> bool {
        self.inner.lock().records.is_empty()
    }

    /// Test hook: flip a record's stored CRC so replay sees corruption.
    #[cfg(test)]
    fn corrupt_for_test(&self, seq: u64) {
        if let Some(rec) = self.inner.lock().records.get_mut(&seq) {
            rec.crc ^= 0xdead_beef;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write_payload(source: u32) -> JournalPayload {
        JournalPayload::Write {
            variable_id: 1,
            iteration: 0,
            source,
            offset: 128,
            len: 64,
            dynamic_layout: None,
            data_crc: 0,
        }
    }

    #[test]
    fn seqnos_are_monotonic_and_claims_are_exactly_once() {
        let j = EventJournal::new();
        let a = j.append(0, write_payload(0)).unwrap();
        let b = j
            .append(0, JournalPayload::EndIteration {
                iteration: 0,
                source: 0,
            })
            .unwrap();
        assert!(b > a);
        assert_eq!(j.claim(a), Claim::Fresh);
        assert_eq!(j.claim(a), Claim::Stale);
        assert_eq!(j.claim(b), Claim::Fresh);
        // Unknown (never appended / compacted) seqnos are stale too.
        assert_eq!(j.claim(b + 1000), Claim::Stale);
    }

    #[test]
    fn replay_skips_applied_and_orders_by_seq() {
        let j = EventJournal::new();
        let a = j.append(0, write_payload(0)).unwrap();
        let b = j.append(0, write_payload(1)).unwrap();
        let c = j
            .append(0, JournalPayload::User {
                name: "snap".into(),
                iteration: 0,
                source: 1,
            })
            .unwrap();
        j.claim(a);
        j.mark_applied(a);
        j.claim(b); // resident, not applied: must replay
        let (entries, corrupt) = j.replay_snapshot();
        assert_eq!(corrupt, 0);
        let seqs: Vec<u64> = entries.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![b, c]);
        assert_eq!(entries[0].state, RecordState::Resident);
        assert_eq!(entries[1].state, RecordState::Pending);
    }

    #[test]
    fn corrupt_records_are_skipped_not_replayed() {
        let j = EventJournal::new();
        let a = j.append(0, write_payload(0)).unwrap();
        let b = j.append(0, write_payload(1)).unwrap();
        j.corrupt_for_test(a);
        let (entries, corrupt) = j.replay_snapshot();
        assert_eq!(corrupt, 1);
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].seq, b);
    }

    #[test]
    fn compact_drops_only_applied() {
        let j = EventJournal::new();
        let a = j.append(0, write_payload(0)).unwrap();
        let b = j.append(0, write_payload(1)).unwrap();
        j.claim(a);
        j.mark_applied(a);
        assert_eq!(j.compact(), 1);
        assert_eq!(j.len(), 1);
        // The compacted record stays at-most-once.
        assert_eq!(j.claim(a), Claim::Stale);
        assert_eq!(j.claim(b), Claim::Fresh);
    }

    #[test]
    fn fence_rejects_appends_and_collects_pending() {
        let j = EventJournal::new();
        let a = j.append(0, write_payload(3)).unwrap();
        let b = j.append(0, write_payload(3)).unwrap();
        let other = j.append(0, write_payload(1)).unwrap();
        // One record of the doomed client is already claimed (resident):
        // the fence only hands back the still-pending ones.
        assert_eq!(j.claim(a), Claim::Fresh);
        assert!(!j.is_fenced(3));
        let pending = j.fence(3);
        assert_eq!(pending.len(), 1);
        assert_eq!(pending[0].0, b);
        assert!(matches!(pending[0].1, JournalPayload::Write { source: 3, .. }));
        assert!(j.is_fenced(3));
        // Fenced source can no longer journal; others can.
        assert!(matches!(j.append(0, write_payload(3)), Err(Fenced { source: 3 })));
        assert!(j.append(0, write_payload(1)).is_ok());
        // Fencing twice is idempotent (the pending set may have shrunk).
        assert_eq!(j.claim(b), Claim::Fresh);
        assert!(j.fence(3).is_empty());
        // The unrelated client's record is untouched.
        assert_eq!(j.claim(other), Claim::Fresh);
    }

    #[test]
    fn data_crc_is_integrity_protected() {
        // Two Write payloads differing only in data_crc must have
        // different header CRCs — the end-to-end checksum is itself
        // covered by the journal's integrity guard.
        let j = EventJournal::new();
        let a = j
            .append(0, JournalPayload::Write {
                variable_id: 1,
                iteration: 0,
                source: 0,
                offset: 0,
                len: 8,
                dynamic_layout: None,
                data_crc: 0x1111,
            })
            .unwrap();
        let (entries, _) = j.replay_snapshot();
        let rec_crc = |seq: u64| {
            entries
                .iter()
                .find(|e| e.seq == seq)
                .map(|e| damaris_format::crc32(&encode_header(e.seq, &e.payload)))
                .unwrap()
        };
        let crc_a = rec_crc(a);
        // Same seq, same fields, different data_crc → different header CRC.
        let altered = JournalPayload::Write {
            variable_id: 1,
            iteration: 0,
            source: 0,
            offset: 0,
            len: 8,
            dynamic_layout: None,
            data_crc: 0x2222,
        };
        assert_ne!(crc_a, damaris_format::crc32(&encode_header(a, &altered)));
    }
}
