//! The plugin system (paper §III-C "Behavior management and user-defined
//! actions").
//!
//! "A plugin is a function … that the EPE will load and call in response to
//! events sent by the application. The matching between events and expected
//! reactions is provided by the external configuration file."
//!
//! The original loads shared objects or Python; this reproduction uses
//! trait objects registered by name — the EPE→configuration→action
//! matching logic is identical.

use crate::config::{ActionBinding, Config};
use crate::error::DamarisError;
use crate::journal::EventJournal;
use crate::metadata::MetadataStore;
use crate::node::{BufferManager, FaultStats};
use damaris_fs::StorageBackend;
use damaris_obs::Recorder;
use damaris_shm::Segment;

/// The event being dispatched, as plugins see it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventInfo {
    /// Event name (`"end_of_iteration"` for the implicit iteration event).
    pub name: String,
    pub iteration: u32,
    /// Client that sent it; `u32::MAX` for server-originated events.
    pub source: u32,
}

/// What a plugin may touch while handling an event: the node's metadata
/// store (resident shared-memory data), the storage backend, and segment
/// release.
pub struct ActionContext<'a> {
    /// Which node this dedicated core serves.
    pub node_id: u32,
    /// The static configuration.
    pub config: &'a Config,
    /// Resident variables; actions typically drain an iteration.
    pub store: &'a mut MetadataStore,
    /// Storage behind the [`StorageBackend`] trait — usually a local
    /// directory, possibly decorated with fault injection under test.
    pub backend: &'a dyn StorageBackend,
    pub(crate) buffer: &'a BufferManager,
    /// Failure counters (persist retries, degraded iterations, …).
    pub(crate) stats: &'a FaultStats,
    /// Write-ahead journal; releases retire the matching records.
    pub(crate) journal: &'a EventJournal,
    /// The node's storage-pressure machine: persisting plugins flag
    /// permanent out-of-space errors here so the next loop pass escalates
    /// instead of the retry loop spinning on `ENOSPC`.
    pub(crate) pressure: &'a crate::pressure::PressureMachine,
    /// Monotonically increasing per-source sequence of pending releases;
    /// flushed by the server after the action completes, in FIFO order per
    /// source (required by the partitioned allocator).
    pub(crate) pending_release: &'a mut Vec<(u32, u64, Segment)>,
    /// The dedicated core's trace recorder — plugins time their backend
    /// phases (write / fsync / retry backoff) on the server's timeline.
    pub(crate) rec: Recorder,
    /// Set when the iteration fired *partially* (some clients fenced under
    /// `on_client_failure="partial"`): bit `r` is set iff client `r`
    /// completed the iteration. Persisting plugins stamp it on their
    /// datasets so the recovery scan can tell a partial file from a full
    /// one. `None` for complete iterations.
    pub presence: Option<u64>,
}

impl ActionContext<'_> {
    /// Schedules a consumed segment for release. `seq` is the arrival
    /// sequence recorded on the stored variable (preserves per-client FIFO).
    pub fn release_segment(&mut self, source: u32, seq: u64, segment: Segment) {
        self.pending_release.push((source, seq, segment));
    }

    /// Releases everything a drained iteration produced.
    pub fn release_all(&mut self, drained: Vec<crate::metadata::StoredVariable>) {
        for v in drained {
            self.pending_release.push((v.key.source, v.seq, v.segment));
        }
    }

    pub(crate) fn flush_releases(&mut self) {
        // FIFO per source: sort by (source, seq) then release in order.
        // The journal record is marked applied *before* the segment goes
        // back to the allocator: a crash between the two strands one
        // segment's bytes (bounded loss), while the reverse order would
        // let a replay re-adopt a segment the allocator already reissued.
        self.pending_release.sort_by_key(|(src, seq, _)| (*src, *seq));
        for (source, seq, segment) in self.pending_release.drain(..) {
            self.journal.mark_applied(seq);
            self.buffer.release(source, segment);
        }
    }
}

/// A user-defined action run by the EPE on the dedicated core.
pub trait Plugin: Send {
    /// Name for error messages.
    fn name(&self) -> &str;

    /// Handles one event occurrence.
    fn handle(&mut self, ctx: &mut ActionContext<'_>, event: &EventInfo)
        -> Result<(), DamarisError>;

    /// Called once at runtime shutdown, after all pending iterations have
    /// fired their events: stateful plugins (e.g. multi-iteration
    /// archiving) flush whatever they still hold.
    fn finalize(&mut self, _ctx: &mut ActionContext<'_>) -> Result<(), DamarisError> {
        Ok(())
    }
}

/// Builds a plugin instance from its configuration binding.
pub type PluginFactory =
    Box<dyn Fn(&ActionBinding) -> Result<Box<dyn Plugin>, DamarisError> + Send>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_info_equality() {
        let a = EventInfo {
            name: "snapshot".into(),
            iteration: 2,
            source: 1,
        };
        assert_eq!(a.clone(), a);
    }
}
