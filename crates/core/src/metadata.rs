//! Server-side metadata management (paper §III-B).
//!
//! "All variables written by the clients are characterized by a tuple
//! ⟨name, iteration, source, layout⟩. … Upon reception of a
//! write-notification, the EPE will add an entry in a metadata structure
//! associating the tuple with the received data. The data stay in shared
//! memory until actions are performed on them."

use damaris_format::Layout;
use damaris_shm::Segment;
use std::collections::BTreeMap;

/// The identifying tuple (name is resolved through the variable id; layout
/// hangs off the stored entry since it is static per variable).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VariableKey {
    pub iteration: u32,
    pub variable_id: u32,
    pub source: u32,
}

/// One received variable instance, still resident in shared memory.
pub struct StoredVariable {
    pub key: VariableKey,
    pub name: String,
    pub layout: Layout,
    pub segment: Segment,
    /// The write-notification's journal sequence number. Per client it
    /// matches allocation order, so segment release can stay FIFO per
    /// client (a requirement of the partitioned allocator), and it keys
    /// the journal record to mark applied when the segment is released.
    pub seq: u64,
    /// End-to-end checksum: CRC-32 of the client's *source* bytes,
    /// verified against the segment contents at persist time.
    pub data_crc: u32,
}

impl StoredVariable {
    /// Payload bytes (valid until the segment is released).
    pub fn data(&self) -> &[u8] {
        self.segment.as_slice()
    }
}

impl std::fmt::Debug for StoredVariable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "StoredVariable{{{} it={} src={} {} bytes}}",
            self.name,
            self.key.iteration,
            self.key.source,
            self.segment.len()
        )
    }
}

/// The EPE's metadata structure: ordered by (iteration, variable, source)
/// so per-iteration extraction is a range drain.
#[derive(Default)]
pub struct MetadataStore {
    entries: BTreeMap<VariableKey, StoredVariable>,
    bytes_resident: usize,
}

impl MetadataStore {
    /// Empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a received variable. A duplicate tuple replaces the earlier
    /// entry and returns it (caller releases its segment and retires its
    /// journal record).
    pub fn insert(&mut self, var: StoredVariable) -> Option<StoredVariable> {
        self.bytes_resident += var.segment.len();
        let prev = self.entries.insert(var.key, var);
        prev.inspect(|p| {
            self.bytes_resident -= p.segment.len();
        })
    }

    /// Number of resident entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no data is resident.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Bytes of shared memory currently held by resident data.
    pub fn bytes_resident(&self) -> usize {
        self.bytes_resident
    }

    /// Entries of one iteration, in (variable, source) order.
    pub fn iteration_entries(&self, iteration: u32) -> impl Iterator<Item = &StoredVariable> {
        let lo = VariableKey {
            iteration,
            variable_id: 0,
            source: 0,
        };
        let hi = VariableKey {
            iteration,
            variable_id: u32::MAX,
            source: u32::MAX,
        };
        self.entries.range(lo..=hi).map(|(_, v)| v)
    }

    /// Removes and returns all entries of one iteration (the persistency
    /// action consumes them; their segments are then released).
    pub fn drain_iteration(&mut self, iteration: u32) -> Vec<StoredVariable> {
        let keys: Vec<VariableKey> = self
            .iteration_entries(iteration)
            .map(|v| v.key)
            .collect();
        keys.iter()
            .map(|k| {
                // invariant: `k` was collected from `entries` above and
                // nothing removes between the two passes.
                let v = self.entries.remove(k).expect("key just listed");
                self.bytes_resident -= v.segment.len();
                v
            })
            .collect()
    }

    /// Whether any resident entry came from `source` — the lease sweeper
    /// must not reclaim a fenced client's partition while its segments are
    /// still resident here.
    pub fn has_source(&self, source: u32) -> bool {
        self.entries.keys().any(|k| k.source == source)
    }

    /// Iterations that currently have resident data, ascending.
    pub fn pending_iterations(&self) -> Vec<u32> {
        let mut its: Vec<u32> = self.entries.keys().map(|k| k.iteration).collect();
        its.dedup();
        its
    }
}

impl std::fmt::Debug for MetadataStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "MetadataStore({} entries, {} bytes resident)",
            self.entries.len(),
            self.bytes_resident
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use damaris_format::DataType;
    use damaris_shm::MutexAllocator;

    fn stored(alloc: &MutexAllocator, it: u32, var: u32, src: u32, fill: u8) -> StoredVariable {
        let mut seg = alloc.allocate(8).unwrap();
        seg.copy_from_slice(&[fill; 8]);
        StoredVariable {
            key: VariableKey {
                iteration: it,
                variable_id: var,
                source: src,
            },
            name: format!("var-{var}"),
            layout: Layout::new(DataType::F64, &[1]),
            data_crc: damaris_format::crc32(&[fill; 8]),
            segment: seg,
            seq: u64::from(it) * 100 + u64::from(src),
        }
    }

    #[test]
    fn insert_and_drain_by_iteration() {
        let alloc = MutexAllocator::with_capacity(4096);
        let mut store = MetadataStore::new();
        for it in 0..3 {
            for src in 0..2 {
                assert!(store.insert(stored(&alloc, it, 0, src, it as u8)).is_none());
            }
        }
        assert_eq!(store.len(), 6);
        assert_eq!(store.bytes_resident(), 48);
        assert_eq!(store.pending_iterations(), vec![0, 1, 2]);

        let drained = store.drain_iteration(1);
        assert_eq!(drained.len(), 2);
        assert!(drained.iter().all(|v| v.key.iteration == 1));
        assert!(drained.iter().all(|v| v.data() == [1u8; 8]));
        assert_eq!(store.len(), 4);
        assert_eq!(store.pending_iterations(), vec![0, 2]);
        for v in drained {
            alloc.release(v.segment);
        }
    }

    #[test]
    fn duplicate_tuple_replaces() {
        let alloc = MutexAllocator::with_capacity(4096);
        let mut store = MetadataStore::new();
        assert!(store.insert(stored(&alloc, 5, 1, 0, 0xAA)).is_none());
        let old = store.insert(stored(&alloc, 5, 1, 0, 0xBB)).expect("replaced");
        assert_eq!(old.data(), [0xAA; 8]);
        alloc.release(old.segment);
        assert_eq!(store.len(), 1);
        let v = store.iteration_entries(5).next().unwrap();
        assert_eq!(v.data(), [0xBB; 8]);
        assert_eq!(store.bytes_resident(), 8);
    }

    #[test]
    fn entries_ordered_by_variable_then_source() {
        let alloc = MutexAllocator::with_capacity(4096);
        let mut store = MetadataStore::new();
        store.insert(stored(&alloc, 0, 1, 1, 0));
        store.insert(stored(&alloc, 0, 0, 1, 0));
        store.insert(stored(&alloc, 0, 1, 0, 0));
        store.insert(stored(&alloc, 0, 0, 0, 0));
        let keys: Vec<(u32, u32)> = store
            .iteration_entries(0)
            .map(|v| (v.key.variable_id, v.key.source))
            .collect();
        assert_eq!(keys, vec![(0, 0), (0, 1), (1, 0), (1, 1)]);
    }

    #[test]
    fn empty_iteration_drains_nothing() {
        let mut store = MetadataStore::new();
        assert!(store.drain_iteration(9).is_empty());
        assert!(store.is_empty());
    }
}
