//! The dedicated-core server loop.
//!
//! Runs on the node's dedicated core (a thread here): pulls events from
//! the shared queue, maintains the metadata store, tracks per-iteration
//! completion across the node's clients, and hands events to the EPE.
//! Actual I/O happens inside plugins — asynchronously with respect to the
//! compute cores, which is the whole point (§III).
//!
//! # Crash recovery
//!
//! The loop runs under the node supervisor (see [`crate::node`]): each
//! incarnation gets a heartbeat *epoch*. Epoch 0 starts clean; a respawned
//! epoch first **replays** the write-ahead journal — re-adopting the
//! shared-memory segments the dead incarnation had resident, re-counting
//! end-of-iteration notifications, firing still-pending user events — and
//! only then publishes its epoch on the heartbeat word, so clients parked
//! on a stale heartbeat resume against a consistent allocator and store.
//!
//! Exactly-once processing hinges on [`crate::journal::EventJournal::claim`]:
//! both the replay and the normal pop path claim an event's sequence
//! number, and only the first claim wins — a replayed event's stale queue
//! copy is counted in `stale_events_rejected` and dropped.

use crate::epe::{EventProcessingEngine, END_OF_ITERATION};
use crate::error::DamarisError;
use crate::event::Event;
use crate::journal::{Claim, JournalPayload, RecordState};
use crate::metadata::{MetadataStore, StoredVariable, VariableKey};
use crate::node::{FaultStats, NodeReport, NodeShared};
use crate::plugin::{ActionContext, EventInfo};
use damaris_obs::{EventKind, Histogram, TraceRecord, TraceWriter};
use damaris_shm::Segment;
use std::collections::{BTreeMap, HashMap};
use std::io::BufWriter;
use std::sync::Arc;

/// Marker source id for server-originated events.
pub const SERVER_SOURCE: u32 = u32::MAX;

/// The dedicated-core event loop; returns the node's accounting when a
/// `Terminate` event arrives. `epoch` is this incarnation's heartbeat
/// epoch — nonzero means a predecessor crashed and the journal replays.
pub(crate) fn run(
    shared: Arc<NodeShared>,
    mut epe: EventProcessingEngine,
    node_id: u32,
    epoch: u32,
) -> Result<NodeReport, DamarisError> {
    let mut store = MetadataStore::new();
    let mut report = NodeReport::default();
    let mut pending_release = Vec::new();
    // Segments displaced by a same-(iteration, variable, source) rewrite,
    // held until that iteration fires. Releasing them on the spot is NOT
    // safe: the partitioned allocator requires per-client FIFO release,
    // and a client that ran ahead still has retained segments from
    // *earlier* iterations that were allocated first. Deferring to the
    // fire lets `flush_releases`'s (source, seq) sort restore allocation
    // order. (Found by the obs-overhead gate: the out-of-order release
    // corrupted a region's tail counter and wedged the client on `Full`.)
    let mut held_rewrites: BTreeMap<u32, Vec<(u32, u64, Segment)>> = BTreeMap::new();
    // Journal seqnos of the end-notifications counted per iteration; the
    // length is the completion count, and the seqnos are marked applied
    // when the iteration fires.
    let mut end_counts: HashMap<u32, Vec<u64>> = HashMap::new();
    let backend = Arc::clone(&shared.backend);
    let rec = shared.obs.server_recorder();
    let mut obs_flush = ObsFlush::new(&shared, node_id, epoch);
    // Iteration spans run fire-end to fire-end; the first one starts now.
    let mut last_fire_end = rec.begin();
    let mut last_fired: u32 = 0;

    macro_rules! ctx {
        () => {
            ActionContext {
                node_id,
                config: &shared.config,
                store: &mut store,
                backend: backend.as_ref(),
                buffer: &shared.buffer,
                stats: &shared.stats,
                journal: &shared.journal,
                pending_release: &mut pending_release,
                rec: rec.clone(),
            }
        };
    }

    // Fires `end_of_iteration`. The counted end-notification records are
    // retired *before* the plugins run: plugin side effects are
    // at-most-once across crashes (a crash mid-fire does not re-fire the
    // iteration on replay — its data is still flushed at `Terminate`).
    macro_rules! fire_iteration {
        ($iteration:expr, $seqs:expr) => {{
            for seq in $seqs {
                shared.journal.mark_applied(seq);
            }
            let info = EventInfo {
                name: END_OF_ITERATION.to_string(),
                iteration: $iteration,
                source: SERVER_SOURCE,
            };
            let t_epe = rec.begin();
            let mut ctx = ctx!();
            // Rewritten duplicates of this iteration join the flush, where
            // the (source, seq) sort merges them back into FIFO order with
            // the segments the plugins drain.
            for (source, seq, segment) in
                held_rewrites.remove(&$iteration).unwrap_or_default()
            {
                ctx.release_segment(source, seq, segment);
            }
            epe.fire(&mut ctx, &info)?;
            ctx.flush_releases();
            rec.end(EventKind::EpeDispatch, $iteration, 0, t_epe);
            // The iteration span covers everything since the previous fire
            // completed (idle + dispatch), so per-phase sums can be checked
            // against it for coverage.
            let now = rec.begin();
            rec.event(
                EventKind::Iteration,
                $iteration,
                0,
                now.saturating_sub(last_fire_end),
            );
            last_fire_end = now;
            last_fired = $iteration;
            report.iterations_persisted += 1;
            // Between-iteration drain: telemetry I/O rides the dedicated
            // core, never the compute ranks.
            obs_flush.drain(&shared, node_id);
        }};
    }

    if epoch > 0 {
        // === Journal replay: rebuild the dead incarnation's state. ===
        let (entries, corrupt) = shared.journal.replay_snapshot();
        if corrupt > 0 {
            eprintln!(
                "[damaris node {node_id}] replay (epoch {epoch}): skipped {corrupt} \
                 CRC-corrupt journal record(s)"
            );
        }
        for entry in entries {
            match entry.payload {
                JournalPayload::Write {
                    variable_id,
                    iteration,
                    source,
                    offset,
                    len,
                    dynamic_layout,
                } => {
                    // Claim pending records so the stale queue copy is
                    // rejected when it eventually pops.
                    if entry.state == RecordState::Pending {
                        let _ = shared.journal.claim(entry.seq);
                    }
                    let Some(def) = shared.config.variable(variable_id) else {
                        shared.journal.mark_applied(entry.seq);
                        eprintln!(
                            "[damaris node {node_id}] replay: unknown variable id \
                             {variable_id} (seq {}); skipped",
                            entry.seq
                        );
                        continue;
                    };
                    match shared.buffer.adopt(source, offset, len) {
                        Some(segment) => {
                            FaultStats::bump(&shared.stats.events_replayed);
                            report.variables_received += 1;
                            report.bytes_received += segment.len() as u64;
                            let layout = match dynamic_layout {
                                Some(layout) => layout,
                                None => shared.config.layout_of(def).storage_layout(),
                            };
                            let var = StoredVariable {
                                key: VariableKey {
                                    iteration,
                                    variable_id,
                                    source,
                                },
                                name: def.name.clone(),
                                layout,
                                segment,
                                seq: entry.seq,
                            };
                            report.peak_resident_bytes = report
                                .peak_resident_bytes
                                .max(store.bytes_resident() as u64 + var.segment.len() as u64);
                            if let Some(replaced) = store.insert(var) {
                                held_rewrites
                                    .entry(iteration)
                                    .or_default()
                                    .push((source, replaced.seq, replaced.segment));
                            }
                        }
                        None => {
                            // Not adoptable: the dead server released it
                            // between persisting and marking the record
                            // applied. The data is already safe (or was
                            // deliberately degraded) — retire the record.
                            shared.journal.mark_applied(entry.seq);
                            eprintln!(
                                "[damaris node {node_id}] replay: write seq {} \
                                 (src {source}, {len}B@{offset}) not adoptable; skipped",
                                entry.seq
                            );
                        }
                    }
                }
                JournalPayload::EndIteration { iteration, .. } => {
                    if entry.state == RecordState::Pending {
                        let _ = shared.journal.claim(entry.seq);
                    }
                    FaultStats::bump(&shared.stats.events_replayed);
                    end_counts.entry(iteration).or_default().push(entry.seq);
                }
                JournalPayload::User {
                    name,
                    iteration,
                    source,
                } => {
                    if entry.state != RecordState::Pending {
                        // The dead epoch claimed it and may have run its
                        // plugins: at-most-once forbids re-firing.
                        shared.journal.mark_applied(entry.seq);
                        continue;
                    }
                    let _ = shared.journal.claim(entry.seq);
                    shared.journal.mark_applied(entry.seq);
                    FaultStats::bump(&shared.stats.events_replayed);
                    report.user_events += 1;
                    let info = EventInfo {
                        name,
                        iteration,
                        source,
                    };
                    let mut ctx = ctx!();
                    epe.fire(&mut ctx, &info)?;
                    ctx.flush_releases();
                }
            }
        }
        // Fire iterations the replayed notifications completed.
        let mut complete: Vec<u32> = end_counts
            .iter()
            .filter(|(_, seqs)| seqs.len() == shared.clients)
            .map(|(it, _)| *it)
            .collect();
        complete.sort_unstable();
        for iteration in complete {
            let seqs = end_counts.remove(&iteration).unwrap_or_default();
            fire_iteration!(iteration, seqs);
        }
        shared.journal.compact();
    }
    // Publish this epoch only after replay: clients parked on a stale
    // heartbeat resume against fully-rebuilt state (the Release store
    // makes everything above visible to their Acquire observe).
    shared.heartbeat.begin_epoch(epoch);

    loop {
        let t_idle = rec.begin();
        let event = shared.queue.pop_wait_with(|| shared.heartbeat.beat());
        // Tagged with the iteration we are presumably waiting to complete.
        rec.end(EventKind::QueueIdle, last_fired.wrapping_add(1), 0, t_idle);
        // Claim arbitration: an event whose journal record was already
        // processed (by a previous epoch's replay) is dropped. The segment
        // handle in a stale Write is inert — the replay's adopted handle
        // owns the allocation.
        if let Some(seq) = event.seq() {
            if shared.journal.claim(seq) == Claim::Stale {
                FaultStats::bump(&shared.stats.stale_events_rejected);
                continue;
            }
        }
        match event {
            Event::Write {
                variable_id,
                iteration,
                source,
                segment,
                dynamic_layout,
                seq,
            } => {
                let def = shared
                    .config
                    .variable(variable_id)
                    .ok_or_else(|| DamarisError::UnknownVariable(format!("id {variable_id}")))?;
                report.variables_received += 1;
                report.bytes_received += segment.len() as u64;
                let layout = match dynamic_layout {
                    Some(layout) => layout,
                    None => shared.config.layout_of(def).storage_layout(),
                };
                let var = StoredVariable {
                    key: VariableKey {
                        iteration,
                        variable_id,
                        source,
                    },
                    name: def.name.clone(),
                    layout,
                    segment,
                    seq,
                };
                report.peak_resident_bytes = report
                    .peak_resident_bytes
                    .max(store.bytes_resident() as u64 + var.segment.len() as u64);
                if let Some(replaced) = store.insert(var) {
                    // Duplicate tuple: hold the displaced segment until the
                    // iteration fires — an immediate release here can jump
                    // ahead of still-retained older segments and break the
                    // allocator's per-client FIFO contract.
                    held_rewrites
                        .entry(iteration)
                        .or_default()
                        .push((source, replaced.seq, replaced.segment));
                }
            }
            Event::User {
                name,
                iteration,
                source,
                seq,
            } => {
                // At-most-once: retire the record before firing, so a
                // crash mid-plugin does not re-fire it on replay.
                shared.journal.mark_applied(seq);
                report.user_events += 1;
                let info = EventInfo {
                    name,
                    iteration,
                    source,
                };
                let t_epe = rec.begin();
                let mut ctx = ctx!();
                epe.fire(&mut ctx, &info)?;
                ctx.flush_releases();
                rec.end(EventKind::EpeDispatch, iteration, 0, t_epe);
            }
            Event::EndIteration {
                iteration, seq, ..
            } => {
                let counted = end_counts.entry(iteration).or_default();
                counted.push(seq);
                if counted.len() == shared.clients {
                    let seqs = end_counts.remove(&iteration).unwrap_or_default();
                    fire_iteration!(iteration, seqs);
                }
            }
            Event::Terminate => {
                // Flush any iterations that never completed (e.g. a client
                // crashed between write and end_iteration): persist what we
                // have rather than lose it.
                for iteration in store.pending_iterations() {
                    let seqs = end_counts.remove(&iteration).unwrap_or_default();
                    fire_iteration!(iteration, seqs);
                }
                // End-notifications for iterations with no resident data
                // have no further effect; retire their records.
                for (_, seqs) in end_counts.drain() {
                    for seq in seqs {
                        shared.journal.mark_applied(seq);
                    }
                }
                // Shutdown pass: stateful plugins flush their residuals.
                let mut ctx = ctx!();
                // Belt and braces: every held rewrite belongs to an
                // iteration whose replacement was resident, so the
                // flush-out above should have drained the map — but never
                // leak a segment on the way out.
                for (_, seqs) in std::mem::take(&mut held_rewrites) {
                    for (source, seq, segment) in seqs {
                        ctx.release_segment(source, seq, segment);
                    }
                }
                epe.finalize_all(&mut ctx)?;
                ctx.flush_releases();
                // The loop exits here, so the trackers' final updates from
                // the flush-out fires above are intentionally unread.
                let _ = (last_fired, last_fire_end);
                break;
            }
        }
        shared.heartbeat.beat();
    }
    shared.journal.compact();
    // Final drain so records from the tail of the run (and the shutdown
    // pass itself) reach the histograms and the trace file.
    obs_flush.drain(&shared, node_id);
    obs_flush.finish(node_id);

    report.files_created = backend.files_created();
    report.bytes_stored = backend.bytes_written();
    let stats = &shared.stats;
    report.persist_retries = FaultStats::get(&stats.persist_retries);
    report.iterations_degraded = FaultStats::get(&stats.iterations_degraded);
    report.writes_dropped = FaultStats::get(&stats.writes_dropped);
    report.sync_fallback_writes = FaultStats::get(&stats.sync_fallback_writes);
    report.plugin_failures = FaultStats::get(&stats.plugin_failures);
    report.plugins_quarantined = FaultStats::get(&stats.plugins_quarantined);
    report.recovery_actions = FaultStats::get(&stats.recovery_actions);
    report.epe_respawns = FaultStats::get(&stats.epe_respawns);
    report.events_replayed = FaultStats::get(&stats.events_replayed);
    report.stale_events_rejected = FaultStats::get(&stats.stale_events_rejected);
    report.heartbeat_stale_observed = FaultStats::get(&stats.heartbeat_stale_observed);
    Ok(report)
}

/// The dedicated core's between-iteration trace drain: the single
/// consumer of every ring on the node. Flushed records always feed the
/// per-phase `phase.<kind>_ns` histograms in the node registry; when a
/// trace directory is configured they are additionally appended to a
/// CRC-guarded `node-<id>.dtrc` file (one file per server incarnation, so
/// a respawn never clobbers the predecessor's records).
struct ObsFlush {
    scratch: Vec<TraceRecord>,
    /// Per-kind histograms, indexed by `EventKind as usize`.
    hists: Vec<Histogram>,
    writer: Option<TraceWriter<BufWriter<std::fs::File>>>,
    /// Ring-drop total already forwarded to the writer.
    dropped_seen: u64,
}

impl ObsFlush {
    fn new(shared: &NodeShared, node_id: u32, epoch: u32) -> ObsFlush {
        let hists = EventKind::ALL
            .iter()
            .map(|k| shared.metrics.histogram(&format!("phase.{}_ns", k.label())))
            .collect();
        let writer = shared.obs.trace_dir.as_ref().and_then(|dir| {
            let name = if epoch == 0 {
                format!("node-{node_id}.dtrc")
            } else {
                format!("node-{node_id}-e{epoch}.dtrc")
            };
            let path = dir.join(name);
            let open = std::fs::create_dir_all(dir)
                .map_err(damaris_format::SdfError::from)
                .and_then(|()| {
                    let file = std::fs::File::create(&path)?;
                    TraceWriter::new(BufWriter::new(file))
                });
            match open {
                Ok(w) => Some(w),
                Err(e) => {
                    // Telemetry must never take down the data path: run on
                    // without a trace file.
                    eprintln!(
                        "[damaris node {node_id}] trace file {} disabled: {e}",
                        path.display()
                    );
                    None
                }
            }
        });
        ObsFlush {
            scratch: Vec::new(),
            hists,
            writer,
            dropped_seen: 0,
        }
    }

    fn drain(&mut self, shared: &NodeShared, node_id: u32) {
        self.scratch.clear();
        let mut dropped = 0;
        for ring in shared.obs.rings() {
            ring.flush_into(&mut self.scratch);
            dropped += ring.dropped();
        }
        for r in &self.scratch {
            if let Some(kind) = r.event_kind() {
                self.hists[kind as usize].observe(r.dur_ns);
            }
        }
        if let Some(w) = &mut self.writer {
            if dropped > self.dropped_seen {
                w.note_dropped(dropped - self.dropped_seen);
            }
            if !self.scratch.is_empty() {
                if let Err(e) = w.write_block(&self.scratch) {
                    eprintln!("[damaris node {node_id}] trace write failed, disabling: {e}");
                    self.writer = None;
                }
            }
        }
        self.dropped_seen = dropped;
    }

    fn finish(&mut self, node_id: u32) {
        if let Some(w) = self.writer.take() {
            if let Err(e) = w.finish() {
                eprintln!("[damaris node {node_id}] trace file close failed: {e}");
            }
        }
    }
}
