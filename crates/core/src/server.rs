//! The dedicated-core server loop.
//!
//! Runs on the node's dedicated core (a thread here): pulls events from
//! the shared queue, maintains the metadata store, tracks per-iteration
//! completion across the node's clients, and hands events to the EPE.
//! Actual I/O happens inside plugins — asynchronously with respect to the
//! compute cores, which is the whole point (§III).
//!
//! # Crash recovery
//!
//! The loop runs under the node supervisor (see [`crate::node`]): each
//! incarnation gets a heartbeat *epoch*. Epoch 0 starts clean; a respawned
//! epoch first **replays** the write-ahead journal — re-adopting the
//! shared-memory segments the dead incarnation had resident, re-counting
//! end-of-iteration notifications, firing still-pending user events — and
//! only then publishes its epoch on the heartbeat word, so clients parked
//! on a stale heartbeat resume against a consistent allocator and store.
//!
//! Exactly-once processing hinges on [`crate::journal::EventJournal::claim`]:
//! both the replay and the normal pop path claim an event's sequence
//! number, and only the first claim wins — a replayed event's stale queue
//! copy is counted in `stale_events_rejected` and dropped.

use crate::config::{OnClientFailure, OnDiskFull};
use crate::epe::{EventProcessingEngine, END_OF_ITERATION};
use crate::error::DamarisError;
use crate::event::Event;
use crate::journal::{Claim, JournalPayload, RecordState};
use crate::metadata::{MetadataStore, StoredVariable, VariableKey};
use crate::node::{FaultStats, NodeReport, NodeShared};
use crate::plugin::{ActionContext, EventInfo};
use damaris_obs::{EventKind, Histogram, TraceRecord, TraceWriter};
use damaris_shm::{LeaseSnapshot, Segment};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::io::BufWriter;
use std::sync::Arc;
use std::time::Duration;

/// Marker source id for server-originated events.
pub const SERVER_SOURCE: u32 = u32::MAX;

/// True when every client of the node is accounted for on an iteration:
/// either its end-of-iteration notification was counted, or the lease
/// sweeper fenced it (a dead rank will never send one).
fn iteration_complete(counted: &[(u32, u64)], fenced: &BTreeSet<u32>, clients: usize) -> bool {
    (0..clients as u32).all(|c| fenced.contains(&c) || counted.iter().any(|(s, _)| *s == c))
}

/// Presence bitmap for a partial fire: bit `r` is set iff client `r` ended
/// the iteration. Only representable for nodes with ≤ 64 clients; larger
/// nodes fire partially without the annotation.
fn presence_bits(counted: &[(u32, u64)], clients: usize) -> Option<u64> {
    if clients > 64 {
        return None;
    }
    Some(counted.iter().fold(0u64, |bits, (s, _)| bits | (1u64 << s)))
}

/// The dedicated-core event loop; returns the node's accounting when a
/// `Terminate` event arrives. `epoch` is this incarnation's heartbeat
/// epoch — nonzero means a predecessor crashed and the journal replays.
pub(crate) fn run(
    shared: Arc<NodeShared>,
    mut epe: EventProcessingEngine,
    node_id: u32,
    epoch: u32,
) -> Result<NodeReport, DamarisError> {
    let mut store = MetadataStore::new();
    let mut report = NodeReport::default();
    let mut pending_release = Vec::new();
    // Segments displaced by a same-(iteration, variable, source) rewrite,
    // held until that iteration fires. Releasing them on the spot is NOT
    // safe: the partitioned allocator requires per-client FIFO release,
    // and a client that ran ahead still has retained segments from
    // *earlier* iterations that were allocated first. Deferring to the
    // fire lets `flush_releases`'s (source, seq) sort restore allocation
    // order. (Found by the obs-overhead gate: the out-of-order release
    // corrupted a region's tail counter and wedged the client on `Full`.)
    let mut held_rewrites: BTreeMap<u32, Vec<(u32, u64, Segment)>> = BTreeMap::new();
    // End-notifications counted per iteration, as `(source, seq)` pairs:
    // the sources decide completion against the fenced set, and the seqnos
    // are marked applied when the iteration fires.
    let mut end_counts: HashMap<u32, Vec<(u32, u64)>> = HashMap::new();
    let backend = Arc::clone(&shared.backend);
    let rec = shared.obs.server_recorder();
    let mut obs_flush = ObsFlush::new(&shared, node_id, epoch);
    // Iteration spans run fire-end to fire-end; the first one starts now.
    let mut last_fire_end = rec.begin();
    let mut last_fired: u32 = 0;

    // === Storage-pressure state ===
    // The machine only has a signal to run on when the backend reports
    // disk usage; without a sentinel it stays dormant and the loop below
    // is byte-for-byte the pre-pressure behavior.
    let pressure_on = backend.sentinel().is_some();
    let disk_policy = shared.config.resilience.on_disk_full;

    // === Client-failure containment state ===
    let policy = shared.config.resilience.on_client_failure;
    // Under the default `wait` policy the sweeper never runs and the loop
    // below is byte-for-byte the pre-lease behavior: a silent client
    // stalls its iterations forever (the original Damaris contract).
    let sweeper_on = policy != OnClientFailure::Wait && shared.clients > 0;
    let lease_timeout = shared.config.resilience.client_lease_timeout;
    // Fencing survives server crashes via the journal: a respawned epoch
    // starts from its predecessor's fenced set.
    let mut fenced: BTreeSet<u32> = (0..shared.clients as u32)
        .filter(|c| shared.journal.is_fenced(*c))
        .collect();
    // Per-client `(last observation, expiry deadline)` on the backend's
    // clock (virtual under test). The deadline refreshes whenever the
    // observation changes; an unchanged lease past its deadline is swept.
    let mut lease_track: Vec<(LeaseSnapshot, Duration)> = (0..shared.clients)
        .map(|c| {
            // invariant: the lease table is sized for the node's clients.
            let lease = shared.leases.lease(c).expect("lease table covers every client");
            (lease.snapshot(), backend.clock().now() + lease_timeout)
        })
        .collect();

    macro_rules! ctx {
        () => {
            ActionContext {
                node_id,
                config: &shared.config,
                store: &mut store,
                backend: backend.as_ref(),
                buffer: &shared.buffer,
                stats: &shared.stats,
                journal: &shared.journal,
                pressure: &shared.pressure,
                pending_release: &mut pending_release,
                rec: rec.clone(),
                presence: None,
            }
        };
    }

    // Fires `end_of_iteration`. The counted end-notification records are
    // retired *before* the plugins run: plugin side effects are
    // at-most-once across crashes (a crash mid-fire does not re-fire the
    // iteration on replay — its data is still flushed at `Terminate`).
    macro_rules! fire_iteration {
        ($iteration:expr, $counted:expr, $presence:expr) => {{
            for (_, seq) in $counted {
                shared.journal.mark_applied(seq);
            }
            let info = EventInfo {
                name: END_OF_ITERATION.to_string(),
                iteration: $iteration,
                source: SERVER_SOURCE,
            };
            let t_epe = rec.begin();
            let mut ctx = ctx!();
            let presence: Option<u64> = $presence;
            if presence.is_some() {
                // Firing without every client: the persisted datasets are
                // stamped with the presence bitmap for the recovery scan.
                FaultStats::bump(&shared.stats.partial_iterations);
            }
            ctx.presence = presence;
            // Rewritten duplicates of this iteration join the flush, where
            // the (source, seq) sort merges them back into FIFO order with
            // the segments the plugins drain.
            for (source, seq, segment) in
                held_rewrites.remove(&$iteration).unwrap_or_default()
            {
                ctx.release_segment(source, seq, segment);
            }
            epe.fire(&mut ctx, &info)?;
            ctx.flush_releases();
            rec.end(EventKind::EpeDispatch, $iteration, 0, t_epe);
            // The iteration span covers everything since the previous fire
            // completed (idle + dispatch), so per-phase sums can be checked
            // against it for coverage.
            let now = rec.begin();
            rec.event(
                EventKind::Iteration,
                $iteration,
                0,
                now.saturating_sub(last_fire_end),
            );
            last_fire_end = now;
            last_fired = $iteration;
            report.iterations_persisted += 1;
            // Between-iteration drain: telemetry I/O rides the dedicated
            // core, never the compute ranks.
            obs_flush.drain(&shared, node_id);
        }};
    }

    // Under `on_client_failure="drop-iteration"`, an iteration missing a
    // fenced client is discarded whole: nothing persists, every resident
    // segment (and held rewrite) releases in FIFO order, and the counted
    // end records retire. The loss is counted in `iterations_degraded`.
    macro_rules! drop_iteration {
        ($iteration:expr, $counted:expr) => {{
            for (_, seq) in $counted {
                shared.journal.mark_applied(seq);
            }
            let mut ctx = ctx!();
            let drained = ctx.store.drain_iteration($iteration);
            ctx.release_all(drained);
            for (source, seq, segment) in
                held_rewrites.remove(&$iteration).unwrap_or_default()
            {
                ctx.release_segment(source, seq, segment);
            }
            ctx.flush_releases();
            FaultStats::bump(&shared.stats.iterations_degraded);
            eprintln!(
                "[damaris node {node_id}] iteration {} dropped: client(s) fenced \
                 under on_client_failure=\"drop-iteration\"",
                $iteration
            );
        }};
    }

    // Advances the storage-pressure machine against the backend's
    // sentinel. Runs on every loop pass (and while idle) so transitions —
    // including the re-ascent to Normal when a chaos scenario lifts the
    // quota — are observed even when no events flow.
    macro_rules! poll_pressure {
        () => {
            if pressure_on {
                shared
                    .pressure
                    .poll(node_id, backend.as_ref(), &shared.stats, &rec, last_fired);
            }
        };
    }

    // Under `on_disk_full="drop-iteration"`, an iteration that becomes
    // ready while the node is read-only is discarded whole — same release
    // mechanics as `drop_iteration!`, its own cause and counter.
    macro_rules! shed_iteration {
        ($iteration:expr, $counted:expr) => {{
            for (_, seq) in $counted {
                shared.journal.mark_applied(seq);
            }
            let mut ctx = ctx!();
            let drained = ctx.store.drain_iteration($iteration);
            ctx.release_all(drained);
            for (source, seq, segment) in
                held_rewrites.remove(&$iteration).unwrap_or_default()
            {
                ctx.release_segment(source, seq, segment);
            }
            ctx.flush_releases();
            FaultStats::bump(&shared.stats.iterations_degraded);
            FaultStats::bump(&shared.stats.storage_pressure_sheds);
            eprintln!(
                "[damaris node {node_id}] iteration {} shed: storage read-only \
                 under on_disk_full=\"drop-iteration\"",
                $iteration
            );
        }};
    }

    // Fires (or drops) every iteration whose clients are all counted or
    // fenced, in ascending order. Complete iterations fire exactly as
    // before; incomplete ones only become eligible through fencing, and
    // the policy decides between a partial fire (presence-stamped) and a
    // drop. While the storage-pressure machine is read-only, ready
    // iterations are shed per `on_disk_full` instead: `block` holds them
    // resident until space returns, `drop-iteration` discards them,
    // `partial` falls through and lets persist fail fast.
    macro_rules! fire_ready {
        () => {{
            let mut ready: Vec<u32> = end_counts
                .iter()
                .filter(|(_, counted)| iteration_complete(counted, &fenced, shared.clients))
                .map(|(it, _)| *it)
                .collect();
            ready.sort_unstable();
            let read_only = pressure_on && shared.pressure.is_read_only();
            for iteration in ready {
                let counted = end_counts.remove(&iteration).unwrap_or_default();
                if read_only {
                    match disk_policy {
                        OnDiskFull::Block => {
                            // Keep the iteration pending (data resident,
                            // notifications counted); re-examined on every
                            // pass until the quota relieves.
                            end_counts.insert(iteration, counted);
                            continue;
                        }
                        OnDiskFull::DropIteration => {
                            shed_iteration!(iteration, counted);
                            continue;
                        }
                        OnDiskFull::Partial => {}
                    }
                }
                if counted.len() == shared.clients {
                    fire_iteration!(iteration, counted, None);
                } else if policy == OnClientFailure::DropIteration {
                    drop_iteration!(iteration, counted);
                } else {
                    let presence = presence_bits(&counted, shared.clients);
                    fire_iteration!(iteration, counted, presence);
                }
            }
        }};
    }

    // One sweeper pass: revoke-or-refresh every live client's lease. A
    // lease unchanged past its deadline is revoked via compare-exchange
    // against our stale observation — the CAS is the arbiter of the
    // revoke-vs-late-renew race, so exactly one side wins. A successful
    // revoke fences the client's journal source and cancels its pending
    // notifications through the claim lattice; cancelled segments are held
    // until their iteration's flush so per-client FIFO release survives.
    macro_rules! sweep_leases {
        () => {
            if sweeper_on {
                let now = backend.clock().now();
                for c in 0..shared.clients {
                    let cu = c as u32;
                    if fenced.contains(&cu) {
                        continue;
                    }
                    // invariant: the lease table is sized for the node's clients.
                    let lease = shared.leases.lease(c).expect("lease table covers every client");
                    let snap = lease.snapshot();
                    if snap != lease_track[c].0 {
                        // The client renewed since we last looked: refresh.
                        lease_track[c] = (snap, now + lease_timeout);
                        continue;
                    }
                    if now < lease_track[c].1 {
                        continue;
                    }
                    if !lease.try_revoke(snap) {
                        // A renew won the race — the client is alive.
                        lease_track[c] = (lease.snapshot(), now + lease_timeout);
                        continue;
                    }
                    let t_sweep = rec.begin();
                    FaultStats::bump(&shared.stats.client_leases_expired);
                    fenced.insert(cu);
                    for (seq, payload) in shared.journal.fence(cu) {
                        if shared.journal.claim(seq) != Claim::Fresh {
                            continue;
                        }
                        match payload {
                            JournalPayload::Write {
                                iteration,
                                source,
                                offset,
                                len,
                                ..
                            }
                            | JournalPayload::Abandon {
                                iteration,
                                source,
                                offset,
                                len,
                            } => {
                                // Cancelled data never persists, but the
                                // segment must still release in seq order
                                // at its iteration's flush.
                                match shared.buffer.adopt(source, offset, len) {
                                    Some(segment) => held_rewrites
                                        .entry(iteration)
                                        .or_default()
                                        .push((source, seq, segment)),
                                    None => shared.journal.mark_applied(seq),
                                }
                            }
                            JournalPayload::User { .. }
                            | JournalPayload::EndIteration { .. } => {
                                shared.journal.mark_applied(seq);
                            }
                        }
                    }
                    eprintln!(
                        "[damaris node {node_id}] client {cu} lease expired after \
                         {lease_timeout:?}; fenced and cancelled"
                    );
                    rec.end(EventKind::LeaseSweep, last_fired, 0, t_sweep);
                }
            }
        };
    }

    // Reclaims fenced clients' outstanding shared memory once no live
    // handle of theirs remains on the server (store, held rewrites,
    // pending releases): `revoke_remaining` swallows *everything* the
    // client has outstanding, so a held handle released afterwards would
    // double-free. Re-run at every opportunity — a zombie (fenced but
    // still scheduled) client can keep allocating until it observes its
    // revoked lease.
    macro_rules! reclaim_fenced {
        () => {
            for &cu in fenced.iter() {
                if store.has_source(cu)
                    || held_rewrites
                        .values()
                        .any(|v| v.iter().any(|(s, _, _)| *s == cu))
                    || pending_release.iter().any(|(s, _, _)| *s == cu)
                {
                    continue;
                }
                let reclaimed = shared.buffer.revoke_remaining(cu);
                if reclaimed > 0 {
                    shared.stats.segments_reclaimed.add(reclaimed as u64);
                    eprintln!(
                        "[damaris node {node_id}] reclaimed {reclaimed}B of abandoned \
                         shared memory from fenced client {cu}"
                    );
                }
            }
        };
    }

    if epoch > 0 {
        // === Journal replay: rebuild the dead incarnation's state. ===
        let (entries, corrupt) = shared.journal.replay_snapshot();
        if corrupt > 0 {
            eprintln!(
                "[damaris node {node_id}] replay (epoch {epoch}): skipped {corrupt} \
                 CRC-corrupt journal record(s)"
            );
        }
        for entry in entries {
            match entry.payload {
                JournalPayload::Write {
                    variable_id,
                    iteration,
                    source,
                    offset,
                    len,
                    dynamic_layout,
                    data_crc,
                } => {
                    // Claim pending records so the stale queue copy is
                    // rejected when it eventually pops.
                    if entry.state == RecordState::Pending {
                        let _ = shared.journal.claim(entry.seq);
                    }
                    if fenced.contains(&source) {
                        // The dead epoch's sweeper fenced this client but
                        // may have crashed mid-cancel: finish the job. The
                        // segment is never persisted — it releases at its
                        // iteration's flush.
                        match shared.buffer.adopt(source, offset, len) {
                            Some(segment) => held_rewrites
                                .entry(iteration)
                                .or_default()
                                .push((source, entry.seq, segment)),
                            None => shared.journal.mark_applied(entry.seq),
                        }
                        continue;
                    }
                    let Some(def) = shared.config.variable(variable_id) else {
                        shared.journal.mark_applied(entry.seq);
                        eprintln!(
                            "[damaris node {node_id}] replay: unknown variable id \
                             {variable_id} (seq {}); skipped",
                            entry.seq
                        );
                        continue;
                    };
                    match shared.buffer.adopt(source, offset, len) {
                        Some(segment) => {
                            FaultStats::bump(&shared.stats.events_replayed);
                            report.variables_received += 1;
                            report.bytes_received += segment.len() as u64;
                            let layout = match dynamic_layout {
                                Some(layout) => layout,
                                None => shared.config.layout_of(def).storage_layout(),
                            };
                            let var = StoredVariable {
                                key: VariableKey {
                                    iteration,
                                    variable_id,
                                    source,
                                },
                                name: def.name.clone(),
                                layout,
                                segment,
                                seq: entry.seq,
                                data_crc,
                            };
                            report.peak_resident_bytes = report
                                .peak_resident_bytes
                                .max(store.bytes_resident() as u64 + var.segment.len() as u64);
                            if let Some(replaced) = store.insert(var) {
                                held_rewrites
                                    .entry(iteration)
                                    .or_default()
                                    .push((source, replaced.seq, replaced.segment));
                            }
                        }
                        None => {
                            // Not adoptable: the dead server released it
                            // between persisting and marking the record
                            // applied. The data is already safe (or was
                            // deliberately degraded) — retire the record.
                            shared.journal.mark_applied(entry.seq);
                            eprintln!(
                                "[damaris node {node_id}] replay: write seq {} \
                                 (src {source}, {len}B@{offset}) not adoptable; skipped",
                                entry.seq
                            );
                        }
                    }
                }
                JournalPayload::EndIteration { iteration, source } => {
                    if entry.state == RecordState::Pending {
                        let _ = shared.journal.claim(entry.seq);
                    }
                    if fenced.contains(&source) {
                        // Cancelled by the fence: completion comes from the
                        // fenced set, not the count.
                        shared.journal.mark_applied(entry.seq);
                        continue;
                    }
                    FaultStats::bump(&shared.stats.events_replayed);
                    end_counts
                        .entry(iteration)
                        .or_default()
                        .push((source, entry.seq));
                }
                JournalPayload::Abandon {
                    iteration,
                    source,
                    offset,
                    len,
                } => {
                    if entry.state == RecordState::Pending {
                        let _ = shared.journal.claim(entry.seq);
                    }
                    FaultStats::bump(&shared.stats.events_replayed);
                    match shared.buffer.adopt(source, offset, len) {
                        Some(segment) => held_rewrites
                            .entry(iteration)
                            .or_default()
                            .push((source, entry.seq, segment)),
                        // Already released before the crash: just retire.
                        None => shared.journal.mark_applied(entry.seq),
                    }
                }
                JournalPayload::User {
                    name,
                    iteration,
                    source,
                } => {
                    if entry.state != RecordState::Pending {
                        // The dead epoch claimed it and may have run its
                        // plugins: at-most-once forbids re-firing.
                        shared.journal.mark_applied(entry.seq);
                        continue;
                    }
                    let _ = shared.journal.claim(entry.seq);
                    shared.journal.mark_applied(entry.seq);
                    if fenced.contains(&source) {
                        // A dead client's signal does not fire.
                        continue;
                    }
                    FaultStats::bump(&shared.stats.events_replayed);
                    report.user_events += 1;
                    let info = EventInfo {
                        name,
                        iteration,
                        source,
                    };
                    let mut ctx = ctx!();
                    epe.fire(&mut ctx, &info)?;
                    ctx.flush_releases();
                }
            }
        }
        // Fire iterations the replayed notifications (or pre-crash
        // fencing) completed.
        fire_ready!();
        shared.journal.compact();
    }
    // Publish this epoch only after replay: clients parked on a stale
    // heartbeat resume against fully-rebuilt state (the Release store
    // makes everything above visible to their Acquire observe).
    shared.heartbeat.begin_epoch(epoch);

    poll_pressure!();

    loop {
        let t_idle = rec.begin();
        let event = if sweeper_on || pressure_on {
            // Manual poll instead of `pop_wait_with`: the sweeper must run
            // precisely when the queue goes quiet — a dead client stops
            // producing events, which is exactly what starves a blocking
            // pop. The pressure machine polls here for the same reason: a
            // quota lift (space returning) produces no event, yet held
            // iterations must fire and the node must re-ascend to Normal.
            loop {
                match shared.queue.pop() {
                    Some(event) => break event,
                    None => {
                        shared.heartbeat.beat();
                        poll_pressure!();
                        sweep_leases!();
                        fire_ready!();
                        reclaim_fenced!();
                        std::thread::sleep(Duration::from_micros(100));
                    }
                }
            }
        } else {
            shared.queue.pop_wait_with(|| shared.heartbeat.beat())
        };
        // Tagged with the iteration we are presumably waiting to complete.
        rec.end(EventKind::QueueIdle, last_fired.wrapping_add(1), 0, t_idle);
        // Claim arbitration: an event whose journal record was already
        // processed (by a previous epoch's replay) is dropped. The segment
        // handle in a stale Write is inert — the replay's adopted handle
        // owns the allocation.
        if let Some(seq) = event.seq() {
            if shared.journal.claim(seq) == Claim::Stale {
                FaultStats::bump(&shared.stats.stale_events_rejected);
                continue;
            }
        }
        match event {
            Event::Write {
                variable_id,
                iteration,
                source,
                segment,
                dynamic_layout,
                seq,
                data_crc,
            } => {
                let def = shared
                    .config
                    .variable(variable_id)
                    .ok_or_else(|| DamarisError::UnknownVariable(format!("id {variable_id}")))?;
                report.variables_received += 1;
                report.bytes_received += segment.len() as u64;
                let layout = match dynamic_layout {
                    Some(layout) => layout,
                    None => shared.config.layout_of(def).storage_layout(),
                };
                let var = StoredVariable {
                    key: VariableKey {
                        iteration,
                        variable_id,
                        source,
                    },
                    name: def.name.clone(),
                    layout,
                    segment,
                    seq,
                    data_crc,
                };
                report.peak_resident_bytes = report
                    .peak_resident_bytes
                    .max(store.bytes_resident() as u64 + var.segment.len() as u64);
                if let Some(replaced) = store.insert(var) {
                    // Duplicate tuple: hold the displaced segment until the
                    // iteration fires — an immediate release here can jump
                    // ahead of still-retained older segments and break the
                    // allocator's per-client FIFO contract.
                    held_rewrites
                        .entry(iteration)
                        .or_default()
                        .push((source, replaced.seq, replaced.segment));
                }
            }
            Event::User {
                name,
                iteration,
                source,
                seq,
            } => {
                // At-most-once: retire the record before firing, so a
                // crash mid-plugin does not re-fire it on replay.
                shared.journal.mark_applied(seq);
                report.user_events += 1;
                let info = EventInfo {
                    name,
                    iteration,
                    source,
                };
                let t_epe = rec.begin();
                let mut ctx = ctx!();
                epe.fire(&mut ctx, &info)?;
                ctx.flush_releases();
                rec.end(EventKind::EpeDispatch, iteration, 0, t_epe);
            }
            Event::EndIteration {
                iteration,
                source,
                seq,
            } => {
                end_counts
                    .entry(iteration)
                    .or_default()
                    .push((source, seq));
                // The fire itself happens in the `fire_ready!` pass below,
                // which also covers iterations completed by fencing.
            }
            Event::Abandon {
                iteration,
                source,
                segment,
                seq,
            } => {
                // A client handed back an uncommitted region. It may not
                // release the segment itself (per-client FIFO, single
                // consumer) — hold it until the iteration's flush, where
                // the (source, seq) sort restores allocation order.
                held_rewrites
                    .entry(iteration)
                    .or_default()
                    .push((source, seq, segment));
            }
            Event::Terminate => {
                // Flush any iterations that never completed (e.g. a client
                // crashed between write and end_iteration): persist what we
                // have rather than lose it. Incomplete flushes get the
                // presence stamp under the `partial` policy so recovery can
                // tell which ranks made it.
                for iteration in store.pending_iterations() {
                    let counted = end_counts.remove(&iteration).unwrap_or_default();
                    let presence = if counted.len() == shared.clients
                        || policy != OnClientFailure::Partial
                    {
                        None
                    } else {
                        presence_bits(&counted, shared.clients)
                    };
                    fire_iteration!(iteration, counted, presence);
                }
                // End-notifications for iterations with no resident data
                // have no further effect; retire their records.
                for (_, counted) in end_counts.drain() {
                    for (_, seq) in counted {
                        shared.journal.mark_applied(seq);
                    }
                }
                {
                    // Shutdown pass: stateful plugins flush their residuals.
                    let mut ctx = ctx!();
                    // Belt and braces: every held rewrite belongs to an
                    // iteration whose replacement was resident, so the
                    // flush-out above should have drained the map — but
                    // never leak a segment on the way out.
                    for (_, seqs) in std::mem::take(&mut held_rewrites) {
                        for (source, seq, segment) in seqs {
                            ctx.release_segment(source, seq, segment);
                        }
                    }
                    epe.finalize_all(&mut ctx)?;
                    ctx.flush_releases();
                }
                // Last zombie reclamation: nothing of the fenced clients'
                // is held any more, so their partitions drain completely.
                reclaim_fenced!();
                // The loop exits here, so the trackers' final updates from
                // the flush-out fires above are intentionally unread.
                let _ = (last_fired, last_fire_end);
                break;
            }
        }
        poll_pressure!();
        sweep_leases!();
        fire_ready!();
        reclaim_fenced!();
        shared.heartbeat.beat();
    }
    shared.journal.compact();
    // Final drain so records from the tail of the run (and the shutdown
    // pass itself) reach the histograms and the trace file.
    obs_flush.drain(&shared, node_id);
    obs_flush.finish(node_id);

    report.files_created = backend.files_created();
    report.bytes_stored = backend.bytes_written();
    let stats = &shared.stats;
    report.persist_retries = FaultStats::get(&stats.persist_retries);
    report.iterations_degraded = FaultStats::get(&stats.iterations_degraded);
    report.writes_dropped = FaultStats::get(&stats.writes_dropped);
    report.sync_fallback_writes = FaultStats::get(&stats.sync_fallback_writes);
    report.plugin_failures = FaultStats::get(&stats.plugin_failures);
    report.plugins_quarantined = FaultStats::get(&stats.plugins_quarantined);
    report.recovery_actions = FaultStats::get(&stats.recovery_actions);
    report.epe_respawns = FaultStats::get(&stats.epe_respawns);
    report.events_replayed = FaultStats::get(&stats.events_replayed);
    report.stale_events_rejected = FaultStats::get(&stats.stale_events_rejected);
    report.heartbeat_stale_observed = FaultStats::get(&stats.heartbeat_stale_observed);
    report.client_leases_expired = FaultStats::get(&stats.client_leases_expired);
    report.segments_reclaimed = FaultStats::get(&stats.segments_reclaimed);
    report.crc_quarantined = FaultStats::get(&stats.crc_quarantined);
    report.partial_iterations = FaultStats::get(&stats.partial_iterations);
    report.shm_orphans_removed = FaultStats::get(&stats.shm_orphans_removed);
    report.shm_orphans_quarantined = FaultStats::get(&stats.shm_orphans_quarantined);
    report.storage_pressure_degraded = FaultStats::get(&stats.storage_pressure_degraded);
    report.storage_pressure_readonly = FaultStats::get(&stats.storage_pressure_readonly);
    report.storage_pressure_recovered = FaultStats::get(&stats.storage_pressure_recovered);
    report.storage_pressure_sheds = FaultStats::get(&stats.storage_pressure_sheds);
    report.storage_pressure_gc_bytes = FaultStats::get(&stats.storage_pressure_gc_bytes);
    Ok(report)
}

/// The dedicated core's between-iteration trace drain: the single
/// consumer of every ring on the node. Flushed records always feed the
/// per-phase `phase.<kind>_ns` histograms in the node registry; when a
/// trace directory is configured they are additionally appended to a
/// CRC-guarded `node-<id>.dtrc` file (one file per server incarnation, so
/// a respawn never clobbers the predecessor's records).
struct ObsFlush {
    scratch: Vec<TraceRecord>,
    /// Per-kind histograms, indexed by `EventKind as usize`.
    hists: Vec<Histogram>,
    writer: Option<TraceWriter<BufWriter<std::fs::File>>>,
    /// Ring-drop total already forwarded to the writer.
    dropped_seen: u64,
}

impl ObsFlush {
    fn new(shared: &NodeShared, node_id: u32, epoch: u32) -> ObsFlush {
        let hists = EventKind::ALL
            .iter()
            .map(|k| shared.metrics.histogram(&format!("phase.{}_ns", k.label())))
            .collect();
        let writer = shared.obs.trace_dir.as_ref().and_then(|dir| {
            let name = if epoch == 0 {
                format!("node-{node_id}.dtrc")
            } else {
                format!("node-{node_id}-e{epoch}.dtrc")
            };
            let path = dir.join(name);
            let open = std::fs::create_dir_all(dir)
                .map_err(damaris_format::SdfError::from)
                .and_then(|()| {
                    let file = std::fs::File::create(&path)?;
                    TraceWriter::new(BufWriter::new(file))
                });
            match open {
                Ok(w) => Some(w),
                Err(e) => {
                    // Telemetry must never take down the data path: run on
                    // without a trace file.
                    eprintln!(
                        "[damaris node {node_id}] trace file {} disabled: {e}",
                        path.display()
                    );
                    None
                }
            }
        });
        ObsFlush {
            scratch: Vec::new(),
            hists,
            writer,
            dropped_seen: 0,
        }
    }

    fn drain(&mut self, shared: &NodeShared, node_id: u32) {
        self.scratch.clear();
        let mut dropped = 0;
        for ring in shared.obs.rings() {
            ring.flush_into(&mut self.scratch);
            dropped += ring.dropped();
        }
        for r in &self.scratch {
            if let Some(kind) = r.event_kind() {
                self.hists[kind as usize].observe(r.dur_ns);
            }
        }
        if let Some(w) = &mut self.writer {
            if dropped > self.dropped_seen {
                w.note_dropped(dropped - self.dropped_seen);
            }
            if !self.scratch.is_empty() {
                if let Err(e) = w.write_block(&self.scratch) {
                    eprintln!("[damaris node {node_id}] trace write failed, disabling: {e}");
                    self.writer = None;
                }
            }
        }
        self.dropped_seen = dropped;
    }

    fn finish(&mut self, node_id: u32) {
        if let Some(w) = self.writer.take() {
            if let Err(e) = w.finish() {
                eprintln!("[damaris node {node_id}] trace file close failed: {e}");
            }
        }
    }
}
