//! The dedicated-core server loop.
//!
//! Runs on the node's dedicated core (a thread here): pulls events from
//! the shared queue, maintains the metadata store, tracks per-iteration
//! completion across the node's clients, and hands events to the EPE.
//! Actual I/O happens inside plugins — asynchronously with respect to the
//! compute cores, which is the whole point (§III).

use crate::epe::{EventProcessingEngine, END_OF_ITERATION};
use crate::error::DamarisError;
use crate::event::Event;
use crate::metadata::{MetadataStore, StoredVariable, VariableKey};
use crate::node::{FaultStats, NodeReport, NodeShared};
use crate::plugin::{ActionContext, EventInfo};
use std::collections::HashMap;
use std::sync::Arc;

/// Marker source id for server-originated events.
pub const SERVER_SOURCE: u32 = u32::MAX;

/// The dedicated-core event loop; returns the node's accounting when a
/// `Terminate` event arrives.
pub(crate) fn run(
    shared: Arc<NodeShared>,
    mut epe: EventProcessingEngine,
    node_id: u32,
) -> Result<NodeReport, DamarisError> {
    let mut store = MetadataStore::new();
    let mut report = NodeReport::default();
    let mut pending_release = Vec::new();
    let mut end_counts: HashMap<u32, usize> = HashMap::new();
    let mut seq: u64 = 0;
    let backend = Arc::clone(&shared.backend);

    macro_rules! ctx {
        () => {
            ActionContext {
                node_id,
                config: &shared.config,
                store: &mut store,
                backend: backend.as_ref(),
                buffer: &shared.buffer,
                stats: &shared.stats,
                pending_release: &mut pending_release,
            }
        };
    }

    loop {
        match shared.queue.pop_wait() {
            Event::Write {
                variable_id,
                iteration,
                source,
                segment,
                dynamic_layout,
            } => {
                let def = shared
                    .config
                    .variable(variable_id)
                    .ok_or_else(|| DamarisError::UnknownVariable(format!("id {variable_id}")))?;
                report.variables_received += 1;
                report.bytes_received += segment.len() as u64;
                let layout = match dynamic_layout {
                    Some(layout) => layout,
                    None => shared.config.layout_of(def).storage_layout(),
                };
                let var = StoredVariable {
                    key: VariableKey {
                        iteration,
                        variable_id,
                        source,
                    },
                    name: def.name.clone(),
                    layout,
                    segment,
                    seq,
                };
                seq += 1;
                report.peak_resident_bytes = report
                    .peak_resident_bytes
                    .max(store.bytes_resident() as u64 + var.segment.len() as u64);
                if let Some(replaced) = store.insert(var) {
                    // Duplicate tuple: the older segment is the oldest live
                    // one for this client, safe to release immediately.
                    shared.buffer.release(source, replaced);
                }
            }
            Event::User {
                name,
                iteration,
                source,
            } => {
                report.user_events += 1;
                let info = EventInfo {
                    name,
                    iteration,
                    source,
                };
                let mut ctx = ctx!();
                epe.fire(&mut ctx, &info)?;
                ctx.flush_releases();
            }
            Event::EndIteration { iteration, source } => {
                let _ = source;
                let count = end_counts.entry(iteration).or_insert(0);
                *count += 1;
                if *count == shared.clients {
                    end_counts.remove(&iteration);
                    let info = EventInfo {
                        name: END_OF_ITERATION.to_string(),
                        iteration,
                        source: SERVER_SOURCE,
                    };
                    let mut ctx = ctx!();
                    epe.fire(&mut ctx, &info)?;
                    ctx.flush_releases();
                    report.iterations_persisted += 1;
                }
            }
            Event::Terminate => {
                // Flush any iterations that never completed (e.g. a client
                // crashed between write and end_iteration): persist what we
                // have rather than lose it.
                for iteration in store.pending_iterations() {
                    let info = EventInfo {
                        name: END_OF_ITERATION.to_string(),
                        iteration,
                        source: SERVER_SOURCE,
                    };
                    let mut ctx = ctx!();
                    epe.fire(&mut ctx, &info)?;
                    ctx.flush_releases();
                    report.iterations_persisted += 1;
                }
                // Shutdown pass: stateful plugins flush their residuals.
                let mut ctx = ctx!();
                epe.finalize_all(&mut ctx)?;
                ctx.flush_releases();
                break;
            }
        }
    }

    report.files_created = backend.files_created();
    report.bytes_stored = backend.bytes_written();
    let stats = &shared.stats;
    report.persist_retries = FaultStats::get(&stats.persist_retries);
    report.iterations_degraded = FaultStats::get(&stats.iterations_degraded);
    report.writes_dropped = FaultStats::get(&stats.writes_dropped);
    report.sync_fallback_writes = FaultStats::get(&stats.sync_fallback_writes);
    report.plugin_failures = FaultStats::get(&stats.plugin_failures);
    report.plugins_quarantined = FaultStats::get(&stats.plugins_quarantined);
    report.recovery_actions = FaultStats::get(&stats.recovery_actions);
    Ok(report)
}
