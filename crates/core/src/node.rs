//! Node runtime: wires one dedicated-core server thread to K client
//! handles over a shared buffer and event queue — one SMP node of the
//! Damaris deployment (paper Fig. 1).

use crate::client::DamarisClient;
use crate::config::{AllocatorKind, Config};
use crate::epe::EventProcessingEngine;
use crate::error::DamarisError;
use crate::event::Event;
use crate::plugin::PluginFactory;
use crate::server;
use damaris_fs::{LocalDirBackend, StorageBackend};
use damaris_shm::sync::{Arc, AtomicU64, Ordering};
use damaris_shm::{AllocError, MpscQueue, MutexAllocator, PartitionAllocator, Segment};
use std::path::Path;

/// Either of the paper's two reservation schemes, behind one interface.
pub(crate) enum BufferManager {
    Mutex(MutexAllocator),
    Partition(PartitionAllocator),
}

impl BufferManager {
    pub(crate) fn allocate(&self, client: u32, len: usize) -> Result<Segment, AllocError> {
        match self {
            BufferManager::Mutex(a) => a.allocate(len),
            BufferManager::Partition(a) => a.allocate(client as usize, len),
        }
    }

    pub(crate) fn release(&self, client: u32, segment: Segment) {
        match self {
            BufferManager::Mutex(a) => a.release(segment),
            BufferManager::Partition(a) => a.release(client as usize, segment),
        }
    }

    pub(crate) fn capacity(&self) -> usize {
        match self {
            BufferManager::Mutex(a) => a.capacity(),
            BufferManager::Partition(a) => a.buffer().capacity(),
        }
    }
}

/// Failure/degradation counters shared across the node: clients bump the
/// backpressure ones, the dedicated core bumps the persist/plugin ones, and
/// the final [`NodeReport`] copies them out.
#[derive(Debug, Default)]
pub(crate) struct FaultStats {
    pub persist_retries: AtomicU64,
    pub iterations_degraded: AtomicU64,
    pub writes_dropped: AtomicU64,
    pub sync_fallback_writes: AtomicU64,
    pub plugin_failures: AtomicU64,
    pub plugins_quarantined: AtomicU64,
    pub recovery_actions: AtomicU64,
}

impl FaultStats {
    pub(crate) fn bump(counter: &AtomicU64) {
        // Relaxed: pure event counters on the hot client/server paths.
        // Nothing is published under them — readers only need eventual
        // totals, and `get` runs after the server thread is joined (a
        // happens-before edge that already orders every bump). SeqCst
        // here bought nothing but a fence per client write.
        counter.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn get(counter: &AtomicU64) -> u64 {
        // Relaxed: see `bump` — the server-thread join orders all bumps
        // before the final report copies the counters out.
        counter.load(Ordering::Relaxed)
    }
}

/// State shared between the clients and the server of one node.
pub(crate) struct NodeShared {
    pub config: Config,
    pub buffer: BufferManager,
    pub queue: MpscQueue<Event>,
    pub clients: usize,
    /// Storage target; a trait object so tests can decorate it with
    /// fault injection ([`damaris_fs::FaultyBackend`]).
    pub backend: Arc<dyn StorageBackend>,
    pub stats: FaultStats,
}

/// Final accounting returned by [`NodeRuntime::finish`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct NodeReport {
    /// Iterations whose data was persisted.
    pub iterations_persisted: u64,
    /// Write notifications received.
    pub variables_received: u64,
    /// Payload bytes moved through shared memory.
    pub bytes_received: u64,
    /// User events dispatched.
    pub user_events: u64,
    /// SDF files created by this node's backend.
    pub files_created: u64,
    /// Bytes written to storage (post-filter).
    pub bytes_stored: u64,
    /// Peak shared-memory bytes resident in the metadata store — how much
    /// of the buffer the node actually needed (buffer-sizing guidance).
    pub peak_resident_bytes: u64,
    /// Persist attempts retried after a transient storage failure.
    pub persist_retries: u64,
    /// Iterations whose data was dropped because persist exhausted its
    /// retry budget/deadline (the run continued — graceful degradation).
    pub iterations_degraded: u64,
    /// Client writes dropped under the `drop` backpressure policy.
    pub writes_dropped: u64,
    /// Client writes that bypassed shared memory under the `sync-fallback`
    /// backpressure policy (written synchronously by the compute core).
    pub sync_fallback_writes: u64,
    /// Plugin invocations that failed (error return or caught panic).
    pub plugin_failures: u64,
    /// Plugins disabled after `plugin_quarantine` consecutive failures.
    pub plugins_quarantined: u64,
    /// Startup recovery actions (orphan `*.tmp` deletions + torn-file
    /// quarantines) taken before serving.
    pub recovery_actions: u64,
}

/// One running Damaris node: a dedicated-core server thread plus client
/// handles for the compute cores.
pub struct NodeRuntime {
    shared: Arc<NodeShared>,
    clients: Option<Vec<DamarisClient>>,
    server: Option<std::thread::JoinHandle<Result<NodeReport, DamarisError>>>,
}

impl NodeRuntime {
    /// Starts a node with `n_clients` compute cores, persisting into
    /// `output_dir`. Uses the built-in plugin registry.
    pub fn start(
        config: Config,
        n_clients: usize,
        output_dir: impl AsRef<Path>,
    ) -> Result<NodeRuntime, DamarisError> {
        Self::start_with(config, n_clients, output_dir, 0, Vec::new())
    }

    /// Starts a node with a node id (for multi-node deployments) and extra
    /// plugin factories (action name → factory), which take precedence
    /// over the built-ins.
    pub fn start_with(
        config: Config,
        n_clients: usize,
        output_dir: impl AsRef<Path>,
        node_id: u32,
        extra_plugins: Vec<(String, PluginFactory)>,
    ) -> Result<NodeRuntime, DamarisError> {
        let backend = Arc::new(
            LocalDirBackend::new(output_dir)
                .map_err(|e| DamarisError::Storage(damaris_format::SdfError::Io(e)))?,
        );
        Self::start_with_backend(config, n_clients, backend, node_id, extra_plugins)
    }

    /// Starts a node persisting through an explicit [`StorageBackend`] —
    /// how chaos tests slide a [`damaris_fs::FaultyBackend`] under the
    /// whole I/O path, and how alternative backends plug in.
    pub fn start_with_backend(
        config: Config,
        n_clients: usize,
        backend: Arc<dyn StorageBackend>,
        node_id: u32,
        extra_plugins: Vec<(String, PluginFactory)>,
    ) -> Result<NodeRuntime, DamarisError> {
        if n_clients == 0 {
            return Err(DamarisError::Config("need at least one client".into()));
        }
        let buffer = match config.allocator {
            AllocatorKind::Mutex => {
                BufferManager::Mutex(MutexAllocator::with_capacity(config.buffer_size))
            }
            AllocatorKind::Partition => BufferManager::Partition(
                PartitionAllocator::with_capacity(config.buffer_size, n_clients),
            ),
        };
        let queue = MpscQueue::new(config.queue_capacity);

        let epe = EventProcessingEngine::build(&config, extra_plugins)?;
        let stats = FaultStats::default();
        if config.resilience.recovery_scan {
            // Crash recovery before serving: anything a previous run (or a
            // previous fault) left half-written is removed or quarantined
            // so this run starts from a consistent directory.
            let scan = damaris_fs::recover(backend.as_ref())
                .map_err(|e| DamarisError::Storage(damaris_format::SdfError::Io(e)))?;
            if !scan.is_clean() {
                eprintln!(
                    "[damaris node {node_id}] recovery: removed {} orphan tmp file(s), \
                     quarantined {} torn file(s)",
                    scan.removed_tmp.len(),
                    scan.quarantined.len()
                );
            }
            // Relaxed: single-threaded startup — the clients and the
            // server thread don't exist yet; the spawn below is the
            // publishing happens-before edge.
            stats
                .recovery_actions
                .store(scan.actions(), Ordering::Relaxed);
        }
        let shared = Arc::new(NodeShared {
            config,
            buffer,
            queue,
            clients: n_clients,
            backend,
            stats,
        });

        let clients = (0..n_clients as u32)
            .map(|id| DamarisClient::new(id, Arc::clone(&shared)))
            .collect();

        let server_shared = Arc::clone(&shared);
        let server = std::thread::Builder::new()
            .name(format!("damaris-ded-{node_id}"))
            .spawn(move || server::run(server_shared, epe, node_id))
            // invariant: thread spawn only fails on resource exhaustion at
            // process scale; a node that cannot start its dedicated core
            // cannot run at all.
            .expect("spawn dedicated-core thread");

        Ok(NodeRuntime {
            shared,
            clients: Some(clients),
            server: Some(server),
        })
    }

    /// Hands out the client handles (once). Clients are `Send`: move each
    /// to its compute thread.
    pub fn clients(&self) -> Vec<DamarisClient> {
        self.clients
            .as_ref()
            // invariant: documented API contract — `clients`/`take_clients`
            // may only be called before the handles are taken.
            .expect("clients already taken")
            .clone()
    }

    /// Takes ownership of the client handles.
    pub fn take_clients(&mut self) -> Vec<DamarisClient> {
        // invariant: documented API contract — handles are taken once.
        self.clients.take().expect("clients already taken")
    }

    /// The storage backend (for inspecting produced files).
    pub fn backend(&self) -> &Arc<dyn StorageBackend> {
        &self.shared.backend
    }

    /// Capacity of the node's shared buffer in bytes.
    pub fn buffer_capacity(&self) -> usize {
        self.shared.buffer.capacity()
    }

    /// Injects a user event from *outside* the simulation — the paper's
    /// "events sent either by the simulation **or by external tools**"
    /// (§III-A): a steering console or monitoring agent can trigger
    /// configured actions without holding a client.
    ///
    /// Returns [`DamarisError::UnknownEvent`] when no action is bound.
    pub fn inject_event(&self, event: &str, iteration: u32) -> Result<(), DamarisError> {
        if self.shared.config.bindings_for(event).is_empty() {
            return Err(DamarisError::UnknownEvent(event.to_string()));
        }
        self.shared.queue.push_wait(Event::User {
            name: event.to_string(),
            iteration,
            source: crate::server::SERVER_SOURCE,
        });
        Ok(())
    }

    /// Sends the termination event and joins the dedicated core. Call
    /// after all client activity is done.
    pub fn finish(mut self) -> Result<NodeReport, DamarisError> {
        self.shared.queue.push_wait(Event::Terminate);
        // invariant: `finish` consumes `self`, so the handle is present.
        let handle = self.server.take().expect("finish called once");
        match handle.join() {
            Ok(report) => report,
            Err(panic) => std::panic::resume_unwind(panic),
        }
    }
}

impl Drop for NodeRuntime {
    fn drop(&mut self) {
        if let Some(handle) = self.server.take() {
            self.shared.queue.push_wait(Event::Terminate);
            let _ = handle.join();
        }
    }
}
