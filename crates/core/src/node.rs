//! Node runtime: wires one dedicated-core server thread to K client
//! handles over a shared buffer and event queue — one SMP node of the
//! Damaris deployment (paper Fig. 1).

use crate::client::DamarisClient;
use crate::config::{AllocatorKind, Config};
use crate::epe::EventProcessingEngine;
use crate::error::DamarisError;
use crate::event::Event;
use crate::plugin::PluginFactory;
use crate::server;
use damaris_fs::LocalDirBackend;
use damaris_shm::{AllocError, MpscQueue, MutexAllocator, PartitionAllocator, Segment};
use std::path::Path;
use std::sync::Arc;

/// Either of the paper's two reservation schemes, behind one interface.
pub(crate) enum BufferManager {
    Mutex(MutexAllocator),
    Partition(PartitionAllocator),
}

impl BufferManager {
    pub(crate) fn allocate(&self, client: u32, len: usize) -> Result<Segment, AllocError> {
        match self {
            BufferManager::Mutex(a) => a.allocate(len),
            BufferManager::Partition(a) => a.allocate(client as usize, len),
        }
    }

    pub(crate) fn release(&self, client: u32, segment: Segment) {
        match self {
            BufferManager::Mutex(a) => a.release(segment),
            BufferManager::Partition(a) => a.release(client as usize, segment),
        }
    }

    pub(crate) fn capacity(&self) -> usize {
        match self {
            BufferManager::Mutex(a) => a.capacity(),
            BufferManager::Partition(a) => a.buffer().capacity(),
        }
    }
}

/// State shared between the clients and the server of one node.
pub(crate) struct NodeShared {
    pub config: Config,
    pub buffer: BufferManager,
    pub queue: MpscQueue<Event>,
    pub clients: usize,
}

/// Final accounting returned by [`NodeRuntime::finish`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct NodeReport {
    /// Iterations whose data was persisted.
    pub iterations_persisted: u64,
    /// Write notifications received.
    pub variables_received: u64,
    /// Payload bytes moved through shared memory.
    pub bytes_received: u64,
    /// User events dispatched.
    pub user_events: u64,
    /// SDF files created by this node's backend.
    pub files_created: u64,
    /// Bytes written to storage (post-filter).
    pub bytes_stored: u64,
    /// Peak shared-memory bytes resident in the metadata store — how much
    /// of the buffer the node actually needed (buffer-sizing guidance).
    pub peak_resident_bytes: u64,
}

/// One running Damaris node: a dedicated-core server thread plus client
/// handles for the compute cores.
pub struct NodeRuntime {
    shared: Arc<NodeShared>,
    clients: Option<Vec<DamarisClient>>,
    server: Option<std::thread::JoinHandle<Result<NodeReport, DamarisError>>>,
    backend: Arc<LocalDirBackend>,
}

impl NodeRuntime {
    /// Starts a node with `n_clients` compute cores, persisting into
    /// `output_dir`. Uses the built-in plugin registry.
    pub fn start(
        config: Config,
        n_clients: usize,
        output_dir: impl AsRef<Path>,
    ) -> Result<NodeRuntime, DamarisError> {
        Self::start_with(config, n_clients, output_dir, 0, Vec::new())
    }

    /// Starts a node with a node id (for multi-node deployments) and extra
    /// plugin factories (action name → factory), which take precedence
    /// over the built-ins.
    pub fn start_with(
        config: Config,
        n_clients: usize,
        output_dir: impl AsRef<Path>,
        node_id: u32,
        extra_plugins: Vec<(String, PluginFactory)>,
    ) -> Result<NodeRuntime, DamarisError> {
        if n_clients == 0 {
            return Err(DamarisError::Config("need at least one client".into()));
        }
        let buffer = match config.allocator {
            AllocatorKind::Mutex => {
                BufferManager::Mutex(MutexAllocator::with_capacity(config.buffer_size))
            }
            AllocatorKind::Partition => BufferManager::Partition(
                PartitionAllocator::with_capacity(config.buffer_size, n_clients),
            ),
        };
        let queue = MpscQueue::new(config.queue_capacity);
        let backend = Arc::new(
            LocalDirBackend::new(output_dir)
                .map_err(|e| DamarisError::Storage(damaris_format::SdfError::Io(e)))?,
        );

        let epe = EventProcessingEngine::build(&config, extra_plugins)?;
        let shared = Arc::new(NodeShared {
            config,
            buffer,
            queue,
            clients: n_clients,
        });

        let clients = (0..n_clients as u32)
            .map(|id| DamarisClient::new(id, Arc::clone(&shared)))
            .collect();

        let server_shared = Arc::clone(&shared);
        let server_backend = Arc::clone(&backend);
        let server = std::thread::Builder::new()
            .name(format!("damaris-ded-{node_id}"))
            .spawn(move || server::run(server_shared, server_backend, epe, node_id))
            .expect("spawn dedicated-core thread");

        Ok(NodeRuntime {
            shared,
            clients: Some(clients),
            server: Some(server),
            backend,
        })
    }

    /// Hands out the client handles (once). Clients are `Send`: move each
    /// to its compute thread.
    pub fn clients(&self) -> Vec<DamarisClient> {
        self.clients
            .as_ref()
            .expect("clients already taken")
            .clone()
    }

    /// Takes ownership of the client handles.
    pub fn take_clients(&mut self) -> Vec<DamarisClient> {
        self.clients.take().expect("clients already taken")
    }

    /// The storage backend (for inspecting produced files).
    pub fn backend(&self) -> &Arc<LocalDirBackend> {
        &self.backend
    }

    /// Capacity of the node's shared buffer in bytes.
    pub fn buffer_capacity(&self) -> usize {
        self.shared.buffer.capacity()
    }

    /// Injects a user event from *outside* the simulation — the paper's
    /// "events sent either by the simulation **or by external tools**"
    /// (§III-A): a steering console or monitoring agent can trigger
    /// configured actions without holding a client.
    ///
    /// Returns [`DamarisError::UnknownEvent`] when no action is bound.
    pub fn inject_event(&self, event: &str, iteration: u32) -> Result<(), DamarisError> {
        if self.shared.config.bindings_for(event).is_empty() {
            return Err(DamarisError::UnknownEvent(event.to_string()));
        }
        self.shared.queue.push_wait(Event::User {
            name: event.to_string(),
            iteration,
            source: crate::server::SERVER_SOURCE,
        });
        Ok(())
    }

    /// Sends the termination event and joins the dedicated core. Call
    /// after all client activity is done.
    pub fn finish(mut self) -> Result<NodeReport, DamarisError> {
        self.shared.queue.push_wait(Event::Terminate);
        let handle = self.server.take().expect("finish called once");
        match handle.join() {
            Ok(report) => report,
            Err(panic) => std::panic::resume_unwind(panic),
        }
    }
}

impl Drop for NodeRuntime {
    fn drop(&mut self) {
        if let Some(handle) = self.server.take() {
            self.shared.queue.push_wait(Event::Terminate);
            let _ = handle.join();
        }
    }
}
