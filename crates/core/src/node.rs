//! Node runtime: wires one dedicated-core server thread to K client
//! handles over a shared buffer and event queue — one SMP node of the
//! Damaris deployment (paper Fig. 1).
//!
//! # Supervision
//!
//! The dedicated core runs under a supervisor thread. With `<resilience
//! epe_respawn="N">` a crashed server thread (error or panic) is respawned
//! up to N times: each incarnation gets a new heartbeat epoch, replays the
//! event journal (see [`crate::journal`]), re-adopts the shared-memory
//! segments the dead incarnation held, and resumes serving the same queue.
//! With the default `epe_respawn="0"` the crash simply surfaces at
//! [`NodeRuntime::finish`], as before.

use crate::client::DamarisClient;
use crate::config::{AllocatorKind, Config};
use crate::epe::EventProcessingEngine;
use crate::error::DamarisError;
use crate::event::Event;
use crate::journal::{EventJournal, JournalPayload};
use crate::plugin::PluginFactory;
use crate::server;
use damaris_fs::{LocalDirBackend, StorageBackend};
use damaris_obs::{Counter, MetricsSnapshot, Recorder, Registry, TraceRing, FLAG_SERVER};
use damaris_shm::sync::Arc;
use damaris_shm::{
    AllocError, HeartbeatWord, LeaseTable, MpscQueue, MutexAllocator, PartitionAllocator, Segment,
};
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Either of the paper's two reservation schemes, behind one interface.
pub(crate) enum BufferManager {
    Mutex(MutexAllocator),
    Partition(PartitionAllocator),
}

impl BufferManager {
    pub(crate) fn allocate(&self, client: u32, len: usize) -> Result<Segment, AllocError> {
        match self {
            // Owner-tagged so an expired client's reservations can be
            // swept back (`revoke_client`); the tag drops on release.
            BufferManager::Mutex(a) => a.allocate_owned(client, len),
            BufferManager::Partition(a) => a.allocate(client as usize, len),
        }
    }

    pub(crate) fn release(&self, client: u32, segment: Segment) {
        match self {
            BufferManager::Mutex(a) => a.release(segment),
            BufferManager::Partition(a) => a.release(client as usize, segment),
        }
    }

    /// Re-adopts a still-allocated range after a dedicated-core crash: the
    /// journal records the coordinates, the allocator validates them and
    /// reissues the handle. `None` if the range is not a live allocation.
    pub(crate) fn adopt(&self, client: u32, offset: usize, len: usize) -> Option<Segment> {
        match self {
            BufferManager::Mutex(a) => a.adopt_owned(client, offset, len),
            BufferManager::Partition(a) => a.adopt(client as usize, offset, len),
        }
    }

    /// Terminal reclamation for a revoked client: sweeps back everything
    /// it still has reserved. Partition mode advances the region's tail to
    /// its head (the region simply goes idle); mutex mode releases every
    /// still-tagged range back to the global free list. Returns the bytes
    /// reclaimed. Every *known* segment of the client must have been
    /// released (FIFO, in partition mode) before this call.
    pub(crate) fn revoke_remaining(&self, client: u32) -> usize {
        match self {
            BufferManager::Mutex(a) => a.revoke_client(client),
            BufferManager::Partition(a) => a.revoke_remaining(client as usize),
        }
    }

    pub(crate) fn capacity(&self) -> usize {
        match self {
            BufferManager::Mutex(a) => a.capacity(),
            BufferManager::Partition(a) => a.buffer().capacity(),
        }
    }

    /// Bytes currently reserved across the whole buffer (leak detector:
    /// zero once every segment of a finished run was released).
    pub(crate) fn in_use(&self, n_clients: usize) -> usize {
        match self {
            BufferManager::Mutex(a) => a.in_use(),
            BufferManager::Partition(a) => (0..n_clients).map(|c| a.in_use(c)).sum(),
        }
    }
}

/// Failure/degradation counters shared across the node: clients bump the
/// backpressure ones, the dedicated core bumps the persist/plugin ones, and
/// the final [`NodeReport`] copies them out.
///
/// The fields are named handles into the node's metrics [`Registry`] (one
/// `node.*` counter each) rather than raw atomics, so the same totals are
/// visible through [`NodeRuntime::metrics_snapshot`] — `NodeReport` stays
/// the stable end-of-run snapshot view. A `Counter` bump is one Relaxed
/// `fetch_add`: nothing is published under these counters, and `get` runs
/// after the server-thread join orders every bump (same reasoning that
/// previously justified Relaxed on the raw `AtomicU64`s).
#[derive(Debug)]
pub(crate) struct FaultStats {
    pub persist_retries: Counter,
    pub iterations_degraded: Counter,
    pub writes_dropped: Counter,
    pub sync_fallback_writes: Counter,
    pub plugin_failures: Counter,
    pub plugins_quarantined: Counter,
    pub recovery_actions: Counter,
    pub epe_respawns: Counter,
    pub events_replayed: Counter,
    pub stale_events_rejected: Counter,
    pub heartbeat_stale_observed: Counter,
    pub client_leases_expired: Counter,
    pub segments_reclaimed: Counter,
    pub crc_quarantined: Counter,
    pub partial_iterations: Counter,
    pub shm_orphans_removed: Counter,
    pub shm_orphans_quarantined: Counter,
    pub storage_pressure_degraded: Counter,
    pub storage_pressure_readonly: Counter,
    pub storage_pressure_recovered: Counter,
    pub storage_pressure_sheds: Counter,
    pub storage_pressure_gc_bytes: Counter,
}

impl FaultStats {
    pub(crate) fn new(metrics: &Registry) -> FaultStats {
        FaultStats {
            persist_retries: metrics.counter("node.persist_retries"),
            iterations_degraded: metrics.counter("node.iterations_degraded"),
            writes_dropped: metrics.counter("node.writes_dropped"),
            sync_fallback_writes: metrics.counter("node.sync_fallback_writes"),
            plugin_failures: metrics.counter("node.plugin_failures"),
            plugins_quarantined: metrics.counter("node.plugins_quarantined"),
            recovery_actions: metrics.counter("node.recovery_actions"),
            epe_respawns: metrics.counter("node.epe_respawns"),
            events_replayed: metrics.counter("node.events_replayed"),
            stale_events_rejected: metrics.counter("node.stale_events_rejected"),
            heartbeat_stale_observed: metrics.counter("node.heartbeat_stale_observed"),
            client_leases_expired: metrics.counter("node.client_leases_expired"),
            segments_reclaimed: metrics.counter("node.segments_reclaimed"),
            crc_quarantined: metrics.counter("node.crc_quarantined"),
            partial_iterations: metrics.counter("node.partial_iterations"),
            shm_orphans_removed: metrics.counter("node.shm_orphans_removed"),
            shm_orphans_quarantined: metrics.counter("node.shm_orphans_quarantined"),
            storage_pressure_degraded: metrics.counter("node.storage_pressure_degraded"),
            storage_pressure_readonly: metrics.counter("node.storage_pressure_readonly"),
            storage_pressure_recovered: metrics.counter("node.storage_pressure_recovered"),
            storage_pressure_sheds: metrics.counter("node.storage_pressure_sheds"),
            storage_pressure_gc_bytes: metrics.counter("node.storage_pressure_gc_bytes"),
        }
    }

    pub(crate) fn bump(counter: &Counter) {
        counter.inc();
    }

    pub(crate) fn get(counter: &Counter) -> u64 {
        counter.get()
    }
}

/// Per-node observability state: one trace ring per client rank plus one
/// for the dedicated core, all timed against a single anchor so the
/// merged trace is one timeline. Empty (every recorder disabled) when the
/// configuration turns tracing off.
pub(crate) struct NodeObs {
    /// Per-client rings, indexed by client id.
    pub client_rings: Vec<Arc<TraceRing>>,
    /// The dedicated core's own ring.
    pub server_ring: Option<Arc<TraceRing>>,
    /// Shared monotonic epoch for every recorder of this node.
    pub anchor: Instant,
    /// Where the dedicated core flushes `node-<id>.dtrc`, if configured.
    pub trace_dir: Option<PathBuf>,
}

impl NodeObs {
    fn new(cfg: &crate::config::ObservabilityConfig, n_clients: usize) -> NodeObs {
        let anchor = Instant::now();
        if !cfg.enabled {
            return NodeObs {
                client_rings: Vec::new(),
                server_ring: None,
                anchor,
                trace_dir: None,
            };
        }
        NodeObs {
            client_rings: (0..n_clients)
                .map(|_| TraceRing::new(cfg.ring_capacity))
                .collect(),
            server_ring: Some(TraceRing::new(cfg.ring_capacity)),
            anchor,
            trace_dir: cfg.trace_dir.as_ref().map(PathBuf::from),
        }
    }

    /// Recorder for one client rank (disabled when tracing is off).
    pub(crate) fn client_recorder(&self, id: u32) -> Recorder {
        match self.client_rings.get(id as usize) {
            Some(ring) => Recorder::new(Arc::clone(ring), self.anchor, id, 0),
            None => Recorder::disabled(),
        }
    }

    /// Recorder for the dedicated core.
    pub(crate) fn server_recorder(&self) -> Recorder {
        match &self.server_ring {
            Some(ring) => Recorder::new(
                Arc::clone(ring),
                self.anchor,
                crate::server::SERVER_SOURCE,
                FLAG_SERVER,
            ),
            None => Recorder::disabled(),
        }
    }

    /// Every ring of the node, for the dedicated core's between-iteration
    /// flush (the single consumer of all of them).
    pub(crate) fn rings(&self) -> impl Iterator<Item = &Arc<TraceRing>> {
        self.client_rings.iter().chain(self.server_ring.iter())
    }
}

/// State shared between the clients and the server of one node.
pub(crate) struct NodeShared {
    pub config: Config,
    pub buffer: BufferManager,
    pub queue: MpscQueue<Event>,
    pub clients: usize,
    pub node_id: u32,
    /// Storage target; a trait object so tests can decorate it with
    /// fault injection ([`damaris_fs::FaultyBackend`]).
    pub backend: Arc<dyn StorageBackend>,
    pub stats: FaultStats,
    /// Named-metric namespace the [`FaultStats`] counters live in (and
    /// anything else — e.g. the per-phase histograms the server feeds
    /// from flushed trace records).
    pub metrics: Arc<Registry>,
    /// Trace rings + recorder plumbing (see [`NodeObs`]).
    pub obs: NodeObs,
    /// Write-ahead journal of every client notification; outlives server
    /// incarnations, driving replay after a crash.
    pub journal: EventJournal,
    /// Liveness word the dedicated core beats and clients observe.
    pub heartbeat: HeartbeatWord,
    /// Per-client liveness leases: each client renews its lease on every
    /// API call; the dedicated core's sweeper revokes leases that stall
    /// past `client_lease_timeout` and reclaims the client's resources.
    pub leases: LeaseTable,
    /// The storage-pressure state machine (dormant unless the backend has
    /// a [`damaris_fs::DiskSentinel`]); polled by the dedicated core,
    /// observed by embedders via [`NodeRuntime::pressure_state`].
    pub pressure: crate::pressure::PressureMachine,
}

/// Final accounting returned by [`NodeRuntime::finish`].
///
/// This is a *snapshot view*: every field is either copied from a named
/// registry counter (its `metric:` tag names it — the same total is live
/// under [`NodeRuntime::metrics_snapshot`]) or computed by the server
/// loop / backend at shutdown (`metric: report-only`). New counters go in
/// the registry, not here as bare fields — `xtask lint` enforces the tag.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct NodeReport {
    /// Iterations whose data was persisted.
    /// metric: report-only (server-loop accumulator)
    pub iterations_persisted: u64,
    /// Write notifications received.
    /// metric: report-only (server-loop accumulator)
    pub variables_received: u64,
    /// Payload bytes moved through shared memory.
    /// metric: report-only (server-loop accumulator)
    pub bytes_received: u64,
    /// User events dispatched.
    /// metric: report-only (server-loop accumulator)
    pub user_events: u64,
    /// SDF files created by this node's backend.
    /// metric: report-only (backend accounting)
    pub files_created: u64,
    /// Bytes written to storage (post-filter).
    /// metric: report-only (backend accounting)
    pub bytes_stored: u64,
    /// Peak shared-memory bytes resident in the metadata store — how much
    /// of the buffer the node actually needed (buffer-sizing guidance).
    /// metric: report-only (server-loop accumulator)
    pub peak_resident_bytes: u64,
    /// Persist attempts retried after a transient storage failure.
    /// metric: node.persist_retries
    pub persist_retries: u64,
    /// Iterations whose data was dropped because persist exhausted its
    /// retry budget/deadline (the run continued — graceful degradation).
    /// metric: node.iterations_degraded
    pub iterations_degraded: u64,
    /// Client writes dropped under the `drop` backpressure policy.
    /// metric: node.writes_dropped
    pub writes_dropped: u64,
    /// Client writes that bypassed shared memory under the `sync-fallback`
    /// backpressure policy (written synchronously by the compute core).
    /// metric: node.sync_fallback_writes
    pub sync_fallback_writes: u64,
    /// Plugin invocations that failed (error return or caught panic).
    /// metric: node.plugin_failures
    pub plugin_failures: u64,
    /// Plugins disabled after `plugin_quarantine` consecutive failures.
    /// metric: node.plugins_quarantined
    pub plugins_quarantined: u64,
    /// Startup recovery actions (orphan `*.tmp` deletions + torn-file
    /// quarantines) taken before serving.
    /// metric: node.recovery_actions
    pub recovery_actions: u64,
    /// Dedicated-core crashes recovered by the supervisor.
    /// metric: node.epe_respawns
    pub epe_respawns: u64,
    /// Journal records replayed by respawned server incarnations.
    /// metric: node.events_replayed
    pub events_replayed: u64,
    /// Stale queue events rejected by claim arbitration after a replay.
    /// metric: node.stale_events_rejected
    pub stale_events_rejected: u64,
    /// Times a client observed the heartbeat stale and degraded.
    /// metric: node.heartbeat_stale_observed
    pub heartbeat_stale_observed: u64,
    /// Client liveness leases revoked by the dedicated core's sweeper.
    /// metric: node.client_leases_expired
    pub client_leases_expired: u64,
    /// Shared-memory bytes reclaimed from fenced clients.
    /// metric: node.segments_reclaimed
    pub segments_reclaimed: u64,
    /// Variables quarantined at persist time because the segment bytes no
    /// longer matched the client's end-to-end CRC (torn shm write).
    /// metric: node.crc_quarantined
    pub crc_quarantined: u64,
    /// Iterations persisted with a partial presence bitmap (some clients
    /// fenced before contributing) under the `partial` policy.
    /// metric: node.partial_iterations
    pub partial_iterations: u64,
    /// Orphaned `/dev/shm` mapping files from dead prior runs unlinked by
    /// the startup sweep (file-backed topology only).
    /// metric: node.shm_orphans_removed
    pub shm_orphans_removed: u64,
    /// Mapping files with an unrecognizable header quarantined (renamed,
    /// never silently deleted) by the startup sweep.
    /// metric: node.shm_orphans_quarantined
    pub shm_orphans_quarantined: u64,
    /// Storage-pressure transitions into `Degraded` (high watermark
    /// crossed or a permanent persist error seen; compactor paused,
    /// superseded files gc'd).
    /// metric: node.storage_pressure_degraded
    pub storage_pressure_degraded: u64,
    /// Storage-pressure transitions into `ReadOnly` (quota exhausted; new
    /// iterations shed per `on_disk_full`).
    /// metric: node.storage_pressure_readonly
    pub storage_pressure_readonly: u64,
    /// Storage-pressure recoveries back to `Normal` (usage fell below the
    /// low watermark; compactor resumed).
    /// metric: node.storage_pressure_recovered
    pub storage_pressure_recovered: u64,
    /// Iterations lost to disk exhaustion: dropped whole while read-only
    /// under `on_disk_full="drop-iteration"`, or degraded at persist time
    /// by a permanent out-of-space error. Each is also counted in
    /// `iterations_degraded`.
    /// metric: node.storage_pressure_sheds
    pub storage_pressure_sheds: u64,
    /// Bytes reclaimed by the aggressive gc of superseded files run on
    /// entry into `Degraded`.
    /// metric: node.storage_pressure_gc_bytes
    pub storage_pressure_gc_bytes: u64,
}

/// One running Damaris node: a supervised dedicated-core server thread
/// plus client handles for the compute cores.
pub struct NodeRuntime {
    shared: Arc<NodeShared>,
    clients: Option<Vec<DamarisClient>>,
    supervisor: Option<std::thread::JoinHandle<Result<NodeReport, DamarisError>>>,
}

impl NodeRuntime {
    /// Starts a node with `n_clients` compute cores, persisting into
    /// `output_dir`. Uses the built-in plugin registry.
    pub fn start(
        config: Config,
        n_clients: usize,
        output_dir: impl AsRef<Path>,
    ) -> Result<NodeRuntime, DamarisError> {
        Self::start_with(config, n_clients, output_dir, 0, Vec::new())
    }

    /// Starts a node with a node id (for multi-node deployments) and extra
    /// plugin factories (action name → factory), which take precedence
    /// over the built-ins.
    pub fn start_with(
        config: Config,
        n_clients: usize,
        output_dir: impl AsRef<Path>,
        node_id: u32,
        extra_plugins: Vec<(String, PluginFactory)>,
    ) -> Result<NodeRuntime, DamarisError> {
        let mut backend = LocalDirBackend::new(output_dir)
            .map_err(|e| DamarisError::Storage(damaris_format::SdfError::Io(e)))?;
        if let Some(quota) = config.resilience.disk_quota {
            // `<resilience disk_quota_bytes=…>`: attach the quota sentinel
            // so the pressure state machine has a signal to run on.
            let r = &config.resilience;
            let sentinel = damaris_fs::DiskSentinel::with_quota(quota)
                .with_watermarks(u64::from(r.disk_high_pct), u64::from(r.disk_low_pct));
            backend = backend.with_sentinel(Arc::new(sentinel));
        }
        Self::start_with_backend(config, n_clients, Arc::new(backend), node_id, extra_plugins)
    }

    /// Starts a node persisting through an explicit [`StorageBackend`] —
    /// how chaos tests slide a [`damaris_fs::FaultyBackend`] under the
    /// whole I/O path, and how alternative backends plug in.
    pub fn start_with_backend(
        config: Config,
        n_clients: usize,
        backend: Arc<dyn StorageBackend>,
        node_id: u32,
        extra_plugins: Vec<(String, PluginFactory)>,
    ) -> Result<NodeRuntime, DamarisError> {
        if n_clients == 0 {
            return Err(DamarisError::Config("need at least one client".into()));
        }
        let buffer = match config.allocator {
            AllocatorKind::Mutex => {
                BufferManager::Mutex(MutexAllocator::with_capacity(config.buffer_size))
            }
            AllocatorKind::Partition => BufferManager::Partition(
                PartitionAllocator::with_capacity(config.buffer_size, n_clients),
            ),
        };
        let queue = MpscQueue::new(config.queue_capacity);

        // Built synchronously so configuration errors surface at start, not
        // from inside the supervisor.
        let epe = EventProcessingEngine::build(&config, &extra_plugins)?;
        let metrics = Arc::new(Registry::new());
        let stats = FaultStats::new(&metrics);
        if config.resilience.recovery_scan {
            // Crash recovery before serving: anything a previous run (or a
            // previous fault) left half-written is removed or quarantined
            // so this run starts from a consistent directory.
            let scan = damaris_fs::recover(backend.as_ref())
                .map_err(|e| DamarisError::Storage(damaris_format::SdfError::Io(e)))?;
            if !scan.is_clean() {
                eprintln!(
                    "[damaris node {node_id}] recovery: removed {} orphan tmp file(s), \
                     quarantined {} torn file(s)",
                    scan.removed_tmp.len(),
                    scan.quarantined.len()
                );
            }
            stats.recovery_actions.add(scan.actions());
        }
        let obs = NodeObs::new(&config.observability, n_clients);
        let shared = Arc::new(NodeShared {
            config,
            buffer,
            queue,
            clients: n_clients,
            node_id,
            backend,
            stats,
            metrics,
            obs,
            journal: EventJournal::new(),
            heartbeat: HeartbeatWord::new(),
            leases: LeaseTable::new(n_clients),
            pressure: crate::pressure::PressureMachine::new(),
        });

        let clients = (0..n_clients as u32)
            .map(|id| DamarisClient::new(id, Arc::clone(&shared)))
            .collect();

        let sup_shared = Arc::clone(&shared);
        let supervisor = std::thread::Builder::new()
            .name(format!("damaris-sup-{node_id}"))
            .spawn(move || supervise(sup_shared, epe, extra_plugins, node_id))
            // invariant: thread spawn only fails on resource exhaustion at
            // process scale; a node that cannot start its dedicated core
            // cannot run at all.
            .expect("spawn supervisor thread");

        Ok(NodeRuntime {
            shared,
            clients: Some(clients),
            supervisor: Some(supervisor),
        })
    }

    /// Hands out the client handles (once). Clients are `Send`: move each
    /// to its compute thread.
    pub fn clients(&self) -> Vec<DamarisClient> {
        self.clients
            .as_ref()
            // invariant: documented API contract — `clients`/`take_clients`
            // may only be called before the handles are taken.
            .expect("clients already taken")
            .clone()
    }

    /// Takes ownership of the client handles.
    pub fn take_clients(&mut self) -> Vec<DamarisClient> {
        // invariant: documented API contract — handles are taken once.
        self.clients.take().expect("clients already taken")
    }

    /// The storage backend (for inspecting produced files).
    pub fn backend(&self) -> &Arc<dyn StorageBackend> {
        &self.shared.backend
    }

    /// Capacity of the node's shared buffer in bytes.
    pub fn buffer_capacity(&self) -> usize {
        self.shared.buffer.capacity()
    }

    /// Bytes currently reserved in the shared buffer. Zero after `finish`
    /// on a leak-free run — including runs that crashed and replayed.
    pub fn buffer_in_use(&self) -> usize {
        self.shared.buffer.in_use(self.shared.clients)
    }

    /// The current heartbeat epoch (0 until the first respawn).
    pub fn heartbeat_epoch(&self) -> u32 {
        self.shared.heartbeat.epoch()
    }

    /// The node's current storage-pressure state (always `Normal` when
    /// the backend has no [`damaris_fs::DiskSentinel`]).
    pub fn pressure_state(&self) -> crate::pressure::PressureState {
        self.shared.pressure.state()
    }

    /// Registers a pause flag the pressure machine raises while degraded
    /// and clears on recovery. Embedders running a `damaris-query`
    /// compactor against this node's output pass `Compactor::pause_flag()`
    /// here, so disk pressure stops space-amplifying compaction without a
    /// core → query dependency.
    pub fn register_compactor_pause(&self, flag: Arc<damaris_shm::sync::AtomicBool>) {
        self.shared.pressure.register_pause_flag(flag);
    }

    /// Live snapshot of the node's metrics registry: every `node.*`
    /// counter backing [`NodeReport`] plus the per-phase `phase.*_ns`
    /// histograms the dedicated core feeds from flushed trace records.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.shared.metrics.snapshot()
    }

    /// Times clients have observed the heartbeat stale so far — a live
    /// counter (the final total also lands in [`NodeReport`]).
    pub fn heartbeat_stale_observed(&self) -> u64 {
        FaultStats::get(&self.shared.stats.heartbeat_stale_observed)
    }

    /// Injects a user event from *outside* the simulation — the paper's
    /// "events sent either by the simulation **or by external tools**"
    /// (§III-A): a steering console or monitoring agent can trigger
    /// configured actions without holding a client.
    ///
    /// Returns [`DamarisError::UnknownEvent`] when no action is bound.
    pub fn inject_event(&self, event: &str, iteration: u32) -> Result<(), DamarisError> {
        if self.shared.config.bindings_for(event).is_empty() {
            return Err(DamarisError::UnknownEvent(event.to_string()));
        }
        let seq = self
            .shared
            .journal
            .append(
                self.shared.heartbeat.epoch(),
                JournalPayload::User {
                    name: event.to_string(),
                    iteration,
                    source: crate::server::SERVER_SOURCE,
                },
            )
            // invariant: the sweeper only ever fences client sources; the
            // server's own source id is never in the fenced set.
            .expect("server source is never fenced");
        self.shared.queue.push_wait(Event::User {
            name: event.to_string(),
            iteration,
            source: crate::server::SERVER_SOURCE,
            seq,
        });
        Ok(())
    }

    /// Sends the termination event and joins the dedicated core (through
    /// its supervisor). Call after all client activity is done.
    pub fn finish(mut self) -> Result<NodeReport, DamarisError> {
        // invariant: `finish` consumes `self`, so the handle is present.
        let handle = self.supervisor.take().expect("finish called once");
        terminate(&self.shared, &handle);
        match handle.join() {
            Ok(report) => report,
            Err(panic) => std::panic::resume_unwind(panic),
        }
    }
}

/// Enqueues `Terminate` without parking forever: if the supervisor (and
/// with it the last server incarnation) is already gone, a full queue
/// would never drain and `push_wait` would hang the caller.
fn terminate(
    shared: &Arc<NodeShared>,
    handle: &std::thread::JoinHandle<Result<NodeReport, DamarisError>>,
) {
    loop {
        if shared.queue.push(Event::Terminate).is_ok() || handle.is_finished() {
            return;
        }
        std::thread::yield_now();
    }
}

/// The supervisor loop: (re)spawns the dedicated-core thread, each time
/// with the next heartbeat epoch, until it terminates cleanly or the
/// respawn budget is exhausted.
fn supervise(
    shared: Arc<NodeShared>,
    first_epe: EventProcessingEngine,
    factories: Vec<(String, PluginFactory)>,
    node_id: u32,
) -> Result<NodeReport, DamarisError> {
    let budget = shared.config.resilience.epe_respawn;
    let mut epoch: u32 = 0;
    let mut engine = Some(first_epe);
    loop {
        let epe = match engine.take() {
            Some(e) => e,
            // Fresh plugin instances for the new incarnation (the dead
            // one's plugin state is unrecoverable mid-panic anyway).
            None => EventProcessingEngine::build(&shared.config, &factories)?,
        };
        let srv_shared = Arc::clone(&shared);
        let handle = std::thread::Builder::new()
            .name(format!("damaris-ded-{node_id}"))
            .spawn(move || server::run(srv_shared, epe, node_id, epoch))
            // invariant: thread spawn only fails on resource exhaustion at
            // process scale.
            .expect("spawn dedicated-core thread");
        match handle.join() {
            Ok(Ok(report)) => return Ok(report),
            Ok(Err(error)) => {
                if epoch >= budget {
                    return Err(error);
                }
                eprintln!(
                    "[damaris node {node_id}] dedicated core (epoch {epoch}) died: \
                     {error}; respawning"
                );
            }
            Err(panic) => {
                if epoch >= budget {
                    std::panic::resume_unwind(panic);
                }
                eprintln!(
                    "[damaris node {node_id}] dedicated core (epoch {epoch}) \
                     panicked; respawning"
                );
            }
        }
        epoch += 1;
        FaultStats::bump(&shared.stats.epe_respawns);
    }
}

impl Drop for NodeRuntime {
    fn drop(&mut self) {
        if let Some(handle) = self.supervisor.take() {
            terminate(&self.shared, &handle);
            let _ = handle.join();
        }
    }
}
