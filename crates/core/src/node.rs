//! Node runtime: wires one dedicated-core server thread to K client
//! handles over a shared buffer and event queue — one SMP node of the
//! Damaris deployment (paper Fig. 1).
//!
//! # Supervision
//!
//! The dedicated core runs under a supervisor thread. With `<resilience
//! epe_respawn="N">` a crashed server thread (error or panic) is respawned
//! up to N times: each incarnation gets a new heartbeat epoch, replays the
//! event journal (see [`crate::journal`]), re-adopts the shared-memory
//! segments the dead incarnation held, and resumes serving the same queue.
//! With the default `epe_respawn="0"` the crash simply surfaces at
//! [`NodeRuntime::finish`], as before.

use crate::client::DamarisClient;
use crate::config::{AllocatorKind, Config};
use crate::epe::EventProcessingEngine;
use crate::error::DamarisError;
use crate::event::Event;
use crate::journal::{EventJournal, JournalPayload};
use crate::plugin::PluginFactory;
use crate::server;
use damaris_fs::{LocalDirBackend, StorageBackend};
use damaris_shm::sync::{Arc, AtomicU64, Ordering};
use damaris_shm::{
    AllocError, HeartbeatWord, MpscQueue, MutexAllocator, PartitionAllocator, Segment,
};
use std::path::Path;

/// Either of the paper's two reservation schemes, behind one interface.
pub(crate) enum BufferManager {
    Mutex(MutexAllocator),
    Partition(PartitionAllocator),
}

impl BufferManager {
    pub(crate) fn allocate(&self, client: u32, len: usize) -> Result<Segment, AllocError> {
        match self {
            BufferManager::Mutex(a) => a.allocate(len),
            BufferManager::Partition(a) => a.allocate(client as usize, len),
        }
    }

    pub(crate) fn release(&self, client: u32, segment: Segment) {
        match self {
            BufferManager::Mutex(a) => a.release(segment),
            BufferManager::Partition(a) => a.release(client as usize, segment),
        }
    }

    /// Re-adopts a still-allocated range after a dedicated-core crash: the
    /// journal records the coordinates, the allocator validates them and
    /// reissues the handle. `None` if the range is not a live allocation.
    pub(crate) fn adopt(&self, client: u32, offset: usize, len: usize) -> Option<Segment> {
        match self {
            BufferManager::Mutex(a) => a.adopt(offset, len),
            BufferManager::Partition(a) => a.adopt(client as usize, offset, len),
        }
    }

    pub(crate) fn capacity(&self) -> usize {
        match self {
            BufferManager::Mutex(a) => a.capacity(),
            BufferManager::Partition(a) => a.buffer().capacity(),
        }
    }

    /// Bytes currently reserved across the whole buffer (leak detector:
    /// zero once every segment of a finished run was released).
    pub(crate) fn in_use(&self, n_clients: usize) -> usize {
        match self {
            BufferManager::Mutex(a) => a.in_use(),
            BufferManager::Partition(a) => (0..n_clients).map(|c| a.in_use(c)).sum(),
        }
    }
}

/// Failure/degradation counters shared across the node: clients bump the
/// backpressure ones, the dedicated core bumps the persist/plugin ones, and
/// the final [`NodeReport`] copies them out.
#[derive(Debug, Default)]
pub(crate) struct FaultStats {
    pub persist_retries: AtomicU64,
    pub iterations_degraded: AtomicU64,
    pub writes_dropped: AtomicU64,
    pub sync_fallback_writes: AtomicU64,
    pub plugin_failures: AtomicU64,
    pub plugins_quarantined: AtomicU64,
    pub recovery_actions: AtomicU64,
    pub epe_respawns: AtomicU64,
    pub events_replayed: AtomicU64,
    pub stale_events_rejected: AtomicU64,
    pub heartbeat_stale_observed: AtomicU64,
}

impl FaultStats {
    pub(crate) fn bump(counter: &AtomicU64) {
        // Relaxed: pure event counters on the hot client/server paths.
        // Nothing is published under them — readers only need eventual
        // totals, and `get` runs after the server thread is joined (a
        // happens-before edge that already orders every bump). SeqCst
        // here bought nothing but a fence per client write.
        counter.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn get(counter: &AtomicU64) -> u64 {
        // Relaxed: see `bump` — the server-thread join orders all bumps
        // before the final report copies the counters out.
        counter.load(Ordering::Relaxed)
    }
}

/// State shared between the clients and the server of one node.
pub(crate) struct NodeShared {
    pub config: Config,
    pub buffer: BufferManager,
    pub queue: MpscQueue<Event>,
    pub clients: usize,
    pub node_id: u32,
    /// Storage target; a trait object so tests can decorate it with
    /// fault injection ([`damaris_fs::FaultyBackend`]).
    pub backend: Arc<dyn StorageBackend>,
    pub stats: FaultStats,
    /// Write-ahead journal of every client notification; outlives server
    /// incarnations, driving replay after a crash.
    pub journal: EventJournal,
    /// Liveness word the dedicated core beats and clients observe.
    pub heartbeat: HeartbeatWord,
}

/// Final accounting returned by [`NodeRuntime::finish`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct NodeReport {
    /// Iterations whose data was persisted.
    pub iterations_persisted: u64,
    /// Write notifications received.
    pub variables_received: u64,
    /// Payload bytes moved through shared memory.
    pub bytes_received: u64,
    /// User events dispatched.
    pub user_events: u64,
    /// SDF files created by this node's backend.
    pub files_created: u64,
    /// Bytes written to storage (post-filter).
    pub bytes_stored: u64,
    /// Peak shared-memory bytes resident in the metadata store — how much
    /// of the buffer the node actually needed (buffer-sizing guidance).
    pub peak_resident_bytes: u64,
    /// Persist attempts retried after a transient storage failure.
    pub persist_retries: u64,
    /// Iterations whose data was dropped because persist exhausted its
    /// retry budget/deadline (the run continued — graceful degradation).
    pub iterations_degraded: u64,
    /// Client writes dropped under the `drop` backpressure policy.
    pub writes_dropped: u64,
    /// Client writes that bypassed shared memory under the `sync-fallback`
    /// backpressure policy (written synchronously by the compute core).
    pub sync_fallback_writes: u64,
    /// Plugin invocations that failed (error return or caught panic).
    pub plugin_failures: u64,
    /// Plugins disabled after `plugin_quarantine` consecutive failures.
    pub plugins_quarantined: u64,
    /// Startup recovery actions (orphan `*.tmp` deletions + torn-file
    /// quarantines) taken before serving.
    pub recovery_actions: u64,
    /// Dedicated-core crashes recovered by the supervisor.
    pub epe_respawns: u64,
    /// Journal records replayed by respawned server incarnations.
    pub events_replayed: u64,
    /// Stale queue events rejected by claim arbitration after a replay.
    pub stale_events_rejected: u64,
    /// Times a client observed the heartbeat stale and degraded.
    pub heartbeat_stale_observed: u64,
}

/// One running Damaris node: a supervised dedicated-core server thread
/// plus client handles for the compute cores.
pub struct NodeRuntime {
    shared: Arc<NodeShared>,
    clients: Option<Vec<DamarisClient>>,
    supervisor: Option<std::thread::JoinHandle<Result<NodeReport, DamarisError>>>,
}

impl NodeRuntime {
    /// Starts a node with `n_clients` compute cores, persisting into
    /// `output_dir`. Uses the built-in plugin registry.
    pub fn start(
        config: Config,
        n_clients: usize,
        output_dir: impl AsRef<Path>,
    ) -> Result<NodeRuntime, DamarisError> {
        Self::start_with(config, n_clients, output_dir, 0, Vec::new())
    }

    /// Starts a node with a node id (for multi-node deployments) and extra
    /// plugin factories (action name → factory), which take precedence
    /// over the built-ins.
    pub fn start_with(
        config: Config,
        n_clients: usize,
        output_dir: impl AsRef<Path>,
        node_id: u32,
        extra_plugins: Vec<(String, PluginFactory)>,
    ) -> Result<NodeRuntime, DamarisError> {
        let backend = Arc::new(
            LocalDirBackend::new(output_dir)
                .map_err(|e| DamarisError::Storage(damaris_format::SdfError::Io(e)))?,
        );
        Self::start_with_backend(config, n_clients, backend, node_id, extra_plugins)
    }

    /// Starts a node persisting through an explicit [`StorageBackend`] —
    /// how chaos tests slide a [`damaris_fs::FaultyBackend`] under the
    /// whole I/O path, and how alternative backends plug in.
    pub fn start_with_backend(
        config: Config,
        n_clients: usize,
        backend: Arc<dyn StorageBackend>,
        node_id: u32,
        extra_plugins: Vec<(String, PluginFactory)>,
    ) -> Result<NodeRuntime, DamarisError> {
        if n_clients == 0 {
            return Err(DamarisError::Config("need at least one client".into()));
        }
        let buffer = match config.allocator {
            AllocatorKind::Mutex => {
                BufferManager::Mutex(MutexAllocator::with_capacity(config.buffer_size))
            }
            AllocatorKind::Partition => BufferManager::Partition(
                PartitionAllocator::with_capacity(config.buffer_size, n_clients),
            ),
        };
        let queue = MpscQueue::new(config.queue_capacity);

        // Built synchronously so configuration errors surface at start, not
        // from inside the supervisor.
        let epe = EventProcessingEngine::build(&config, &extra_plugins)?;
        let stats = FaultStats::default();
        if config.resilience.recovery_scan {
            // Crash recovery before serving: anything a previous run (or a
            // previous fault) left half-written is removed or quarantined
            // so this run starts from a consistent directory.
            let scan = damaris_fs::recover(backend.as_ref())
                .map_err(|e| DamarisError::Storage(damaris_format::SdfError::Io(e)))?;
            if !scan.is_clean() {
                eprintln!(
                    "[damaris node {node_id}] recovery: removed {} orphan tmp file(s), \
                     quarantined {} torn file(s)",
                    scan.removed_tmp.len(),
                    scan.quarantined.len()
                );
            }
            // Relaxed: single-threaded startup — the clients and the
            // server thread don't exist yet; the spawn below is the
            // publishing happens-before edge.
            stats
                .recovery_actions
                .store(scan.actions(), Ordering::Relaxed);
        }
        let shared = Arc::new(NodeShared {
            config,
            buffer,
            queue,
            clients: n_clients,
            node_id,
            backend,
            stats,
            journal: EventJournal::new(),
            heartbeat: HeartbeatWord::new(),
        });

        let clients = (0..n_clients as u32)
            .map(|id| DamarisClient::new(id, Arc::clone(&shared)))
            .collect();

        let sup_shared = Arc::clone(&shared);
        let supervisor = std::thread::Builder::new()
            .name(format!("damaris-sup-{node_id}"))
            .spawn(move || supervise(sup_shared, epe, extra_plugins, node_id))
            // invariant: thread spawn only fails on resource exhaustion at
            // process scale; a node that cannot start its dedicated core
            // cannot run at all.
            .expect("spawn supervisor thread");

        Ok(NodeRuntime {
            shared,
            clients: Some(clients),
            supervisor: Some(supervisor),
        })
    }

    /// Hands out the client handles (once). Clients are `Send`: move each
    /// to its compute thread.
    pub fn clients(&self) -> Vec<DamarisClient> {
        self.clients
            .as_ref()
            // invariant: documented API contract — `clients`/`take_clients`
            // may only be called before the handles are taken.
            .expect("clients already taken")
            .clone()
    }

    /// Takes ownership of the client handles.
    pub fn take_clients(&mut self) -> Vec<DamarisClient> {
        // invariant: documented API contract — handles are taken once.
        self.clients.take().expect("clients already taken")
    }

    /// The storage backend (for inspecting produced files).
    pub fn backend(&self) -> &Arc<dyn StorageBackend> {
        &self.shared.backend
    }

    /// Capacity of the node's shared buffer in bytes.
    pub fn buffer_capacity(&self) -> usize {
        self.shared.buffer.capacity()
    }

    /// Bytes currently reserved in the shared buffer. Zero after `finish`
    /// on a leak-free run — including runs that crashed and replayed.
    pub fn buffer_in_use(&self) -> usize {
        self.shared.buffer.in_use(self.shared.clients)
    }

    /// The current heartbeat epoch (0 until the first respawn).
    pub fn heartbeat_epoch(&self) -> u32 {
        self.shared.heartbeat.epoch()
    }

    /// Times clients have observed the heartbeat stale so far — a live
    /// counter (the final total also lands in [`NodeReport`]).
    pub fn heartbeat_stale_observed(&self) -> u64 {
        FaultStats::get(&self.shared.stats.heartbeat_stale_observed)
    }

    /// Injects a user event from *outside* the simulation — the paper's
    /// "events sent either by the simulation **or by external tools**"
    /// (§III-A): a steering console or monitoring agent can trigger
    /// configured actions without holding a client.
    ///
    /// Returns [`DamarisError::UnknownEvent`] when no action is bound.
    pub fn inject_event(&self, event: &str, iteration: u32) -> Result<(), DamarisError> {
        if self.shared.config.bindings_for(event).is_empty() {
            return Err(DamarisError::UnknownEvent(event.to_string()));
        }
        let seq = self.shared.journal.append(
            self.shared.heartbeat.epoch(),
            JournalPayload::User {
                name: event.to_string(),
                iteration,
                source: crate::server::SERVER_SOURCE,
            },
        );
        self.shared.queue.push_wait(Event::User {
            name: event.to_string(),
            iteration,
            source: crate::server::SERVER_SOURCE,
            seq,
        });
        Ok(())
    }

    /// Sends the termination event and joins the dedicated core (through
    /// its supervisor). Call after all client activity is done.
    pub fn finish(mut self) -> Result<NodeReport, DamarisError> {
        // invariant: `finish` consumes `self`, so the handle is present.
        let handle = self.supervisor.take().expect("finish called once");
        terminate(&self.shared, &handle);
        match handle.join() {
            Ok(report) => report,
            Err(panic) => std::panic::resume_unwind(panic),
        }
    }
}

/// Enqueues `Terminate` without parking forever: if the supervisor (and
/// with it the last server incarnation) is already gone, a full queue
/// would never drain and `push_wait` would hang the caller.
fn terminate(
    shared: &Arc<NodeShared>,
    handle: &std::thread::JoinHandle<Result<NodeReport, DamarisError>>,
) {
    loop {
        if shared.queue.push(Event::Terminate).is_ok() || handle.is_finished() {
            return;
        }
        std::thread::yield_now();
    }
}

/// The supervisor loop: (re)spawns the dedicated-core thread, each time
/// with the next heartbeat epoch, until it terminates cleanly or the
/// respawn budget is exhausted.
fn supervise(
    shared: Arc<NodeShared>,
    first_epe: EventProcessingEngine,
    factories: Vec<(String, PluginFactory)>,
    node_id: u32,
) -> Result<NodeReport, DamarisError> {
    let budget = shared.config.resilience.epe_respawn;
    let mut epoch: u32 = 0;
    let mut engine = Some(first_epe);
    loop {
        let epe = match engine.take() {
            Some(e) => e,
            // Fresh plugin instances for the new incarnation (the dead
            // one's plugin state is unrecoverable mid-panic anyway).
            None => EventProcessingEngine::build(&shared.config, &factories)?,
        };
        let srv_shared = Arc::clone(&shared);
        let handle = std::thread::Builder::new()
            .name(format!("damaris-ded-{node_id}"))
            .spawn(move || server::run(srv_shared, epe, node_id, epoch))
            // invariant: thread spawn only fails on resource exhaustion at
            // process scale.
            .expect("spawn dedicated-core thread");
        match handle.join() {
            Ok(Ok(report)) => return Ok(report),
            Ok(Err(error)) => {
                if epoch >= budget {
                    return Err(error);
                }
                eprintln!(
                    "[damaris node {node_id}] dedicated core (epoch {epoch}) died: \
                     {error}; respawning"
                );
            }
            Err(panic) => {
                if epoch >= budget {
                    std::panic::resume_unwind(panic);
                }
                eprintln!(
                    "[damaris node {node_id}] dedicated core (epoch {epoch}) \
                     panicked; respawning"
                );
            }
        }
        epoch += 1;
        FaultStats::bump(&shared.stats.epe_respawns);
    }
}

impl Drop for NodeRuntime {
    fn drop(&mut self) {
        if let Some(handle) = self.supervisor.take() {
            terminate(&self.shared, &handle);
            let _ = handle.join();
        }
    }
}
