//! The Damaris XML configuration (paper §III-B "Configuration file").
//!
//! Static information about the data — names, layouts, units — lives in an
//! external XML file rather than flowing through shared memory, "to keep a
//! high-level description of the datasets within the server" and let
//! clients send only minimal descriptors. The same file binds event names
//! to actions, defining the dedicated core's behaviour.
//!
//! Supported schema (elements may appear at the root or inside `<data>` /
//! `<actions>` groups):
//!
//! ```xml
//! <damaris>
//!   <buffer size="67108864" allocator="partition" queue="1024"/>
//!   <layout name="my_layout" type="real" dimensions="64,16,2" language="fortran"/>
//!   <variable name="my_variable" layout="my_layout" unit="K"/>
//!   <event name="my_event" action="do_something" using="my_plugin.so" scope="local"/>
//! </damaris>
//! ```

use crate::error::DamarisError;
use crate::layout::LayoutDef;
use damaris_xml::Element;
use std::collections::HashMap;
use std::time::Duration;

/// Which reservation algorithm the node's shared buffer uses (§III-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AllocatorKind {
    /// First-fit free list under a mutex (the "Boost default").
    #[default]
    Mutex,
    /// The lock-free per-client partitioned rings.
    Partition,
}

/// A variable declaration: which layout it uses plus free-form attributes
/// (unit, description, …) that the persistency layer stores alongside.
#[derive(Debug, Clone, PartialEq)]
pub struct VariableDef {
    pub name: String,
    pub layout: String,
    /// Extra attributes copied verbatim into the output format.
    pub attrs: Vec<(String, String)>,
}

/// An event→action binding (§III-C "Behavior management").
#[derive(Debug, Clone, PartialEq)]
pub struct ActionBinding {
    /// Event name clients pass to `df_signal`.
    pub event: String,
    /// Action identifier resolved against the plugin registry.
    pub action: String,
    /// Plugin parameter (the paper's `using="my_plugin.so"`); free-form,
    /// e.g. a codec spec for the compression action.
    pub using: Option<String>,
    /// `local` = fires on this node's events only (the only scope a single
    /// node runtime has; kept for config compatibility).
    pub scope: String,
}

/// What a client does when the shared buffer cannot satisfy a reservation
/// (the buffer is full because the dedicated core has not yet released
/// earlier iterations).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackpressurePolicy {
    /// Wait with bounded exponential backoff; after `timeout` the write
    /// fails with [`DamarisError::Buffer`]. The default — preserves every
    /// byte while turning the old unbounded busy-wait into a bounded one.
    Block { timeout: Duration },
    /// Drop the write after a short grace period and keep computing. The
    /// dropped payloads are counted in `NodeReport::writes_dropped` — the
    /// "lossy telemetry" mode for data that ages out anyway.
    DropIteration,
    /// Bypass shared memory: the client writes the payload synchronously to
    /// the storage backend itself (paying the jitter Damaris normally
    /// hides). Counted in `NodeReport::sync_fallback_writes`.
    SyncFallback,
}

impl Default for BackpressurePolicy {
    fn default() -> Self {
        BackpressurePolicy::Block {
            timeout: Duration::from_secs(30),
        }
    }
}

/// What the dedicated core does with an iteration that can never complete
/// because one of the node's clients died (liveness lease expired) before
/// sending its end-of-iteration notification.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OnClientFailure {
    /// Keep waiting for the full client count — the pre-lease behaviour
    /// and the default. Lease expiry is still *detected* and counted, but
    /// no reclamation or partial fire happens; a dead client stalls its
    /// iterations forever (they drain at terminate).
    #[default]
    Wait,
    /// Fire the iteration with the surviving clients' data and persist it
    /// with a presence bitmap recording which ranks contributed, so the
    /// recovery scan and downstream readers can tell a partial iteration
    /// from a complete one. Counted in `NodeReport::partial_iterations`.
    Partial,
    /// Discard the whole iteration (all ranks' data released, nothing
    /// persisted). Counted in `NodeReport::iterations_degraded`.
    DropIteration,
}

/// What the dedicated core does with iterations that become ready while
/// the storage-pressure machine is in `ReadOnly` (disk quota exhausted;
/// see [`crate::pressure::PressureMachine`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OnDiskFull {
    /// Hold ready iterations resident (data stays in shared memory, the
    /// buffer fills, clients block per `backpressure`) until space
    /// returns, then fire them — no data loss, at the cost of stalling
    /// the pipeline. The default.
    #[default]
    Block,
    /// Discard ready iterations whole while read-only (all ranks' data
    /// released, nothing persisted). Counted in both
    /// `NodeReport::iterations_degraded` and
    /// `NodeReport::storage_pressure_sheds`.
    DropIteration,
    /// Fire iterations normally and let persist fail fast: the `ENOSPC`
    /// is classified permanent, so the iteration degrades immediately
    /// without burning the retry deadline. Data that happens to fit
    /// (space freed between poll and commit) still lands.
    Partial,
}

/// Degradation policies for the whole I/O path, set by the `<resilience>`
/// configuration element:
///
/// ```xml
/// <resilience backpressure="block" timeout_ms="30000"
///             persist_retries="2" retry_base_ms="10"
///             persist_deadline_ms="2000"
///             plugin_quarantine="3" recovery_scan="true"
///             epe_respawn="1" heartbeat_timeout_ms="1000"
///             on_client_failure="partial" client_lease_timeout_ms="500"
///             disk_quota_bytes="1073741824" disk_high_pct="85"
///             disk_low_pct="70" on_disk_full="drop-iteration"/>
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResilienceConfig {
    /// Client behaviour on a full buffer.
    pub backpressure: BackpressurePolicy,
    /// Persist retries after the first failed attempt (0 = no retry).
    pub persist_retries: u32,
    /// First retry backoff; doubles per attempt, with jitter.
    pub retry_base: Duration,
    /// Wall-clock budget for one iteration's persist (attempts + backoff).
    /// Exhausting it degrades the iteration (data dropped, counted in
    /// `NodeReport::iterations_degraded`) instead of aborting the server.
    pub persist_deadline: Duration,
    /// Consecutive failures after which a plugin is quarantined (disabled,
    /// EPE keeps running). 0 = fail fast: the first plugin error aborts the
    /// run — the pre-resilience behaviour, and the default.
    pub plugin_quarantine: u32,
    /// Run the startup recovery scan (delete `*.tmp` orphans, quarantine
    /// torn `*.sdf`) before serving.
    pub recovery_scan: bool,
    /// How many times a crashed dedicated-core thread is respawned (each
    /// respawn bumps the heartbeat epoch and replays the event journal).
    /// 0 = no supervision beyond the crash surfacing at `finish` — the
    /// pre-recovery behaviour, and the default.
    pub epe_respawn: u32,
    /// How long the heartbeat word may stay unchanged before clients treat
    /// the dedicated core as dead and degrade per `backpressure`. Must
    /// exceed the longest plugin action (the server does not beat while a
    /// plugin runs).
    pub heartbeat_timeout: Duration,
    /// How the dedicated core completes iterations missing a dead client's
    /// end-of-iteration notification.
    pub on_client_failure: OnClientFailure,
    /// How long a client's lease word may stay unchanged before the
    /// sweeper revokes it and reclaims the client's shared-memory
    /// resources. Must exceed the client's longest gap between Damaris API
    /// calls (compute phases do not renew unless the application ticks
    /// `renew_lease`). Runs on the backend's `IoClock`, so chaos tests can
    /// drive it on virtual time.
    pub client_lease_timeout: Duration,
    /// Disk quota in bytes for the node's output directory. `None` (the
    /// default) means unlimited: no sentinel is attached and the pressure
    /// state machine stays dormant. Only applies to backends the runtime
    /// constructs itself ([`crate::NodeRuntime::start`]); an explicit
    /// backend brings its own sentinel.
    pub disk_quota: Option<u64>,
    /// Percent of the quota at which the node enters `Degraded`
    /// (compactor paused, superseded files gc'd).
    pub disk_high_pct: u8,
    /// Percent of the quota usage must fall below before a degraded node
    /// returns to `Normal` (hysteresis; must be below `disk_high_pct`).
    pub disk_low_pct: u8,
    /// How ready iterations are shed while the quota is exhausted.
    pub on_disk_full: OnDiskFull,
}

impl Default for ResilienceConfig {
    fn default() -> Self {
        ResilienceConfig {
            backpressure: BackpressurePolicy::default(),
            persist_retries: 2,
            retry_base: Duration::from_millis(10),
            persist_deadline: Duration::from_secs(2),
            plugin_quarantine: 0,
            recovery_scan: true,
            epe_respawn: 0,
            heartbeat_timeout: Duration::from_secs(1),
            on_client_failure: OnClientFailure::Wait,
            client_lease_timeout: Duration::from_secs(5),
            disk_quota: None,
            disk_high_pct: damaris_fs::DiskSentinel::DEFAULT_HIGH_PCT as u8,
            disk_low_pct: damaris_fs::DiskSentinel::DEFAULT_LOW_PCT as u8,
            on_disk_full: OnDiskFull::Block,
        }
    }
}

/// Observability settings, set by the `<observability>` element:
///
/// ```xml
/// <observability enabled="true" ring_capacity="4096"
///                trace_dir="out/traces"/>
/// ```
///
/// Tracing is *always-on* by default (the obs overhead budget is <5%);
/// `enabled="false"` reduces every instrumentation point to one branch.
/// `trace_dir` makes the dedicated core flush the node's trace rings into
/// `<trace_dir>/node-<id>.dtrc` between iterations; without it the rings
/// still feed the metrics registry but nothing is persisted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObservabilityConfig {
    /// Record trace events at runtime.
    pub enabled: bool,
    /// Slots per trace ring (power of two, >= 4). The ring drops oldest
    /// on overflow, so this bounds memory, not correctness.
    pub ring_capacity: usize,
    /// Directory for per-node DTRC trace files (created on demand).
    pub trace_dir: Option<String>,
}

impl Default for ObservabilityConfig {
    fn default() -> Self {
        ObservabilityConfig {
            enabled: true,
            ring_capacity: 4096,
            trace_dir: None,
        }
    }
}

/// Where the node's shared buffer (and its protocol words) live.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ShmBacking {
    /// One heap allocation shared between threads of one process — the
    /// threads-as-cores topology, and the default.
    #[default]
    Heap,
    /// A file-backed `MAP_SHARED` mapping (typically under `/dev/shm`)
    /// shared by *separate OS processes* — the paper's real topology.
    /// The mapping survives any one process being `kill -9`'d.
    File,
}

/// How the control plane travels between the node's cores.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TransportKind {
    /// In-process channels between threads (the default).
    #[default]
    InProcess,
    /// Unix-domain sockets between real processes (`damaris_mpi::uds`):
    /// commits, barriers, and epoch announcements cross process
    /// boundaries; the data plane stays in the shared mapping.
    Uds,
}

/// Process-topology settings, set by the `<shm>` and `<transport>`
/// elements:
///
/// ```xml
/// <shm backing="file" dir="/dev/shm"/>
/// <transport kind="uds" dir="/tmp/damaris"/>
/// ```
///
/// Both default to the single-process topology; `backing="file"` +
/// `kind="uds"` is the cross-process CM1 deployment the `cm1_proc`
/// launcher runs.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ProcessConfig {
    /// Shared-buffer placement.
    pub backing: ShmBacking,
    /// Directory for mapping files (`backing="file"` only); defaults to
    /// `/dev/shm` at runtime when unset.
    pub shm_dir: Option<String>,
    /// Control-plane transport.
    pub transport: TransportKind,
    /// Directory for control sockets (`kind="uds"` only); defaults to
    /// the mapping directory at runtime when unset.
    pub socket_dir: Option<String>,
}

/// Parsed configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// Shared-memory buffer size in bytes.
    pub buffer_size: usize,
    /// Reservation algorithm.
    pub allocator: AllocatorKind,
    /// Event-queue capacity.
    pub queue_capacity: usize,
    /// Layout definitions by name.
    pub layouts: HashMap<String, LayoutDef>,
    /// Variable definitions in declaration order.
    pub variables: Vec<VariableDef>,
    /// Event bindings in declaration order.
    pub actions: Vec<ActionBinding>,
    /// Failure-handling policies (see [`ResilienceConfig`]).
    pub resilience: ResilienceConfig,
    /// Tracing/metrics settings (see [`ObservabilityConfig`]).
    pub observability: ObservabilityConfig,
    /// Process topology — shm backing + control-plane transport (see
    /// [`ProcessConfig`]).
    pub process: ProcessConfig,
}

impl Config {
    /// Parses a configuration document.
    pub fn from_xml(xml: &str) -> Result<Self, DamarisError> {
        let root = damaris_xml::parse(xml)
            .map_err(|e| DamarisError::Config(format!("XML error: {e}")))?;
        Self::from_element(&root)
    }

    /// Parses from an already-built element tree.
    pub fn from_element(root: &Element) -> Result<Self, DamarisError> {
        if root.name != "damaris" && root.name != "simulation" {
            return Err(DamarisError::Config(format!(
                "root element must be <damaris>, found <{}>",
                root.name
            )));
        }

        let mut config = Config {
            buffer_size: 64 << 20,
            allocator: AllocatorKind::default(),
            queue_capacity: 1024,
            layouts: HashMap::new(),
            variables: Vec::new(),
            actions: Vec::new(),
            resilience: ResilienceConfig::default(),
            observability: ObservabilityConfig::default(),
            process: ProcessConfig::default(),
        };

        // Elements may sit at the root or inside grouping elements.
        // Document order is preserved: action bindings fire in the order
        // they are declared.
        let mut queue: std::collections::VecDeque<&Element> = root.child_elements().collect();
        while let Some(e) = queue.pop_front() {
            match e.name.as_str() {
                "buffer" => {
                    if let Some(size) = e
                        .attr_parse::<usize>("size")
                        .map_err(DamarisError::Config)?
                    {
                        config.buffer_size = size;
                    }
                    if let Some(q) = e
                        .attr_parse::<usize>("queue")
                        .map_err(DamarisError::Config)?
                    {
                        config.queue_capacity = q;
                    }
                    match e.attr("allocator") {
                        None | Some("mutex") => config.allocator = AllocatorKind::Mutex,
                        Some("partition") | Some("lockfree") => {
                            config.allocator = AllocatorKind::Partition
                        }
                        Some(other) => {
                            return Err(DamarisError::Config(format!(
                                "unknown allocator '{other}'"
                            )))
                        }
                    }
                }
                "layout" => {
                    let def = LayoutDef::from_xml(e)?;
                    if config.layouts.insert(def.name.clone(), def.clone()).is_some() {
                        return Err(DamarisError::Config(format!(
                            "duplicate layout '{}'",
                            def.name
                        )));
                    }
                }
                "variable" => {
                    let name = e
                        .attr("name")
                        .ok_or_else(|| DamarisError::Config("<variable> missing 'name'".into()))?
                        .to_string();
                    let layout = e
                        .attr("layout")
                        .ok_or_else(|| {
                            DamarisError::Config(format!("variable '{name}' missing 'layout'"))
                        })?
                        .to_string();
                    let attrs = e
                        .attributes
                        .iter()
                        .filter(|(k, _)| k != "name" && k != "layout")
                        .cloned()
                        .collect();
                    if config.variables.iter().any(|v| v.name == name) {
                        return Err(DamarisError::Config(format!("duplicate variable '{name}'")));
                    }
                    config.variables.push(VariableDef { name, layout, attrs });
                }
                "event" => {
                    let event = e
                        .attr("name")
                        .ok_or_else(|| DamarisError::Config("<event> missing 'name'".into()))?
                        .to_string();
                    let action = e
                        .attr("action")
                        .ok_or_else(|| {
                            DamarisError::Config(format!("event '{event}' missing 'action'"))
                        })?
                        .to_string();
                    config.actions.push(ActionBinding {
                        event,
                        action,
                        using: e.attr("using").map(str::to_string),
                        scope: e.attr("scope").unwrap_or("local").to_string(),
                    });
                }
                "resilience" => {
                    let r = &mut config.resilience;
                    let timeout = e
                        .attr_parse::<u64>("timeout_ms")
                        .map_err(DamarisError::Config)?
                        .map(Duration::from_millis);
                    match e.attr("backpressure") {
                        None | Some("block") => {
                            r.backpressure = BackpressurePolicy::Block {
                                timeout: timeout
                                    .unwrap_or(Duration::from_secs(30)),
                            }
                        }
                        Some("drop") => r.backpressure = BackpressurePolicy::DropIteration,
                        Some("sync-fallback") | Some("sync") => {
                            r.backpressure = BackpressurePolicy::SyncFallback
                        }
                        Some(other) => {
                            return Err(DamarisError::Config(format!(
                                "unknown backpressure policy '{other}' \
                                 (expected block, drop, or sync-fallback)"
                            )))
                        }
                    }
                    if let Some(n) = e
                        .attr_parse::<u32>("persist_retries")
                        .map_err(DamarisError::Config)?
                    {
                        r.persist_retries = n;
                    }
                    if let Some(ms) = e
                        .attr_parse::<u64>("retry_base_ms")
                        .map_err(DamarisError::Config)?
                    {
                        r.retry_base = Duration::from_millis(ms);
                    }
                    if let Some(ms) = e
                        .attr_parse::<u64>("persist_deadline_ms")
                        .map_err(DamarisError::Config)?
                    {
                        r.persist_deadline = Duration::from_millis(ms);
                    }
                    if let Some(k) = e
                        .attr_parse::<u32>("plugin_quarantine")
                        .map_err(DamarisError::Config)?
                    {
                        r.plugin_quarantine = k;
                    }
                    if let Some(n) = e
                        .attr_parse::<u32>("epe_respawn")
                        .map_err(DamarisError::Config)?
                    {
                        r.epe_respawn = n;
                    }
                    if let Some(ms) = e
                        .attr_parse::<u64>("heartbeat_timeout_ms")
                        .map_err(DamarisError::Config)?
                    {
                        if ms == 0 {
                            return Err(DamarisError::Config(
                                "heartbeat_timeout_ms must be positive".into(),
                            ));
                        }
                        r.heartbeat_timeout = Duration::from_millis(ms);
                    }
                    match e.attr("on_client_failure") {
                        None | Some("wait") => r.on_client_failure = OnClientFailure::Wait,
                        Some("partial") => r.on_client_failure = OnClientFailure::Partial,
                        Some("drop-iteration") | Some("drop_iteration") => {
                            r.on_client_failure = OnClientFailure::DropIteration
                        }
                        Some(other) => {
                            return Err(DamarisError::Config(format!(
                                "unknown on_client_failure policy '{other}' \
                                 (expected wait, partial, or drop-iteration)"
                            )))
                        }
                    }
                    if let Some(ms) = e
                        .attr_parse::<u64>("client_lease_timeout_ms")
                        .map_err(DamarisError::Config)?
                    {
                        if ms == 0 {
                            return Err(DamarisError::Config(
                                "client_lease_timeout_ms must be positive".into(),
                            ));
                        }
                        r.client_lease_timeout = Duration::from_millis(ms);
                    }
                    match e.attr("recovery_scan") {
                        None => {}
                        Some("true") => r.recovery_scan = true,
                        Some("false") => r.recovery_scan = false,
                        Some(other) => {
                            return Err(DamarisError::Config(format!(
                                "recovery_scan must be true or false, got '{other}'"
                            )))
                        }
                    }
                    if let Some(q) = e
                        .attr_parse::<u64>("disk_quota_bytes")
                        .map_err(DamarisError::Config)?
                    {
                        if q == 0 {
                            return Err(DamarisError::Config(
                                "disk_quota_bytes must be positive".into(),
                            ));
                        }
                        r.disk_quota = Some(q);
                    }
                    if let Some(p) = e
                        .attr_parse::<u8>("disk_high_pct")
                        .map_err(DamarisError::Config)?
                    {
                        r.disk_high_pct = p;
                    }
                    if let Some(p) = e
                        .attr_parse::<u8>("disk_low_pct")
                        .map_err(DamarisError::Config)?
                    {
                        r.disk_low_pct = p;
                    }
                    if !(r.disk_low_pct < r.disk_high_pct && r.disk_high_pct <= 100) {
                        return Err(DamarisError::Config(format!(
                            "disk watermarks must satisfy low < high <= 100, got \
                             disk_low_pct={} disk_high_pct={}",
                            r.disk_low_pct, r.disk_high_pct
                        )));
                    }
                    match e.attr("on_disk_full") {
                        None | Some("block") => r.on_disk_full = OnDiskFull::Block,
                        Some("drop-iteration") | Some("drop_iteration") => {
                            r.on_disk_full = OnDiskFull::DropIteration
                        }
                        Some("partial") => r.on_disk_full = OnDiskFull::Partial,
                        Some(other) => {
                            return Err(DamarisError::Config(format!(
                                "unknown on_disk_full policy '{other}' \
                                 (expected block, drop-iteration, or partial)"
                            )))
                        }
                    }
                }
                "observability" => {
                    let o = &mut config.observability;
                    match e.attr("enabled") {
                        None => {}
                        Some("true") => o.enabled = true,
                        Some("false") => o.enabled = false,
                        Some(other) => {
                            return Err(DamarisError::Config(format!(
                                "observability enabled must be true or false, got '{other}'"
                            )))
                        }
                    }
                    if let Some(n) = e
                        .attr_parse::<usize>("ring_capacity")
                        .map_err(DamarisError::Config)?
                    {
                        if n < 4 || !n.is_power_of_two() {
                            return Err(DamarisError::Config(format!(
                                "ring_capacity must be a power of two >= 4, got {n}"
                            )));
                        }
                        o.ring_capacity = n;
                    }
                    if let Some(dir) = e.attr("trace_dir") {
                        o.trace_dir = Some(dir.to_string());
                    }
                }
                "shm" => {
                    let p = &mut config.process;
                    match e.attr("backing") {
                        None | Some("heap") => p.backing = ShmBacking::Heap,
                        Some("file") | Some("mmap") => p.backing = ShmBacking::File,
                        Some(other) => {
                            return Err(DamarisError::Config(format!(
                                "unknown shm backing '{other}' (expected heap or file)"
                            )))
                        }
                    }
                    if let Some(dir) = e.attr("dir") {
                        p.shm_dir = Some(dir.to_string());
                    }
                }
                "transport" => {
                    let p = &mut config.process;
                    match e.attr("kind") {
                        None | Some("inproc") | Some("in-process") => {
                            p.transport = TransportKind::InProcess
                        }
                        Some("uds") | Some("socket") => p.transport = TransportKind::Uds,
                        Some(other) => {
                            return Err(DamarisError::Config(format!(
                                "unknown transport kind '{other}' (expected inproc or uds)"
                            )))
                        }
                    }
                    if let Some(dir) = e.attr("dir") {
                        p.socket_dir = Some(dir.to_string());
                    }
                }
                // Grouping elements: descend (children keep their order
                // relative to each other).
                "data" | "actions" | "architecture" => {
                    for (i, child) in e.child_elements().enumerate() {
                        queue.insert(i, child);
                    }
                }
                other => {
                    return Err(DamarisError::Config(format!("unknown element <{other}>")));
                }
            }
        }

        // A socket control plane only makes sense between real processes,
        // which cannot share a heap buffer.
        if config.process.transport == TransportKind::Uds
            && config.process.backing != ShmBacking::File
        {
            return Err(DamarisError::Config(
                "transport kind=\"uds\" requires shm backing=\"file\" \
                 (separate processes cannot share a heap buffer)"
                    .into(),
            ));
        }
        // Cross-check variable → layout references.
        for v in &config.variables {
            if !config.layouts.contains_key(&v.layout) {
                return Err(DamarisError::Config(format!(
                    "variable '{}' references unknown layout '{}'",
                    v.name, v.layout
                )));
            }
        }
        Ok(config)
    }

    /// Variable id by name (ids are declaration order).
    pub fn variable_id(&self, name: &str) -> Option<u32> {
        self.variables
            .iter()
            .position(|v| v.name == name)
            .map(|i| i as u32)
    }

    /// Variable definition by id.
    pub fn variable(&self, id: u32) -> Option<&VariableDef> {
        self.variables.get(id as usize)
    }

    /// Variable id and definition in one scan — the `write()` fast path's
    /// single name lookup (no id → definition round trip).
    pub fn variable_by_name(&self, name: &str) -> Option<(u32, &VariableDef)> {
        self.variables
            .iter()
            .enumerate()
            .find(|(_, v)| v.name == name)
            .map(|(i, v)| (i as u32, v))
    }

    /// The layout definition backing a variable.
    pub fn layout_of(&self, var: &VariableDef) -> &LayoutDef {
        self.layouts
            .get(&var.layout)
            // invariant: parse-time validation rejects configs whose
            // variables reference undefined layouts.
            // ANALYZE: in-bounds(parse-time validation rejects configs whose variables reference undefined layouts)
            .expect("validated at parse time")
    }

    /// Bindings for a given event name.
    pub fn bindings_for(&self, event: &str) -> Vec<&ActionBinding> {
        self.actions.iter().filter(|a| a.event == event).collect()
    }

    /// Sizing diagnostics for a deployment with `n_clients` compute cores
    /// per node. Returns human-readable warnings (empty = no concerns):
    /// the buffer must hold at least ~2 in-flight iterations (the server
    /// reclaims an iteration only once every client ends it), and the
    /// event queue should absorb a full iteration of notifications.
    pub fn diagnostics(&self, n_clients: usize) -> Vec<String> {
        let mut warnings = Vec::new();
        let static_bytes: u64 = self
            .variables
            .iter()
            .map(|v| {
                let l = self.layout_of(v);
                if l.dynamic { 0 } else { l.byte_size() }
            })
            .sum();
        let per_iteration = static_bytes * n_clients as u64;
        if per_iteration > 0 && (self.buffer_size as u64) < 2 * per_iteration {
            warnings.push(format!(
                "buffer ({} bytes) holds fewer than two in-flight iterations                  ({} bytes each for {n_clients} clients); clients may stall                  waiting for the dedicated core",
                self.buffer_size, per_iteration
            ));
        }
        let events_per_iteration = (self.variables.len() + 1) * n_clients;
        if self.queue_capacity < 2 * events_per_iteration {
            warnings.push(format!(
                "event queue ({}) holds fewer than two iterations of                  notifications ({events_per_iteration} per iteration)",
                self.queue_capacity
            ));
        }
        if self.allocator == AllocatorKind::Partition
            && self.variables.iter().any(|v| self.layout_of(v).dynamic)
        {
            warnings.push(
                "dynamic-shape variables with the partitioned allocator: size                  each client's region for the worst-case shape"
                    .to_string(),
            );
        }
        warnings
    }

    /// Serializes back to the XML schema (compact form).
    pub fn to_xml(&self) -> String {
        let mut root = Element::new("damaris").with_child(
            Element::new("buffer")
                .with_attr("size", self.buffer_size.to_string())
                .with_attr(
                    "allocator",
                    match self.allocator {
                        AllocatorKind::Mutex => "mutex",
                        AllocatorKind::Partition => "partition",
                    },
                )
                .with_attr("queue", self.queue_capacity.to_string()),
        );
        let r = &self.resilience;
        let mut res = Element::new("resilience");
        match r.backpressure {
            BackpressurePolicy::Block { timeout } => {
                res.set_attr("backpressure", "block");
                res.set_attr("timeout_ms", timeout.as_millis().to_string());
            }
            BackpressurePolicy::DropIteration => res.set_attr("backpressure", "drop"),
            BackpressurePolicy::SyncFallback => res.set_attr("backpressure", "sync-fallback"),
        }
        res.set_attr("persist_retries", r.persist_retries.to_string());
        res.set_attr("retry_base_ms", r.retry_base.as_millis().to_string());
        res.set_attr("persist_deadline_ms", r.persist_deadline.as_millis().to_string());
        res.set_attr("plugin_quarantine", r.plugin_quarantine.to_string());
        res.set_attr("recovery_scan", if r.recovery_scan { "true" } else { "false" });
        res.set_attr("epe_respawn", r.epe_respawn.to_string());
        res.set_attr(
            "heartbeat_timeout_ms",
            r.heartbeat_timeout.as_millis().to_string(),
        );
        res.set_attr(
            "on_client_failure",
            match r.on_client_failure {
                OnClientFailure::Wait => "wait",
                OnClientFailure::Partial => "partial",
                OnClientFailure::DropIteration => "drop-iteration",
            },
        );
        res.set_attr(
            "client_lease_timeout_ms",
            r.client_lease_timeout.as_millis().to_string(),
        );
        if let Some(q) = r.disk_quota {
            res.set_attr("disk_quota_bytes", q.to_string());
        }
        res.set_attr("disk_high_pct", r.disk_high_pct.to_string());
        res.set_attr("disk_low_pct", r.disk_low_pct.to_string());
        res.set_attr(
            "on_disk_full",
            match r.on_disk_full {
                OnDiskFull::Block => "block",
                OnDiskFull::DropIteration => "drop-iteration",
                OnDiskFull::Partial => "partial",
            },
        );
        root.children.push(damaris_xml::Node::Element(res));
        let o = &self.observability;
        let mut obs = Element::new("observability")
            .with_attr("enabled", if o.enabled { "true" } else { "false" })
            .with_attr("ring_capacity", o.ring_capacity.to_string());
        if let Some(dir) = &o.trace_dir {
            obs.set_attr("trace_dir", dir.clone());
        }
        root.children.push(damaris_xml::Node::Element(obs));
        let p = &self.process;
        if *p != ProcessConfig::default() {
            let mut shm = Element::new("shm").with_attr(
                "backing",
                match p.backing {
                    ShmBacking::Heap => "heap",
                    ShmBacking::File => "file",
                },
            );
            if let Some(dir) = &p.shm_dir {
                shm.set_attr("dir", dir.clone());
            }
            root.children.push(damaris_xml::Node::Element(shm));
            let mut tr = Element::new("transport").with_attr(
                "kind",
                match p.transport {
                    TransportKind::InProcess => "inproc",
                    TransportKind::Uds => "uds",
                },
            );
            if let Some(dir) = &p.socket_dir {
                tr.set_attr("dir", dir.clone());
            }
            root.children.push(damaris_xml::Node::Element(tr));
        }
        let mut names: Vec<&String> = self.layouts.keys().collect();
        names.sort();
        for name in names {
            let l = &self.layouts[name];
            let dims = l
                .declared_dims
                .iter()
                .map(|d| d.to_string())
                .collect::<Vec<_>>()
                .join(",");
            let mut e = Element::new("layout")
                .with_attr("name", name.clone())
                .with_attr(
                    "type",
                    match l.dtype {
                        damaris_format::DataType::F32 => "real",
                        damaris_format::DataType::F64 => "double",
                        damaris_format::DataType::I32 => "integer",
                        damaris_format::DataType::I64 => "long",
                        damaris_format::DataType::U8 => "byte",
                    },
                )
                .with_attr("dimensions", dims);
            if l.language == crate::layout::Language::Fortran {
                e.set_attr("language", "fortran");
            }
            root.children.push(damaris_xml::Node::Element(e));
        }
        for v in &self.variables {
            let mut e = Element::new("variable")
                .with_attr("name", v.name.clone())
                .with_attr("layout", v.layout.clone());
            for (k, val) in &v.attrs {
                e.set_attr(k.clone(), val.clone());
            }
            root.children.push(damaris_xml::Node::Element(e));
        }
        for a in &self.actions {
            let mut e = Element::new("event")
                .with_attr("name", a.event.clone())
                .with_attr("action", a.action.clone());
            if let Some(u) = &a.using {
                e.set_attr("using", u.clone());
            }
            e.set_attr("scope", a.scope.clone());
            root.children.push(damaris_xml::Node::Element(e));
        }
        root.to_xml_pretty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const PAPER_CONFIG: &str = r#"
        <damaris>
          <buffer size="8388608" allocator="partition" queue="128"/>
          <layout name="my_layout" type="real" dimensions="64,16,2" language="fortran"/>
          <variable name="my_variable" layout="my_layout" unit="K"/>
          <event name="my_event" action="do_something" using="my_plugin.so" scope="local"/>
        </damaris>"#;

    #[test]
    fn parses_paper_schema() {
        let c = Config::from_xml(PAPER_CONFIG).unwrap();
        assert_eq!(c.buffer_size, 8 << 20);
        assert_eq!(c.allocator, AllocatorKind::Partition);
        assert_eq!(c.queue_capacity, 128);
        assert_eq!(c.variables.len(), 1);
        assert_eq!(c.variable_id("my_variable"), Some(0));
        assert_eq!(c.variable_id("nope"), None);
        let v = c.variable(0).unwrap();
        assert_eq!(c.layout_of(v).byte_size(), 64 * 16 * 2 * 4);
        assert_eq!(v.attrs, vec![("unit".to_string(), "K".to_string())]);
        let b = c.bindings_for("my_event");
        assert_eq!(b.len(), 1);
        assert_eq!(b[0].action, "do_something");
        assert_eq!(b[0].using.as_deref(), Some("my_plugin.so"));
    }

    #[test]
    fn grouped_elements_supported() {
        let c = Config::from_xml(
            r#"<damaris>
                 <data>
                   <layout name="l" type="integer" dimensions="8"/>
                   <variable name="v" layout="l"/>
                 </data>
                 <actions>
                   <event name="e" action="persist"/>
                 </actions>
               </damaris>"#,
        )
        .unwrap();
        assert_eq!(c.variables.len(), 1);
        assert_eq!(c.actions.len(), 1);
    }

    #[test]
    fn defaults_without_buffer_element() {
        let c = Config::from_xml(r#"<damaris><layout name="l" type="real" dimensions="1"/></damaris>"#)
            .unwrap();
        assert_eq!(c.buffer_size, 64 << 20);
        assert_eq!(c.allocator, AllocatorKind::Mutex);
    }

    #[test]
    fn rejects_bad_configs() {
        for bad in [
            "<nope/>",
            r#"<damaris><variable name="v" layout="missing"/></damaris>"#,
            r#"<damaris><mystery/></damaris>"#,
            r#"<damaris><buffer allocator="slab"/></damaris>"#,
            r#"<damaris><layout name="l" type="real" dimensions="1"/>
                       <layout name="l" type="real" dimensions="2"/></damaris>"#,
            r#"<damaris><layout name="l" type="real" dimensions="1"/>
                       <variable name="v" layout="l"/>
                       <variable name="v" layout="l"/></damaris>"#,
            r#"<damaris><event name="e"/></damaris>"#,
            r#"<damaris><buffer size="abc"/></damaris>"#,
        ] {
            assert!(Config::from_xml(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn xml_roundtrip() {
        let c = Config::from_xml(PAPER_CONFIG).unwrap();
        let xml = c.to_xml();
        let c2 = Config::from_xml(&xml).unwrap();
        assert_eq!(c2.buffer_size, c.buffer_size);
        assert_eq!(c2.allocator, c.allocator);
        assert_eq!(c2.variables, c.variables);
        assert_eq!(c2.actions, c.actions);
        assert_eq!(c2.layouts.len(), c.layouts.len());
        assert_eq!(c2.layouts["my_layout"], c.layouts["my_layout"]);
    }

    #[test]
    fn action_order_preserved() {
        // Order matters: e.g. `visualize` must run before `persist` drains
        // the store. Both flat and grouped declarations keep document order.
        let c = Config::from_xml(
            r#"<damaris>
                 <event name="end_of_iteration" action="visualize"/>
                 <event name="end_of_iteration" action="persist"/>
                 <event name="other" action="stats"/>
               </damaris>"#,
        )
        .unwrap();
        let order: Vec<&str> = c.actions.iter().map(|a| a.action.as_str()).collect();
        assert_eq!(order, vec!["visualize", "persist", "stats"]);

        let grouped = Config::from_xml(
            r#"<damaris>
                 <actions>
                   <event name="e" action="visualize"/>
                   <event name="e" action="persist"/>
                 </actions>
               </damaris>"#,
        )
        .unwrap();
        let order: Vec<&str> = grouped.actions.iter().map(|a| a.action.as_str()).collect();
        assert_eq!(order, vec!["visualize", "persist"]);
    }

    #[test]
    fn diagnostics_flag_undersized_resources() {
        let c = Config::from_xml(
            r#"<damaris>
                 <buffer size="1000" queue="4"/>
                 <layout name="l" type="real" dimensions="256"/>
                 <variable name="v" layout="l"/>
               </damaris>"#,
        )
        .unwrap();
        let warnings = c.diagnostics(4);
        assert_eq!(warnings.len(), 2, "{warnings:?}");
        assert!(warnings[0].contains("buffer"));
        assert!(warnings[1].contains("queue"));
        // Generous sizing: no warnings.
        let c = Config::from_xml(
            r#"<damaris>
                 <buffer size="1048576" queue="1024"/>
                 <layout name="l" type="real" dimensions="256"/>
                 <variable name="v" layout="l"/>
               </damaris>"#,
        )
        .unwrap();
        assert!(c.diagnostics(4).is_empty());
    }

    #[test]
    fn diagnostics_flag_dynamic_with_partition() {
        let c = Config::from_xml(
            r#"<damaris>
                 <buffer size="1048576" allocator="partition" queue="1024"/>
                 <layout name="p" type="real" dimensions="?"/>
                 <variable name="pos" layout="p"/>
               </damaris>"#,
        )
        .unwrap();
        let warnings = c.diagnostics(2);
        assert_eq!(warnings.len(), 1);
        assert!(warnings[0].contains("dynamic"));
    }

    #[test]
    fn resilience_defaults_and_overrides() {
        let c = Config::from_xml("<damaris/>").unwrap();
        assert_eq!(c.resilience, ResilienceConfig::default());
        assert_eq!(
            c.resilience.backpressure,
            BackpressurePolicy::Block {
                timeout: Duration::from_secs(30)
            }
        );
        assert_eq!(c.resilience.plugin_quarantine, 0);
        assert!(c.resilience.recovery_scan);

        assert_eq!(c.resilience.on_client_failure, OnClientFailure::Wait);
        assert_eq!(c.resilience.client_lease_timeout, Duration::from_secs(5));

        let c = Config::from_xml(
            r#"<damaris>
                 <resilience backpressure="drop" persist_retries="5"
                             retry_base_ms="7" persist_deadline_ms="900"
                             plugin_quarantine="3" recovery_scan="false"
                             epe_respawn="2" heartbeat_timeout_ms="350"
                             on_client_failure="partial"
                             client_lease_timeout_ms="450"/>
               </damaris>"#,
        )
        .unwrap();
        assert_eq!(c.resilience.backpressure, BackpressurePolicy::DropIteration);
        assert_eq!(c.resilience.persist_retries, 5);
        assert_eq!(c.resilience.retry_base, Duration::from_millis(7));
        assert_eq!(c.resilience.persist_deadline, Duration::from_millis(900));
        assert_eq!(c.resilience.plugin_quarantine, 3);
        assert!(!c.resilience.recovery_scan);
        assert_eq!(c.resilience.epe_respawn, 2);
        assert_eq!(c.resilience.heartbeat_timeout, Duration::from_millis(350));
        assert_eq!(c.resilience.on_client_failure, OnClientFailure::Partial);
        assert_eq!(
            c.resilience.client_lease_timeout,
            Duration::from_millis(450)
        );

        let c = Config::from_xml(
            r#"<damaris><resilience on_client_failure="drop-iteration"/></damaris>"#,
        )
        .unwrap();
        assert_eq!(
            c.resilience.on_client_failure,
            OnClientFailure::DropIteration
        );

        let c = Config::from_xml(
            r#"<damaris><resilience backpressure="block" timeout_ms="250"/></damaris>"#,
        )
        .unwrap();
        assert_eq!(
            c.resilience.backpressure,
            BackpressurePolicy::Block {
                timeout: Duration::from_millis(250)
            }
        );
        let c = Config::from_xml(
            r#"<damaris><resilience backpressure="sync-fallback"/></damaris>"#,
        )
        .unwrap();
        assert_eq!(c.resilience.backpressure, BackpressurePolicy::SyncFallback);
    }

    #[test]
    fn resilience_rejects_bad_values() {
        for bad in [
            r#"<damaris><resilience backpressure="explode"/></damaris>"#,
            r#"<damaris><resilience recovery_scan="maybe"/></damaris>"#,
            r#"<damaris><resilience persist_retries="lots"/></damaris>"#,
            r#"<damaris><resilience epe_respawn="forever"/></damaris>"#,
            r#"<damaris><resilience heartbeat_timeout_ms="0"/></damaris>"#,
            r#"<damaris><resilience on_client_failure="shrug"/></damaris>"#,
            r#"<damaris><resilience client_lease_timeout_ms="0"/></damaris>"#,
            r#"<damaris><resilience disk_quota_bytes="0"/></damaris>"#,
            r#"<damaris><resilience on_disk_full="panic"/></damaris>"#,
            // Watermarks must satisfy low < high <= 100.
            r#"<damaris><resilience disk_high_pct="101"/></damaris>"#,
            r#"<damaris><resilience disk_high_pct="50" disk_low_pct="60"/></damaris>"#,
            r#"<damaris><resilience disk_high_pct="70" disk_low_pct="70"/></damaris>"#,
        ] {
            assert!(Config::from_xml(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn disk_pressure_defaults_and_overrides() {
        let c = Config::from_xml("<damaris/>").unwrap();
        assert_eq!(c.resilience.disk_quota, None);
        assert_eq!(c.resilience.disk_high_pct, 85);
        assert_eq!(c.resilience.disk_low_pct, 70);
        assert_eq!(c.resilience.on_disk_full, OnDiskFull::Block);

        let c = Config::from_xml(
            r#"<damaris>
                 <resilience disk_quota_bytes="65536" disk_high_pct="90"
                             disk_low_pct="50" on_disk_full="drop-iteration"/>
               </damaris>"#,
        )
        .unwrap();
        assert_eq!(c.resilience.disk_quota, Some(65536));
        assert_eq!(c.resilience.disk_high_pct, 90);
        assert_eq!(c.resilience.disk_low_pct, 50);
        assert_eq!(c.resilience.on_disk_full, OnDiskFull::DropIteration);

        let c = Config::from_xml(
            r#"<damaris><resilience on_disk_full="partial"/></damaris>"#,
        )
        .unwrap();
        assert_eq!(c.resilience.on_disk_full, OnDiskFull::Partial);

        let c2 = Config::from_xml(&c.to_xml()).unwrap();
        assert_eq!(c2.resilience, c.resilience);
    }

    #[test]
    fn resilience_roundtrips_through_xml() {
        let c = Config::from_xml(
            r#"<damaris>
                 <resilience backpressure="sync-fallback" persist_retries="4"
                             plugin_quarantine="2" epe_respawn="1"
                             heartbeat_timeout_ms="1250"
                             on_client_failure="partial"
                             client_lease_timeout_ms="800"/>
               </damaris>"#,
        )
        .unwrap();
        let c2 = Config::from_xml(&c.to_xml()).unwrap();
        assert_eq!(c2.resilience, c.resilience);
    }

    #[test]
    fn observability_defaults_overrides_and_roundtrip() {
        let c = Config::from_xml("<damaris/>").unwrap();
        assert_eq!(c.observability, ObservabilityConfig::default());
        assert!(c.observability.enabled);
        assert_eq!(c.observability.ring_capacity, 4096);
        assert!(c.observability.trace_dir.is_none());

        let c = Config::from_xml(
            r#"<damaris>
                 <observability enabled="false" ring_capacity="64"
                                trace_dir="out/traces"/>
               </damaris>"#,
        )
        .unwrap();
        assert!(!c.observability.enabled);
        assert_eq!(c.observability.ring_capacity, 64);
        assert_eq!(c.observability.trace_dir.as_deref(), Some("out/traces"));

        let c2 = Config::from_xml(&c.to_xml()).unwrap();
        assert_eq!(c2.observability, c.observability);
    }

    #[test]
    fn observability_rejects_bad_values() {
        for bad in [
            r#"<damaris><observability enabled="sometimes"/></damaris>"#,
            r#"<damaris><observability ring_capacity="3"/></damaris>"#,
            r#"<damaris><observability ring_capacity="100"/></damaris>"#,
            r#"<damaris><observability ring_capacity="many"/></damaris>"#,
        ] {
            assert!(Config::from_xml(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn process_topology_defaults_overrides_and_roundtrip() {
        let c = Config::from_xml("<damaris/>").unwrap();
        assert_eq!(c.process, ProcessConfig::default());
        assert_eq!(c.process.backing, ShmBacking::Heap);
        assert_eq!(c.process.transport, TransportKind::InProcess);

        let c = Config::from_xml(
            r#"<damaris>
                 <shm backing="file" dir="/dev/shm"/>
                 <transport kind="uds" dir="/tmp/damaris"/>
               </damaris>"#,
        )
        .unwrap();
        assert_eq!(c.process.backing, ShmBacking::File);
        assert_eq!(c.process.shm_dir.as_deref(), Some("/dev/shm"));
        assert_eq!(c.process.transport, TransportKind::Uds);
        assert_eq!(c.process.socket_dir.as_deref(), Some("/tmp/damaris"));

        let c2 = Config::from_xml(&c.to_xml()).unwrap();
        assert_eq!(c2.process, c.process);

        // File backing with in-process transport is valid (the bench
        // comparison topology); heap + uds is not.
        let c = Config::from_xml(r#"<damaris><shm backing="file"/></damaris>"#).unwrap();
        assert_eq!(c.process.backing, ShmBacking::File);
        assert_eq!(c.process.transport, TransportKind::InProcess);
    }

    #[test]
    fn process_topology_rejects_bad_values() {
        for bad in [
            r#"<damaris><shm backing="cloud"/></damaris>"#,
            r#"<damaris><transport kind="pigeon"/></damaris>"#,
            // uds needs a file-backed buffer.
            r#"<damaris><transport kind="uds"/></damaris>"#,
        ] {
            assert!(Config::from_xml(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn multiple_bindings_per_event() {
        let c = Config::from_xml(
            r#"<damaris>
                 <event name="checkpoint" action="stats"/>
                 <event name="checkpoint" action="persist"/>
               </damaris>"#,
        )
        .unwrap();
        assert_eq!(c.bindings_for("checkpoint").len(), 2);
        assert!(c.bindings_for("other").is_empty());
    }
}
