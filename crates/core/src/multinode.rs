//! Multiple dedicated cores per node (paper §V-A).
//!
//! "Damaris can be deployed on several cores per node. Two different
//! interaction semantics are then available:
//!
//! * **symmetric** — dedicated cores have a symmetrical role but are
//!   attached to different clients of the node (e.g. they all perform I/O
//!   on behalf of different groups of client cores);
//! * **asymmetric** — one dedicated core receives data from clients and
//!   writes it to files, while another one performs visualization or
//!   data-analysis."
//!
//! [`SmpNode`] implements both. Symmetric mode partitions the clients into
//! groups, each with its own shared buffer, event queue and server thread.
//! Asymmetric mode runs one I/O core exactly like [`crate::NodeRuntime`]
//! plus an *analysis core*: at each end-of-iteration the I/O core forwards
//! the iteration's datasets to the analysis thread (which runs the
//! `analysis`-bound plugins) before persisting and releasing the shared
//! memory.

use crate::client::DamarisClient;
use crate::config::Config;
use crate::error::DamarisError;
use crate::node::{NodeReport, NodeRuntime};
use crate::plugin::PluginFactory;
use crate::plugins::stats::summarize;
use damaris_format::{DataType, DatasetOptions, Layout};
use damaris_fs::LocalDirBackend;
use std::path::{Path, PathBuf};

/// Which §V-A semantics a multi-dedicated-core node uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Topology {
    /// `dedicated` symmetric groups, clients split evenly between them.
    Symmetric { dedicated: usize },
    /// One I/O core plus one analysis core.
    Asymmetric,
}

/// One dataset snapshot forwarded from the I/O core to the analysis core.
pub struct AnalysisItem {
    pub iteration: u32,
    pub source: u32,
    pub name: String,
    pub layout: Layout,
    /// Owned copy of the data (the shared-memory segment is released by
    /// the I/O core right after persisting).
    pub data: Vec<u8>,
}

/// Report of an asymmetric node's analysis core.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AnalysisReport {
    pub iterations_analyzed: u64,
    pub datasets_analyzed: u64,
    pub files_created: u64,
}

enum Backendish {
    Symmetric(Vec<NodeRuntime>),
    Asymmetric {
        runtime: NodeRuntime,
        analysis: Option<std::thread::JoinHandle<AnalysisReport>>,
    },
}

/// A node with more than one dedicated core.
pub struct SmpNode {
    clients: Vec<DamarisClient>,
    inner: Backendish,
}

/// Combined accounting from all of a node's dedicated cores.
#[derive(Debug, Clone, Default)]
pub struct SmpNodeReport {
    /// One report per I/O server (symmetric: one per group).
    pub io: Vec<NodeReport>,
    /// Analysis-core report (asymmetric only).
    pub analysis: Option<AnalysisReport>,
}

impl SmpNode {
    /// Starts a node with `n_clients` compute cores under the given
    /// topology, writing into `output_dir`.
    pub fn start(
        config: Config,
        n_clients: usize,
        topology: Topology,
        output_dir: impl AsRef<Path>,
    ) -> Result<SmpNode, DamarisError> {
        match topology {
            Topology::Symmetric { dedicated } => {
                if dedicated == 0 {
                    return Err(DamarisError::Config(
                        "symmetric topology needs at least one dedicated core".into(),
                    ));
                }
                if !n_clients.is_multiple_of(dedicated) {
                    return Err(DamarisError::Config(format!(
                        "{n_clients} clients do not split evenly over {dedicated} dedicated cores"
                    )));
                }
                let per_group = n_clients / dedicated;
                let mut runtimes = Vec::with_capacity(dedicated);
                let mut clients = Vec::with_capacity(n_clients);
                for group in 0..dedicated {
                    // Each group gets its own buffer sized like the paper:
                    // the user-configured size divided among groups.
                    let mut cfg = config.clone();
                    cfg.buffer_size = (config.buffer_size / dedicated).max(1 << 16);
                    let mut rt = NodeRuntime::start_with(
                        cfg,
                        per_group,
                        output_dir.as_ref(),
                        group as u32,
                        Vec::new(),
                    )?;
                    clients.extend(rt.take_clients());
                    runtimes.push(rt);
                }
                Ok(SmpNode {
                    clients,
                    inner: Backendish::Symmetric(runtimes),
                })
            }
            Topology::Asymmetric => {
                let (tx, rx) = crossbeam::channel::unbounded::<AnalysisMsg>();
                let analysis_dir: PathBuf = output_dir.as_ref().join("analysis");
                let analysis = std::thread::Builder::new()
                    .name("damaris-analysis".into())
                    .spawn(move || analysis_core(rx, &analysis_dir))
                    // invariant: spawn fails only on process-scale resource
                    // exhaustion; asymmetric mode cannot run without it.
                    .expect("spawn analysis core");

                let forwarder: PluginFactory = Box::new(move |_binding| {
                    Ok(Box::new(ForwardPlugin { tx: tx.clone() }) as Box<dyn crate::Plugin>)
                });
                // Bind the forwarder *before* the default persist so data is
                // captured while still resident.
                let mut cfg = config;
                cfg.actions.insert(
                    0,
                    crate::config::ActionBinding {
                        event: crate::epe::END_OF_ITERATION.to_string(),
                        action: "forward_to_analysis".to_string(),
                        using: None,
                        scope: "local".to_string(),
                    },
                );
                if !cfg
                    .actions
                    .iter()
                    .any(|a| a.event == crate::epe::END_OF_ITERATION && a.action != "forward_to_analysis")
                {
                    cfg.actions.push(crate::config::ActionBinding {
                        event: crate::epe::END_OF_ITERATION.to_string(),
                        action: "persist".to_string(),
                        using: None,
                        scope: "local".to_string(),
                    });
                }
                let mut runtime = NodeRuntime::start_with(
                    cfg,
                    n_clients,
                    output_dir.as_ref(),
                    0,
                    vec![("forward_to_analysis".to_string(), forwarder)],
                )?;
                let clients = runtime.take_clients();
                Ok(SmpNode {
                    clients,
                    inner: Backendish::Asymmetric {
                        runtime,
                        analysis: Some(analysis),
                    },
                })
            }
        }
    }

    /// All client handles (grouped client-major for symmetric mode:
    /// clients `[g·K/D, (g+1)·K/D)` belong to dedicated core `g`).
    pub fn clients(&self) -> Vec<DamarisClient> {
        self.clients.clone()
    }

    /// Shuts down every dedicated core.
    pub fn finish(self) -> Result<SmpNodeReport, DamarisError> {
        match self.inner {
            Backendish::Symmetric(runtimes) => {
                let mut io = Vec::new();
                for rt in runtimes {
                    io.push(rt.finish()?);
                }
                Ok(SmpNodeReport { io, analysis: None })
            }
            Backendish::Asymmetric {
                runtime,
                mut analysis,
            } => {
                let io = runtime.finish()?; // drops the forwarder → channel closes
                let report = analysis
                    .take()
                    // invariant: only `finish` (which consumes self) takes
                    // the handle.
                    .expect("analysis thread")
                    .join()
                    // invariant: the analysis core catches plugin panics;
                    // one escaping is a harness bug worth aborting on.
                    .expect("analysis core panicked");
                Ok(SmpNodeReport {
                    io: vec![io],
                    analysis: Some(report),
                })
            }
        }
    }
}

enum AnalysisMsg {
    Iteration(u32, Vec<AnalysisItem>),
}

/// Plugin running on the I/O core: snapshots the iteration's resident
/// datasets and forwards them to the analysis core.
struct ForwardPlugin {
    tx: crossbeam::channel::Sender<AnalysisMsg>,
}

impl crate::Plugin for ForwardPlugin {
    fn name(&self) -> &str {
        "forward_to_analysis"
    }

    fn handle(
        &mut self,
        ctx: &mut crate::ActionContext<'_>,
        event: &crate::EventInfo,
    ) -> Result<(), DamarisError> {
        let items: Vec<AnalysisItem> = ctx
            .store
            .iteration_entries(event.iteration)
            .map(|v| AnalysisItem {
                iteration: v.key.iteration,
                source: v.key.source,
                name: v.name.clone(),
                layout: v.layout.clone(),
                data: v.data().to_vec(),
            })
            .collect();
        if !items.is_empty() {
            // A closed channel means the analysis core is gone — treat as a
            // plugin failure so the run surfaces it.
            self.tx
                .send(AnalysisMsg::Iteration(event.iteration, items))
                .map_err(|_| DamarisError::Plugin {
                    plugin: "forward_to_analysis".into(),
                    message: "analysis core terminated early".into(),
                })?;
        }
        Ok(())
    }
}

/// The analysis core: consumes forwarded iterations, computes per-dataset
/// statistics, and stores them in its own SDF files — data analysis fully
/// off the I/O path, the paper's asymmetric use case.
fn analysis_core(
    rx: crossbeam::channel::Receiver<AnalysisMsg>,
    dir: &Path,
) -> AnalysisReport {
    // invariant: the analysis dir was created by `start`; failure here
    // means the filesystem vanished, which no report can survive.
    let backend = LocalDirBackend::new(dir).expect("analysis output dir");
    let mut report = AnalysisReport::default();
    while let Ok(AnalysisMsg::Iteration(iteration, items)) = rx.recv() {
        let mut writer = backend
            .create_sdf(&format!("analysis-iter-{iteration:06}.sdf"))
            // invariant: analysis output is best-effort local scratch; an
            // I/O failure here has no graceful continuation.
            .expect("create analysis file");
        let layout = Layout::new(DataType::F64, &[3]);
        for item in &items {
            if let Some(stats) = summarize(item.layout.dtype, &item.data) {
                let path = format!(
                    "/iter-{}/rank-{}/{}.stats",
                    iteration, item.source, item.name
                );
                let bytes: Vec<u8> = stats.iter().flat_map(|v| v.to_le_bytes()).collect();
                writer
                    .write_dataset_bytes(&path, &layout, &bytes, &DatasetOptions::plain())
                    // invariant: see `create_sdf` above.
                    .expect("write stats");
                report.datasets_analyzed += 1;
            }
        }
        // invariant: see `create_sdf` above.
        writer.finish().expect("finish analysis file");
        report.iterations_analyzed += 1;
        report.files_created += 1;
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use damaris_format::SdfReader;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn scratch(tag: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("damaris-smp-{tag}-{}-{n}", std::process::id()))
    }

    fn config() -> Config {
        Config::from_xml(
            r#"<damaris>
                 <buffer size="4194304" allocator="partition"/>
                 <layout name="grid" type="real" dimensions="64"/>
                 <variable name="theta" layout="grid"/>
               </damaris>"#,
        )
        .unwrap()
    }

    #[test]
    fn symmetric_groups_partition_clients() {
        let dir = scratch("sym");
        let node = SmpNode::start(config(), 6, Topology::Symmetric { dedicated: 2 }, &dir).unwrap();
        let clients = node.clients();
        assert_eq!(clients.len(), 6);
        std::thread::scope(|s| {
            for client in clients {
                s.spawn(move || {
                    client.write_f32("theta", 0, &vec![1.0; 64]).unwrap();
                    client.end_iteration(0).unwrap();
                });
            }
        });
        let report = node.finish().unwrap();
        assert_eq!(report.io.len(), 2);
        for (g, r) in report.io.iter().enumerate() {
            assert_eq!(r.iterations_persisted, 1, "group {g}");
            assert_eq!(r.variables_received, 3);
        }
        // Each group wrote its own node file.
        for g in 0..2 {
            let reader = SdfReader::open(dir.join(format!("node-{g}/iter-000000.sdf"))).unwrap();
            assert_eq!(reader.len(), 3);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn symmetric_requires_even_split() {
        let dir = scratch("sym-bad");
        assert!(matches!(
            SmpNode::start(config(), 5, Topology::Symmetric { dedicated: 2 }, &dir),
            Err(DamarisError::Config(_))
        ));
        assert!(matches!(
            SmpNode::start(config(), 4, Topology::Symmetric { dedicated: 0 }, &dir),
            Err(DamarisError::Config(_))
        ));
    }

    #[test]
    fn asymmetric_analysis_core_gets_every_iteration() {
        let dir = scratch("asym");
        let node = SmpNode::start(config(), 2, Topology::Asymmetric, &dir).unwrap();
        let clients = node.clients();
        std::thread::scope(|s| {
            for client in clients {
                s.spawn(move || {
                    for it in 0..3u32 {
                        let data: Vec<f32> =
                            (0..64).map(|i| (client.id() * 100 + i) as f32).collect();
                        client.write_f32("theta", it, &data).unwrap();
                        client.end_iteration(it).unwrap();
                    }
                });
            }
        });
        let report = node.finish().unwrap();
        assert_eq!(report.io[0].iterations_persisted, 3);
        let analysis = report.analysis.unwrap();
        assert_eq!(analysis.iterations_analyzed, 3);
        assert_eq!(analysis.datasets_analyzed, 6); // 2 clients × 3 iterations

        // The I/O core persisted the data…
        let data_file = SdfReader::open(dir.join("node-0/iter-000001.sdf")).unwrap();
        assert_eq!(data_file.len(), 2);
        // …and the analysis core produced stats off the I/O path.
        let stats = SdfReader::open(dir.join("analysis/analysis-iter-000001.sdf")).unwrap();
        let row = stats.read_f64("/iter-1/rank-1/theta.stats").unwrap();
        assert_eq!(row[0], 100.0); // min of rank 1's data
        assert_eq!(row[1], 163.0); // max
        std::fs::remove_dir_all(&dir).ok();
    }
}
