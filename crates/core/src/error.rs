//! Error taxonomy for the Damaris middleware.

use std::fmt;

/// Everything that can go wrong between a client call and the persistency
/// layer.
#[derive(Debug)]
pub enum DamarisError {
    /// Malformed or inconsistent configuration.
    Config(String),
    /// A variable name not declared in the configuration.
    UnknownVariable(String),
    /// An event name with no configured action.
    UnknownEvent(String),
    /// Data size does not match the variable's layout.
    LayoutMismatch {
        variable: String,
        expected: u64,
        actual: u64,
    },
    /// The shared buffer cannot satisfy the reservation.
    Buffer(damaris_shm::AllocError),
    /// Persistency-layer failure.
    Storage(damaris_format::SdfError),
    /// A plugin reported a failure.
    Plugin { plugin: String, message: String },
    /// The runtime is shutting down or already finished.
    Terminated,
    /// A peer rank died; no further messages from it can arrive.
    PeerFailed { rank: usize },
    /// A collective did not complete within the receive window and no dead
    /// peer could be identified (deadlock or silent failure).
    CollectiveTimeout,
    /// The node's dedicated core stopped heartbeating and the respawn
    /// budget (if any) did not produce a new epoch in time.
    EpeUnavailable { node_id: u32, epoch: u32 },
    /// This client's liveness lease was revoked by the dedicated core's
    /// sweeper (the client stalled past the lease window and its resources
    /// were reclaimed); the handle is permanently fenced off the node.
    ClientFenced { client: u32, node_id: u32 },
}

/// Out-of-line constructors for the variants raised on hot paths. The
/// `String` allocation happens only once the call has already failed,
/// behind a `#[cold]` boundary, so `write()`'s fast path stays free of
/// heap operations (enforced by `cargo run -p xtask -- analyze`).
impl DamarisError {
    /// Classifies the error as *permanent storage exhaustion*
    /// (`ENOSPC`/`EDQUOT`/`EROFS`): retrying with backoff cannot fix it —
    /// the persist path escalates to the pressure state machine instead
    /// of spinning out its retry deadline.
    pub fn is_no_space(&self) -> bool {
        match self {
            DamarisError::Storage(e) => damaris_fs::sentinel::is_no_space(e),
            _ => false,
        }
    }

    // ANALYZE: cold — error construction; the call has already failed
    #[cold]
    pub(crate) fn unknown_variable(name: &str) -> Self {
        DamarisError::UnknownVariable(name.to_string())
    }

    // ANALYZE: cold — error construction; the call has already failed
    #[cold]
    pub(crate) fn layout_mismatch(variable: &str, expected: u64, actual: u64) -> Self {
        DamarisError::LayoutMismatch {
            variable: variable.to_string(),
            expected,
            actual,
        }
    }

    /// The caller used `write` on a dynamic variable or `write_dynamic`
    /// on a static one.
    // ANALYZE: cold — error construction; the call has already failed
    #[cold]
    pub(crate) fn wrong_layout_kind(variable: &str, has_dynamic: bool) -> Self {
        let (has, use_instead) = if has_dynamic {
            ("dynamic", "write_dynamic")
        } else {
            ("static", "write")
        };
        DamarisError::Config(format!(
            "variable '{variable}' has a {has} layout; use {use_instead}"
        ))
    }
}

impl fmt::Display for DamarisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DamarisError::Config(m) => write!(f, "damaris config error: {m}"),
            DamarisError::UnknownVariable(v) => {
                write!(f, "variable '{v}' is not declared in the configuration")
            }
            DamarisError::UnknownEvent(e) => {
                write!(f, "event '{e}' has no configured action")
            }
            DamarisError::LayoutMismatch {
                variable,
                expected,
                actual,
            } => write!(
                f,
                "variable '{variable}': layout expects {expected} bytes, got {actual}"
            ),
            DamarisError::Buffer(e) => write!(f, "shared buffer: {e}"),
            DamarisError::Storage(e) => write!(f, "persistency layer: {e}"),
            DamarisError::Plugin { plugin, message } => {
                write!(f, "plugin '{plugin}': {message}")
            }
            DamarisError::Terminated => write!(f, "damaris runtime already terminated"),
            DamarisError::PeerFailed { rank } => {
                write!(f, "peer rank {rank} failed; no further messages can arrive")
            }
            DamarisError::CollectiveTimeout => {
                write!(f, "collective timed out (likely deadlock or silent peer)")
            }
            DamarisError::EpeUnavailable { node_id, epoch } => write!(
                f,
                "node {node_id}: dedicated core unavailable (last epoch {epoch}, \
                 heartbeat stale and no respawn observed)"
            ),
            DamarisError::ClientFenced { client, node_id } => write!(
                f,
                "node {node_id}: client {client} was fenced (liveness lease revoked, \
                 resources reclaimed)"
            ),
        }
    }
}

impl std::error::Error for DamarisError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DamarisError::Buffer(e) => Some(e),
            DamarisError::Storage(e) => Some(e),
            _ => None,
        }
    }
}

impl From<damaris_shm::AllocError> for DamarisError {
    fn from(e: damaris_shm::AllocError) -> Self {
        DamarisError::Buffer(e)
    }
}

impl From<damaris_format::SdfError> for DamarisError {
    fn from(e: damaris_format::SdfError) -> Self {
        DamarisError::Storage(e)
    }
}

impl From<damaris_mpi::RecvError> for DamarisError {
    fn from(e: damaris_mpi::RecvError) -> Self {
        match e {
            damaris_mpi::RecvError::PeerFailed { rank } => DamarisError::PeerFailed { rank },
            damaris_mpi::RecvError::Timeout => DamarisError::CollectiveTimeout,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_name_the_subject() {
        let e = DamarisError::UnknownVariable("wind".into());
        assert!(e.to_string().contains("'wind'"));
        let e = DamarisError::LayoutMismatch {
            variable: "theta".into(),
            expected: 64,
            actual: 32,
        };
        let s = e.to_string();
        assert!(s.contains("theta") && s.contains("64") && s.contains("32"));
    }

    #[test]
    fn no_space_classification() {
        let permanent: DamarisError =
            damaris_format::SdfError::Io(damaris_fs::no_space_error()).into();
        assert!(permanent.is_no_space());
        let transient: DamarisError =
            damaris_format::SdfError::Io(std::io::Error::other("flaky nic")).into();
        assert!(!transient.is_no_space());
        assert!(!DamarisError::Terminated.is_no_space());
    }

    #[test]
    fn conversions() {
        let e: DamarisError = damaris_shm::AllocError::Full.into();
        assert!(matches!(e, DamarisError::Buffer(_)));
        let e: DamarisError = damaris_format::SdfError::Format("x".into()).into();
        assert!(matches!(e, DamarisError::Storage(_)));
        let e: DamarisError = damaris_mpi::RecvError::PeerFailed { rank: 3 }.into();
        assert!(matches!(e, DamarisError::PeerFailed { rank: 3 }));
        let e: DamarisError = damaris_mpi::RecvError::Timeout.into();
        assert!(matches!(e, DamarisError::CollectiveTimeout));
    }

    #[test]
    fn failure_variants_carry_identity() {
        let s = DamarisError::PeerFailed { rank: 7 }.to_string();
        assert!(s.contains("rank 7"));
        let s = DamarisError::EpeUnavailable {
            node_id: 2,
            epoch: 1,
        }
        .to_string();
        assert!(s.contains("node 2") && s.contains("epoch 1"));
        let s = DamarisError::ClientFenced {
            client: 3,
            node_id: 1,
        }
        .to_string();
        assert!(s.contains("client 3") && s.contains("node 1") && s.contains("fenced"));
    }
}
