//! The persistency layer (paper §III-C): writes an iteration's resident
//! variables into one SDF file per node — "gathering data into large
//! files" is where Damaris' throughput advantage comes from.
//!
//! With a codec spec in the binding's `using` attribute (e.g. `"lzss"` or
//! `"precision16|lzss"`), data is compressed inside the dedicated core —
//! invisible to the simulation, unlike client-side compression (§IV-D).

use crate::error::DamarisError;
use crate::plugin::{ActionContext, EventInfo, Plugin};
use damaris_format::DatasetOptions;

/// Writes `/iter-N/rank-S/<variable>` datasets into `node-<id>/iter-N.sdf`.
pub struct PersistPlugin {
    filter: Option<String>,
    /// Compression accounting across the plugin's lifetime.
    logical_bytes: u64,
    stored_bytes: u64,
}

impl PersistPlugin {
    /// `filter`: optional codec pipeline spec for `damaris-compress`.
    pub fn new(filter: Option<String>) -> Self {
        PersistPlugin {
            filter: filter.filter(|f| !f.is_empty()),
            logical_bytes: 0,
            stored_bytes: 0,
        }
    }

    /// Paper-style compression ratio achieved so far (100% = none).
    pub fn ratio_percent(&self) -> f64 {
        damaris_compress::paper_ratio_percent(self.logical_bytes as usize, self.stored_bytes as usize)
    }
}

impl Plugin for PersistPlugin {
    fn name(&self) -> &str {
        "persist"
    }

    fn handle(
        &mut self,
        ctx: &mut ActionContext<'_>,
        event: &EventInfo,
    ) -> Result<(), DamarisError> {
        let iteration = event.iteration;
        let drained = ctx.store.drain_iteration(iteration);
        if drained.is_empty() {
            return Ok(());
        }
        let file_name = format!("node-{}/iter-{:06}.sdf", ctx.node_id, iteration);
        let mut writer = ctx.backend.create_sdf(&file_name)?;
        for var in &drained {
            let path = format!("/iter-{}/rank-{}/{}", iteration, var.key.source, var.name);
            let mut opts = DatasetOptions::plain()
                .with_attr("iteration", i64::from(iteration))
                .with_attr("source", i64::from(var.key.source));
            // Static variable attributes from the configuration (unit, …).
            if let Some(def) = ctx.config.variable(var.key.variable_id) {
                for (k, v) in &def.attrs {
                    opts = opts.with_attr(k.clone(), v.as_str());
                }
            }
            if let Some(filter) = &self.filter {
                opts = opts.with_filter(filter.clone());
            }
            writer.write_dataset_bytes(&path, &var.layout, var.data(), &opts)?;
            self.logical_bytes += var.segment.len() as u64;
        }
        let total = writer.finish()?;
        self.stored_bytes += total;
        ctx.backend.account_bytes(total);
        // Data persisted: shared memory can be reclaimed.
        ctx.release_all(drained);
        Ok(())
    }
}
