//! The persistency layer (paper §III-C): writes an iteration's resident
//! variables into one SDF file per node — "gathering data into large
//! files" is where Damaris' throughput advantage comes from.
//!
//! With a codec spec in the binding's `using` attribute (e.g. `"lzss"` or
//! `"precision16|lzss"`), data is compressed inside the dedicated core —
//! invisible to the simulation, unlike client-side compression (§IV-D).
//!
//! # Failure handling
//!
//! Files go through the crash-consistent `begin_sdf`/`commit_sdf` protocol
//! (tmp file + fsync + atomic rename): a crash mid-persist never publishes
//! a half-written file. Transient storage failures are retried with
//! exponential backoff + jitter under `<resilience persist_retries=…
//! retry_base_ms=… persist_deadline_ms=…>`; when the budget is exhausted
//! the iteration is *degraded* — its data is dropped, the shared memory is
//! released (so clients never deadlock on a sick file system), the event
//! is counted in `NodeReport::iterations_degraded`, and the server loop
//! keeps running.
//!
//! Errors are *classified* before retrying: a permanent out-of-space
//! failure (`ENOSPC`/`EDQUOT`/`EROFS`) is not transient — backing off and
//! trying again just burns the deadline against a disk that will not
//! drain itself. Those degrade the iteration immediately and escalate to
//! the storage-pressure state machine
//! ([`crate::pressure::PressureMachine`]), which pauses compaction and
//! gc's superseded files so space can actually return.

use crate::error::DamarisError;
use crate::node::FaultStats;
use crate::plugin::{ActionContext, EventInfo, Plugin};
use damaris_format::DatasetOptions;
use damaris_obs::EventKind;

/// Writes `/iter-N/rank-S/<variable>` datasets into `node-<id>/iter-N.sdf`.
pub struct PersistPlugin {
    filter: Option<String>,
    /// Compression accounting across the plugin's lifetime.
    logical_bytes: u64,
    stored_bytes: u64,
}

impl PersistPlugin {
    /// `filter`: optional codec pipeline spec for `damaris-compress`.
    pub fn new(filter: Option<String>) -> Self {
        PersistPlugin {
            filter: filter.filter(|f| !f.is_empty()),
            logical_bytes: 0,
            stored_bytes: 0,
        }
    }

    /// Paper-style compression ratio achieved so far (100% = none).
    pub fn ratio_percent(&self) -> f64 {
        damaris_compress::paper_ratio_percent(self.logical_bytes as usize, self.stored_bytes as usize)
    }

    /// One full write-and-commit attempt. On failure nothing is published
    /// (at worst a `*.tmp` is left for recovery/retry to overwrite).
    fn try_persist(
        &self,
        ctx: &ActionContext<'_>,
        iteration: u32,
        drained: &[crate::metadata::StoredVariable],
    ) -> Result<u64, DamarisError> {
        let file_name = format!("node-{}/iter-{:06}.sdf", ctx.node_id, iteration);
        let mut total_bytes = 0u64;
        let t_write = ctx.rec.begin();
        let mut writer = ctx.backend.begin_sdf(&file_name)?;
        for var in drained {
            let path = format!("/iter-{}/rank-{}/{}", iteration, var.key.source, var.name);
            let mut opts = DatasetOptions::plain()
                .with_attr("iteration", i64::from(iteration))
                .with_attr("source", i64::from(var.key.source));
            if let Some(bitmap) = ctx.presence {
                // Partial iteration (fenced clients): mark every dataset so
                // the recovery scan can report which ranks are present.
                opts = opts
                    .with_attr("partial", 1i64)
                    .with_attr("presence_bitmap", bitmap as i64);
            }
            // Static variable attributes from the configuration (unit, …).
            if let Some(def) = ctx.config.variable(var.key.variable_id) {
                for (k, v) in &def.attrs {
                    opts = opts.with_attr(k.clone(), v.as_str());
                }
            }
            if let Some(filter) = &self.filter {
                opts = opts.with_filter(filter.clone());
            }
            writer.write_dataset_bytes(&path, &var.layout, var.data(), &opts)?;
            total_bytes += var.segment.len() as u64;
        }
        ctx.rec
            .end(EventKind::BackendWrite, iteration, total_bytes, t_write);
        // The commit is where the fsync + atomic rename (and therefore the
        // storage-side jitter) lives — timed as its own phase.
        let t_sync = ctx.rec.begin();
        let stored = ctx.backend.commit_sdf(writer)?;
        ctx.rec
            .end(EventKind::BackendFsync, iteration, stored, t_sync);
        // Seal/publish hook for the read tier: announce the committed file
        // in the output manifest so concurrent QueryEngine readers can
        // snapshot it. Best-effort — the data itself is already durable,
        // and a missed publish is healed by the recovery scan's adoption
        // pass, so a manifest hiccup must not degrade the iteration.
        if let Err(e) = damaris_fs::manifest::publish_iteration(
            ctx.backend.root(),
            ctx.node_id,
            iteration,
            &file_name,
            stored,
        ) {
            eprintln!(
                "[damaris node {}] iteration {iteration}: manifest publish failed \
                 (readers lag until recovery adopts the file): {e}",
                ctx.node_id
            );
        }
        Ok(stored)
    }
}

impl Plugin for PersistPlugin {
    fn name(&self) -> &str {
        "persist"
    }

    fn handle(
        &mut self,
        ctx: &mut ActionContext<'_>,
        event: &EventInfo,
    ) -> Result<(), DamarisError> {
        let iteration = event.iteration;
        let all = ctx.store.drain_iteration(iteration);
        if all.is_empty() {
            return Ok(());
        }
        // End-to-end integrity gate: re-compute each segment's CRC-32 and
        // compare it against the checksum the client stamped over its
        // *source* bytes at write time. A mismatch means the shared-memory
        // copy tore (rank killed mid-`memcpy`) or the segment was
        // corrupted in flight — quarantine it (skip persisting, count it,
        // still release the memory) instead of writing garbage to storage.
        let (drained, torn): (Vec<_>, Vec<_>) = all
            .into_iter()
            .partition(|var| damaris_format::crc32(var.data()) == var.data_crc);
        for var in torn {
            FaultStats::bump(&ctx.stats.crc_quarantined);
            eprintln!(
                "[damaris node {}] iteration {iteration} rank {} variable '{}': \
                 segment CRC mismatch — quarantined, not persisted",
                ctx.node_id, var.key.source, var.name
            );
            ctx.release_segment(var.key.source, var.seq, var.segment);
        }
        if drained.is_empty() {
            return Ok(());
        }
        let policy = ctx.config.resilience;
        // All waiting goes through the backend's clock: real time in
        // production, virtual time under test (injected stalls and retry
        // backoff then cost the test no wall time).
        let clock = ctx.backend.clock();
        let deadline = clock.now() + policy.persist_deadline;
        let mut backoff =
            crate::retry::Backoff::new(policy.retry_base, policy.persist_deadline / 4);
        let mut attempt = 0u32;
        loop {
            match self.try_persist(ctx, iteration, &drained) {
                Ok(total) => {
                    for var in &drained {
                        self.logical_bytes += var.segment.len() as u64;
                    }
                    self.stored_bytes += total;
                    ctx.backend.account_bytes(total);
                    break;
                }
                Err(error) => {
                    let permanent = error.is_no_space();
                    if permanent {
                        // Out of space: escalate so the next loop pass
                        // degrades the node (compactor pause + gc) — and
                        // skip the backoff below, which cannot help.
                        ctx.pressure.note_no_space();
                    }
                    let delay = backoff.delay();
                    let budget_left = !permanent
                        && attempt < policy.persist_retries
                        && clock.now() + delay < deadline;
                    if !budget_left {
                        // Degrade rather than abort: the iteration's data
                        // is lost, but the run — and every later
                        // iteration — continues.
                        FaultStats::bump(&ctx.stats.iterations_degraded);
                        if permanent {
                            FaultStats::bump(&ctx.stats.storage_pressure_sheds);
                        }
                        eprintln!(
                            "[damaris node {}] iteration {iteration} degraded: {} persist \
                             failure after {} attempt(s): {error}",
                            ctx.node_id,
                            if permanent { "permanent" } else { "transient" },
                            attempt + 1
                        );
                        break;
                    }
                    attempt += 1;
                    FaultStats::bump(&ctx.stats.persist_retries);
                    let t_retry = ctx.rec.begin();
                    clock.sleep(delay);
                    ctx.rec.end(EventKind::BackendRetry, iteration, 0, t_retry);
                }
            }
        }
        // Persisted or degraded: either way the shared memory is reclaimed
        // so clients can keep producing.
        ctx.release_all(drained);
        Ok(())
    }
}
