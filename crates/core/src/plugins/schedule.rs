//! Data-transfer scheduling (paper §IV-D).
//!
//! "Each dedicated core computes an estimation of the computation time of
//! an iteration from a first run … This time is then divided into as many
//! slots as dedicated cores. Each dedicated core then waits for its slot
//! before writing. This avoids access contention at the level of the file
//! system." — no communication between dedicated cores is required.
//!
//! Bind this action *before* `persist` on the same event:
//!
//! ```xml
//! <event name="end_of_iteration" action="schedule" using="3:48:2000"/>
//! <event name="end_of_iteration" action="persist"/>
//! ```
//!
//! The `using` spec is `slot:count:window_ms` — this node's slot index, the
//! number of dedicated cores, and the estimated compute window.

use crate::error::DamarisError;
use crate::plugin::{ActionContext, EventInfo, Plugin};
use std::time::{Duration, Instant};

/// Delays the current event's processing until this node's slot.
pub struct SchedulePlugin {
    /// This node's slot index.
    pub slot: u32,
    /// Total slots (number of dedicated cores).
    pub count: u32,
    /// Estimated compute window between write phases.
    pub window: Duration,
    /// Iteration currently being timed (slot offsets are relative to the
    /// first event of each iteration).
    phase_start: Option<(u32, Instant)>,
    /// Total time spent waiting (for tests/reports).
    pub waited: Duration,
}

impl SchedulePlugin {
    /// Parses `slot:count:window_ms`.
    pub fn from_spec(spec: &str) -> Result<Self, DamarisError> {
        let parts: Vec<&str> = spec.split(':').collect();
        if parts.len() != 3 {
            return Err(DamarisError::Config(format!(
                "schedule spec must be 'slot:count:window_ms', got '{spec}'"
            )));
        }
        let parse = |s: &str, what: &str| {
            s.trim()
                .parse::<u64>()
                .map_err(|_| DamarisError::Config(format!("schedule: bad {what} '{s}'")))
        };
        let slot = parse(parts[0], "slot")? as u32;
        let count = parse(parts[1], "count")?.max(1) as u32;
        let window_ms = parse(parts[2], "window_ms")?;
        if slot >= count {
            return Err(DamarisError::Config(format!(
                "schedule: slot {slot} out of range for {count} slots"
            )));
        }
        Ok(SchedulePlugin {
            slot,
            count,
            window: Duration::from_millis(window_ms),
            phase_start: None,
            waited: Duration::ZERO,
        })
    }

    /// The offset into the window at which this node may start writing.
    pub fn slot_offset(&self) -> Duration {
        self.window * self.slot / self.count
    }
}

impl Plugin for SchedulePlugin {
    fn name(&self) -> &str {
        "schedule"
    }

    fn handle(
        &mut self,
        _ctx: &mut ActionContext<'_>,
        event: &EventInfo,
    ) -> Result<(), DamarisError> {
        let now = Instant::now();
        let start = match self.phase_start {
            Some((it, t)) if it == event.iteration => t,
            _ => {
                self.phase_start = Some((event.iteration, now));
                now
            }
        };
        let target = start + self.slot_offset();
        if now < target {
            let wait = target - now;
            self.waited += wait;
            std::thread::sleep(wait);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_parsing() {
        let p = SchedulePlugin::from_spec("2:8:4000").unwrap();
        assert_eq!(p.slot, 2);
        assert_eq!(p.count, 8);
        assert_eq!(p.window, Duration::from_millis(4000));
        assert_eq!(p.slot_offset(), Duration::from_millis(1000));
    }

    #[test]
    fn bad_specs_rejected() {
        for bad in ["", "1:2", "a:2:3", "1:b:3", "1:2:c", "5:4:100", "1:2:3:4"] {
            assert!(SchedulePlugin::from_spec(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn slot_zero_never_waits() {
        let p = SchedulePlugin::from_spec("0:16:10000").unwrap();
        assert_eq!(p.slot_offset(), Duration::ZERO);
    }

    #[test]
    fn offsets_partition_the_window() {
        let count = 5;
        let mut prev = Duration::ZERO;
        for slot in 0..count {
            let p = SchedulePlugin::from_spec(&format!("{slot}:{count}:1000")).unwrap();
            assert!(p.slot_offset() >= prev);
            prev = p.slot_offset();
        }
        assert_eq!(prev, Duration::from_millis(800));
    }
}
