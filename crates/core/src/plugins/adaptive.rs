//! Adaptive compression (paper §IV-D): "A potential optimization would be
//! to enable or disable compression at run time depending on the need to
//! reduce write time or storage space."
//!
//! [`AdaptiveCompressPlugin`] wraps the persistency layer and chooses per
//! iteration: if the previous persist (including compression) finished
//! well within the spare-time budget, it keeps (or enables) compression;
//! if persisting starts to eat into the budget, it drops to a cheaper
//! pipeline or to raw writes. The budget is the estimated compute window
//! between write phases, the same quantity the slot scheduler uses.

use crate::error::DamarisError;
use crate::plugin::{ActionContext, EventInfo, Plugin};
use crate::plugins::persist::PersistPlugin;
use std::time::{Duration, Instant};

/// Compression pipelines in decreasing cost/benefit order; the plugin
/// walks down this ladder under time pressure and back up when relaxed.
const LADDER: [&str; 3] = ["precision16|lzss|huff", "lzss|huff", ""];

/// Fraction of the window a persist may take before we back off.
const HIGH_WATER: f64 = 0.5;
/// Fraction under which we try the next stronger pipeline again.
const LOW_WATER: f64 = 0.2;

/// Persistency with runtime-adaptive compression.
pub struct AdaptiveCompressPlugin {
    /// Estimated compute window between write phases.
    window: Duration,
    /// Current rung on [`LADDER`] (0 = strongest).
    rung: usize,
    /// Decisions taken, for reports/tests: (iteration, pipeline).
    pub history: Vec<(u32, &'static str)>,
}

impl AdaptiveCompressPlugin {
    /// `window`: estimated compute time between write phases (the paper's
    /// dedicated cores estimate it from the first iteration).
    pub fn new(window: Duration) -> Self {
        AdaptiveCompressPlugin {
            window,
            rung: 0,
            history: Vec::new(),
        }
    }

    /// Parses the `using` spec: the window in milliseconds.
    pub fn from_spec(spec: &str) -> Result<Self, DamarisError> {
        let ms: u64 = spec.trim().parse().map_err(|_| {
            DamarisError::Config(format!(
                "adaptive-compress: 'using' must be the window in ms, got '{spec}'"
            ))
        })?;
        Ok(Self::new(Duration::from_millis(ms)))
    }

    /// The pipeline currently in use (`""` = no compression).
    pub fn current_pipeline(&self) -> &'static str {
        LADDER[self.rung]
    }
}

impl Plugin for AdaptiveCompressPlugin {
    fn name(&self) -> &str {
        "adaptive-compress"
    }

    fn handle(
        &mut self,
        ctx: &mut ActionContext<'_>,
        event: &EventInfo,
    ) -> Result<(), DamarisError> {
        let spec = LADDER[self.rung];
        self.history.push((event.iteration, spec));
        let mut persist = PersistPlugin::new(if spec.is_empty() {
            None
        } else {
            Some(spec.to_string())
        });
        let t0 = Instant::now();
        persist.handle(ctx, event)?;
        let took = t0.elapsed();

        let share = took.as_secs_f64() / self.window.as_secs_f64().max(1e-9);
        if share > HIGH_WATER && self.rung + 1 < LADDER.len() {
            self.rung += 1; // too slow: cheaper pipeline next time
        } else if share < LOW_WATER && self.rung > 0 {
            self.rung -= 1; // plenty of slack: compress harder
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Config;
    use crate::node::NodeRuntime;
    use crate::plugin::PluginFactory;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn scratch(tag: &str) -> std::path::PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("damaris-adapt-{tag}-{}-{n}", std::process::id()))
    }

    #[test]
    fn spec_parsing() {
        assert!(AdaptiveCompressPlugin::from_spec("250").is_ok());
        assert!(AdaptiveCompressPlugin::from_spec("abc").is_err());
        let p = AdaptiveCompressPlugin::from_spec("1000").unwrap();
        assert_eq!(p.current_pipeline(), "precision16|lzss|huff");
    }

    #[test]
    fn tight_window_backs_off_compression() {
        // A 1 ms window with megabytes to compress: the plugin must step
        // down the ladder within a few iterations.
        let cfg = Config::from_xml(
            r#"<damaris>
                 <buffer size="33554432" allocator="mutex"/>
                 <layout name="grid" type="real" dimensions="262144"/>
                 <variable name="field" layout="grid"/>
                 <event name="end_of_iteration" action="adaptive-compress" using="1"/>
               </damaris>"#,
        )
        .unwrap();
        let dir = scratch("tight");
        let runtime = NodeRuntime::start(cfg, 1, &dir).unwrap();
        let client = &runtime.clients()[0];
        let data: Vec<f32> = (0..262_144).map(|i| (i % 97) as f32).collect();
        for it in 0..4u32 {
            client.write_f32("field", it, &data).unwrap();
            client.end_iteration(it).unwrap();
        }
        let report = runtime.finish().unwrap();
        assert_eq!(report.iterations_persisted, 4);
        // With no slack, later iterations must be stored raw: stored bytes
        // ≥ one full uncompressed iteration.
        assert!(report.bytes_stored >= 262_144 * 4);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn generous_window_keeps_compressing() {
        let cfg = Config::from_xml(
            r#"<damaris>
                 <buffer size="8388608" allocator="mutex"/>
                 <layout name="grid" type="real" dimensions="4096"/>
                 <variable name="field" layout="grid"/>
                 <event name="end_of_iteration" action="adaptive-compress" using="60000"/>
               </damaris>"#,
        )
        .unwrap();
        let dir = scratch("slack");
        let runtime = NodeRuntime::start(cfg, 1, &dir).unwrap();
        let client = &runtime.clients()[0];
        for it in 0..3u32 {
            client.write_f32("field", it, &vec![1.25; 4096]).unwrap();
            client.end_iteration(it).unwrap();
        }
        let report = runtime.finish().unwrap();
        // Constant data through the strongest pipeline: tiny on disk.
        assert!(
            report.bytes_stored < report.bytes_received / 4,
            "stored {} of {}",
            report.bytes_stored,
            report.bytes_received
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn ladder_moves_both_ways() {
        // Drive the controller directly through a custom factory run is
        // overkill; unit-test the hysteresis logic via durations.
        let mut p = AdaptiveCompressPlugin::new(Duration::from_millis(100));
        assert_eq!(p.rung, 0);
        // Simulate: share > HIGH_WATER twice → down two rungs.
        p.rung = 0;
        for _ in 0..2 {
            let share = 0.9;
            if share > HIGH_WATER && p.rung + 1 < LADDER.len() {
                p.rung += 1;
            }
        }
        assert_eq!(p.current_pipeline(), "");
        // Relaxed: back up.
        let share = 0.1;
        if share < LOW_WATER && p.rung > 0 {
            p.rung -= 1;
        }
        assert_eq!(p.current_pipeline(), "lzss|huff");
    }

    #[test]
    fn usable_as_custom_factory() {
        let cfg = Config::from_xml(
            r#"<damaris>
                 <buffer size="1048576"/>
                 <layout name="grid" type="real" dimensions="256"/>
                 <variable name="v" layout="grid"/>
                 <event name="end_of_iteration" action="my-adaptive" using="5000"/>
               </damaris>"#,
        )
        .unwrap();
        let dir = scratch("factory");
        let factory: PluginFactory = Box::new(|binding| {
            Ok(Box::new(AdaptiveCompressPlugin::from_spec(
                binding.using.as_deref().unwrap_or("1000"),
            )?) as Box<dyn Plugin>)
        });
        let runtime =
            NodeRuntime::start_with(cfg, 1, &dir, 0, vec![("my-adaptive".into(), factory)])
                .unwrap();
        let client = &runtime.clients()[0];
        client.write_f32("v", 0, &[2.0; 256]).unwrap();
        client.end_iteration(0).unwrap();
        let report = runtime.finish().unwrap();
        assert_eq!(report.iterations_persisted, 1);
        std::fs::remove_dir_all(&dir).ok();
    }
}
