//! Multi-iteration archiving (paper §V-B): "our approach using dedicated
//! cores in the simulation nodes permits keeping the data longer in memory
//! … and to smartly schedule all data operations and movements."
//!
//! [`ArchivePlugin`] holds iterations resident in shared memory and flushes
//! every `K` completed iterations into **one** SDF archive file — fewer,
//! larger files than per-iteration persistence, at the price of buffer
//! residency (use [`crate::Config::diagnostics`] to size the buffer for
//! `K + 1` in-flight iterations).
//!
//! Bind with the flush interval in `using`:
//!
//! ```xml
//! <event name="end_of_iteration" action="archive" using="10"/>
//! ```

use crate::error::DamarisError;
use crate::plugin::{ActionContext, EventInfo, Plugin};
use damaris_format::DatasetOptions;

/// Persists batches of `every` iterations into one archive file.
pub struct ArchivePlugin {
    /// Flush after this many completed iterations.
    every: u32,
    /// Optional codec pipeline for the archived datasets.
    filter: Option<String>,
    /// Iterations completed since the last flush.
    completed: u32,
    /// Highest iteration seen (names the shutdown archive).
    last_iteration: u32,
    /// Archives written (for reports/tests).
    pub archives_written: u64,
}

impl ArchivePlugin {
    /// New plugin flushing every `every` iterations (≥1).
    pub fn new(every: u32, filter: Option<String>) -> Self {
        ArchivePlugin {
            every: every.max(1),
            filter: filter.filter(|f| !f.is_empty()),
            completed: 0,
            last_iteration: 0,
            archives_written: 0,
        }
    }

    /// Parses the `using` spec: `K` or `K:filter` (e.g. `"10:lzss|huff"`).
    pub fn from_spec(spec: &str) -> Result<Self, DamarisError> {
        let (every, filter) = match spec.split_once(':') {
            Some((k, f)) => (k, Some(f.to_string())),
            None => (spec, None),
        };
        let every: u32 = every.trim().parse().map_err(|_| {
            DamarisError::Config(format!(
                "archive: 'using' must be 'K' or 'K:filter', got '{spec}'"
            ))
        })?;
        if every == 0 {
            return Err(DamarisError::Config("archive: K must be ≥ 1".into()));
        }
        Ok(Self::new(every, filter))
    }

    fn flush(&mut self, ctx: &mut ActionContext<'_>, upto: u32) -> Result<(), DamarisError> {
        let pending = ctx.store.pending_iterations();
        if pending.is_empty() {
            return Ok(());
        }
        let file_name = format!("node-{}/archive-upto-{:06}.sdf", ctx.node_id, upto);
        let mut writer = ctx.backend.create_sdf(&file_name)?;
        let mut to_release = Vec::new();
        for iteration in pending {
            for var in ctx.store.drain_iteration(iteration) {
                let path =
                    format!("/iter-{}/rank-{}/{}", iteration, var.key.source, var.name);
                let mut opts = DatasetOptions::plain()
                    .with_attr("iteration", i64::from(iteration))
                    .with_attr("source", i64::from(var.key.source));
                if let Some(f) = &self.filter {
                    opts = opts.with_filter(f.clone());
                }
                writer.write_dataset_bytes(&path, &var.layout, var.data(), &opts)?;
                to_release.push(var);
            }
        }
        let total = writer.finish()?;
        ctx.backend.account_bytes(total);
        ctx.release_all(to_release);
        self.archives_written += 1;
        self.completed = 0;
        Ok(())
    }
}

impl Plugin for ArchivePlugin {
    fn name(&self) -> &str {
        "archive"
    }

    fn handle(
        &mut self,
        ctx: &mut ActionContext<'_>,
        event: &EventInfo,
    ) -> Result<(), DamarisError> {
        self.completed += 1;
        self.last_iteration = self.last_iteration.max(event.iteration);
        if self.completed >= self.every {
            self.flush(ctx, event.iteration)?;
        }
        // Otherwise: data stays resident in shared memory — the §V-B point.
        Ok(())
    }

    fn finalize(&mut self, ctx: &mut ActionContext<'_>) -> Result<(), DamarisError> {
        // Flush whatever a partial batch still holds.
        self.flush(ctx, self.last_iteration)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Config;
    use crate::node::NodeRuntime;
    use damaris_format::SdfReader;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn scratch(tag: &str) -> std::path::PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("damaris-arch-{tag}-{}-{n}", std::process::id()))
    }

    #[test]
    fn spec_parsing() {
        assert!(ArchivePlugin::from_spec("10").is_ok());
        let p = ArchivePlugin::from_spec("5:lzss|huff").unwrap();
        assert_eq!(p.every, 5);
        assert_eq!(p.filter.as_deref(), Some("lzss|huff"));
        assert!(ArchivePlugin::from_spec("0").is_err());
        assert!(ArchivePlugin::from_spec("x").is_err());
    }

    #[test]
    fn batches_k_iterations_per_file() {
        let cfg = Config::from_xml(
            r#"<damaris>
                 <buffer size="4194304"/>
                 <layout name="grid" type="real" dimensions="256"/>
                 <variable name="v" layout="grid"/>
                 <event name="end_of_iteration" action="archive" using="3"/>
               </damaris>"#,
        )
        .unwrap();
        let dir = scratch("batch");
        let runtime = NodeRuntime::start(cfg, 2, &dir).unwrap();
        let clients = runtime.clients();
        let gate = std::sync::Barrier::new(2);
        std::thread::scope(|s| {
            for client in clients {
                let gate = &gate;
                s.spawn(move || {
                    for it in 0..6u32 {
                        client
                            .write_f32("v", it, &vec![(it * 10 + client.id()) as f32; 256])
                            .unwrap();
                        client.end_iteration(it).unwrap();
                        gate.wait();
                    }
                });
            }
        });
        let report = runtime.finish().unwrap();
        // 6 iterations → 2 archives of 3 iterations each.
        assert_eq!(report.files_created, 2);

        let a = SdfReader::open(dir.join("node-0/archive-upto-000002.sdf")).unwrap();
        assert_eq!(a.len(), 3 * 2); // 3 iterations × 2 clients
        assert_eq!(
            a.read_f32("/iter-1/rank-1/v").unwrap(),
            vec![11.0; 256]
        );
        let b = SdfReader::open(dir.join("node-0/archive-upto-000005.sdf")).unwrap();
        assert_eq!(b.len(), 6);
        assert!(b.info("/iter-5/rank-0/v").is_some());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn terminate_flushes_partial_batch() {
        // A run ending mid-batch must not lose the resident iterations:
        // the server fires end_of_iteration for pending data on Terminate,
        // and the archive flushes whatever is resident.
        let cfg = Config::from_xml(
            r#"<damaris>
                 <buffer size="1048576"/>
                 <layout name="grid" type="real" dimensions="64"/>
                 <variable name="v" layout="grid"/>
                 <event name="end_of_iteration" action="archive" using="10"/>
               </damaris>"#,
        )
        .unwrap();
        let dir = scratch("partial");
        let runtime = NodeRuntime::start(cfg, 1, &dir).unwrap();
        let client = &runtime.clients()[0];
        for it in 0..2u32 {
            client.write_f32("v", it, &vec![it as f32; 64]).unwrap();
            client.end_iteration(it).unwrap();
        }
        // Only 2 of 10 iterations completed; finish() must still persist.
        let report = runtime.finish().unwrap();
        assert!(report.files_created >= 1, "partial batch lost");
        let files: Vec<_> = std::fs::read_dir(dir.join("node-0"))
            .unwrap()
            .map(|e| e.unwrap().file_name().into_string().unwrap())
            .collect();
        assert!(
            files.iter().any(|f| f.starts_with("archive-")),
            "{files:?}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn compressed_archive_roundtrips() {
        let cfg = Config::from_xml(
            r#"<damaris>
                 <buffer size="1048576"/>
                 <layout name="grid" type="real" dimensions="512"/>
                 <variable name="v" layout="grid"/>
                 <event name="end_of_iteration" action="archive" using="2:lzss|huff"/>
               </damaris>"#,
        )
        .unwrap();
        let dir = scratch("comp");
        let runtime = NodeRuntime::start(cfg, 1, &dir).unwrap();
        let client = &runtime.clients()[0];
        for it in 0..2u32 {
            client.write_f32("v", it, &vec![7.5; 512]).unwrap();
            client.end_iteration(it).unwrap();
        }
        let report = runtime.finish().unwrap();
        assert!(report.bytes_stored < report.bytes_received);
        let a = SdfReader::open(dir.join("node-0/archive-upto-000001.sdf")).unwrap();
        assert_eq!(a.read_f32("/iter-0/rank-0/v").unwrap(), vec![7.5; 512]);
        assert_eq!(a.read_f32("/iter-1/rank-0/v").unwrap(), vec![7.5; 512]);
        std::fs::remove_dir_all(&dir).ok();
    }
}
