//! Built-in actions for the EPE (paper §III-C, §IV-D).
//!
//! | action name  | plugin                            | `using` parameter            |
//! |--------------|-----------------------------------|------------------------------|
//! | `persist`           | [`persist::PersistPlugin`]          | optional codec spec     |
//! | `stats`             | [`stats::StatsPlugin`]              | —                       |
//! | `schedule`          | [`schedule::SchedulePlugin`]        | `slot:count:window_ms`  |
//! | `visualize`         | [`visualize::VisualizePlugin`]      | —                       |
//! | `adaptive-compress` | [`adaptive::AdaptiveCompressPlugin`]| window in ms            |
//! | `archive`           | [`archive::ArchivePlugin`]          | `K` or `K:filter`       |
//! | `log`               | [`LogPlugin`]                       | —                       |

pub mod adaptive;
pub mod archive;
pub mod persist;
pub mod schedule;
pub mod stats;
pub mod visualize;

use crate::config::ActionBinding;
use crate::error::DamarisError;
use crate::plugin::{ActionContext, EventInfo, Plugin};

/// Resolves a built-in action name.
pub fn builtin(binding: &ActionBinding) -> Result<Box<dyn Plugin>, DamarisError> {
    match binding.action.as_str() {
        "archive" => Ok(Box::new(archive::ArchivePlugin::from_spec(
            binding.using.as_deref().unwrap_or("1"),
        )?)),
        "persist" => Ok(Box::new(persist::PersistPlugin::new(
            binding.using.clone(),
        ))),
        "stats" => Ok(Box::new(stats::StatsPlugin::new())),
        "schedule" => Ok(Box::new(schedule::SchedulePlugin::from_spec(
            binding.using.as_deref().unwrap_or(""),
        )?)),
        "visualize" => Ok(Box::new(visualize::VisualizePlugin::new())),
        "adaptive-compress" => Ok(Box::new(adaptive::AdaptiveCompressPlugin::from_spec(
            binding.using.as_deref().unwrap_or("1000"),
        )?)),
        "log" => Ok(Box::new(LogPlugin)),
        other => Err(DamarisError::Config(format!(
            "unknown action '{other}' (event '{}')",
            binding.event
        ))),
    }
}

/// Prints event occurrences to stderr — handy while wiring up a new
/// simulation.
pub struct LogPlugin;

impl Plugin for LogPlugin {
    fn name(&self) -> &str {
        "log"
    }

    fn handle(
        &mut self,
        ctx: &mut ActionContext<'_>,
        event: &EventInfo,
    ) -> Result<(), DamarisError> {
        eprintln!(
            "[damaris node {}] event '{}' it={} src={} ({} resident entries)",
            ctx.node_id,
            event.name,
            event.iteration,
            event.source,
            ctx.store.len()
        );
        Ok(())
    }
}
