//! Inline statistics — an example of the paper's "smart actions" on
//! enriched datasets (§III-A): because the dedicated core knows each
//! dataset's name, layout and type, it can compute scientific summaries
//! (min/max/mean per variable) without touching the simulation.
//!
//! Statistics are written as a small `stats-iter-N.sdf` file next to the
//! data, one `[min, max, mean]` triple per (variable, source).

use crate::error::DamarisError;
use crate::plugin::{ActionContext, EventInfo, Plugin};
use damaris_format::{DataType, DatasetOptions, Layout};

/// Computes per-variable min/max/mean on the event's iteration.
///
/// Non-consuming: data stays resident for a later persist action (so a
/// `stats` binding can precede `persist` on the same event).
#[derive(Default)]
pub struct StatsPlugin {
    iterations_processed: u64,
}

impl StatsPlugin {
    /// New stateless stats plugin.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Summary of one dataset.
pub fn summarize(dtype: DataType, bytes: &[u8]) -> Option<[f64; 3]> {
    let values: Vec<f64> = match dtype {
        DataType::F32 => bytes
            .chunks_exact(4)
            .map(|c| f64::from(f32::from_le_bytes([c[0], c[1], c[2], c[3]])))
            .collect(),
        DataType::F64 => bytes
            .chunks_exact(8)
            // invariant: chunks_exact(8) yields exactly 8-byte slices.
            .map(|c| f64::from_le_bytes(c.try_into().expect("8 bytes")))
            .collect(),
        DataType::I32 => bytes
            .chunks_exact(4)
            .map(|c| f64::from(i32::from_le_bytes([c[0], c[1], c[2], c[3]])))
            .collect(),
        DataType::I64 => bytes
            .chunks_exact(8)
            // invariant: chunks_exact(8) yields exactly 8-byte slices.
            .map(|c| i64::from_le_bytes(c.try_into().expect("8 bytes")) as f64)
            .collect(),
        DataType::U8 => bytes.iter().map(|&b| f64::from(b)).collect(),
    };
    if values.is_empty() {
        return None;
    }
    let mut min = f64::MAX;
    let mut max = f64::MIN;
    let mut sum = 0.0;
    for v in &values {
        min = min.min(*v);
        max = max.max(*v);
        sum += v;
    }
    Some([min, max, sum / values.len() as f64])
}

impl Plugin for StatsPlugin {
    fn name(&self) -> &str {
        "stats"
    }

    fn handle(
        &mut self,
        ctx: &mut ActionContext<'_>,
        event: &EventInfo,
    ) -> Result<(), DamarisError> {
        let iteration = event.iteration;
        let mut rows: Vec<(String, [f64; 3])> = Vec::new();
        for var in ctx.store.iteration_entries(iteration) {
            if let Some(stats) = summarize(var.layout.dtype, var.data()) {
                rows.push((
                    format!("/iter-{}/rank-{}/{}.stats", iteration, var.key.source, var.name),
                    stats,
                ));
            }
        }
        if rows.is_empty() {
            return Ok(());
        }
        self.iterations_processed += 1;
        let file = format!("node-{}/stats-iter-{:06}.sdf", ctx.node_id, iteration);
        let mut writer = ctx.backend.create_sdf(&file)?;
        let layout = Layout::new(DataType::F64, &[3]);
        for (path, stats) in rows {
            writer.write_dataset_bytes(
                &path,
                &layout,
                &stats.iter().flat_map(|v| v.to_le_bytes()).collect::<Vec<u8>>(),
                &DatasetOptions::plain(),
            )?;
        }
        let total = writer.finish()?;
        ctx.backend.account_bytes(total);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summarize_f32() {
        let bytes: Vec<u8> = [1.0f32, -2.0, 4.0]
            .iter()
            .flat_map(|v| v.to_le_bytes())
            .collect();
        let [min, max, mean] = summarize(DataType::F32, &bytes).unwrap();
        assert_eq!(min, -2.0);
        assert_eq!(max, 4.0);
        assert!((mean - 1.0).abs() < 1e-12);
    }

    #[test]
    fn summarize_integer_types() {
        let bytes: Vec<u8> = [10i32, -5, 7].iter().flat_map(|v| v.to_le_bytes()).collect();
        let [min, max, _] = summarize(DataType::I32, &bytes).unwrap();
        assert_eq!((min, max), (-5.0, 10.0));
        let [min, max, mean] = summarize(DataType::U8, &[0, 255, 1]).unwrap();
        assert_eq!((min, max), (0.0, 255.0));
        assert!((mean - 256.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn summarize_empty_is_none() {
        assert!(summarize(DataType::F64, &[]).is_none());
    }
}
