//! Inline visualization (paper §VI, future work): "a tight coupling
//! between running simulations and visualization engines, enabling direct
//! access to data by visualization engines (through the I/O cores) while
//! the simulation is running … efficient inline visualization without
//! blocking the simulation."
//!
//! This plugin renders each 3D variable of an iteration into a 2D
//! maximum-intensity projection along the slowest axis, normalized to
//! 8-bit grayscale, and writes it both as a portable graymap (`.pgm`,
//! viewable anywhere) and as a U8 dataset in a preview SDF file. All work
//! happens on the dedicated core — the simulation never waits.

use crate::error::DamarisError;
use crate::plugin::{ActionContext, EventInfo, Plugin};
use damaris_format::{DataType, DatasetOptions, Layout};

/// Renders max-intensity projections of every f32 variable it sees.
#[derive(Default)]
pub struct VisualizePlugin {
    frames_rendered: u64,
}

impl VisualizePlugin {
    /// New renderer.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Projects a row-major array of shape `dims` (rank ≥ 2, f32) along axis 0
/// and maps it to 8-bit grayscale. Returns `(width, height, pixels)`.
pub fn project_max(dims: &[u64], values: &[f32]) -> Option<(usize, usize, Vec<u8>)> {
    if dims.len() < 2 {
        return None;
    }
    let depth = dims[0] as usize;
    let height = dims[1] as usize;
    let width: usize = dims[2..].iter().product::<u64>().max(1) as usize;
    let plane = height * width;
    if depth == 0 || plane == 0 || values.len() != depth * plane {
        return None;
    }
    let mut maxes = vec![f32::NEG_INFINITY; plane];
    for d in 0..depth {
        let slab = &values[d * plane..(d + 1) * plane];
        for (m, &v) in maxes.iter_mut().zip(slab) {
            if v > *m {
                *m = v;
            }
        }
    }
    let lo = maxes.iter().cloned().fold(f32::INFINITY, f32::min);
    let hi = maxes.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    let scale = if hi > lo { 255.0 / (hi - lo) } else { 0.0 };
    let pixels = maxes
        .iter()
        .map(|&v| ((v - lo) * scale).round().clamp(0.0, 255.0) as u8)
        .collect();
    Some((width, height, pixels))
}

/// Encodes 8-bit grayscale pixels as a binary PGM (P5) image.
pub fn encode_pgm(width: usize, height: usize, pixels: &[u8]) -> Vec<u8> {
    assert_eq!(pixels.len(), width * height);
    let mut out = format!("P5\n{width} {height}\n255\n").into_bytes();
    out.extend_from_slice(pixels);
    out
}

impl Plugin for VisualizePlugin {
    fn name(&self) -> &str {
        "visualize"
    }

    fn handle(
        &mut self,
        ctx: &mut ActionContext<'_>,
        event: &EventInfo,
    ) -> Result<(), DamarisError> {
        let iteration = event.iteration;
        let mut previews: Vec<(String, usize, usize, Vec<u8>)> = Vec::new();
        for var in ctx.store.iteration_entries(iteration) {
            if var.layout.dtype != DataType::F32 || var.layout.rank() < 2 {
                continue;
            }
            let values: Vec<f32> = var
                .data()
                .chunks_exact(4)
                .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
                .collect();
            if let Some((w, h, pixels)) = project_max(&var.layout.dims, &values) {
                previews.push((
                    format!("rank-{}-{}", var.key.source, var.name),
                    w,
                    h,
                    pixels,
                ));
            }
        }
        if previews.is_empty() {
            return Ok(());
        }
        self.frames_rendered += previews.len() as u64;

        // PGM images (one per preview) + one preview SDF file.
        let sdf_name = format!("node-{}/preview-iter-{:06}.sdf", ctx.node_id, iteration);
        let mut writer = ctx.backend.create_sdf(&sdf_name)?;
        for (tag, w, h, pixels) in &previews {
            let pgm = encode_pgm(*w, *h, pixels);
            let path = ctx.backend.path_of(&format!(
                "node-{}/preview-iter-{:06}-{}.pgm",
                ctx.node_id, iteration, tag
            ));
            if let Some(parent) = path.parent() {
                std::fs::create_dir_all(parent).map_err(damaris_format::SdfError::Io)?;
            }
            std::fs::write(&path, &pgm).map_err(damaris_format::SdfError::Io)?;
            ctx.backend.account_bytes(pgm.len() as u64);

            let layout = Layout::new(DataType::U8, &[*h as u64, *w as u64]);
            writer.write_dataset_bytes(
                &format!("/iter-{iteration}/{tag}"),
                &layout,
                pixels,
                &DatasetOptions::plain().with_attr("projection", "max-z"),
            )?;
        }
        let total = writer.finish()?;
        ctx.backend.account_bytes(total);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn projection_takes_max_along_axis0() {
        // 2×2×3: depth 2; max of the two slabs element-wise.
        let values = vec![
            1.0, 2.0, 3.0, 4.0, 5.0, 6.0, // slab 0
            6.0, 5.0, 4.0, 3.0, 2.0, 1.0, // slab 1
        ];
        let (w, h, pixels) = project_max(&[2, 2, 3], &values).unwrap();
        assert_eq!((w, h), (3, 2));
        // Max field = [6,5,4,4,5,6] → normalized: 4→0, 6→255, 5→128.
        assert_eq!(pixels, vec![255, 128, 0, 0, 128, 255]);
    }

    #[test]
    fn constant_field_renders_black() {
        let values = vec![7.0; 8];
        let (_, _, pixels) = project_max(&[2, 2, 2], &values).unwrap();
        assert!(pixels.iter().all(|&p| p == 0));
    }

    #[test]
    fn invalid_shapes_rejected() {
        assert!(project_max(&[4], &[0.0; 4]).is_none());
        assert!(project_max(&[2, 2], &[0.0; 3]).is_none());
        assert!(project_max(&[0, 2], &[]).is_none());
    }

    #[test]
    fn pgm_header() {
        let img = encode_pgm(3, 2, &[0, 1, 2, 3, 4, 5]);
        assert!(img.starts_with(b"P5\n3 2\n255\n"));
        assert_eq!(img.len(), 11 + 6);
    }
}
