//! Bounded exponential backoff with jitter, shared by the client's
//! buffer-full path and the persist plugin's storage retries.
//!
//! Jitter matters here for the same reason it matters in any fan-in system:
//! every client of a node hits a full buffer at the same moment (they run
//! the same simulation step), and synchronized retries would re-collide.
//! The jitter source is `RandomState` (std's per-process SipHash keys) —
//! no dependency, not cryptographic, good enough to decorrelate threads.

use std::hash::{BuildHasher, Hasher};
use std::time::Duration;

/// An exponential backoff sequence: `base`, `2·base`, `4·base`, … capped at
/// `cap`, each step with up to +50% jitter.
#[derive(Debug)]
pub(crate) struct Backoff {
    next: Duration,
    cap: Duration,
    attempt: u32,
}

impl Backoff {
    pub(crate) fn new(base: Duration, cap: Duration) -> Self {
        Backoff {
            next: base.max(Duration::from_micros(1)),
            cap,
            attempt: 0,
        }
    }

    /// The next delay to sleep (advances the sequence).
    pub(crate) fn delay(&mut self) -> Duration {
        let step = self.next.min(self.cap);
        self.next = (self.next * 2).min(self.cap);
        self.attempt += 1;
        step + jitter(step / 2, self.attempt)
    }
}

/// Uniform-ish jitter in `[0, max]`, decorrelated across threads/attempts.
fn jitter(max: Duration, attempt: u32) -> Duration {
    let nanos = max.as_nanos() as u64;
    if nanos == 0 {
        return Duration::ZERO;
    }
    let mut h = std::collections::hash_map::RandomState::new().build_hasher();
    h.write_u32(attempt);
    Duration::from_nanos(h.finish() % (nanos + 1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn doubles_and_caps() {
        let base = Duration::from_millis(10);
        let cap = Duration::from_millis(35);
        let mut b = Backoff::new(base, cap);
        let d0 = b.delay();
        assert!(d0 >= base && d0 <= base + base / 2, "{d0:?}");
        let d1 = b.delay();
        assert!(d1 >= 2 * base && d1 <= 3 * base, "{d1:?}");
        // From here the schedule is capped (plus at most 50% jitter).
        for _ in 0..5 {
            let d = b.delay();
            assert!(d >= cap && d <= cap + cap / 2, "{d:?}");
        }
    }

    #[test]
    fn zero_jitter_for_tiny_steps() {
        assert_eq!(jitter(Duration::ZERO, 3), Duration::ZERO);
        let mut b = Backoff::new(Duration::from_nanos(1), Duration::from_nanos(1));
        assert!(b.delay() <= Duration::from_nanos(2));
    }
}
