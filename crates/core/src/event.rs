//! Events flowing through the node's shared queue (paper §III-B).
//!
//! A write-notification carries the shared-memory [`Segment`] itself: the
//! queue's release/acquire handoff is exactly what makes the zero-copy
//! transfer sound (the client's writes happen-before the server's reads).
//!
//! Every client-originated event also carries the sequence number assigned
//! by the node's write-ahead [`crate::journal::EventJournal`]. The journal
//! entry is appended *before* the queue push, so a restarted dedicated
//! core can replay events the dead one never finished, and reject the
//! stale queue copies when they eventually pop (`claim` arbitration).

use damaris_shm::Segment;

/// One message from a client to the dedicated core.
pub enum Event {
    /// A variable instance was written to shared memory.
    Write {
        /// Declaration-order id of the variable (name lives in the config,
        /// "only data is sent together with the minimal descriptor").
        variable_id: u32,
        /// Simulation step.
        iteration: u32,
        /// Client id within the node (the paper's `source`).
        source: u32,
        /// The reserved segment containing the payload.
        segment: Segment,
        /// Per-write shape for dynamic variables (particle arrays, §III-D);
        /// `None` for statically-declared layouts.
        dynamic_layout: Option<damaris_format::Layout>,
        /// Write-ahead journal sequence number.
        seq: u64,
        /// CRC-32 the client computed over its source bytes before the
        /// `memcpy`; the persist plugin re-computes it over the segment to
        /// quarantine torn shm writes end-to-end.
        data_crc: u32,
    },
    /// A user-defined event (`df_signal`).
    User {
        /// Event name — small and infrequent, so sending the name itself
        /// keeps the API simple (the configuration holds the bindings).
        name: String,
        iteration: u32,
        source: u32,
        /// Write-ahead journal sequence number.
        seq: u64,
    },
    /// The client finished an iteration; when every client of the node has
    /// sent this, iteration-scoped actions fire.
    EndIteration {
        iteration: u32,
        source: u32,
        /// Write-ahead journal sequence number.
        seq: u64,
    },
    /// A client abandoned an allocated-but-never-committed region: the
    /// segment travels to the dedicated core, which releases it in FIFO
    /// order at the owning iteration's flush (clients must never release
    /// shared memory themselves — partition reclamation is single-consumer).
    Abandon {
        iteration: u32,
        source: u32,
        segment: Segment,
        /// Write-ahead journal sequence number.
        seq: u64,
    },
    /// The runtime is shutting down; the server drains and exits.
    Terminate,
}

impl Event {
    /// The journal sequence number, if this event kind is journaled.
    pub fn seq(&self) -> Option<u64> {
        match self {
            Event::Write { seq, .. }
            | Event::User { seq, .. }
            | Event::EndIteration { seq, .. }
            | Event::Abandon { seq, .. } => Some(*seq),
            Event::Terminate => None,
        }
    }
}

impl std::fmt::Debug for Event {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Event::Write {
                variable_id,
                iteration,
                source,
                segment,
                seq,
                ..
            } => write!(
                f,
                "Write{{var={variable_id}, it={iteration}, src={source}, seq={seq}, {segment:?}}}"
            ),
            Event::User {
                name,
                iteration,
                source,
                seq,
            } => write!(f, "User{{'{name}', it={iteration}, src={source}, seq={seq}}}"),
            Event::EndIteration {
                iteration,
                source,
                seq,
            } => {
                write!(f, "EndIteration{{it={iteration}, src={source}, seq={seq}}}")
            }
            Event::Abandon {
                iteration,
                source,
                segment,
                seq,
            } => write!(
                f,
                "Abandon{{it={iteration}, src={source}, seq={seq}, {segment:?}}}"
            ),
            Event::Terminate => write!(f, "Terminate"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use damaris_shm::MutexAllocator;

    #[test]
    fn events_traverse_the_shared_queue() {
        let alloc = MutexAllocator::with_capacity(1024);
        let queue = damaris_shm::MpscQueue::<Event>::new(8);
        let mut seg = alloc.allocate(16).unwrap();
        seg.copy_from_slice(&[7u8; 16]);
        queue
            .push(Event::Write {
                variable_id: 3,
                iteration: 1,
                source: 0,
                segment: seg,
                dynamic_layout: None,
                seq: 0,
                data_crc: damaris_format::crc32(&[7u8; 16]),
            })
            .ok()
            .unwrap();
        queue
            .push(Event::User {
                name: "snapshot".into(),
                iteration: 1,
                source: 0,
                seq: 1,
            })
            .ok()
            .unwrap();
        match queue.pop().unwrap() {
            Event::Write {
                variable_id,
                segment,
                ..
            } => {
                assert_eq!(variable_id, 3);
                assert_eq!(segment.as_slice(), &[7u8; 16]);
                alloc.release(segment);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(matches!(queue.pop().unwrap(), Event::User { .. }));
    }

    #[test]
    fn debug_formatting() {
        let e = Event::EndIteration {
            iteration: 4,
            source: 2,
            seq: 9,
        };
        assert_eq!(format!("{e:?}"), "EndIteration{it=4, src=2, seq=9}");
        assert_eq!(format!("{:?}", Event::Terminate), "Terminate");
        assert_eq!(e.seq(), Some(9));
        assert_eq!(Event::Terminate.seq(), None);
    }
}
