//! The cross-process Damaris node: real OS processes over a file-backed
//! shared mapping.
//!
//! The threaded node ([`crate::NodeRuntime`]) simulates the paper's
//! dedicated core as a thread; this module runs it the way the original
//! Damaris did — as **separate processes** sharing POSIX shared memory:
//!
//! * [`run_epe`] — the dedicated-core process: creates (or, respawned,
//!   re-adopts) the `/dev/shm` mapping, sweeps orphans, binds the UDS
//!   control plane, drains commits through a file-backed WAL, verifies
//!   end-to-end CRCs, persists SDF iterations, sweeps client leases on
//!   the machine-wide monotonic clock, and releases ring segments.
//! * [`run_client`] — a compute-core process: maps the file, reserves
//!   ring segments, memcpys, commits over the socket, and survives EPE
//!   death by reconnecting to the respawned incarnation and re-sending
//!   its unacknowledged state.
//! * [`launcher`] — the supervisor: spawns both as children of one
//!   launcher binary, delivers `kill -9` chaos at configured phases,
//!   respawns a dead EPE with a bumped epoch, and audits the mapping for
//!   leaked bytes after the run.
//!
//! The kill matrix is configured through environment variables so the
//! *victim process itself* raises `SIGKILL` at the exact protocol phase
//! under test (after reserve, mid-memcpy, after commit) — a real
//! uncatchable kill, placed deterministically. `DAMARIS_KILL_RANK`,
//! `DAMARIS_KILL_PHASE` (`alloc|memcpy|postcommit`), `DAMARIS_KILL_ITER`
//! select the client kill; `DAMARIS_KILL_EPE_AFTER` kills the EPE after
//! draining that many commits (mid-drain).

pub mod client;
pub mod epe;
pub mod launcher;
pub mod wal;

pub use client::{run_client, ClientOptions, ClientReport};
pub use epe::{run_epe, EpeOptions, EpeReport};
pub use launcher::{launch, LaunchPlan, LaunchReport};
pub use wal::{ProcWal, WalRecord};

use damaris_mpi::ClientKillPhase;
use std::io;

/// Environment variable selecting a process role when the launcher
/// re-execs itself (`epe` or `client`).
pub const ENV_ROLE: &str = "DAMARIS_PROC_ROLE";
/// Client rank (role `client`).
pub const ENV_RANK: &str = "DAMARIS_PROC_RANK";
/// Rank to `kill -9` (client kill matrix).
pub const ENV_KILL_RANK: &str = "DAMARIS_KILL_RANK";
/// Phase at which the victim rank kills itself.
pub const ENV_KILL_PHASE: &str = "DAMARIS_KILL_PHASE";
/// Iteration at which the victim rank kills itself.
pub const ENV_KILL_ITER: &str = "DAMARIS_KILL_ITER";
/// Commits the EPE drains before killing itself mid-drain.
pub const ENV_KILL_EPE_AFTER: &str = "DAMARIS_KILL_EPE_AFTER";
/// Run directory shared by every process of a supervised run.
pub const ENV_DIR: &str = "DAMARIS_PROC_DIR";
/// Client process count.
pub const ENV_CLIENTS: &str = "DAMARIS_PROC_CLIENTS";
/// Iterations to run.
pub const ENV_ITERS: &str = "DAMARIS_PROC_ITERS";
/// Variables per iteration per client.
pub const ENV_VARS: &str = "DAMARIS_PROC_VARS";
/// Payload bytes per variable.
pub const ENV_PAYLOAD: &str = "DAMARIS_PROC_PAYLOAD";
/// Mapping data-window bytes.
pub const ENV_CAPACITY: &str = "DAMARIS_PROC_CAPACITY";
/// Client-failure policy (`wait|partial|drop-iteration`).
pub const ENV_POLICY: &str = "DAMARIS_PROC_POLICY";
/// Lease staleness bound in milliseconds.
pub const ENV_LEASE_MS: &str = "DAMARIS_PROC_LEASE_MS";
/// EPE incarnation number (0 = first boot, >0 = respawn).
pub const ENV_EPOCH: &str = "DAMARIS_PROC_EPOCH";

fn env_parse<T: std::str::FromStr>(key: &str) -> io::Result<T> {
    std::env::var(key)
        .map_err(|_| io::Error::other(format!("{key} not set")))?
        .parse()
        .map_err(|_| io::Error::other(format!("{key} malformed")))
}

/// A client-side hard-kill instruction: `rank` raises `SIGKILL` on
/// itself at `phase` of `iteration`. Parsed from the environment the
/// launcher set up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClientKillSpec {
    /// The victim rank.
    pub rank: u32,
    /// Protocol phase at which to die.
    pub phase: ClientKillPhase,
    /// Iteration at which to die.
    pub iteration: u32,
}

impl ClientKillSpec {
    /// Reads the kill spec from the environment; `None` when no kill is
    /// configured (or the spec is malformed — chaos config errors must
    /// not take down a production client).
    pub fn from_env() -> Option<ClientKillSpec> {
        let rank: u32 = std::env::var(ENV_KILL_RANK).ok()?.parse().ok()?;
        let phase = match std::env::var(ENV_KILL_PHASE).ok()?.as_str() {
            "alloc" => ClientKillPhase::Alloc,
            "memcpy" => ClientKillPhase::Memcpy,
            "postcommit" => ClientKillPhase::PostCommit,
            _ => return None,
        };
        let iteration: u32 = std::env::var(ENV_KILL_ITER).ok()?.parse().ok()?;
        Some(ClientKillSpec {
            rank,
            phase,
            iteration,
        })
    }

    /// True when this process (`rank`) should die at `phase` of
    /// `iteration`.
    pub fn fires(&self, rank: u32, iteration: u32, phase: ClientKillPhase) -> bool {
        self.rank == rank && self.iteration == iteration && self.phase == phase
    }

    /// The `DAMARIS_KILL_PHASE` value for `phase` (launcher side).
    pub fn phase_str(phase: ClientKillPhase) -> &'static str {
        match phase {
            ClientKillPhase::Alloc => "alloc",
            ClientKillPhase::Memcpy => "memcpy",
            ClientKillPhase::PostCommit => "postcommit",
        }
    }
}

/// Reads the EPE mid-drain kill counter from the environment.
pub fn epe_kill_after_from_env() -> Option<u64> {
    std::env::var(ENV_KILL_EPE_AFTER).ok()?.parse().ok()
}

/// Name of the node's mapping file inside the run directory. The GC
/// sweep matches on the `damaris-node` prefix.
pub const MAPPING_FILE: &str = "damaris-node.shm";
/// Name of the control-plane socket inside the run directory.
pub const SOCKET_FILE: &str = "damaris-ctrl.sock";
/// Name of the EPE's write-ahead journal inside the run directory.
pub const WAL_FILE: &str = "epe.wal";
/// Subdirectory SDF output lands in.
pub const OUT_DIR: &str = "out";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kill_spec_fires_only_on_exact_match() {
        let spec = ClientKillSpec {
            rank: 1,
            phase: ClientKillPhase::Memcpy,
            iteration: 2,
        };
        assert!(spec.fires(1, 2, ClientKillPhase::Memcpy));
        assert!(!spec.fires(0, 2, ClientKillPhase::Memcpy));
        assert!(!spec.fires(1, 1, ClientKillPhase::Memcpy));
        assert!(!spec.fires(1, 2, ClientKillPhase::Alloc));
    }

    #[test]
    fn phase_strings_cover_every_phase() {
        for (phase, s) in [
            (ClientKillPhase::Alloc, "alloc"),
            (ClientKillPhase::Memcpy, "memcpy"),
            (ClientKillPhase::PostCommit, "postcommit"),
        ] {
            assert_eq!(ClientKillSpec::phase_str(phase), s);
        }
    }
}
