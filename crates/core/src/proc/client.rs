//! A compute-core process: the paper's client API run against the
//! file-backed mapping and the UDS control plane.
//!
//! Per iteration the client reserves a ring segment per variable (the
//! lock-free partitioned scheme — a handful of atomics on mapped words),
//! memcpys its data, stamps a CRC, sends `Commit` (shm coordinates only:
//! the data plane never touches the socket), then fences the iteration
//! with `EndIteration` and waits for the EPE's `Ack`.
//!
//! ## Surviving the EPE
//!
//! The EPE can be `kill -9`'d at any moment. The client notices through
//! two signals — the socket erroring and the mapped heartbeat's
//! `beat_at_ns` going stale on the machine-wide monotonic clock — then
//! reconnects to the respawned incarnation (same socket path, bumped
//! epoch in the `Welcome`) and re-sends every commit of the
//! unacknowledged iteration plus its `EndIteration`. The respawned EPE
//! deduplicates against its WAL, so re-sends are safe.
//!
//! ## Dying itself
//!
//! The kill matrix runs *in* the victim: [`super::ClientKillSpec`] makes
//! this process raise `SIGKILL` on itself right after a reserve
//! (`alloc`), halfway through the memcpy (`memcpy`), or right after the
//! commit frame is written (`postcommit`) — a real uncatchable death at
//! a deterministic protocol point, whose cleanup burden falls entirely
//! on the EPE's lease sweep.

use super::ClientKillSpec;
use damaris_mpi::{connect_client, ClientKillPhase, CtrlMsg, FaultPlan, UdsConn};
use damaris_shm::sync::Ordering;
use damaris_shm::{monotonic_now_ns, AllocError, MappedNode};
use std::io;
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Everything one client process needs to run.
#[derive(Debug, Clone)]
pub struct ClientOptions {
    /// Run directory (mapping + socket live here).
    pub dir: PathBuf,
    /// This client's rank.
    pub rank: u32,
    /// Total client count (the EPE's control-plane rank is `n_clients`).
    pub n_clients: usize,
    /// Iterations to run.
    pub iterations: u32,
    /// Variables written per iteration.
    pub variables: u32,
    /// Payload bytes per variable.
    pub payload_len: usize,
    /// Lease/heartbeat staleness bound (same value the EPE sweeps with).
    pub lease_timeout: Duration,
    /// Chaos: die at a configured phase (only fires on the matching rank).
    pub kill: Option<ClientKillSpec>,
}

impl ClientOptions {
    /// Rebuilds the options a launcher exported into the environment.
    pub fn from_env() -> io::Result<ClientOptions> {
        let dir = std::env::var_os(super::ENV_DIR)
            .ok_or_else(|| io::Error::other("DAMARIS_PROC_DIR not set"))?;
        Ok(ClientOptions {
            dir: PathBuf::from(dir),
            rank: super::env_parse(super::ENV_RANK)?,
            n_clients: super::env_parse(super::ENV_CLIENTS)?,
            iterations: super::env_parse(super::ENV_ITERS)?,
            variables: super::env_parse(super::ENV_VARS)?,
            payload_len: super::env_parse(super::ENV_PAYLOAD)?,
            lease_timeout: Duration::from_millis(super::env_parse(super::ENV_LEASE_MS)?),
            kill: ClientKillSpec::from_env(),
        })
    }
}

/// What the client process accomplished (written to its exit status and
/// useful in in-process tests).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ClientReport {
    /// Iterations acknowledged by the EPE.
    pub iterations_acked: u64,
    /// Commits re-sent after an EPE respawn.
    pub commits_resent: u64,
    /// EPE epochs this client talked to (≥2 means it survived a respawn).
    pub epochs_seen: Vec<u32>,
}

/// Deterministic payload so the EPE side (and tests reading the SDF
/// output) can verify bytes end-to-end without a side channel.
pub fn payload_for(rank: u32, iteration: u32, variable: u32, len: usize) -> Vec<u8> {
    let seed = rank
        .wrapping_mul(31)
        .wrapping_add(iteration.wrapping_mul(7))
        .wrapping_add(variable.wrapping_mul(131)) as u8;
    (0..len).map(|i| seed.wrapping_add(i as u8)).collect()
}

/// One in-flight commit, kept client-side until its iteration is acked
/// so it can be re-sent to a respawned EPE.
#[derive(Debug, Clone, Copy)]
struct Inflight {
    variable: u32,
    offset: u64,
    len: u64,
    crc: u32,
}

struct Ctl {
    conn: UdsConn,
    epoch: u32,
}

fn connect(opts: &ClientOptions, deadline: Duration) -> io::Result<Ctl> {
    let (conn, epoch) = connect_client(
        &opts.dir.join(super::SOCKET_FILE),
        opts.rank as usize,
        damaris_shm::this_pid(),
        opts.n_clients,
        &FaultPlan::new(),
        deadline,
    )?;
    conn.set_recv_timeout(Some(Duration::from_millis(20)))?;
    Ok(Ctl { conn, epoch })
}

/// True when the EPE's heartbeat stamp is stale on the machine-wide
/// clock — the cross-process liveness check (no process-private anchor).
fn heartbeat_stale(node: &MappedNode, timeout: Duration) -> bool {
    // Acquire pairs with the EPE's Release stamp after each beat.
    let beat_at = node.beat_at_ns().load(Ordering::Acquire);
    monotonic_now_ns().saturating_sub(beat_at) > timeout.as_nanos() as u64
}

/// Runs one client process to completion.
pub fn run_client(opts: &ClientOptions) -> io::Result<ClientReport> {
    let mut report = ClientReport::default();
    let mapping_path = opts.dir.join(super::MAPPING_FILE);

    // The EPE creates the mapping; wait for a valid header to appear.
    let start = Instant::now();
    let node = loop {
        match MappedNode::open(&mapping_path) {
            Ok(n) => break n,
            Err(_) if start.elapsed() < Duration::from_secs(20) => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(e) => return Err(e),
        }
    };
    let buffer = node.buffer();
    let rank = opts.rank as usize;
    let mut ctl = connect(opts, Duration::from_secs(20))?;
    report.epochs_seen.push(ctl.epoch);

    for it in 0..opts.iterations {
        let mut inflight: Vec<Inflight> = Vec::new();
        for var in 0..opts.variables {
            renew(opts, &node)?;
            let payload = payload_for(opts.rank, it, var, opts.payload_len);

            // Reserve, spinning on Full like the paper's clients block on
            // a full buffer. The EPE frees space as it persists.
            let reserve_start = Instant::now();
            let mut seg = loop {
                match node.reserve(&buffer, rank, payload.len()) {
                    Ok(seg) => break seg,
                    Err(AllocError::Full) => {
                        renew(opts, &node)?;
                        if heartbeat_stale(&node, opts.lease_timeout)
                            && reserve_start.elapsed() > Duration::from_secs(20)
                        {
                            return Err(io::Error::other("buffer full and EPE dead"));
                        }
                        std::thread::sleep(Duration::from_millis(1));
                    }
                    Err(e) => return Err(io::Error::other(format!("reserve: {e}"))),
                }
            };

            let kill = opts
                .kill
                .filter(|k| var == 0 && k.fires(opts.rank, it, k.phase));
            if kill.is_some_and(|k| k.phase == ClientKillPhase::Alloc) {
                // Die owning a reservation nobody will ever commit: the
                // lease sweep must reclaim it.
                damaris_shm::kill_self_hard();
            }

            if kill.is_some_and(|k| k.phase == ClientKillPhase::Memcpy) {
                // Die mid-copy: the ring holds a half-written segment.
                seg.as_mut_slice()[..payload.len() / 2]
                    .copy_from_slice(&payload[..payload.len() / 2]);
                damaris_shm::kill_self_hard();
            }
            seg.copy_from_slice(&payload);
            let crc = damaris_format::crc32(&payload);
            let commit = Inflight {
                variable: var,
                offset: seg.offset() as u64,
                len: seg.len() as u64,
                crc,
            };
            // The client-side mirror of the segment can go now — ring
            // accounting lives in the mapping and is released by the EPE.
            drop(seg);

            send_with_reconnect(
                opts,
                &node,
                &mut ctl,
                &mut report,
                &inflight,
                it,
                &CtrlMsg::Commit {
                    rank: opts.rank,
                    iteration: it,
                    variable: commit.variable,
                    offset: commit.offset,
                    len: commit.len,
                    crc: commit.crc,
                },
            )?;
            inflight.push(commit);

            if kill.is_some_and(|k| k.phase == ClientKillPhase::PostCommit) {
                // Die with the commit on the wire (or in the dead EPE's
                // socket buffer): journal + lease must sort it out.
                damaris_shm::kill_self_hard();
            }
        }

        send_with_reconnect(
            opts,
            &node,
            &mut ctl,
            &mut report,
            &inflight,
            it,
            &CtrlMsg::EndIteration {
                rank: opts.rank,
                iteration: it,
            },
        )?;
        if wait_for_ack(opts, &node, &mut ctl, &mut report, &inflight, it)? {
            report.iterations_acked += 1;
        } else {
            break; // Shutdown before the Ack (e.g. wait-policy drain)
        }
    }
    Ok(report)
}

/// Sends `msg`, transparently reconnecting to a respawned EPE (and
/// re-sending this iteration's in-flight state) on failure.
fn send_with_reconnect(
    opts: &ClientOptions,
    node: &MappedNode,
    ctl: &mut Ctl,
    report: &mut ClientReport,
    inflight: &[Inflight],
    it: u32,
    msg: &CtrlMsg,
) -> io::Result<()> {
    if ctl.conn.send(msg).is_ok() {
        return Ok(());
    }
    reconnect_and_resend(opts, node, ctl, report, inflight, it)?;
    ctl.conn.send(msg)
}

/// Reconnects after an EPE death and re-sends every unacknowledged
/// commit of iteration `it` (the WAL dedups on the other side).
fn reconnect_and_resend(
    opts: &ClientOptions,
    node: &MappedNode,
    ctl: &mut Ctl,
    report: &mut ClientReport,
    inflight: &[Inflight],
    it: u32,
) -> io::Result<()> {
    // Reconnect budget: generous, because the supervisor needs to notice
    // the death and respawn, and the new EPE replays its WAL first.
    let mut fresh = connect(opts, Duration::from_secs(20))?;
    if fresh.epoch != ctl.epoch {
        report.epochs_seen.push(fresh.epoch);
    }
    for c in inflight {
        fresh.conn.send(&CtrlMsg::Commit {
            rank: opts.rank,
            iteration: it,
            variable: c.variable,
            offset: c.offset,
            len: c.len,
            crc: c.crc,
        })?;
        report.commits_resent += 1;
    }
    let _ = node; // liveness is implied by the successful reconnect
    *ctl = fresh;
    Ok(())
}

/// Waits for `Ack { it }`, riding out EPE deaths. Returns `false` if the
/// EPE shut down without acknowledging (wait-policy drain).
fn wait_for_ack(
    opts: &ClientOptions,
    node: &MappedNode,
    ctl: &mut Ctl,
    report: &mut ClientReport,
    inflight: &[Inflight],
    it: u32,
) -> io::Result<bool> {
    let start = Instant::now();
    loop {
        match ctl.conn.recv() {
            Ok(CtrlMsg::Ack { iteration }) if iteration == it => return Ok(true),
            Ok(CtrlMsg::Shutdown) => return Ok(false),
            // Older acks, epoch announcements, anything else: keep waiting.
            Ok(_) => {}
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock
                    || e.kind() == io::ErrorKind::TimedOut =>
            {
                renew(opts, node)?;
                if heartbeat_stale(node, opts.lease_timeout) {
                    // EPE looks dead: reconnect (blocks until the
                    // supervisor respawns it) and re-send the iteration.
                    reconnect_and_resend(opts, node, ctl, report, inflight, it)?;
                    ctl.conn.send(&CtrlMsg::EndIteration {
                        rank: opts.rank,
                        iteration: it,
                    })?;
                }
                if start.elapsed() > Duration::from_secs(60) {
                    return Err(io::Error::other(format!("no ack for iteration {it}")));
                }
            }
            Err(_) => {
                // Socket died under us: same recovery as staleness.
                reconnect_and_resend(opts, node, ctl, report, inflight, it)?;
                ctl.conn.send(&CtrlMsg::EndIteration {
                    rank: opts.rank,
                    iteration: it,
                })?;
            }
        }
    }
}

/// Lease renew + stamp: every client API touchpoint renews, and the
/// stamp is on the machine-wide clock the sweeper reads.
fn renew(opts: &ClientOptions, node: &MappedNode) -> io::Result<()> {
    let rank = opts.rank as usize;
    if !node.lease(rank).renew() {
        // Revoked: the sweeper fenced us (a false positive on a very
        // slow rank). Per protocol we must stop touching the buffer.
        return Err(io::Error::other("lease revoked: this rank is fenced"));
    }
    // Release pairs with the sweeper's Acquire staleness load.
    node.renewed_at_ns(rank)
        .store(monotonic_now_ns(), Ordering::Release);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payloads_are_deterministic_and_distinct() {
        let a = payload_for(0, 1, 2, 64);
        let b = payload_for(0, 1, 2, 64);
        assert_eq!(a, b);
        assert_ne!(a, payload_for(1, 1, 2, 64));
        assert_ne!(a, payload_for(0, 2, 2, 64));
        assert_ne!(a, payload_for(0, 1, 3, 64));
    }
}
