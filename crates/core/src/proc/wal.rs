//! File-backed write-ahead log for the cross-process EPE.
//!
//! The in-process node journals client notifications in memory
//! ([`crate::journal::EventJournal`]) because a respawned server *thread*
//! shares the dying thread's address space. A respawned EPE *process*
//! shares nothing but the filesystem and the shm mapping, so its journal
//! must live in a file. Every `Commit` moves through three durable
//! states, each its own appended record:
//!
//! 1. **pending** — appended before the EPE acts on the commit,
//! 2. **applied** — the segment's bytes have been persisted (or
//!    quarantined/dropped by policy),
//! 3. **released** — the segment's ring bytes have been returned.
//!
//! Splitting *applied* from *released* is what makes `kill -9` recovery
//! unambiguous: a record that is pending still owns its segment (safe to
//! re-verify, re-persist, and release); a record that is applied but not
//! released owns ring bytes that were persisted but never returned (safe
//! to release, must not re-persist); a released record is fully done.
//! Without the split, a crash between persist and release could lead a
//! replayer to double-release a ring position — corrupting the ring
//! accounting — or to leak the bytes forever.
//!
//! A fourth record kind, **iteration-done**, marks an iteration fully
//! resolved (persisted, partial-persisted, or dropped by policy), so a
//! respawned EPE can re-acknowledge clients that never saw the `Ack`.
//!
//! ## Record format
//!
//! `[u32 len][u32 crc][payload]`, little-endian, `crc` over the payload:
//!
//! ```text
//! u64 seq, u8 kind,
//! kind 0 (pending):   u32 rank, u32 iteration, u32 variable,
//!                     u64 offset, u64 len, u32 data_crc
//! kind 1 (applied):   —
//! kind 2 (released):  —
//! kind 3 (iter done): u32 iteration
//! ```
//!
//! A torn tail (partial record from a crash mid-append) fails the length
//! or CRC check and ends the scan — everything before it is intact, which
//! is all crash consistency requires.

use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

const KIND_PENDING: u8 = 0;
const KIND_APPLIED: u8 = 1;
const KIND_RELEASED: u8 = 2;
const KIND_ITER_DONE: u8 = 3;
/// Payload bytes for a pending record: seq + kind + commit fields.
const PENDING_PAYLOAD: usize = 8 + 1 + 4 + 4 + 4 + 8 + 8 + 4;
/// Payload bytes for an applied/released marker: seq + kind.
const MARKER_PAYLOAD: usize = 8 + 1;
/// Payload bytes for an iteration-done record: seq + kind + iteration.
const ITER_DONE_PAYLOAD: usize = 8 + 1 + 4;

/// One journalled commit: the shm coordinates and CRC of a client write,
/// exactly what a respawned EPE needs to re-verify and re-persist it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalRecord {
    /// Journal sequence number (assigned at append, monotonic per file).
    pub seq: u64,
    /// Client rank that committed the write.
    pub rank: u32,
    /// Simulation iteration the write belongs to.
    pub iteration: u32,
    /// Variable index within the iteration.
    pub variable: u32,
    /// Segment offset within the mapping's data window.
    pub offset: u64,
    /// Segment length in bytes.
    pub len: u64,
    /// Client-computed CRC-32 of the segment bytes.
    pub data_crc: u32,
}

/// Where an incomplete record stopped in the pending → applied →
/// released progression.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WalState {
    /// Appended, never acted on: the segment is still owned and intact.
    Pending,
    /// Persisted but its ring bytes were never released.
    Applied,
}

/// Everything a respawned EPE learns from scanning the journal.
#[derive(Debug, Default)]
pub struct WalReplay {
    /// Incomplete records in append (= per-client FIFO) order.
    pub records: Vec<(WalRecord, WalState)>,
    /// Iterations marked fully resolved — re-acknowledge, never redo.
    pub done_iterations: Vec<u32>,
    /// Every `(rank, iteration, variable)` ever logged, for deduplicating
    /// commits clients re-send after reconnecting to a new incarnation.
    pub seen_commits: Vec<(u32, u32, u32)>,
}

fn encode_pending(rec: &WalRecord) -> [u8; PENDING_PAYLOAD] {
    let mut p = [0u8; PENDING_PAYLOAD];
    p[0..8].copy_from_slice(&rec.seq.to_le_bytes());
    p[8] = KIND_PENDING;
    p[9..13].copy_from_slice(&rec.rank.to_le_bytes());
    p[13..17].copy_from_slice(&rec.iteration.to_le_bytes());
    p[17..21].copy_from_slice(&rec.variable.to_le_bytes());
    p[21..29].copy_from_slice(&rec.offset.to_le_bytes());
    p[29..37].copy_from_slice(&rec.len.to_le_bytes());
    p[37..41].copy_from_slice(&rec.data_crc.to_le_bytes());
    p
}

fn u32_at(buf: &[u8], at: usize) -> u32 {
    // invariant: callers slice within a length-checked payload.
    u32::from_le_bytes(buf[at..at + 4].try_into().expect("4 bytes"))
}

fn u64_at(buf: &[u8], at: usize) -> u64 {
    // invariant: callers slice within a length-checked payload.
    u64::from_le_bytes(buf[at..at + 8].try_into().expect("8 bytes"))
}

/// The EPE's on-disk journal. One per node directory; survives any number
/// of EPE incarnations and is replayed on open.
#[derive(Debug)]
pub struct ProcWal {
    file: File,
    path: PathBuf,
    next_seq: u64,
    /// Incomplete (not yet released) records by seq.
    live: BTreeMap<u64, (WalRecord, WalState)>,
}

impl ProcWal {
    /// Opens (creating if absent) the journal at `path` and scans it.
    pub fn open(path: &Path) -> io::Result<(ProcWal, WalReplay)> {
        let mut file = OpenOptions::new()
            .read(true)
            .create(true)
            .append(true)
            .open(path)?;
        let mut bytes = Vec::new();
        file.seek(SeekFrom::Start(0))?;
        file.read_to_end(&mut bytes)?;

        let mut live: BTreeMap<u64, (WalRecord, WalState)> = BTreeMap::new();
        let mut replay = WalReplay::default();
        let mut next_seq = 0u64;
        let mut at = 0usize;
        let mut intact_end = 0usize;
        while at + 8 <= bytes.len() {
            let len = u32_at(&bytes, at) as usize;
            let crc = u32_at(&bytes, at + 4);
            let body_at = at + 8;
            if !(MARKER_PAYLOAD..=PENDING_PAYLOAD).contains(&len) || body_at + len > bytes.len() {
                break; // torn tail: a crash interrupted the last append
            }
            let payload = &bytes[body_at..body_at + len];
            if damaris_format::crc32(payload) != crc {
                break; // torn tail (partial write of the last record)
            }
            let seq = u64_at(payload, 0);
            match payload[8] {
                KIND_PENDING if len == PENDING_PAYLOAD => {
                    let rec = WalRecord {
                        seq,
                        rank: u32_at(payload, 9),
                        iteration: u32_at(payload, 13),
                        variable: u32_at(payload, 17),
                        offset: u64_at(payload, 21),
                        len: u64_at(payload, 29),
                        data_crc: u32_at(payload, 37),
                    };
                    replay.seen_commits.push((rec.rank, rec.iteration, rec.variable));
                    live.insert(seq, (rec, WalState::Pending));
                }
                KIND_APPLIED if len == MARKER_PAYLOAD => {
                    if let Some(entry) = live.get_mut(&seq) {
                        entry.1 = WalState::Applied;
                    }
                }
                KIND_RELEASED if len == MARKER_PAYLOAD => {
                    live.remove(&seq);
                }
                KIND_ITER_DONE if len == ITER_DONE_PAYLOAD => {
                    replay.done_iterations.push(u32_at(payload, 9));
                }
                // An unknown kind with a valid CRC is version skew, not a
                // torn tail; skip the record but keep scanning.
                _ => {}
            }
            next_seq = next_seq.max(seq + 1);
            at = body_at + len;
            intact_end = at;
        }
        // Drop the torn tail so the next append starts on a record
        // boundary (append mode writes at EOF).
        if intact_end < bytes.len() {
            file.set_len(intact_end as u64)?;
            file.seek(SeekFrom::End(0))?;
        }

        replay.records = live.values().copied().collect();
        Ok((
            ProcWal {
                file,
                path: path.to_path_buf(),
                next_seq,
                live,
            },
            replay,
        ))
    }

    fn append(&mut self, payload: &[u8]) -> io::Result<()> {
        let mut frame = Vec::with_capacity(payload.len() + 8);
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&damaris_format::crc32(payload).to_le_bytes());
        frame.extend_from_slice(payload);
        self.file.write_all(&frame)?;
        self.file.sync_data()
    }

    fn append_marker(&mut self, seq: u64, kind: u8) -> io::Result<()> {
        let mut p = [0u8; MARKER_PAYLOAD];
        p[0..8].copy_from_slice(&seq.to_le_bytes());
        p[8] = kind;
        self.append(&p)
    }

    /// Appends a pending commit record, durably, before the EPE acts on
    /// it. Returns the assigned seq.
    pub fn append_pending(&mut self, mut rec: WalRecord) -> io::Result<u64> {
        rec.seq = self.next_seq;
        self.next_seq += 1;
        self.append(&encode_pending(&rec))?;
        self.live.insert(rec.seq, (rec, WalState::Pending));
        Ok(rec.seq)
    }

    /// Marks `seq` applied: its bytes were persisted (or dropped by
    /// policy/quarantine), but its ring bytes are still held.
    pub fn mark_applied(&mut self, seq: u64) -> io::Result<()> {
        self.append_marker(seq, KIND_APPLIED)?;
        if let Some(entry) = self.live.get_mut(&seq) {
            entry.1 = WalState::Applied;
        }
        Ok(())
    }

    /// Marks `seq` released: its ring bytes were returned (by FIFO
    /// release or by a fence-time reclaim). The record is complete.
    pub fn mark_released(&mut self, seq: u64) -> io::Result<()> {
        self.append_marker(seq, KIND_RELEASED)?;
        self.live.remove(&seq);
        Ok(())
    }

    /// Marks `iteration` fully resolved, so a future incarnation can
    /// re-acknowledge it instead of redoing it.
    pub fn mark_iteration_done(&mut self, iteration: u32) -> io::Result<()> {
        let seq = self.next_seq;
        self.next_seq += 1;
        let mut p = [0u8; ITER_DONE_PAYLOAD];
        p[0..8].copy_from_slice(&seq.to_le_bytes());
        p[8] = KIND_ITER_DONE;
        p[9..13].copy_from_slice(&iteration.to_le_bytes());
        self.append(&p)
    }

    /// Records currently incomplete (pending or applied).
    pub fn live_len(&self) -> usize {
        self.live.len()
    }

    /// The journal file path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("damaris-wal-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("{name}-{}.wal", std::process::id()));
        let _ = std::fs::remove_file(&path);
        path
    }

    fn rec(rank: u32, iteration: u32, variable: u32) -> WalRecord {
        WalRecord {
            seq: 0,
            rank,
            iteration,
            variable,
            offset: 4096 + u64::from(rank) * 128,
            len: 96,
            data_crc: 0xABCD_0000 | rank,
        }
    }

    #[test]
    fn state_progression_round_trips_across_reopens() {
        let path = tmp("roundtrip");
        let (mut wal, replay) = ProcWal::open(&path).unwrap();
        assert!(replay.records.is_empty());
        let a = wal.append_pending(rec(0, 1, 0)).unwrap();
        let b = wal.append_pending(rec(1, 1, 0)).unwrap();
        let c = wal.append_pending(rec(2, 1, 0)).unwrap();
        // a: fully done. b: persisted, crash before release. c: untouched.
        wal.mark_applied(a).unwrap();
        wal.mark_released(a).unwrap();
        wal.mark_applied(b).unwrap();
        wal.mark_iteration_done(0).unwrap();
        assert_eq!(wal.live_len(), 2);
        drop(wal);

        let (mut wal, replay) = ProcWal::open(&path).unwrap();
        assert_eq!(
            replay
                .records
                .iter()
                .map(|(r, s)| (r.seq, *s))
                .collect::<Vec<_>>(),
            vec![(b, WalState::Applied), (c, WalState::Pending)]
        );
        assert_eq!(replay.done_iterations, vec![0]);
        // Dedup info covers every commit ever logged, even released ones.
        assert_eq!(
            replay.seen_commits,
            vec![(0, 1, 0), (1, 1, 0), (2, 1, 0)]
        );
        wal.mark_released(b).unwrap();
        wal.mark_applied(c).unwrap();
        wal.mark_released(c).unwrap();
        drop(wal);

        let (wal, replay) = ProcWal::open(&path).unwrap();
        assert!(replay.records.is_empty());
        // Seqs keep rising across incarnations — replayed commits never
        // collide with new ones.
        assert!(wal.next_seq >= 4);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_tail_is_discarded_not_fatal() {
        let path = tmp("torn");
        let (mut wal, _) = ProcWal::open(&path).unwrap();
        wal.append_pending(rec(0, 0, 0)).unwrap();
        wal.append_pending(rec(1, 0, 0)).unwrap();
        drop(wal);

        // Simulate a crash mid-append: truncate into the last record.
        let len = std::fs::metadata(&path).unwrap().len();
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(len - 5).unwrap();
        drop(f);

        let (mut wal, replay) = ProcWal::open(&path).unwrap();
        assert_eq!(replay.records.len(), 1, "intact prefix survives");
        assert_eq!(replay.records[0].0.rank, 0);
        // The file is usable again: appends land on a record boundary.
        let c = wal.append_pending(rec(2, 0, 0)).unwrap();
        drop(wal);
        let (_, replay) = ProcWal::open(&path).unwrap();
        let ranks: Vec<u32> = replay.records.iter().map(|(r, _)| r.rank).collect();
        assert_eq!(ranks, vec![0, 2]);
        assert_eq!(replay.records[1].0.seq, c);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corrupt_record_ends_the_scan() {
        let path = tmp("corrupt");
        let (mut wal, _) = ProcWal::open(&path).unwrap();
        wal.append_pending(rec(0, 0, 0)).unwrap();
        let boundary = std::fs::metadata(&path).unwrap().len();
        wal.append_pending(rec(1, 0, 0)).unwrap();
        drop(wal);

        // Flip a payload byte of the second record: its CRC now fails.
        let mut bytes = std::fs::read(&path).unwrap();
        let idx = boundary as usize + 12;
        bytes[idx] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();

        let (_, replay) = ProcWal::open(&path).unwrap();
        assert_eq!(replay.records.len(), 1);
        assert_eq!(replay.records[0].0.rank, 0);
        std::fs::remove_file(&path).unwrap();
    }
}
