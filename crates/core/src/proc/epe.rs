//! The dedicated-core process: Damaris's event processing engine running
//! as its own OS process over the file-backed mapping.
//!
//! Lifecycle of one incarnation:
//!
//! 1. Sweep the run directory for orphaned mappings from dead prior runs
//!    ([`damaris_shm::scan_orphans`]).
//! 2. Create the mapping (first incarnation) or re-adopt it (respawn):
//!    re-stamp the creator pid, bump the heartbeat epoch, and restart
//!    every live lease's staleness clock so clients are not fenced for
//!    *our* downtime.
//! 3. Replay the WAL: applied-but-unreleased records get their ring
//!    bytes returned; pending records are re-adopted into their
//!    iteration as if the commit just arrived.
//! 4. Serve: drain `Commit`/`EndIteration` frames, WAL-append each
//!    commit pending *before* acting on it, resolve iterations in order
//!    (full, partial with a presence bitmap, or dropped, per the
//!    configured [`OnClientFailure`] policy), verify each segment's
//!    end-to-end CRC at persist time, release ring bytes, acknowledge.
//! 5. Sweep leases on the machine-wide monotonic clock: a rank whose
//!    `renewed_at_ns` stalls past the lease timeout is revoked (the
//!    model-checked CAS arbitration — a concurrent renew wins), its
//!    unpersisted commits discarded, and its whole ring reclaimed.
//!
//! The mid-drain kill (`DAMARIS_KILL_EPE_AFTER`) raises `SIGKILL` right
//! after a commit's pending record is durable and before anything is
//! applied — the worst spot: the next incarnation must recover the
//! commit from the WAL + mapping alone.

use crate::config::OnClientFailure;
use crate::proc::wal::{ProcWal, WalRecord, WalState};
use damaris_format::{crc32, DataType, DatasetOptions, Layout};
use damaris_fs::LocalDirBackend;
use damaris_mpi::{CtrlMsg, FaultPlan, UdsConn, UdsHub};
use damaris_shm::sync::Ordering;
use damaris_shm::{monotonic_now_ns, scan_orphans, MappedNode};
use std::collections::{BTreeMap, BTreeSet, HashSet};
use std::io;
use std::path::{Path, PathBuf};
use std::time::Duration;

/// Everything one EPE incarnation needs to run.
#[derive(Debug, Clone)]
pub struct EpeOptions {
    /// Run directory: mapping, socket, WAL, reports, and `out/` live here.
    pub dir: PathBuf,
    /// Number of client ranks.
    pub n_clients: usize,
    /// Iterations the run executes.
    pub iterations: u32,
    /// Data-window bytes of the mapping (split into per-client rings).
    pub data_capacity: usize,
    /// Incarnation number: 0 creates the mapping, >0 re-adopts it.
    pub epoch: u32,
    /// What to do when a client dies mid-iteration.
    pub policy: OnClientFailure,
    /// Lease staleness bound on the machine-wide monotonic clock.
    pub lease_timeout: Duration,
    /// Chaos: raise `SIGKILL` on ourselves after draining this many
    /// commits (mid-drain, pending record durable, nothing applied).
    pub kill_after_commits: Option<u64>,
}

impl EpeOptions {
    /// Rebuilds the options a launcher exported into the environment.
    pub fn from_env() -> io::Result<EpeOptions> {
        let dir = std::env::var_os(super::ENV_DIR)
            .ok_or_else(|| io::Error::other("DAMARIS_PROC_DIR not set"))?;
        Ok(EpeOptions {
            dir: PathBuf::from(dir),
            n_clients: super::env_parse(super::ENV_CLIENTS)?,
            iterations: super::env_parse(super::ENV_ITERS)?,
            data_capacity: super::env_parse(super::ENV_CAPACITY)?,
            epoch: super::env_parse(super::ENV_EPOCH)?,
            policy: super::launcher::policy_from_str(
                &std::env::var(super::ENV_POLICY).unwrap_or_default(),
            ),
            lease_timeout: Duration::from_millis(super::env_parse(super::ENV_LEASE_MS)?),
            kill_after_commits: super::epe_kill_after_from_env(),
        })
    }
}

/// One incarnation's accounting, also written to
/// `epe-report-<epoch>.txt` as `key=value` lines for the launcher.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EpeReport {
    /// Incarnation number this report belongs to.
    pub epoch: u32,
    /// Iterations persisted (full or partial).
    pub iterations_persisted: u64,
    /// Iterations persisted with a presence bitmap (some ranks fenced).
    pub partial_iterations: u64,
    /// Iterations discarded whole under the `drop-iteration` policy.
    pub iterations_dropped: u64,
    /// Iterations abandoned unresolved at shutdown (`wait` policy).
    pub iterations_degraded: u64,
    /// Commit frames accepted and WAL-journalled.
    pub commits_drained: u64,
    /// Segments excluded from persist because the mapping bytes no
    /// longer matched the client's CRC.
    pub crc_rejected: u64,
    /// Client leases revoked by the sweeper.
    pub leases_revoked: u64,
    /// Ring bytes reclaimed from fenced clients (incl. padding).
    pub bytes_reclaimed: u64,
    /// WAL records recovered by this incarnation (replayed or released).
    pub events_replayed: u64,
    /// Re-sent commits deduplicated against the WAL history.
    pub stale_commits_rejected: u64,
    /// Orphaned mapping files unlinked by the startup sweep.
    pub orphans_removed: u64,
    /// Unrecognizable mapping files quarantined by the startup sweep.
    pub orphans_quarantined: u64,
}

impl EpeReport {
    fn fields(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("epoch", u64::from(self.epoch)),
            ("iterations_persisted", self.iterations_persisted),
            ("partial_iterations", self.partial_iterations),
            ("iterations_dropped", self.iterations_dropped),
            ("iterations_degraded", self.iterations_degraded),
            ("commits_drained", self.commits_drained),
            ("crc_rejected", self.crc_rejected),
            ("leases_revoked", self.leases_revoked),
            ("bytes_reclaimed", self.bytes_reclaimed),
            ("events_replayed", self.events_replayed),
            ("stale_commits_rejected", self.stale_commits_rejected),
            ("orphans_removed", self.orphans_removed),
            ("orphans_quarantined", self.orphans_quarantined),
        ]
    }

    /// Writes the report as `key=value` lines.
    pub fn write_to(&self, path: &Path) -> io::Result<()> {
        let mut out = String::new();
        for (k, v) in self.fields() {
            out.push_str(&format!("{k}={v}\n"));
        }
        std::fs::write(path, out)
    }

    /// Parses a report written by [`EpeReport::write_to`].
    pub fn read_from(path: &Path) -> io::Result<EpeReport> {
        let text = std::fs::read_to_string(path)?;
        let mut map = BTreeMap::new();
        for line in text.lines() {
            if let Some((k, v)) = line.split_once('=') {
                if let Ok(n) = v.trim().parse::<u64>() {
                    map.insert(k.trim().to_string(), n);
                }
            }
        }
        let get = |k: &str| map.get(k).copied().unwrap_or(0);
        Ok(EpeReport {
            epoch: get("epoch") as u32,
            iterations_persisted: get("iterations_persisted"),
            partial_iterations: get("partial_iterations"),
            iterations_dropped: get("iterations_dropped"),
            iterations_degraded: get("iterations_degraded"),
            commits_drained: get("commits_drained"),
            crc_rejected: get("crc_rejected"),
            leases_revoked: get("leases_revoked"),
            bytes_reclaimed: get("bytes_reclaimed"),
            events_replayed: get("events_replayed"),
            stale_commits_rejected: get("stale_commits_rejected"),
            orphans_removed: get("orphans_removed"),
            orphans_quarantined: get("orphans_quarantined"),
        })
    }
}

/// Per-iteration accumulation: commits keyed `(rank, variable)` (sorted,
/// so SDF dataset order is deterministic) plus the set of ranks that
/// fenced the iteration with `EndIteration`.
#[derive(Debug, Default)]
struct IterState {
    commits: BTreeMap<(u32, u32), WalRecord>,
    ended: BTreeSet<u32>,
}

/// The EPE's in-memory mirror of the run — rebuilt from the WAL on every
/// incarnation; nothing here is load-bearing across a crash.
#[derive(Debug, Default)]
struct RunState {
    iters: BTreeMap<u32, IterState>,
    /// Every commit key ever journalled — dedups client re-sends.
    seen: HashSet<(u32, u32, u32)>,
    /// Iterations fully resolved (persisted/partial/dropped).
    done: BTreeSet<u32>,
    /// Ranks fenced (lease revoked, ring reclaimed).
    fenced: BTreeSet<usize>,
    /// Ranks that sent `EndIteration` for the final iteration.
    complete: BTreeSet<usize>,
}

impl RunState {
    fn adopt(&mut self, rec: WalRecord) {
        self.seen.insert((rec.rank, rec.iteration, rec.variable));
        self.iters
            .entry(rec.iteration)
            .or_default()
            .commits
            .insert((rec.rank, rec.variable), rec);
    }

    /// Removes and returns every unresolved commit of `rank`.
    fn remove_rank_commits(&mut self, rank: u32) -> Vec<WalRecord> {
        let mut out = Vec::new();
        for iter in self.iters.values_mut() {
            let keys: Vec<(u32, u32)> = iter
                .commits
                .keys()
                .filter(|(r, _)| *r == rank)
                .copied()
                .collect();
            for k in keys {
                if let Some(rec) = iter.commits.remove(&k) {
                    out.push(rec);
                }
            }
        }
        out
    }
}

fn beat(node: &MappedNode) {
    node.heartbeat().beat();
    // Release: dates the beat on the shared clock; clients Acquire-load
    // it to compute staleness without a process-private anchor.
    node.beat_at_ns()
        .store(monotonic_now_ns(), Ordering::Release);
}

/// Runs one EPE incarnation to completion. Returns the incarnation's
/// report (also written to `epe-report-<epoch>.txt` in the run dir).
pub fn run_epe(opts: &EpeOptions) -> io::Result<EpeReport> {
    let mut report = EpeReport {
        epoch: opts.epoch,
        ..EpeReport::default()
    };
    std::fs::create_dir_all(&opts.dir)?;
    let mapping_path = opts.dir.join(super::MAPPING_FILE);

    // 1. Orphan sweep. A mapping is stale once its heartbeat stamp is
    // several lease windows old; our own file (respawn) is kept.
    let stale_ns = (opts.lease_timeout.as_nanos() as u64).saturating_mul(4);
    let keep = (opts.epoch > 0).then_some(mapping_path.as_path());
    let gc = scan_orphans(&opts.dir, "damaris-node", keep, Some(stale_ns))?;
    report.orphans_removed = gc.removed as u64;
    report.orphans_quarantined = gc.quarantined as u64;

    // 2. Create or re-adopt the mapping.
    let node = if opts.epoch == 0 {
        MappedNode::create(&mapping_path, opts.n_clients, opts.data_capacity)?
    } else {
        match MappedNode::open(&mapping_path) {
            Ok(n) => {
                n.restamp_creator();
                n
            }
            // The mapping vanished with the machine state (tmpfs cleared
            // under us): start fresh; WAL replay will quarantine.
            Err(_) => MappedNode::create(&mapping_path, opts.n_clients, opts.data_capacity)?,
        }
    };
    let buffer = node.buffer();

    // Heartbeat epoch = incarnation + 1 so even the first incarnation is
    // distinguishable from an all-zero fresh mapping.
    node.heartbeat().begin_epoch(opts.epoch + 1);
    beat(&node);

    // Takeover grace: every live lease's staleness clock restarts now.
    let now = monotonic_now_ns();
    let mut state = RunState::default();
    for c in 0..opts.n_clients {
        if node.lease(c).is_revoked() {
            // Fenced by a previous incarnation; keep it fenced and make
            // sure nothing lingers in its ring (reclaim is idempotent).
            report.bytes_reclaimed += node.revoke_remaining(c);
            state.fenced.insert(c);
        } else {
            node.renewed_at_ns(c).store(now, Ordering::Release);
        }
    }

    // 3. WAL replay.
    let (mut wal, replay) = ProcWal::open(&opts.dir.join(super::WAL_FILE))?;
    for it in &replay.done_iterations {
        state.done.insert(*it);
    }
    for key in &replay.seen_commits {
        state.seen.insert(*key);
    }
    for (rec, wal_state) in replay.records {
        report.events_replayed += 1;
        match wal_state {
            // Persisted by the previous incarnation; only the ring
            // release is outstanding (seq order = per-client FIFO).
            WalState::Applied => {
                node.release(rec.rank as usize, rec.offset as usize, rec.len as usize);
                wal.mark_released(rec.seq)?;
            }
            // Still owns its segment: re-adopt as if it just arrived.
            // (Fenced ranks' records are discarded just below.)
            WalState::Pending => state.adopt(rec),
        }
    }
    // Records of already-fenced ranks were reclaimed wholesale.
    let fenced_now: Vec<usize> = state.fenced.iter().copied().collect();
    for rank in fenced_now {
        for rec in state.remove_rank_commits(rank as u32) {
            wal.mark_applied(rec.seq)?;
            wal.mark_released(rec.seq)?;
        }
    }

    // 4. Control plane.
    let hub = UdsHub::bind(&opts.dir.join(super::SOCKET_FILE))?;
    let plan = FaultPlan::new();
    let epe_rank = opts.n_clients;
    let mut conns: Vec<Option<UdsConn>> = if opts.epoch == 0 {
        hub.accept_clients(
            opts.n_clients,
            opts.epoch + 1,
            epe_rank,
            &plan,
            Duration::from_secs(20),
        )?
        .into_iter()
        .map(Some)
        .collect()
    } else {
        let expected: Vec<usize> = (0..opts.n_clients)
            .filter(|c| !state.fenced.contains(c))
            .collect();
        hub.accept_available(
            opts.n_clients,
            &expected,
            opts.epoch + 1,
            epe_rank,
            &plan,
            opts.lease_timeout.max(Duration::from_millis(500)),
        )?
    };
    for conn in conns.iter().flatten() {
        let _ = conn.set_recv_timeout(Some(Duration::from_millis(2)));
    }

    let lease_ns = opts.lease_timeout.as_nanos() as u64;
    let last_iter = opts.iterations.saturating_sub(1);
    let mut drained_this_incarnation = 0u64;

    // 5. Serve.
    loop {
        beat(&node);

        // Drain frames from every live connection.
        for (rank, slot) in conns.iter_mut().enumerate() {
            let Some(conn) = slot.as_mut() else {
                continue;
            };
            let mut conn_died = false;
            loop {
                match conn.recv() {
                    Ok(CtrlMsg::Commit {
                        rank: r,
                        iteration,
                        variable,
                        offset,
                        len,
                        crc,
                    }) => {
                        let key = (r, iteration, variable);
                        let ring_base = (rank * node.region_capacity()) as u64;
                        let ring_ok = r as usize == rank
                            && offset >= ring_base
                            && len <= node.region_capacity() as u64
                            && offset + len <= ring_base + node.region_capacity() as u64;
                        if state.done.contains(&iteration) || state.seen.contains(&key) || !ring_ok
                        {
                            // A re-send of something the WAL already
                            // knows (or a frame that fails validation):
                            // the journal seq layer's dedup.
                            report.stale_commits_rejected += 1;
                            continue;
                        }
                        let mut rec = WalRecord {
                            seq: 0,
                            rank: r,
                            iteration,
                            variable,
                            offset,
                            len,
                            data_crc: crc,
                        };
                        rec.seq = wal.append_pending(rec)?;
                        state.adopt(rec);
                        report.commits_drained += 1;
                        drained_this_incarnation += 1;
                        if Some(drained_this_incarnation) == opts.kill_after_commits {
                            // Chaos: die mid-drain. The pending record is
                            // durable; nothing was applied or released.
                            let _ = report
                                .write_to(&opts.dir.join(format!("epe-report-{}.txt", opts.epoch)));
                            damaris_shm::kill_self_hard();
                        }
                    }
                    Ok(CtrlMsg::EndIteration { rank: r, iteration }) => {
                        if state.done.contains(&iteration) {
                            // Resolved by a previous incarnation whose Ack
                            // the client never saw: re-acknowledge.
                            let _ = conn.send(&CtrlMsg::Ack { iteration });
                        } else if r as usize == rank {
                            state.iters.entry(iteration).or_default().ended.insert(r);
                            if iteration == last_iter {
                                state.complete.insert(rank);
                            }
                        }
                    }
                    // User events and barriers are not part of the proxy
                    // app's protocol; ignore anything else well-formed.
                    Ok(_) => {}
                    Err(e)
                        if e.kind() == io::ErrorKind::WouldBlock
                            || e.kind() == io::ErrorKind::TimedOut =>
                    {
                        break;
                    }
                    Err(_) => {
                        // Closed or corrupt stream. A complete rank just
                        // exited; anything else is for the lease sweep.
                        conn_died = true;
                        break;
                    }
                }
            }
            if conn_died {
                *slot = None;
            }
        }

        // Lease sweep on the shared monotonic clock.
        let now = monotonic_now_ns();
        for (rank, slot) in conns.iter_mut().enumerate() {
            if state.fenced.contains(&rank) || state.complete.contains(&rank) {
                continue;
            }
            // Acquire pairs with the client's Release renew stamp.
            let renewed = node.renewed_at_ns(rank).load(Ordering::Acquire);
            if now.saturating_sub(renewed) <= lease_ns {
                continue;
            }
            let lease = node.lease(rank);
            let snap = lease.snapshot();
            // Model-checked arbitration: a concurrent renew beats the
            // revoke and the rank survives until the next sweep.
            if !lease.try_revoke(snap) {
                continue;
            }
            report.leases_revoked += 1;
            for rec in state.remove_rank_commits(rank as u32) {
                wal.mark_applied(rec.seq)?;
                wal.mark_released(rec.seq)?;
            }
            report.bytes_reclaimed += node.revoke_remaining(rank);
            state.fenced.insert(rank);
            *slot = None;
        }

        // Resolve iterations in order.
        loop {
            let next = (0..opts.iterations).find(|it| !state.done.contains(it));
            let Some(it) = next else {
                break;
            };
            let live: Vec<u32> = (0..opts.n_clients as u32)
                .filter(|r| !state.fenced.contains(&(*r as usize)))
                .collect();
            let iter = state.iters.entry(it).or_default();
            if live.is_empty() && iter.commits.is_empty() {
                // Nobody left and nothing buffered: nothing to resolve.
                break;
            }
            if !live.iter().all(|r| iter.ended.contains(r)) {
                break; // still in flight
            }
            let missing: Vec<u32> = (0..opts.n_clients as u32)
                .filter(|r| !iter.ended.contains(r))
                .collect();
            let commits: Vec<WalRecord> = {
                // invariant: `it` was just found in or inserted into the map.
                let iter = state.iters.get(&it).expect("iteration state exists");
                iter.commits.values().copied().collect()
            };
            // `wait` stalls while a silent rank might still come back (the
            // all-live-ranks-ended gate above); a rank in `missing` here is
            // provably fenced and never will. `wait` still refuses to
            // publish partial data, so the iteration degrades — commits
            // discarded, segments released, survivors acknowledged.
            let drop_whole = !missing.is_empty()
                && matches!(
                    opts.policy,
                    OnClientFailure::DropIteration | OnClientFailure::Wait
                );
            if drop_whole {
                if opts.policy == OnClientFailure::Wait {
                    report.iterations_degraded += 1;
                } else {
                    report.iterations_dropped += 1;
                }
            } else {
                persist_iteration(&opts.dir, &node, &buffer, it, &commits, &missing, &mut report)?;
                report.iterations_persisted += 1;
                if !missing.is_empty() {
                    report.partial_iterations += 1;
                }
            }
            // Applied (persisted or policy-dropped) → release → released,
            // in per-client FIFO (= seq) order.
            let mut by_seq = commits;
            by_seq.sort_by_key(|r| r.seq);
            for rec in &by_seq {
                wal.mark_applied(rec.seq)?;
                node.release(rec.rank as usize, rec.offset as usize, rec.len as usize);
                wal.mark_released(rec.seq)?;
            }
            wal.mark_iteration_done(it)?;
            state.done.insert(it);
            state.iters.remove(&it);
            for slot in conns.iter_mut() {
                let died = slot
                    .as_mut()
                    .is_some_and(|conn| conn.send(&CtrlMsg::Ack { iteration: it }).is_err());
                if died {
                    *slot = None;
                }
            }
        }

        // Termination: every iteration resolved, or every rank finished
        // or fenced with nothing left to wait for.
        let all_done = (0..opts.iterations).all(|it| state.done.contains(&it));
        let everyone_settled = (0..opts.n_clients)
            .all(|r| state.complete.contains(&r) || state.fenced.contains(&r));
        if all_done || everyone_settled {
            if all_done {
                break;
            }
            // `wait`-policy shutdown drain: abandon unresolved iterations,
            // releasing their segments so nothing leaks.
            let leftovers: Vec<u32> = state.iters.keys().copied().collect();
            for it in leftovers {
                // invariant: key came from the map we are iterating.
                let iter = state.iters.remove(&it).expect("iteration state exists");
                if !iter.commits.is_empty() || !iter.ended.is_empty() {
                    report.iterations_degraded += 1;
                }
                let mut by_seq: Vec<WalRecord> = iter.commits.into_values().collect();
                by_seq.sort_by_key(|r| r.seq);
                for rec in by_seq {
                    wal.mark_applied(rec.seq)?;
                    node.release(rec.rank as usize, rec.offset as usize, rec.len as usize);
                    wal.mark_released(rec.seq)?;
                }
            }
            break;
        }
    }

    // Coordinated shutdown; send errors just mean the rank already left.
    for conn in conns.iter_mut().flatten() {
        let _ = conn.send(&CtrlMsg::Shutdown);
    }
    beat(&node);
    report.write_to(&opts.dir.join(format!("epe-report-{}.txt", opts.epoch)))?;
    Ok(report)
}

/// Persists one iteration to `out/iter-<it>.sdf` through the
/// crash-consistent begin/commit path: datasets `/rank<r>/var<v>` for
/// every CRC-valid commit, plus a `/presence` bitmap when ranks are
/// missing (the `partial` policy's marker for downstream readers).
fn persist_iteration(
    dir: &Path,
    node: &MappedNode,
    buffer: &damaris_shm::sync::Arc<damaris_shm::SharedBuffer>,
    it: u32,
    commits: &[WalRecord],
    missing: &[u32],
    report: &mut EpeReport,
) -> io::Result<()> {
    let backend = LocalDirBackend::new(dir.join(super::OUT_DIR))?;
    let mut writer = backend
        .begin_sdf(&format!("iter-{it:05}.sdf"))
        .map_err(sdf_err)?;
    for rec in commits {
        let view = buffer.adopt_segment(rec.offset as usize, rec.len as usize);
        let bytes = view.as_slice().to_vec();
        drop(view);
        if crc32(&bytes) != rec.data_crc {
            // End-to-end CRC failure: the mapping bytes are not what the
            // client stamped. Quarantine (exclude), never persist.
            report.crc_rejected += 1;
            continue;
        }
        writer
            .write_dataset_bytes(
                &format!("/rank{}/var{}", rec.rank, rec.variable),
                &Layout::new(DataType::U8, &[rec.len]),
                &bytes,
                &DatasetOptions::plain(),
            )
            .map_err(sdf_err)?;
    }
    if !missing.is_empty() {
        let presence: Vec<u8> = (0..node.n_clients() as u32)
            .map(|r| u8::from(!missing.contains(&r)))
            .collect();
        writer
            .write_dataset_bytes(
                "/presence",
                &Layout::new(DataType::U8, &[presence.len() as u64]),
                &presence,
                &DatasetOptions::plain(),
            )
            .map_err(sdf_err)?;
    }
    backend.commit_sdf(writer).map_err(sdf_err)?;
    Ok(())
}

fn sdf_err(e: damaris_format::SdfError) -> io::Error {
    io::Error::other(format!("sdf: {e}"))
}
