//! The process supervisor: spawns the EPE and the clients as children of
//! one launcher binary, delivers the kill matrix, respawns a dead EPE,
//! and audits the mapping for leaked bytes after the run.
//!
//! The launcher re-execs *its own binary* with `DAMARIS_PROC_ROLE` set —
//! the same single-executable trick MPI launchers use — so one artifact
//! carries all three roles. Chaos is delivered by environment: the
//! victim process reads its kill spec and raises `SIGKILL` on itself at
//! the exact protocol phase under test (see [`super::ClientKillSpec`]),
//! which is a real, uncatchable `kill -9` placed deterministically.
//!
//! When the EPE exits on a signal, the supervisor respawns it with a
//! bumped epoch (and without the kill environment, so one configured
//! kill fires once). The respawned process re-opens the mapping, replays
//! the WAL, re-accepts the surviving clients, and finishes the run.
//!
//! After every child has exited the launcher opens the mapping one last
//! time and sums the per-client rings: **zero bytes still reserved** is
//! the leak-freedom acceptance criterion the kill matrix asserts.

use super::epe::EpeReport;
use super::ClientKillSpec;
use crate::config::OnClientFailure;
use damaris_shm::MappedNode;
use std::io;
use std::os::unix::process::ExitStatusExt;
use std::path::PathBuf;
use std::process::{Child, Command};
use std::time::{Duration, Instant};

/// Everything a supervised run needs.
#[derive(Debug, Clone)]
pub struct LaunchPlan {
    /// The role-dispatching binary to re-exec (usually
    /// `std::env::current_exe()`).
    pub exe: PathBuf,
    /// Run directory (mapping, socket, WAL, reports, `out/`).
    pub dir: PathBuf,
    /// Client process count (total processes = this + 1 EPE).
    pub n_clients: usize,
    /// Iterations to run.
    pub iterations: u32,
    /// Variables per iteration per client.
    pub variables: u32,
    /// Payload bytes per variable.
    pub payload_len: usize,
    /// Mapping data-window bytes.
    pub data_capacity: usize,
    /// Client-failure policy the EPE applies.
    pub policy: OnClientFailure,
    /// Lease staleness bound.
    pub lease_timeout: Duration,
    /// Chaos: client kill spec (rank/phase/iteration).
    pub client_kill: Option<ClientKillSpec>,
    /// Chaos: kill the first EPE incarnation after N drained commits.
    pub epe_kill_after: Option<u64>,
    /// EPE respawn budget.
    pub max_epe_respawns: u32,
    /// Whole-run watchdog; on expiry every child is killed.
    pub timeout: Duration,
}

impl LaunchPlan {
    /// A plan with test-friendly defaults for `n_clients` over `exe`.
    pub fn new(exe: PathBuf, dir: PathBuf, n_clients: usize) -> LaunchPlan {
        LaunchPlan {
            exe,
            dir,
            n_clients,
            iterations: 3,
            variables: 2,
            payload_len: 512,
            data_capacity: 1 << 16,
            policy: OnClientFailure::Partial,
            lease_timeout: Duration::from_millis(800),
            client_kill: None,
            epe_kill_after: None,
            max_epe_respawns: 1,
            timeout: Duration::from_secs(90),
        }
    }
}

/// What the supervised run produced.
#[derive(Debug, Clone, Default)]
pub struct LaunchReport {
    /// EPE incarnations started beyond the first.
    pub epe_respawns: u32,
    /// Ring bytes still reserved in the mapping after every child exited
    /// — the kill matrix asserts this is 0.
    pub leaked_bytes: u64,
    /// Ranks that exited on a signal (the kill matrix victims).
    pub killed_ranks: Vec<u32>,
    /// Ranks that exited nonzero without a signal (real failures).
    pub failed_ranks: Vec<u32>,
    /// Whether the final EPE incarnation exited cleanly.
    pub epe_ok: bool,
    /// Per-incarnation EPE reports, in epoch order.
    pub epe_reports: Vec<EpeReport>,
    /// Published SDF files under `out/`, sorted.
    pub sdf_files: Vec<PathBuf>,
}

impl LaunchReport {
    /// Sum of a counter across incarnations.
    pub fn total(&self, f: impl Fn(&EpeReport) -> u64) -> u64 {
        self.epe_reports.iter().map(f).sum()
    }
}

fn policy_str(p: OnClientFailure) -> &'static str {
    match p {
        OnClientFailure::Wait => "wait",
        OnClientFailure::Partial => "partial",
        OnClientFailure::DropIteration => "drop-iteration",
    }
}

/// Parses the policy string the launcher exported.
pub fn policy_from_str(s: &str) -> OnClientFailure {
    match s {
        "partial" => OnClientFailure::Partial,
        "drop-iteration" => OnClientFailure::DropIteration,
        _ => OnClientFailure::Wait,
    }
}

fn base_cmd(plan: &LaunchPlan, role: &str) -> Command {
    let mut cmd = Command::new(&plan.exe);
    cmd.env(super::ENV_ROLE, role)
        .env(super::ENV_DIR, &plan.dir)
        .env(super::ENV_CLIENTS, plan.n_clients.to_string())
        .env(super::ENV_ITERS, plan.iterations.to_string())
        .env(super::ENV_VARS, plan.variables.to_string())
        .env(super::ENV_PAYLOAD, plan.payload_len.to_string())
        .env(super::ENV_CAPACITY, plan.data_capacity.to_string())
        .env(super::ENV_POLICY, policy_str(plan.policy))
        .env(
            super::ENV_LEASE_MS,
            plan.lease_timeout.as_millis().to_string(),
        );
    cmd
}

fn spawn_epe(plan: &LaunchPlan, epoch: u32) -> io::Result<Child> {
    let mut cmd = base_cmd(plan, "epe");
    cmd.env(super::ENV_EPOCH, epoch.to_string());
    // The mid-drain kill arms only the first incarnation: one configured
    // kill fires once, then the respawn must finish the run.
    if epoch == 0 {
        if let Some(n) = plan.epe_kill_after {
            cmd.env(super::ENV_KILL_EPE_AFTER, n.to_string());
        }
    }
    cmd.spawn()
}

fn spawn_client(plan: &LaunchPlan, rank: u32) -> io::Result<Child> {
    let mut cmd = base_cmd(plan, "client");
    cmd.env(super::ENV_RANK, rank.to_string());
    if let Some(kill) = plan.client_kill {
        cmd.env(super::ENV_KILL_RANK, kill.rank.to_string())
            .env(super::ENV_KILL_PHASE, ClientKillSpec::phase_str(kill.phase))
            .env(super::ENV_KILL_ITER, kill.iteration.to_string());
    }
    cmd.spawn()
}

/// Supervises one full run: spawn, chaos, respawn, audit.
pub fn launch(plan: &LaunchPlan) -> io::Result<LaunchReport> {
    std::fs::create_dir_all(&plan.dir)?;
    let mut report = LaunchReport::default();

    let mut epoch = 0u32;
    let mut epe = Some(spawn_epe(plan, epoch)?);
    let mut clients: Vec<(u32, Option<Child>)> = (0..plan.n_clients as u32)
        .map(|rank| spawn_client(plan, rank).map(|c| (rank, Some(c))))
        .collect::<io::Result<_>>()?;

    let start = Instant::now();
    let outcome = loop {
        if start.elapsed() > plan.timeout {
            break Err(io::Error::new(
                io::ErrorKind::TimedOut,
                "supervised run exceeded its watchdog",
            ));
        }

        if let Some(child) = epe.as_mut() {
            if let Some(status) = child.try_wait()? {
                if status.success() {
                    report.epe_ok = true;
                    epe = None;
                } else if status.signal().is_some() && report.epe_respawns < plan.max_epe_respawns {
                    // The dedicated core died hard. Its memory is gone;
                    // the mapping, WAL, and leases are not. Respawn.
                    report.epe_respawns += 1;
                    epoch += 1;
                    epe = Some(spawn_epe(plan, epoch)?);
                } else {
                    report.epe_ok = false;
                    epe = None;
                }
            }
        }

        for (rank, slot) in clients.iter_mut() {
            if let Some(child) = slot.as_mut() {
                if let Some(status) = child.try_wait()? {
                    if status.signal().is_some() {
                        report.killed_ranks.push(*rank);
                    } else if !status.success() {
                        report.failed_ranks.push(*rank);
                    }
                    *slot = None;
                }
            }
        }

        if epe.is_none() && clients.iter().all(|(_, c)| c.is_none()) {
            break Ok(());
        }
        std::thread::sleep(Duration::from_millis(10));
    };
    if outcome.is_err() {
        // Watchdog: tear everything down before reporting.
        if let Some(mut child) = epe.take() {
            let _ = child.kill();
            let _ = child.wait();
        }
        for (_, slot) in clients.iter_mut() {
            if let Some(mut child) = slot.take() {
                let _ = child.kill();
                let _ = child.wait();
            }
        }
    }

    // Leak audit: with every process dead, whatever the rings still hold
    // was leaked. The mapping outlives all of its users by design.
    let mapping_path = plan.dir.join(super::MAPPING_FILE);
    if let Ok(node) = MappedNode::open(&mapping_path) {
        report.leaked_bytes = node.total_in_use();
    }

    for e in 0..=epoch {
        let path = plan.dir.join(format!("epe-report-{e}.txt"));
        if let Ok(r) = EpeReport::read_from(&path) {
            report.epe_reports.push(r);
        }
    }

    let out = plan.dir.join(super::OUT_DIR);
    if let Ok(entries) = std::fs::read_dir(&out) {
        for entry in entries.flatten() {
            let path = entry.path();
            if path.extension().is_some_and(|e| e == "sdf") {
                report.sdf_files.push(path);
            }
        }
        report.sdf_files.sort();
    }

    // The socket and mapping are per-run artifacts; the WAL, reports,
    // and SDF output stay for inspection.
    let _ = std::fs::remove_file(plan.dir.join(super::SOCKET_FILE));
    let _ = std::fs::remove_file(&mapping_path);

    outcome.map(|()| report)
}
