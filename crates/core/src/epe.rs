//! The Event Processing Engine (paper §III-B).
//!
//! Pulls events from the shared queue (that part lives in
//! [`crate::server`]) and dispatches them to plugins according to the
//! event→action bindings of the configuration file. Multiple actions may
//! bind to one event; they run in declaration order.
//!
//! # Plugin isolation
//!
//! Every dispatch runs under `catch_unwind`: a panicking plugin cannot
//! take down the dedicated core (which would deadlock clients blocked on
//! a full buffer). What happens *after* the failure is governed by
//! `<resilience plugin_quarantine="K">`:
//!
//! * `K = 0` (default) — fail fast: the first failure (error return or
//!   panic) propagates and aborts the run, as before.
//! * `K > 0` — degrade: failures are counted per binding; after `K`
//!   *consecutive* failures the plugin is quarantined (skipped, with a
//!   logged reason) and the EPE keeps serving every other binding. One
//!   success resets the streak.

use crate::config::Config;
use crate::error::DamarisError;
use crate::node::FaultStats;
use crate::plugin::{ActionContext, EventInfo, Plugin, PluginFactory};
use crate::plugins;
use damaris_obs::EventKind;
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// The implicit event fired when every client of the node has ended an
/// iteration. Binding an action to it in the configuration overrides the
/// default persistence behaviour.
pub const END_OF_ITERATION: &str = "end_of_iteration";

struct Binding {
    event: String,
    plugin: Box<dyn Plugin>,
    consecutive_failures: u32,
    /// `Some(reason)` once the plugin is disabled.
    quarantined: Option<String>,
}

/// Event name → ordered plugin instances.
pub struct EventProcessingEngine {
    bindings: Vec<Binding>,
}

impl EventProcessingEngine {
    /// Instantiates plugins for every configured binding. `extra` factories
    /// (action name → factory) take precedence over built-ins — the paper's
    /// "plugin provided by the user". Borrowed (not consumed) so the node
    /// supervisor can rebuild a fresh engine from the same factories after
    /// a dedicated-core crash.
    pub fn build(
        config: &Config,
        extra: &[(String, PluginFactory)],
    ) -> Result<Self, DamarisError> {
        let extra: HashMap<&str, &PluginFactory> =
            extra.iter().map(|(n, f)| (n.as_str(), f)).collect();
        let mut bindings = Vec::new();
        for action in &config.actions {
            let plugin: Box<dyn Plugin> = if let Some(factory) = extra.get(action.action.as_str())
            {
                factory(action)?
            } else {
                plugins::builtin(action)?
            };
            bindings.push(Binding {
                event: action.event.clone(),
                plugin,
                consecutive_failures: 0,
                quarantined: None,
            });
        }
        // Default behaviour: persist every completed iteration unless the
        // configuration bound something else to end_of_iteration.
        if !bindings.iter().any(|b| b.event == END_OF_ITERATION) {
            bindings.push(Binding {
                event: END_OF_ITERATION.to_string(),
                plugin: Box::new(plugins::persist::PersistPlugin::new(None)),
                consecutive_failures: 0,
                quarantined: None,
            });
        }
        Ok(EventProcessingEngine { bindings })
    }

    /// Dispatches one event to every bound plugin, in order. Quarantined
    /// plugins are skipped; see the module docs for failure handling.
    pub fn fire(
        &mut self,
        ctx: &mut ActionContext<'_>,
        event: &EventInfo,
    ) -> Result<(), DamarisError> {
        let threshold = ctx.config.resilience.plugin_quarantine;
        for i in 0..self.bindings.len() {
            if self.bindings[i].event != event.name || self.bindings[i].quarantined.is_some() {
                continue;
            }
            let t = ctx.rec.begin();
            let outcome = {
                let b = &mut self.bindings[i];
                catch_unwind(AssertUnwindSafe(|| b.plugin.handle(ctx, event)))
            };
            ctx.rec.end(EventKind::PluginRun, event.iteration, 0, t);
            self.settle(i, outcome, ctx, threshold)?;
        }
        Ok(())
    }

    /// Shutdown pass: lets every plugin flush its state (in binding order).
    /// Quarantined plugins stay disabled; failures here follow the same
    /// fail-fast/degrade policy as [`EventProcessingEngine::fire`].
    pub fn finalize_all(&mut self, ctx: &mut ActionContext<'_>) -> Result<(), DamarisError> {
        let threshold = ctx.config.resilience.plugin_quarantine;
        for i in 0..self.bindings.len() {
            if self.bindings[i].quarantined.is_some() {
                continue;
            }
            let outcome = {
                let b = &mut self.bindings[i];
                catch_unwind(AssertUnwindSafe(|| b.plugin.finalize(ctx)))
            };
            self.settle(i, outcome, ctx, threshold)?;
        }
        Ok(())
    }

    /// Applies the failure policy to one dispatch outcome.
    fn settle(
        &mut self,
        i: usize,
        outcome: std::thread::Result<Result<(), DamarisError>>,
        ctx: &ActionContext<'_>,
        threshold: u32,
    ) -> Result<(), DamarisError> {
        let b = &mut self.bindings[i];
        let error = match outcome {
            Ok(Ok(())) => {
                b.consecutive_failures = 0;
                return Ok(());
            }
            Ok(Err(e)) => e,
            Err(panic) => DamarisError::Plugin {
                plugin: b.plugin.name().to_string(),
                // as_ref() so we downcast the payload, not the Box itself.
                message: format!("panicked: {}", panic_message(panic.as_ref())),
            },
        };
        FaultStats::bump(&ctx.stats.plugin_failures);
        if threshold == 0 {
            return Err(error);
        }
        b.consecutive_failures += 1;
        if b.consecutive_failures >= threshold {
            eprintln!(
                "[damaris node {}] plugin '{}' quarantined after {} consecutive \
                 failure(s), last: {error}",
                ctx.node_id,
                b.plugin.name(),
                b.consecutive_failures
            );
            b.quarantined = Some(error.to_string());
            FaultStats::bump(&ctx.stats.plugins_quarantined);
        } else {
            eprintln!(
                "[damaris node {}] plugin '{}' failed ({}/{threshold} before \
                 quarantine): {error}",
                ctx.node_id,
                b.plugin.name(),
                b.consecutive_failures
            );
        }
        Ok(())
    }

    /// Quarantined plugins as `(name, reason)` pairs.
    pub fn quarantined(&self) -> Vec<(String, String)> {
        self.bindings
            .iter()
            .filter_map(|b| {
                b.quarantined
                    .as_ref()
                    .map(|reason| (b.plugin.name().to_string(), reason.clone()))
            })
            .collect()
    }

    /// Number of instantiated bindings.
    pub fn len(&self) -> usize {
        self.bindings.len()
    }

    /// Always has at least the default persistence binding.
    pub fn is_empty(&self) -> bool {
        false
    }
}

/// Extracts the payload of a caught panic, when it is a string.
fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ActionBinding;

    #[test]
    fn default_persist_added() {
        let c = Config::from_xml("<damaris/>").unwrap();
        let epe = EventProcessingEngine::build(&c, &[]).unwrap();
        assert_eq!(epe.len(), 1);
    }

    #[test]
    fn explicit_end_of_iteration_overrides_default() {
        let c = Config::from_xml(
            r#"<damaris><event name="end_of_iteration" action="persist" using="lzss"/></damaris>"#,
        )
        .unwrap();
        let epe = EventProcessingEngine::build(&c, &[]).unwrap();
        assert_eq!(epe.len(), 1);
    }

    #[test]
    fn unknown_action_rejected() {
        let c = Config::from_xml(
            r#"<damaris><event name="e" action="launch_missiles"/></damaris>"#,
        )
        .unwrap();
        assert!(EventProcessingEngine::build(&c, &[]).is_err());
    }

    #[test]
    fn extra_factory_takes_precedence() {
        struct Nop;
        impl Plugin for Nop {
            fn name(&self) -> &str {
                "nop"
            }
            fn handle(
                &mut self,
                _ctx: &mut ActionContext<'_>,
                _event: &EventInfo,
            ) -> Result<(), DamarisError> {
                Ok(())
            }
        }
        let c = Config::from_xml(
            r#"<damaris><event name="e" action="persist"/></damaris>"#,
        )
        .unwrap();
        let factory: PluginFactory =
            Box::new(|_b: &ActionBinding| Ok(Box::new(Nop) as Box<dyn Plugin>));
        let epe =
            EventProcessingEngine::build(&c, &[("persist".to_string(), factory)]).unwrap();
        // One explicit binding + the default end_of_iteration persist.
        assert_eq!(epe.len(), 2);
    }
}
