//! The Event Processing Engine (paper §III-B).
//!
//! Pulls events from the shared queue (that part lives in
//! [`crate::server`]) and dispatches them to plugins according to the
//! event→action bindings of the configuration file. Multiple actions may
//! bind to one event; they run in declaration order.

use crate::config::Config;
use crate::error::DamarisError;
use crate::plugin::{ActionContext, EventInfo, Plugin, PluginFactory};
use crate::plugins;
use std::collections::HashMap;

/// The implicit event fired when every client of the node has ended an
/// iteration. Binding an action to it in the configuration overrides the
/// default persistence behaviour.
pub const END_OF_ITERATION: &str = "end_of_iteration";

/// Event name → ordered plugin instances.
pub struct EventProcessingEngine {
    bindings: Vec<(String, Box<dyn Plugin>)>,
}

impl EventProcessingEngine {
    /// Instantiates plugins for every configured binding. `extra` factories
    /// (action name → factory) take precedence over built-ins — the paper's
    /// "plugin provided by the user".
    pub fn build(
        config: &Config,
        extra: Vec<(String, PluginFactory)>,
    ) -> Result<Self, DamarisError> {
        let extra: HashMap<String, PluginFactory> = extra.into_iter().collect();
        let mut bindings = Vec::new();
        for action in &config.actions {
            let plugin: Box<dyn Plugin> = if let Some(factory) = extra.get(&action.action) {
                factory(action)?
            } else {
                plugins::builtin(action)?
            };
            bindings.push((action.event.clone(), plugin));
        }
        // Default behaviour: persist every completed iteration unless the
        // configuration bound something else to end_of_iteration.
        if !bindings.iter().any(|(e, _)| e == END_OF_ITERATION) {
            bindings.push((
                END_OF_ITERATION.to_string(),
                Box::new(plugins::persist::PersistPlugin::new(None)),
            ));
        }
        Ok(EventProcessingEngine { bindings })
    }

    /// Dispatches one event to every bound plugin, in order.
    pub fn fire(
        &mut self,
        ctx: &mut ActionContext<'_>,
        event: &EventInfo,
    ) -> Result<(), DamarisError> {
        for (name, plugin) in &mut self.bindings {
            if *name == event.name {
                plugin.handle(ctx, event)?;
            }
        }
        Ok(())
    }

    /// Shutdown pass: lets every plugin flush its state (in binding order).
    pub fn finalize_all(&mut self, ctx: &mut ActionContext<'_>) -> Result<(), DamarisError> {
        for (_, plugin) in &mut self.bindings {
            plugin.finalize(ctx)?;
        }
        Ok(())
    }

    /// Number of instantiated bindings.
    pub fn len(&self) -> usize {
        self.bindings.len()
    }

    /// Always has at least the default persistence binding.
    pub fn is_empty(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ActionBinding;

    #[test]
    fn default_persist_added() {
        let c = Config::from_xml("<damaris/>").unwrap();
        let epe = EventProcessingEngine::build(&c, Vec::new()).unwrap();
        assert_eq!(epe.len(), 1);
    }

    #[test]
    fn explicit_end_of_iteration_overrides_default() {
        let c = Config::from_xml(
            r#"<damaris><event name="end_of_iteration" action="persist" using="lzss"/></damaris>"#,
        )
        .unwrap();
        let epe = EventProcessingEngine::build(&c, Vec::new()).unwrap();
        assert_eq!(epe.len(), 1);
    }

    #[test]
    fn unknown_action_rejected() {
        let c = Config::from_xml(
            r#"<damaris><event name="e" action="launch_missiles"/></damaris>"#,
        )
        .unwrap();
        assert!(EventProcessingEngine::build(&c, Vec::new()).is_err());
    }

    #[test]
    fn extra_factory_takes_precedence() {
        struct Nop;
        impl Plugin for Nop {
            fn name(&self) -> &str {
                "nop"
            }
            fn handle(
                &mut self,
                _ctx: &mut ActionContext<'_>,
                _event: &EventInfo,
            ) -> Result<(), DamarisError> {
                Ok(())
            }
        }
        let c = Config::from_xml(
            r#"<damaris><event name="e" action="persist"/></damaris>"#,
        )
        .unwrap();
        let factory: PluginFactory =
            Box::new(|_b: &ActionBinding| Ok(Box::new(Nop) as Box<dyn Plugin>));
        let epe =
            EventProcessingEngine::build(&c, vec![("persist".to_string(), factory)]).unwrap();
        // One explicit binding + the default end_of_iteration persist.
        assert_eq!(epe.len(), 2);
    }
}
