//! # damaris-core
//!
//! The paper's contribution: **D**edicated **A**daptable **M**iddleware for
//! **A**pplication **R**esources **I**nline **S**teering (CLUSTER 2012).
//!
//! On every multicore SMP node, one core (or more) is dedicated to I/O and
//! data processing. Compute cores interact with it only through node-local
//! shared memory:
//!
//! * [`DamarisClient::write`] — one `memcpy` into a reserved shared-memory
//!   segment plus a write-notification on the shared event queue; the
//!   client returns to computation immediately.
//! * [`DamarisClient::alloc`] / [`commit`](AllocatedRegion::commit) — the
//!   zero-copy path: the simulation computes directly inside the shared
//!   buffer (§III-C "Minimum-copy overhead").
//! * [`DamarisClient::signal`] — user-defined events that trigger
//!   configured actions on the dedicated core (§III-B "Event queue").
//!
//! The dedicated core runs an event processing engine ([`epe`]) that keeps
//! a metadata registry of incoming variables (`⟨name, iteration, source,
//! layout⟩`, §III-B), and dispatches *plugins* ([`plugin`]) in response to
//! events: persistence to SDF files (the HDF5-analogue format), inline
//! compression, statistics, and slot-scheduled data movement (§IV-D).
//!
//! Everything is configured from an external XML file with the paper's
//! schema ([`config`]): `<layout>`, `<variable>`, `<event>` plus buffer
//! sizing — "the user has full control over the resources allocated to
//! Damaris".
//!
//! ## Quick start
//!
//! ```
//! use damaris_core::{Config, NodeRuntime};
//!
//! let xml = r#"
//! <damaris>
//!   <buffer size="1048576" allocator="mutex"/>
//!   <layout name="grid" type="real" dimensions="16,4"/>
//!   <variable name="temperature" layout="grid"/>
//! </damaris>"#;
//! let config = Config::from_xml(xml).unwrap();
//! let dir = std::env::temp_dir().join(format!("damaris-doc-{}", std::process::id()));
//! let runtime = NodeRuntime::start(config, 2, &dir).unwrap();
//! let clients = runtime.clients();
//! for (i, client) in clients.iter().enumerate() {
//!     let data = vec![300.0_f32 + i as f32; 64];
//!     client.write_f32("temperature", 0, &data).unwrap();
//!     client.end_iteration(0).unwrap();
//! }
//! let report = runtime.finish().unwrap();
//! assert_eq!(report.iterations_persisted, 1);
//! std::fs::remove_dir_all(&dir).ok();
//! ```

pub mod client;
pub mod config;
pub mod epe;
pub mod error;
pub mod event;
pub mod journal;
pub mod layout;
pub mod metadata;
pub mod multinode;
pub mod node;
pub mod plugin;
pub mod plugins;
pub mod pressure;
#[cfg(unix)]
pub mod proc;
pub(crate) mod retry;
pub mod server;

pub use client::{AllocatedRegion, DamarisClient};
pub use config::{
    ActionBinding, AllocatorKind, BackpressurePolicy, Config, ObservabilityConfig,
    OnClientFailure, OnDiskFull, ResilienceConfig, VariableDef,
};
pub use error::DamarisError;
pub use event::Event;
pub use journal::{Claim, EventJournal, JournalPayload, RecordState};
pub use layout::LayoutDef;
pub use metadata::{MetadataStore, StoredVariable, VariableKey};
pub use multinode::{AnalysisReport, SmpNode, SmpNodeReport, Topology};
pub use node::{NodeReport, NodeRuntime};
pub use plugin::{ActionContext, EventInfo, Plugin, PluginFactory};
pub use pressure::{PressureMachine, PressureState};
