//! The client-side API (paper §III-D).
//!
//! Mirrors the paper's C interface:
//!
//! | paper                          | here                                |
//! |--------------------------------|-------------------------------------|
//! | `df_initialize`/`df_finalize`  | [`crate::NodeRuntime`] lifecycle    |
//! | `df_write(var, step, data)`    | [`DamarisClient::write`]            |
//! | `df_signal(event, step)`       | [`DamarisClient::signal`]           |
//! | `dc_alloc`/`dc_commit`         | [`DamarisClient::alloc`]/[`AllocatedRegion::commit`] |
//!
//! A `write` is one shared-memory reservation, one `memcpy`, one queue
//! push — nothing else; the client returns to computation immediately.

use crate::error::DamarisError;
use crate::event::Event;
use crate::node::NodeShared;
use damaris_shm::{AllocError, Segment};
use std::sync::Arc;

/// Handle held by one compute core.
#[derive(Clone)]
pub struct DamarisClient {
    id: u32,
    shared: Arc<NodeShared>,
}

impl DamarisClient {
    pub(crate) fn new(id: u32, shared: Arc<NodeShared>) -> Self {
        DamarisClient { id, shared }
    }

    /// This client's id within its node (the `source` of its tuples).
    pub fn id(&self) -> u32 {
        self.id
    }

    fn lookup(&self, variable: &str) -> Result<(u32, u64), DamarisError> {
        let (id, layout) = self.lookup_def(variable)?;
        if layout.dynamic {
            return Err(DamarisError::Config(format!(
                "variable '{variable}' has a dynamic layout; use write_dynamic"
            )));
        }
        Ok((id, layout.byte_size()))
    }

    fn lookup_def(&self, variable: &str) -> Result<(u32, &crate::LayoutDef), DamarisError> {
        let id = self
            .shared
            .config
            .variable_id(variable)
            .ok_or_else(|| DamarisError::UnknownVariable(variable.to_string()))?;
        let def = self.shared.config.variable(id).expect("id just resolved");
        Ok((id, self.shared.config.layout_of(def)))
    }

    /// Reserves a segment, spinning while the buffer is full (the consumer
    /// is draining it continuously).
    ///
    /// Deadlock note: the server reclaims an iteration's segments once
    /// *every* client of the node has ended that iteration. Clients must
    /// therefore stay loosely synchronized (as halo-exchanging simulations
    /// naturally are) or the buffer must be sized for the maximum
    /// iteration skew — the same constraint the original Damaris has.
    fn reserve(&self, len: usize) -> Result<Segment, DamarisError> {
        loop {
            match self.shared.buffer.allocate(self.id, len) {
                Ok(seg) => return Ok(seg),
                Err(AllocError::Full) => std::thread::yield_now(),
                Err(e) => return Err(e.into()),
            }
        }
    }

    /// `df_write`: copies `data` into shared memory and notifies the
    /// dedicated core. The byte length must match the variable's layout.
    pub fn write(&self, variable: &str, iteration: u32, data: &[u8]) -> Result<(), DamarisError> {
        let (variable_id, expected) = self.lookup(variable)?;
        if data.len() as u64 != expected {
            return Err(DamarisError::LayoutMismatch {
                variable: variable.to_string(),
                expected,
                actual: data.len() as u64,
            });
        }
        let mut segment = self.reserve(data.len())?;
        segment.copy_from_slice(data);
        self.shared.queue.push_wait(Event::Write {
            variable_id,
            iteration,
            source: self.id,
            segment,
            dynamic_layout: None,
        });
        Ok(())
    }

    /// Writes a *dynamic-shape* variable (declared with `dimensions="?"`):
    /// the shape travels with the write — the paper's API for arrays
    /// without a static shape, e.g. per-rank particle sets (§III-D).
    pub fn write_dynamic(
        &self,
        variable: &str,
        iteration: u32,
        dims: &[u64],
        data: &[u8],
    ) -> Result<(), DamarisError> {
        let (variable_id, layout_def) = self.lookup_def(variable)?;
        if !layout_def.dynamic {
            return Err(DamarisError::Config(format!(
                "variable '{variable}' has a static layout; use write"
            )));
        }
        let layout = damaris_format::Layout::new(layout_def.dtype, dims);
        if data.len() as u64 != layout.byte_size() {
            return Err(DamarisError::LayoutMismatch {
                variable: variable.to_string(),
                expected: layout.byte_size(),
                actual: data.len() as u64,
            });
        }
        let mut segment = self.reserve(data.len())?;
        segment.copy_from_slice(data);
        self.shared.queue.push_wait(Event::Write {
            variable_id,
            iteration,
            source: self.id,
            segment,
            dynamic_layout: Some(layout),
        });
        Ok(())
    }

    /// Typed wrapper over [`DamarisClient::write_dynamic`] for f32 data.
    pub fn write_dynamic_f32(
        &self,
        variable: &str,
        iteration: u32,
        dims: &[u64],
        data: &[f32],
    ) -> Result<(), DamarisError> {
        let bytes: Vec<u8> = data.iter().flat_map(|v| v.to_le_bytes()).collect();
        self.write_dynamic(variable, iteration, dims, &bytes)
    }

    /// Typed convenience wrapper over [`DamarisClient::write`] for `f32`
    /// variables.
    pub fn write_f32(
        &self,
        variable: &str,
        iteration: u32,
        data: &[f32],
    ) -> Result<(), DamarisError> {
        let bytes: Vec<u8> = data.iter().flat_map(|v| v.to_le_bytes()).collect();
        self.write(variable, iteration, &bytes)
    }

    /// Typed convenience wrapper for `f64` variables.
    pub fn write_f64(
        &self,
        variable: &str,
        iteration: u32,
        data: &[f64],
    ) -> Result<(), DamarisError> {
        let bytes: Vec<u8> = data.iter().flat_map(|v| v.to_le_bytes()).collect();
        self.write(variable, iteration, &bytes)
    }

    /// `dc_alloc`: reserves the variable's segment for in-place production
    /// — the zero-copy path (§III-C). Write into
    /// [`AllocatedRegion::as_mut_slice`], then [`AllocatedRegion::commit`].
    pub fn alloc(&self, variable: &str, iteration: u32) -> Result<AllocatedRegion, DamarisError> {
        let (variable_id, bytes) = self.lookup(variable)?;
        let segment = self.reserve(bytes as usize)?;
        Ok(AllocatedRegion {
            client: self.clone(),
            variable_id,
            iteration,
            segment: Some(segment),
        })
    }

    /// `df_signal`: sends a user-defined event; the dedicated core runs the
    /// actions bound to it in the configuration.
    pub fn signal(&self, event: &str, iteration: u32) -> Result<(), DamarisError> {
        if self.shared.config.bindings_for(event).is_empty() {
            return Err(DamarisError::UnknownEvent(event.to_string()));
        }
        self.shared.queue.push_wait(Event::User {
            name: event.to_string(),
            iteration,
            source: self.id,
        });
        Ok(())
    }

    /// Declares this client done with `iteration`. When every client of
    /// the node has done so, iteration-scoped actions (persistence by
    /// default) fire on the dedicated core.
    pub fn end_iteration(&self, iteration: u32) -> Result<(), DamarisError> {
        self.shared.queue.push_wait(Event::EndIteration {
            iteration,
            source: self.id,
        });
        Ok(())
    }
}

impl std::fmt::Debug for DamarisClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "DamarisClient(id={})", self.id)
    }
}

/// A zero-copy reservation: the simulation computes directly in shared
/// memory, then commits. Dropping without committing returns the segment.
pub struct AllocatedRegion {
    client: DamarisClient,
    variable_id: u32,
    iteration: u32,
    segment: Option<Segment>,
}

impl AllocatedRegion {
    /// The writable shared-memory window.
    pub fn as_mut_slice(&mut self) -> &mut [u8] {
        self.segment
            .as_mut()
            .expect("region still owned")
            .as_mut_slice()
    }

    /// Typed f32 view (the common case for CM1-style variables).
    pub fn as_mut_f32(&mut self) -> &mut [f32] {
        let bytes = self.as_mut_slice();
        assert_eq!(bytes.len() % 4, 0, "layout is not f32-sized");
        // SAFETY: alignment is guaranteed by the allocators' 8-byte
        // alignment; length checked above; f32 has no invalid bit patterns.
        unsafe {
            std::slice::from_raw_parts_mut(bytes.as_mut_ptr() as *mut f32, bytes.len() / 4)
        }
    }

    /// `dc_commit`: informs the dedicated core that the data is ready.
    pub fn commit(mut self) {
        let segment = self.segment.take().expect("commit called once");
        self.client.shared.queue.push_wait(Event::Write {
            variable_id: self.variable_id,
            iteration: self.iteration,
            source: self.client.id,
            segment,
            dynamic_layout: None,
        });
    }
}

impl Drop for AllocatedRegion {
    fn drop(&mut self) {
        if let Some(segment) = self.segment.take() {
            // Not committed: hand the reservation back.
            self.client.shared.buffer.release(self.client.id, segment);
        }
    }
}
