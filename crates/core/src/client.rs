//! The client-side API (paper §III-D).
//!
//! Mirrors the paper's C interface:
//!
//! | paper                          | here                                |
//! |--------------------------------|-------------------------------------|
//! | `df_initialize`/`df_finalize`  | [`crate::NodeRuntime`] lifecycle    |
//! | `df_write(var, step, data)`    | [`DamarisClient::write`]            |
//! | `df_signal(event, step)`       | [`DamarisClient::signal`]           |
//! | `dc_alloc`/`dc_commit`         | [`DamarisClient::alloc`]/[`AllocatedRegion::commit`] |
//!
//! A `write` is one shared-memory reservation, one `memcpy`, one journal
//! append, one queue push — nothing else; the client returns to
//! computation immediately.
//!
//! # Dedicated-core failure
//!
//! While waiting on a full buffer, clients watch the server's heartbeat
//! word. If it stays unchanged for `<resilience heartbeat_timeout_ms=…>`
//! the dedicated core is presumed dead and the backpressure policy
//! degrades accordingly: the lossy policies divert immediately (`drop`
//! counts the loss, `sync-fallback` writes through to storage), while
//! `block` parks until a new heartbeat epoch appears — the supervisor
//! respawning the server — and fails with
//! [`DamarisError::EpeUnavailable`] if none does within its timeout.

use crate::config::BackpressurePolicy;
use crate::error::DamarisError;
use crate::event::Event;
use crate::journal::JournalPayload;
use crate::node::{FaultStats, NodeShared};
use crate::retry::Backoff;
use damaris_obs::{EventKind, Recorder};
use damaris_shm::sync::{Arc, AtomicU64, Ordering};
use damaris_shm::{AllocError, Segment};
use std::time::{Duration, Instant};

/// How long the lossy policies (`drop`, `sync-fallback`) still wait for
/// space before giving up on shared memory — long enough to ride out a
/// momentary collision with the allocator, short enough that the client
/// never visibly stalls.
const LOSSY_GRACE: Duration = Duration::from_millis(2);

/// Outcome of a bounded reservation wait.
enum ReserveOutcome {
    Got(Segment),
    /// Deadline passed while the server was (still) heartbeating.
    TimedOut,
    /// The heartbeat word went stale: the dedicated core is presumed dead.
    Stale,
}

/// Handle held by one compute core.
pub struct DamarisClient {
    id: u32,
    shared: Arc<NodeShared>,
    /// Trace recorder for this rank (clones share the rank's MPSC ring;
    /// one branch per call when observability is disabled).
    rec: Recorder,
    /// Anchor for the monotonic nanosecond readings below (immutable).
    hb_anchor: Instant,
    /// Last heartbeat word observed, packed `(epoch << 32) | beat`, and
    /// when it last *changed* (nanoseconds past `hb_anchor`) — carried
    /// across calls so staleness accrues wall-clock time even though each
    /// individual wait is short.
    hb_word: AtomicU64,
    hb_changed_ns: AtomicU64,
}

impl Clone for DamarisClient {
    fn clone(&self) -> Self {
        DamarisClient {
            id: self.id,
            shared: Arc::clone(&self.shared),
            rec: self.rec.clone(),
            hb_anchor: self.hb_anchor,
            hb_word: AtomicU64::new(self.hb_word.load(Ordering::Relaxed)),
            hb_changed_ns: AtomicU64::new(self.hb_changed_ns.load(Ordering::Relaxed)),
        }
    }
}

/// Packs an `(epoch, beat)` observation into one comparable word.
fn pack_word((epoch, beat): (u32, u32)) -> u64 {
    (u64::from(epoch) << 32) | u64::from(beat)
}

impl DamarisClient {
    pub(crate) fn new(id: u32, shared: Arc<NodeShared>) -> Self {
        let hb_word = AtomicU64::new(pack_word(shared.heartbeat.observe()));
        let rec = shared.obs.client_recorder(id);
        DamarisClient {
            id,
            shared,
            rec,
            hb_anchor: Instant::now(),
            hb_word,
            hb_changed_ns: AtomicU64::new(0),
        }
    }

    /// This client's id within its node (the `source` of its tuples).
    pub fn id(&self) -> u32 {
        self.id
    }

    /// Renews this client's liveness lease. Every API entry point and
    /// every backpressure wait renews automatically; call this directly
    /// from compute phases that go a long time between Damaris calls, so a
    /// busy rank is not mistaken for a dead one.
    ///
    /// Fails with [`DamarisError::ClientFenced`] once the dedicated core's
    /// lease sweeper has revoked the lease — the rank was declared dead,
    /// its resources were reclaimed, and it must stop using the node.
    pub fn renew_lease(&self) -> Result<(), DamarisError> {
        match self.shared.leases.lease(self.id as usize) {
            Some(lease) if lease.renew() => Ok(()),
            _ => Err(self.fenced_err()),
        }
    }

    fn fenced_err(&self) -> DamarisError {
        DamarisError::ClientFenced {
            client: self.id,
            node_id: self.shared.node_id,
        }
    }

    /// Bytes currently reserved in the node's shared buffer — a leak
    /// detector that stays usable after the runtime handle is consumed
    /// (zero at the end of a leak-free run, crashed-and-replayed or not).
    pub fn buffer_in_use(&self) -> usize {
        self.shared.buffer.in_use(self.shared.clients)
    }

    fn lookup(&self, variable: &str) -> Result<(u32, u64), DamarisError> {
        let (id, layout) = self.lookup_def(variable)?;
        if layout.dynamic {
            return Err(DamarisError::wrong_layout_kind(variable, true));
        }
        Ok((id, layout.byte_size()))
    }

    fn lookup_def(&self, variable: &str) -> Result<(u32, &crate::LayoutDef), DamarisError> {
        match self.shared.config.variable_by_name(variable) {
            Some((id, def)) => Ok((id, self.shared.config.layout_of(def))),
            None => Err(DamarisError::unknown_variable(variable)),
        }
    }

    /// Samples the heartbeat word; true once it has been unchanged for the
    /// configured window. A live-but-busy server (long plugin action)
    /// resumes beating and resets the clock before most windows elapse —
    /// the configuration must keep `heartbeat_timeout` above the longest
    /// expected action.
    fn heartbeat_stale(&self) -> bool {
        let word = pack_word(self.shared.heartbeat.observe());
        let elapsed_ns = self.hb_anchor.elapsed().as_nanos() as u64;
        if word != self.hb_word.load(Ordering::Relaxed) {
            self.hb_word.store(word, Ordering::Relaxed);
            self.hb_changed_ns.store(elapsed_ns, Ordering::Relaxed);
            return false;
        }
        let since_change = elapsed_ns.saturating_sub(self.hb_changed_ns.load(Ordering::Relaxed));
        Duration::from_nanos(since_change) >= self.shared.config.resilience.heartbeat_timeout
    }

    /// Resets staleness tracking (after observing recovery).
    fn reset_heartbeat_tracking(&self) {
        let word = pack_word(self.shared.heartbeat.observe());
        self.hb_word.store(word, Ordering::Relaxed);
        self.hb_changed_ns
            .store(self.hb_anchor.elapsed().as_nanos() as u64, Ordering::Relaxed);
    }

    /// Parks until the heartbeat moves again — a new epoch (supervisor
    /// respawned the server) or a resumed beat (false alarm: the old
    /// server was busy, not dead). Fails with `EpeUnavailable` at
    /// `deadline`.
    // ANALYZE: cold — parked waiting out a server respawn; the stall is the failure mode, not jitter
    #[cold]
    fn await_heartbeat(&self, deadline: Instant) -> Result<(), DamarisError> {
        FaultStats::bump(&self.shared.stats.heartbeat_stale_observed);
        let word = self.shared.heartbeat.observe();
        loop {
            // Keep the lease warm while parked: waiting out a respawn must
            // not get this rank declared dead in its own right.
            self.renew_lease()?;
            if self.shared.heartbeat.observe() != word {
                self.reset_heartbeat_tracking();
                return Ok(());
            }
            if Instant::now() >= deadline {
                return Err(DamarisError::EpeUnavailable {
                    node_id: self.shared.node_id,
                    epoch: self.shared.heartbeat.epoch(),
                });
            }
            std::thread::sleep(Duration::from_micros(200));
        }
    }

    /// Reserves a segment, waiting out a full buffer with bounded
    /// exponential backoff until `deadline`. [`ReserveOutcome::TimedOut`]
    /// leaves the policy decision to the caller; [`ReserveOutcome::Stale`]
    /// reports a dead-looking dedicated core; non-transient allocation
    /// errors (`TooLarge`, `BadClient`) return immediately.
    ///
    /// Deadlock note: the server reclaims an iteration's segments once
    /// *every* client of the node has ended that iteration. Clients must
    /// therefore stay loosely synchronized (as halo-exchanging simulations
    /// naturally are) or the buffer must be sized for the maximum
    /// iteration skew — the same constraint the original Damaris has. The
    /// deadline turns that failure mode from a silent hang into an error.
    fn try_reserve(&self, len: usize, deadline: Instant) -> Result<ReserveOutcome, DamarisError> {
        let mut spins = 0u32;
        let mut backoff = Backoff::new(Duration::from_micros(20), Duration::from_millis(2));
        loop {
            match self.shared.buffer.allocate(self.id, len) {
                Ok(seg) => return Ok(ReserveOutcome::Got(seg)),
                Err(AllocError::Full) => {
                    // A rank stuck behind backpressure is alive: renew so
                    // the sweeper distinguishes "waiting" from "dead", and
                    // stop waiting the moment we learn we were fenced.
                    self.renew_lease()?;
                    if self.heartbeat_stale() {
                        return Ok(ReserveOutcome::Stale);
                    }
                    let now = Instant::now();
                    if now >= deadline {
                        return Ok(ReserveOutcome::TimedOut);
                    }
                    if spins < 64 {
                        // The common case: the dedicated core is mid-drain
                        // and space appears within microseconds.
                        spins += 1;
                        std::thread::yield_now();
                    } else {
                        self.backpressure_pause(&mut backoff, deadline - now);
                    }
                }
                Err(e) => return Err(e.into()),
            }
        }
    }

    /// One bounded backoff sleep while the buffer is full. Out-of-line:
    /// a client that reaches this is already stalled on backpressure, so
    /// the sleep is accounted to the wait, not to the write fast path.
    // ANALYZE: cold — backpressure wait; the client is already stalled on a full buffer
    #[cold]
    fn backpressure_pause(&self, backoff: &mut Backoff, remaining: Duration) {
        std::thread::sleep(backoff.delay().min(remaining));
    }

    /// Blocking reservation under the `block` policy: timeout surfaces as
    /// [`DamarisError::Buffer`] with [`AllocError::Full`]; a stale
    /// heartbeat parks for a respawn and surfaces
    /// [`DamarisError::EpeUnavailable`] if none arrives in time.
    fn reserve(&self, len: usize) -> Result<Segment, DamarisError> {
        let timeout = match self.shared.config.resilience.backpressure {
            BackpressurePolicy::Block { timeout } => timeout,
            // The zero-copy path (alloc/commit) has no payload to drop or
            // divert, so lossy policies fall back to a bounded block.
            BackpressurePolicy::DropIteration | BackpressurePolicy::SyncFallback => {
                Duration::from_secs(30)
            }
        };
        let deadline = Instant::now() + timeout;
        loop {
            match self.try_reserve(len, deadline)? {
                ReserveOutcome::Got(seg) => return Ok(seg),
                ReserveOutcome::TimedOut => {
                    return Err(DamarisError::Buffer(AllocError::Full))
                }
                ReserveOutcome::Stale => self.await_heartbeat(deadline)?,
            }
        }
    }

    /// Policy-aware reservation for the write paths. `Ok(None)` means the
    /// payload was consumed by the policy (dropped or written through) and
    /// the write is complete. `layout` is only needed for dynamic-shape
    /// writes (whose shape exists per write); static writes pass `None`
    /// and [`write_through`](Self::write_through) re-derives the layout
    /// off the fast path in the rare case it diverts.
    fn reserve_or_divert(
        &self,
        variable: &str,
        iteration: u32,
        layout: Option<&damaris_format::Layout>,
        data: &[u8],
    ) -> Result<Option<Segment>, DamarisError> {
        match self.shared.config.resilience.backpressure {
            BackpressurePolicy::Block { timeout } => {
                let deadline = Instant::now() + timeout;
                loop {
                    match self.try_reserve(data.len(), deadline)? {
                        ReserveOutcome::Got(seg) => return Ok(Some(seg)),
                        ReserveOutcome::TimedOut => {
                            return Err(DamarisError::Buffer(AllocError::Full))
                        }
                        ReserveOutcome::Stale => self.await_heartbeat(deadline)?,
                    }
                }
            }
            BackpressurePolicy::DropIteration => {
                match self.try_reserve(data.len(), Instant::now() + LOSSY_GRACE)? {
                    ReserveOutcome::Got(seg) => Ok(Some(seg)),
                    ReserveOutcome::TimedOut => {
                        FaultStats::bump(&self.shared.stats.writes_dropped);
                        Ok(None)
                    }
                    ReserveOutcome::Stale => {
                        // Dead server: shed immediately, and separately
                        // count that the loss was liveness-driven.
                        FaultStats::bump(&self.shared.stats.heartbeat_stale_observed);
                        FaultStats::bump(&self.shared.stats.writes_dropped);
                        Ok(None)
                    }
                }
            }
            BackpressurePolicy::SyncFallback => {
                match self.try_reserve(data.len(), Instant::now() + LOSSY_GRACE)? {
                    ReserveOutcome::Got(seg) => Ok(Some(seg)),
                    ReserveOutcome::TimedOut => {
                        self.write_through(variable, iteration, layout, data)?;
                        FaultStats::bump(&self.shared.stats.sync_fallback_writes);
                        Ok(None)
                    }
                    ReserveOutcome::Stale => {
                        FaultStats::bump(&self.shared.stats.heartbeat_stale_observed);
                        self.write_through(variable, iteration, layout, data)?;
                        FaultStats::bump(&self.shared.stats.sync_fallback_writes);
                        Ok(None)
                    }
                }
            }
        }
    }

    /// The `sync-fallback` escape hatch: the compute core writes the
    /// payload to storage itself, through the crash-consistent path. This
    /// pays the I/O jitter Damaris exists to hide — but loses no data and
    /// needs no shared-memory space. `layout: None` (static write)
    /// re-derives the storage layout from the configuration here, off the
    /// fast path.
    // ANALYZE: cold — the sync-fallback escape hatch pays I/O jitter by design
    #[cold]
    fn write_through(
        &self,
        variable: &str,
        iteration: u32,
        layout: Option<&damaris_format::Layout>,
        data: &[u8],
    ) -> Result<(), DamarisError> {
        let derived;
        let layout = match layout {
            Some(l) => l,
            None => {
                derived = self.lookup_def(variable)?.1.storage_layout();
                &derived
            }
        };
        let name = format!(
            "sync-fallback/rank-{}/iter-{:06}-{variable}.sdf",
            self.id, iteration
        );
        let backend = &self.shared.backend;
        let mut writer = backend.begin_sdf(&name)?;
        let path = format!("/iter-{iteration}/rank-{}/{variable}", self.id);
        writer.write_dataset_bytes(
            &path,
            layout,
            data,
            &damaris_format::DatasetOptions::plain()
                .with_attr("iteration", i64::from(iteration))
                .with_attr("source", i64::from(self.id))
                .with_attr("sync_fallback", 1i64),
        )?;
        let total = backend.commit_sdf(writer)?;
        backend.account_bytes(total);
        Ok(())
    }

    /// Journals a write-notification (before the queue push) and returns
    /// its sequence number. `data_crc` is the CRC-32 over the payload's
    /// source bytes — the end-to-end checksum the persist plugin verifies
    /// against the segment before anything reaches a backend. Fails with
    /// [`DamarisError::ClientFenced`] once the sweeper has fenced this
    /// client; the caller must abandon the segment without releasing it.
    fn journal_write(
        &self,
        variable_id: u32,
        iteration: u32,
        segment: &Segment,
        dynamic_layout: Option<&damaris_format::Layout>,
        data_crc: u32,
    ) -> Result<u64, DamarisError> {
        self.shared
            .journal
            .append(
                self.shared.heartbeat.epoch(),
                JournalPayload::Write {
                    variable_id,
                    iteration,
                    source: self.id,
                    offset: segment.offset(),
                    len: segment.len(),
                    dynamic_layout: dynamic_layout.cloned(),
                    data_crc,
                },
            )
            .map_err(|_| self.fenced_err())
    }

    /// Tail of the static-layout write path — memcpy into the segment,
    /// lock-free journal append ([`crate::journal::EventJournal::append_write`]),
    /// queue notification — each under its trace span. The spans chain:
    /// `t` is the previous span's end timestamp, and the return value is
    /// the last span's end, so the whole tail costs three clock reads
    /// instead of six.
    // ANALYZE: hot
    fn copy_and_notify_static(
        &self,
        variable_id: u32,
        iteration: u32,
        mut segment: Segment,
        data: &[u8],
        t: u64,
    ) -> Result<u64, DamarisError> {
        // CRC the *source* bytes before the copy: if the copy tears (rank
        // killed mid-`memcpy`), the journaled checksum still describes the
        // intended payload, so the torn segment can never match it.
        let data_crc = damaris_format::crc32(data);
        segment.copy_from_slice(data);
        let t = self
            .rec
            .end(EventKind::Memcpy, iteration, data.len() as u64, t);
        let seq = match self.shared.journal.append_write(
            self.shared.heartbeat.epoch(),
            variable_id,
            iteration,
            self.id,
            segment.offset(),
            segment.len(),
            data_crc,
        ) {
            Ok(seq) => seq,
            Err(_) => {
                // Fenced mid-write: this client may neither notify nor
                // release. Dropping the handle leaves the bytes reserved;
                // the sweeper's `revoke_remaining` reclaims them.
                drop(segment);
                return Err(self.fenced_err());
            }
        };
        let t = self.rec.end(EventKind::JournalAppend, iteration, 0, t);
        self.shared.queue.push_wait(Event::Write {
            variable_id,
            iteration,
            source: self.id,
            segment,
            dynamic_layout: None,
            seq,
            data_crc,
        });
        Ok(self.rec.end(EventKind::QueuePush, iteration, 0, t))
    }

    /// Tail of the dynamic-shape write path: same steps as
    /// [`copy_and_notify_static`](Self::copy_and_notify_static), but the
    /// per-write layout travels with the record, which makes the journal
    /// append take the mutex path (it allocates regardless).
    fn copy_and_notify_dynamic(
        &self,
        variable_id: u32,
        iteration: u32,
        mut segment: Segment,
        dynamic_layout: damaris_format::Layout,
        data: &[u8],
        t: u64,
    ) -> Result<u64, DamarisError> {
        // See copy_and_notify_static: checksum the source, then copy.
        let data_crc = damaris_format::crc32(data);
        segment.copy_from_slice(data);
        let t = self
            .rec
            .end(EventKind::Memcpy, iteration, data.len() as u64, t);
        let seq = match self.journal_write(
            variable_id,
            iteration,
            &segment,
            Some(&dynamic_layout),
            data_crc,
        ) {
            Ok(seq) => seq,
            Err(e) => {
                // Fenced mid-write: abandon the segment for the sweeper.
                drop(segment);
                return Err(e);
            }
        };
        let t = self.rec.end(EventKind::JournalAppend, iteration, 0, t);
        self.shared.queue.push_wait(Event::Write {
            variable_id,
            iteration,
            source: self.id,
            segment,
            dynamic_layout: Some(dynamic_layout),
            seq,
            data_crc,
        });
        Ok(self.rec.end(EventKind::QueuePush, iteration, 0, t))
    }

    /// `df_write`: copies `data` into shared memory and notifies the
    /// dedicated core. The byte length must match the variable's layout.
    ///
    /// When the buffer is full, the configured backpressure policy decides
    /// between blocking (bounded, the default), dropping the payload, or
    /// writing it through to storage synchronously — see
    /// [`crate::config::BackpressurePolicy`].
    // ANALYZE: hot(strict)
    pub fn write(&self, variable: &str, iteration: u32, data: &[u8]) -> Result<(), DamarisError> {
        self.renew_lease()?;
        // One timestamp opens both the WriteCall and AllocWait spans (the
        // nanoscale name lookup rides inside AllocWait); the inner spans
        // chain end-to-start from here, so a fully traced write costs six
        // clock reads, not ten.
        let t_call = self.rec.begin();
        let (variable_id, expected) = self.lookup(variable)?;
        if data.len() as u64 != expected {
            return Err(DamarisError::layout_mismatch(
                variable,
                expected,
                data.len() as u64,
            ));
        }
        let segment = match self.reserve_or_divert(variable, iteration, None, data)? {
            Some(segment) => segment,
            None => {
                // Policy consumed the payload (dropped or written through):
                // the wait shows up as backpressure, not alloc time.
                self.rec
                    .end(EventKind::Backpressure, iteration, data.len() as u64, t_call);
                return Ok(());
            }
        };
        let t = self
            .rec
            .end(EventKind::AllocWait, iteration, data.len() as u64, t_call);
        let t_end = self.copy_and_notify_static(variable_id, iteration, segment, data, t)?;
        self.rec
            .span_at(EventKind::WriteCall, iteration, data.len() as u64, t_call, t_end);
        Ok(())
    }

    /// Writes a *dynamic-shape* variable (declared with `dimensions="?"`):
    /// the shape travels with the write — the paper's API for arrays
    /// without a static shape, e.g. per-rank particle sets (§III-D).
    pub fn write_dynamic(
        &self,
        variable: &str,
        iteration: u32,
        dims: &[u64],
        data: &[u8],
    ) -> Result<(), DamarisError> {
        self.renew_lease()?;
        let (variable_id, layout_def) = self.lookup_def(variable)?;
        if !layout_def.dynamic {
            return Err(DamarisError::wrong_layout_kind(variable, false));
        }
        let layout = damaris_format::Layout::new(layout_def.dtype, dims);
        if data.len() as u64 != layout.byte_size() {
            return Err(DamarisError::layout_mismatch(
                variable,
                layout.byte_size(),
                data.len() as u64,
            ));
        }
        let t_call = self.rec.begin();
        let segment = match self.reserve_or_divert(variable, iteration, Some(&layout), data)? {
            Some(segment) => segment,
            None => {
                // Policy consumed the payload (dropped or written through).
                self.rec
                    .end(EventKind::Backpressure, iteration, data.len() as u64, t_call);
                return Ok(());
            }
        };
        let t = self
            .rec
            .end(EventKind::AllocWait, iteration, data.len() as u64, t_call);
        let t_end = self.copy_and_notify_dynamic(variable_id, iteration, segment, layout, data, t)?;
        self.rec
            .span_at(EventKind::WriteCall, iteration, data.len() as u64, t_call, t_end);
        Ok(())
    }

    /// Typed wrapper over [`DamarisClient::write_dynamic`] for f32 data.
    pub fn write_dynamic_f32(
        &self,
        variable: &str,
        iteration: u32,
        dims: &[u64],
        data: &[f32],
    ) -> Result<(), DamarisError> {
        let bytes: Vec<u8> = data.iter().flat_map(|v| v.to_le_bytes()).collect();
        self.write_dynamic(variable, iteration, dims, &bytes)
    }

    /// Typed convenience wrapper over [`DamarisClient::write`] for `f32`
    /// variables.
    pub fn write_f32(
        &self,
        variable: &str,
        iteration: u32,
        data: &[f32],
    ) -> Result<(), DamarisError> {
        let bytes: Vec<u8> = data.iter().flat_map(|v| v.to_le_bytes()).collect();
        self.write(variable, iteration, &bytes)
    }

    /// Typed convenience wrapper for `f64` variables.
    pub fn write_f64(
        &self,
        variable: &str,
        iteration: u32,
        data: &[f64],
    ) -> Result<(), DamarisError> {
        let bytes: Vec<u8> = data.iter().flat_map(|v| v.to_le_bytes()).collect();
        self.write(variable, iteration, &bytes)
    }

    /// `dc_alloc`: reserves the variable's segment for in-place production
    /// — the zero-copy path (§III-C). Write into
    /// [`AllocatedRegion::as_mut_slice`], then [`AllocatedRegion::commit`].
    pub fn alloc(&self, variable: &str, iteration: u32) -> Result<AllocatedRegion, DamarisError> {
        self.renew_lease()?;
        let (variable_id, bytes) = self.lookup(variable)?;
        let t_alloc = self.rec.begin();
        let segment = self.reserve(bytes as usize)?;
        self.rec.end(EventKind::AllocWait, iteration, bytes, t_alloc);
        Ok(AllocatedRegion {
            client: self.clone(),
            variable_id,
            iteration,
            segment: Some(segment),
        })
    }

    /// `df_signal`: sends a user-defined event; the dedicated core runs the
    /// actions bound to it in the configuration.
    pub fn signal(&self, event: &str, iteration: u32) -> Result<(), DamarisError> {
        self.renew_lease()?;
        if self.shared.config.bindings_for(event).is_empty() {
            return Err(DamarisError::UnknownEvent(event.to_string()));
        }
        let seq = self
            .shared
            .journal
            .append(
                self.shared.heartbeat.epoch(),
                JournalPayload::User {
                    name: event.to_string(),
                    iteration,
                    source: self.id,
                },
            )
            .map_err(|_| self.fenced_err())?;
        self.shared.queue.push_wait(Event::User {
            name: event.to_string(),
            iteration,
            source: self.id,
            seq,
        });
        Ok(())
    }

    /// Declares this client done with `iteration`. When every client of
    /// the node has done so, iteration-scoped actions (persistence by
    /// default) fire on the dedicated core.
    pub fn end_iteration(&self, iteration: u32) -> Result<(), DamarisError> {
        self.renew_lease()?;
        let seq = self
            .shared
            .journal
            .append(
                self.shared.heartbeat.epoch(),
                JournalPayload::EndIteration {
                    iteration,
                    source: self.id,
                },
            )
            .map_err(|_| self.fenced_err())?;
        self.shared.queue.push_wait(Event::EndIteration {
            iteration,
            source: self.id,
            seq,
        });
        Ok(())
    }

    /// Chaos hook: models this rank dying right after `dc_alloc` — the
    /// reservation is abandoned *un-journaled*, exactly what a kill
    /// between the reserve and the first journal append leaves behind. The
    /// bytes stay reserved until the lease sweeper fences the rank and
    /// reclaims its partition. Returns the number of bytes leaked, for
    /// tests to assert against `segments_reclaimed`.
    pub fn die_during_alloc(&self, variable: &str) -> Result<usize, DamarisError> {
        let (_variable_id, bytes) = self.lookup(variable)?;
        let segment = self.reserve(bytes as usize)?;
        let leaked = segment.len();
        // A dead process runs no cleanup: dropping the bare handle without
        // releasing models that (Segment's drop is a no-op by design).
        drop(segment);
        Ok(leaked)
    }

    /// Chaos hook: models this rank dying mid-`memcpy` with the
    /// write-notification already issued — the journal entry and queue
    /// event carry the CRC-32 of the *intended* payload, but only the
    /// first half of the bytes landed in shared memory. However the torn
    /// window arises (killed DMA, unflushed stores, plain corruption),
    /// the persist plugin's end-to-end CRC check must quarantine the
    /// segment instead of writing it to storage.
    pub fn die_during_write(
        &self,
        variable: &str,
        iteration: u32,
        data: &[u8],
    ) -> Result<(), DamarisError> {
        let (variable_id, expected) = self.lookup(variable)?;
        if data.len() as u64 != expected {
            return Err(DamarisError::LayoutMismatch {
                variable: variable.to_string(),
                expected,
                actual: data.len() as u64,
            });
        }
        let mut segment = self.reserve(data.len())?;
        let data_crc = damaris_format::crc32(data);
        // Only the first half of the payload lands before the "kill".
        let torn = data.len() / 2;
        segment.as_mut_slice()[..torn].copy_from_slice(&data[..torn]);
        let seq = self.journal_write(variable_id, iteration, &segment, None, data_crc)?;
        self.shared.queue.push_wait(Event::Write {
            variable_id,
            iteration,
            source: self.id,
            segment,
            dynamic_layout: None,
            seq,
            data_crc,
        });
        Ok(())
    }
}

impl std::fmt::Debug for DamarisClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "DamarisClient(id={})", self.id)
    }
}

/// A zero-copy reservation: the simulation computes directly in shared
/// memory, then commits. Dropping without committing returns the segment.
pub struct AllocatedRegion {
    client: DamarisClient,
    variable_id: u32,
    iteration: u32,
    segment: Option<Segment>,
}

impl AllocatedRegion {
    /// The writable shared-memory window.
    pub fn as_mut_slice(&mut self) -> &mut [u8] {
        self.segment
            .as_mut()
            // invariant: only `commit` (which consumes self) takes the
            // segment; a live `&mut self` implies it is still here.
            .expect("region still owned")
            .as_mut_slice()
    }

    /// Typed f32 view (the common case for CM1-style variables).
    pub fn as_mut_f32(&mut self) -> &mut [f32] {
        let bytes = self.as_mut_slice();
        assert_eq!(bytes.len() % 4, 0, "layout is not f32-sized");
        // SAFETY: alignment is guaranteed by the allocators' 8-byte
        // alignment; length checked above; f32 has no invalid bit patterns.
        unsafe {
            std::slice::from_raw_parts_mut(bytes.as_mut_ptr() as *mut f32, bytes.len() / 4)
        }
    }

    /// `dc_commit`: stamps the region's end-to-end CRC-32 and informs the
    /// dedicated core that the data is ready.
    ///
    /// Fails with [`DamarisError::ClientFenced`] if the lease sweeper
    /// fenced this client while it was producing; the segment is then
    /// abandoned for the sweeper to reclaim.
    pub fn commit(mut self) -> Result<(), DamarisError> {
        // invariant: `commit` consumes self, so the segment is present.
        let segment = self.segment.take().expect("commit called once");
        let rec = &self.client.rec;
        let t = rec.begin();
        // The zero-copy path produced directly in shared memory, so the
        // segment *is* the source: checksum what was actually committed.
        let data_crc = damaris_format::crc32(segment.as_slice());
        // Zero-copy commits are static-layout by construction: take the
        // same lock-free journal path as `write`.
        let seq = match self.client.shared.journal.append_write(
            self.client.shared.heartbeat.epoch(),
            self.variable_id,
            self.iteration,
            self.client.id,
            segment.offset(),
            segment.len(),
            data_crc,
        ) {
            Ok(seq) => seq,
            Err(_) => {
                // Fenced: may neither notify nor release — the sweeper's
                // `revoke_remaining` reclaims the bytes.
                drop(segment);
                return Err(self.client.fenced_err());
            }
        };
        let t = rec.end(EventKind::JournalAppend, self.iteration, 0, t);
        self.client.shared.queue.push_wait(Event::Write {
            variable_id: self.variable_id,
            iteration: self.iteration,
            source: self.client.id,
            segment,
            dynamic_layout: None,
            seq,
            data_crc,
        });
        rec.end(EventKind::QueuePush, self.iteration, 0, t);
        Ok(())
    }
}

impl Drop for AllocatedRegion {
    fn drop(&mut self) {
        let Some(segment) = self.segment.take() else {
            return;
        };
        // Not committed. The client must NOT release the segment itself:
        // partition-mode reclamation is FIFO in allocation order and owned
        // by the dedicated core, and an earlier write of this client may
        // still be server-resident — releasing out of order from this
        // thread would corrupt the ring. Journal the abandonment and ship
        // the segment to the server, which releases it in sequence order
        // at this iteration's flush.
        let client = &self.client;
        match client.shared.journal.append(
            client.shared.heartbeat.epoch(),
            JournalPayload::Abandon {
                iteration: self.iteration,
                source: client.id,
                offset: segment.offset(),
                len: segment.len(),
            },
        ) {
            Ok(seq) => client.shared.queue.push_wait(Event::Abandon {
                iteration: self.iteration,
                source: client.id,
                segment,
                seq,
            }),
            // Fenced while holding the region: drop the handle and let the
            // sweeper's `revoke_remaining` reclaim the bytes.
            Err(_) => drop(segment),
        }
    }
}
