//! The client-side API (paper §III-D).
//!
//! Mirrors the paper's C interface:
//!
//! | paper                          | here                                |
//! |--------------------------------|-------------------------------------|
//! | `df_initialize`/`df_finalize`  | [`crate::NodeRuntime`] lifecycle    |
//! | `df_write(var, step, data)`    | [`DamarisClient::write`]            |
//! | `df_signal(event, step)`       | [`DamarisClient::signal`]           |
//! | `dc_alloc`/`dc_commit`         | [`DamarisClient::alloc`]/[`AllocatedRegion::commit`] |
//!
//! A `write` is one shared-memory reservation, one `memcpy`, one queue
//! push — nothing else; the client returns to computation immediately.

use crate::config::BackpressurePolicy;
use crate::error::DamarisError;
use crate::event::Event;
use crate::node::{FaultStats, NodeShared};
use crate::retry::Backoff;
use damaris_shm::{AllocError, Segment};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How long the lossy policies (`drop`, `sync-fallback`) still wait for
/// space before giving up on shared memory — long enough to ride out a
/// momentary collision with the allocator, short enough that the client
/// never visibly stalls.
const LOSSY_GRACE: Duration = Duration::from_millis(2);

/// Handle held by one compute core.
#[derive(Clone)]
pub struct DamarisClient {
    id: u32,
    shared: Arc<NodeShared>,
}

impl DamarisClient {
    pub(crate) fn new(id: u32, shared: Arc<NodeShared>) -> Self {
        DamarisClient { id, shared }
    }

    /// This client's id within its node (the `source` of its tuples).
    pub fn id(&self) -> u32 {
        self.id
    }

    fn lookup(&self, variable: &str) -> Result<(u32, u64), DamarisError> {
        let (id, layout) = self.lookup_def(variable)?;
        if layout.dynamic {
            return Err(DamarisError::Config(format!(
                "variable '{variable}' has a dynamic layout; use write_dynamic"
            )));
        }
        Ok((id, layout.byte_size()))
    }

    fn lookup_def(&self, variable: &str) -> Result<(u32, &crate::LayoutDef), DamarisError> {
        let id = self
            .shared
            .config
            .variable_id(variable)
            .ok_or_else(|| DamarisError::UnknownVariable(variable.to_string()))?;
        // invariant: `variable_id` returned this id one line above.
        let def = self.shared.config.variable(id).expect("id just resolved");
        Ok((id, self.shared.config.layout_of(def)))
    }

    /// Reserves a segment, waiting out a full buffer with bounded
    /// exponential backoff until `deadline`. Returns `Ok(None)` on timeout
    /// (the caller's backpressure policy decides what that means);
    /// non-transient allocation errors (`TooLarge`, `BadClient`) return
    /// immediately.
    ///
    /// Deadlock note: the server reclaims an iteration's segments once
    /// *every* client of the node has ended that iteration. Clients must
    /// therefore stay loosely synchronized (as halo-exchanging simulations
    /// naturally are) or the buffer must be sized for the maximum
    /// iteration skew — the same constraint the original Damaris has. The
    /// deadline turns that failure mode from a silent hang into an error.
    fn try_reserve(&self, len: usize, deadline: Instant) -> Result<Option<Segment>, DamarisError> {
        let mut spins = 0u32;
        let mut backoff = Backoff::new(Duration::from_micros(20), Duration::from_millis(2));
        loop {
            match self.shared.buffer.allocate(self.id, len) {
                Ok(seg) => return Ok(Some(seg)),
                Err(AllocError::Full) => {
                    let now = Instant::now();
                    if now >= deadline {
                        return Ok(None);
                    }
                    if spins < 64 {
                        // The common case: the dedicated core is mid-drain
                        // and space appears within microseconds.
                        spins += 1;
                        std::thread::yield_now();
                    } else {
                        let remaining = deadline - now;
                        std::thread::sleep(backoff.delay().min(remaining));
                    }
                }
                Err(e) => return Err(e.into()),
            }
        }
    }

    /// Blocking reservation under the `block` policy: timeout surfaces as
    /// [`DamarisError::Buffer`] with [`AllocError::Full`].
    fn reserve(&self, len: usize) -> Result<Segment, DamarisError> {
        let timeout = match self.shared.config.resilience.backpressure {
            BackpressurePolicy::Block { timeout } => timeout,
            // The zero-copy path (alloc/commit) has no payload to drop or
            // divert, so lossy policies fall back to a bounded block.
            BackpressurePolicy::DropIteration | BackpressurePolicy::SyncFallback => {
                Duration::from_secs(30)
            }
        };
        self.try_reserve(len, Instant::now() + timeout)?
            .ok_or(DamarisError::Buffer(AllocError::Full))
    }

    /// Policy-aware reservation for the write paths. `Ok(None)` means the
    /// payload was consumed by the policy (dropped or written through) and
    /// the write is complete.
    fn reserve_or_divert(
        &self,
        variable: &str,
        iteration: u32,
        layout: &damaris_format::Layout,
        data: &[u8],
    ) -> Result<Option<Segment>, DamarisError> {
        match self.shared.config.resilience.backpressure {
            BackpressurePolicy::Block { timeout } => self
                .try_reserve(data.len(), Instant::now() + timeout)?
                .ok_or(DamarisError::Buffer(AllocError::Full))
                .map(Some),
            BackpressurePolicy::DropIteration => {
                match self.try_reserve(data.len(), Instant::now() + LOSSY_GRACE)? {
                    Some(seg) => Ok(Some(seg)),
                    None => {
                        FaultStats::bump(&self.shared.stats.writes_dropped);
                        Ok(None)
                    }
                }
            }
            BackpressurePolicy::SyncFallback => {
                match self.try_reserve(data.len(), Instant::now() + LOSSY_GRACE)? {
                    Some(seg) => Ok(Some(seg)),
                    None => {
                        self.write_through(variable, iteration, layout, data)?;
                        FaultStats::bump(&self.shared.stats.sync_fallback_writes);
                        Ok(None)
                    }
                }
            }
        }
    }

    /// The `sync-fallback` escape hatch: the compute core writes the
    /// payload to storage itself, through the crash-consistent path. This
    /// pays the I/O jitter Damaris exists to hide — but loses no data and
    /// needs no shared-memory space.
    fn write_through(
        &self,
        variable: &str,
        iteration: u32,
        layout: &damaris_format::Layout,
        data: &[u8],
    ) -> Result<(), DamarisError> {
        let name = format!(
            "sync-fallback/rank-{}/iter-{:06}-{variable}.sdf",
            self.id, iteration
        );
        let backend = &self.shared.backend;
        let mut writer = backend.begin_sdf(&name)?;
        let path = format!("/iter-{iteration}/rank-{}/{variable}", self.id);
        writer.write_dataset_bytes(
            &path,
            layout,
            data,
            &damaris_format::DatasetOptions::plain()
                .with_attr("iteration", i64::from(iteration))
                .with_attr("source", i64::from(self.id))
                .with_attr("sync_fallback", 1i64),
        )?;
        let total = backend.commit_sdf(writer)?;
        backend.account_bytes(total);
        Ok(())
    }

    /// `df_write`: copies `data` into shared memory and notifies the
    /// dedicated core. The byte length must match the variable's layout.
    ///
    /// When the buffer is full, the configured backpressure policy decides
    /// between blocking (bounded, the default), dropping the payload, or
    /// writing it through to storage synchronously — see
    /// [`crate::config::BackpressurePolicy`].
    pub fn write(&self, variable: &str, iteration: u32, data: &[u8]) -> Result<(), DamarisError> {
        let (variable_id, expected) = self.lookup(variable)?;
        if data.len() as u64 != expected {
            return Err(DamarisError::LayoutMismatch {
                variable: variable.to_string(),
                expected,
                actual: data.len() as u64,
            });
        }
        let layout = {
            let def = self
                .shared
                .config
                .variable(variable_id)
                // invariant: id came from `lookup` on the same config.
                .expect("id just resolved");
            self.shared.config.layout_of(def).storage_layout()
        };
        let mut segment = match self.reserve_or_divert(variable, iteration, &layout, data)? {
            Some(segment) => segment,
            None => return Ok(()), // policy consumed the payload
        };
        segment.copy_from_slice(data);
        self.shared.queue.push_wait(Event::Write {
            variable_id,
            iteration,
            source: self.id,
            segment,
            dynamic_layout: None,
        });
        Ok(())
    }

    /// Writes a *dynamic-shape* variable (declared with `dimensions="?"`):
    /// the shape travels with the write — the paper's API for arrays
    /// without a static shape, e.g. per-rank particle sets (§III-D).
    pub fn write_dynamic(
        &self,
        variable: &str,
        iteration: u32,
        dims: &[u64],
        data: &[u8],
    ) -> Result<(), DamarisError> {
        let (variable_id, layout_def) = self.lookup_def(variable)?;
        if !layout_def.dynamic {
            return Err(DamarisError::Config(format!(
                "variable '{variable}' has a static layout; use write"
            )));
        }
        let layout = damaris_format::Layout::new(layout_def.dtype, dims);
        if data.len() as u64 != layout.byte_size() {
            return Err(DamarisError::LayoutMismatch {
                variable: variable.to_string(),
                expected: layout.byte_size(),
                actual: data.len() as u64,
            });
        }
        let mut segment = match self.reserve_or_divert(variable, iteration, &layout, data)? {
            Some(segment) => segment,
            None => return Ok(()), // policy consumed the payload
        };
        segment.copy_from_slice(data);
        self.shared.queue.push_wait(Event::Write {
            variable_id,
            iteration,
            source: self.id,
            segment,
            dynamic_layout: Some(layout),
        });
        Ok(())
    }

    /// Typed wrapper over [`DamarisClient::write_dynamic`] for f32 data.
    pub fn write_dynamic_f32(
        &self,
        variable: &str,
        iteration: u32,
        dims: &[u64],
        data: &[f32],
    ) -> Result<(), DamarisError> {
        let bytes: Vec<u8> = data.iter().flat_map(|v| v.to_le_bytes()).collect();
        self.write_dynamic(variable, iteration, dims, &bytes)
    }

    /// Typed convenience wrapper over [`DamarisClient::write`] for `f32`
    /// variables.
    pub fn write_f32(
        &self,
        variable: &str,
        iteration: u32,
        data: &[f32],
    ) -> Result<(), DamarisError> {
        let bytes: Vec<u8> = data.iter().flat_map(|v| v.to_le_bytes()).collect();
        self.write(variable, iteration, &bytes)
    }

    /// Typed convenience wrapper for `f64` variables.
    pub fn write_f64(
        &self,
        variable: &str,
        iteration: u32,
        data: &[f64],
    ) -> Result<(), DamarisError> {
        let bytes: Vec<u8> = data.iter().flat_map(|v| v.to_le_bytes()).collect();
        self.write(variable, iteration, &bytes)
    }

    /// `dc_alloc`: reserves the variable's segment for in-place production
    /// — the zero-copy path (§III-C). Write into
    /// [`AllocatedRegion::as_mut_slice`], then [`AllocatedRegion::commit`].
    pub fn alloc(&self, variable: &str, iteration: u32) -> Result<AllocatedRegion, DamarisError> {
        let (variable_id, bytes) = self.lookup(variable)?;
        let segment = self.reserve(bytes as usize)?;
        Ok(AllocatedRegion {
            client: self.clone(),
            variable_id,
            iteration,
            segment: Some(segment),
        })
    }

    /// `df_signal`: sends a user-defined event; the dedicated core runs the
    /// actions bound to it in the configuration.
    pub fn signal(&self, event: &str, iteration: u32) -> Result<(), DamarisError> {
        if self.shared.config.bindings_for(event).is_empty() {
            return Err(DamarisError::UnknownEvent(event.to_string()));
        }
        self.shared.queue.push_wait(Event::User {
            name: event.to_string(),
            iteration,
            source: self.id,
        });
        Ok(())
    }

    /// Declares this client done with `iteration`. When every client of
    /// the node has done so, iteration-scoped actions (persistence by
    /// default) fire on the dedicated core.
    pub fn end_iteration(&self, iteration: u32) -> Result<(), DamarisError> {
        self.shared.queue.push_wait(Event::EndIteration {
            iteration,
            source: self.id,
        });
        Ok(())
    }
}

impl std::fmt::Debug for DamarisClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "DamarisClient(id={})", self.id)
    }
}

/// A zero-copy reservation: the simulation computes directly in shared
/// memory, then commits. Dropping without committing returns the segment.
pub struct AllocatedRegion {
    client: DamarisClient,
    variable_id: u32,
    iteration: u32,
    segment: Option<Segment>,
}

impl AllocatedRegion {
    /// The writable shared-memory window.
    pub fn as_mut_slice(&mut self) -> &mut [u8] {
        self.segment
            .as_mut()
            // invariant: only `commit` (which consumes self) takes the
            // segment; a live `&mut self` implies it is still here.
            .expect("region still owned")
            .as_mut_slice()
    }

    /// Typed f32 view (the common case for CM1-style variables).
    pub fn as_mut_f32(&mut self) -> &mut [f32] {
        let bytes = self.as_mut_slice();
        assert_eq!(bytes.len() % 4, 0, "layout is not f32-sized");
        // SAFETY: alignment is guaranteed by the allocators' 8-byte
        // alignment; length checked above; f32 has no invalid bit patterns.
        unsafe {
            std::slice::from_raw_parts_mut(bytes.as_mut_ptr() as *mut f32, bytes.len() / 4)
        }
    }

    /// `dc_commit`: informs the dedicated core that the data is ready.
    pub fn commit(mut self) {
        // invariant: `commit` consumes self, so the segment is present.
        let segment = self.segment.take().expect("commit called once");
        self.client.shared.queue.push_wait(Event::Write {
            variable_id: self.variable_id,
            iteration: self.iteration,
            source: self.client.id,
            segment,
            dynamic_layout: None,
        });
    }
}

impl Drop for AllocatedRegion {
    fn drop(&mut self) {
        if let Some(segment) = self.segment.take() {
            // Not committed: hand the reservation back.
            self.client.shared.buffer.release(self.client.id, segment);
        }
    }
}
