//! The EPE's storage-pressure state machine.
//!
//! A node writing into a quota-limited backend (see
//! [`damaris_fs::DiskSentinel`]) degrades in stages instead of spinning on
//! `ENOSPC`:
//!
//! ```text
//!             used >= high watermark,            used >= quota
//!             or a permanent persist error
//!   Normal  ────────────────────────────▶  Degraded  ───────▶  ReadOnly
//!     ▲                                      │  ▲                 │
//!     └──────────────────────────────────────┘  └─────────────────┘
//!        used < low watermark (hysteresis)        used < quota
//! ```
//!
//! * **Degraded** — space is running out. Work that *amplifies* disk usage
//!   stops: every registered compactor pause flag is raised, and
//!   [`damaris_fs::manifest::gc_superseded`] aggressively reclaims iteration
//!   files already covered by compacted spans (plus orphan compactor tmps).
//!   Persisting continues — persist errors are now classified, so a
//!   permanent `ENOSPC` degrades the iteration immediately instead of
//!   burning the retry deadline.
//! * **ReadOnly** — the quota is exhausted. New iterations are *shed*
//!   according to `<resilience on_disk_full=…>` (`block` holds them
//!   resident, `drop-iteration` discards them, `partial` lets persist fail
//!   fast); leases, heartbeats, the journal, and the query tier keep
//!   serving throughout.
//! * The descent is mirrored by a re-ascent: when space returns (files
//!   gc'd, quota raised by an operator or a chaos scenario), the node steps
//!   back to Degraded and — once usage falls below the *low* watermark —
//!   all the way to Normal, unpausing the compactor.
//!
//! The machine is polled by the dedicated-core loop on every pass (and
//! while idle), so transitions are observed even when no events flow. All
//! state is atomic; [`PressureMachine::poll`] is only ever called from the
//! server thread, but `state()` may be read from anywhere.

use crate::node::FaultStats;
use damaris_fs::{PressureLevel, StorageBackend};
use damaris_obs::{EventKind, Recorder};
use damaris_shm::sync::{AtomicBool, AtomicU8, Ordering};
use std::sync::{Arc, Mutex};

/// The node's storage-pressure state. Discriminants are stable: they are
/// what the `PressureTransition` trace record carries in its `bytes` field.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum PressureState {
    /// Space is fine; everything runs.
    Normal = 0,
    /// High watermark crossed (or a permanent persist error seen):
    /// compaction paused, superseded files gc'd, persist fails fast on
    /// `ENOSPC`.
    Degraded = 1,
    /// Quota exhausted: new iterations are shed per `on_disk_full`.
    ReadOnly = 2,
}

impl PressureState {
    fn from_u8(v: u8) -> PressureState {
        match v {
            1 => PressureState::Degraded,
            2 => PressureState::ReadOnly,
            _ => PressureState::Normal,
        }
    }

    /// Stable lowercase label (log lines, chaos transcripts).
    pub fn label(self) -> &'static str {
        match self {
            PressureState::Normal => "normal",
            PressureState::Degraded => "degraded",
            PressureState::ReadOnly => "read-only",
        }
    }
}

/// See the module docs. One per node, owned by `NodeShared`.
#[derive(Debug)]
pub struct PressureMachine {
    state: AtomicU8,
    /// Set by the persist path when it classifies an error as permanent
    /// (`ENOSPC`/`EDQUOT`/`EROFS`); consumed by the next poll so the
    /// machine degrades even if the sentinel's watermark math would not
    /// have tripped yet (e.g. the real disk filled, not the quota).
    no_space_hint: AtomicBool,
    /// Compactor pause flags raised while degraded. Registered by the
    /// embedder (the compactor lives in `damaris-query`, which *depends
    /// on* this crate — the flags keep the dependency one-way).
    pause_flags: Mutex<Vec<Arc<AtomicBool>>>,
}

impl PressureMachine {
    pub fn new() -> PressureMachine {
        PressureMachine {
            state: AtomicU8::new(PressureState::Normal as u8),
            no_space_hint: AtomicBool::new(false),
            pause_flags: Mutex::new(Vec::new()),
        }
    }

    /// The current state.
    pub fn state(&self) -> PressureState {
        PressureState::from_u8(self.state.load(Ordering::Acquire))
    }

    /// Whether new iterations must be shed right now.
    pub fn is_read_only(&self) -> bool {
        self.state() == PressureState::ReadOnly
    }

    /// Registers a pause flag the machine raises while not `Normal` and
    /// clears on recovery (typically `Compactor::pause_flag()`). A flag
    /// registered mid-incident is raised immediately.
    pub fn register_pause_flag(&self, flag: Arc<AtomicBool>) {
        // invariant: the registry mutex is only held briefly here and in
        // set_paused; neither path can re-enter.
        let mut flags = self.pause_flags.lock().expect("pause flag registry poisoned");
        // Relaxed: the flag is a control bit, not a publication — nothing
        // is transferred through it. The compactor may observe a raise a
        // beat late; its safety against concurrent gc comes from the
        // manifest lock and idempotent commits, not from this ordering.
        flag.store(self.state() != PressureState::Normal, Ordering::Relaxed);
        flags.push(flag);
    }

    /// Flags a permanent (out-of-space class) persist error; the next
    /// poll escalates at least to `Degraded`.
    pub fn note_no_space(&self) {
        self.no_space_hint.store(true, Ordering::Release);
    }

    fn set_paused(&self, paused: bool) {
        // invariant: see register_pause_flag.
        let flags = self.pause_flags.lock().expect("pause flag registry poisoned");
        for flag in flags.iter() {
            // Relaxed: see register_pause_flag — a control bit, not a
            // publication.
            flag.store(paused, Ordering::Relaxed);
        }
    }

    /// One transition with its side effects: counters, the trace event,
    /// pause flags, and — on every entry into `Degraded` — the aggressive
    /// gc of superseded files so descent actually frees space.
    #[allow(clippy::too_many_arguments)]
    fn transition(
        &self,
        node_id: u32,
        from: PressureState,
        to: PressureState,
        backend: &dyn StorageBackend,
        stats: &FaultStats,
        rec: &Recorder,
        iteration: u32,
    ) {
        self.state.store(to as u8, Ordering::Release);
        rec.event(EventKind::PressureTransition, iteration, to as u64, 0);
        match to {
            PressureState::Degraded => {
                FaultStats::bump(&stats.storage_pressure_degraded);
                self.set_paused(true);
                match damaris_fs::manifest::gc_superseded(backend.root(), backend.sentinel()) {
                    Ok((files, bytes)) => {
                        stats.storage_pressure_gc_bytes.add(bytes);
                        eprintln!(
                            "[damaris node {node_id}] storage pressure: {} -> degraded \
                             (compactor paused; gc reclaimed {files} file(s), {bytes}B)",
                            from.label()
                        );
                    }
                    Err(e) => eprintln!(
                        "[damaris node {node_id}] storage pressure: {} -> degraded \
                         (compactor paused; gc failed: {e})",
                        from.label()
                    ),
                }
            }
            PressureState::ReadOnly => {
                FaultStats::bump(&stats.storage_pressure_readonly);
                eprintln!(
                    "[damaris node {node_id}] storage pressure: {} -> read-only \
                     (quota exhausted; shedding new iterations)",
                    from.label()
                );
            }
            PressureState::Normal => {
                FaultStats::bump(&stats.storage_pressure_recovered);
                self.set_paused(false);
                eprintln!(
                    "[damaris node {node_id}] storage pressure: {} -> normal \
                     (space recovered; compactor resumed)",
                    from.label()
                );
            }
        }
    }

    /// Advances the machine against the backend's sentinel, applying every
    /// transition the current level implies (a quota squeezed straight to
    /// zero steps Normal → Degraded → ReadOnly in one poll, each counted).
    /// Dormant (`Normal`, no side effects) when the backend has no
    /// sentinel. Returns the settled state.
    pub(crate) fn poll(
        &self,
        node_id: u32,
        backend: &dyn StorageBackend,
        stats: &FaultStats,
        rec: &Recorder,
        iteration: u32,
    ) -> PressureState {
        let Some(sentinel) = backend.sentinel() else {
            return self.state();
        };
        let level = sentinel.level();
        let hint = self.no_space_hint.swap(false, Ordering::AcqRel);
        let mut cur = self.state();
        loop {
            let next = match cur {
                PressureState::Normal if level != PressureLevel::Normal || hint => {
                    PressureState::Degraded
                }
                PressureState::Degraded if level == PressureLevel::Full => {
                    PressureState::ReadOnly
                }
                PressureState::Degraded if !hint && sentinel.below_low() => PressureState::Normal,
                PressureState::ReadOnly if level != PressureLevel::Full => {
                    PressureState::Degraded
                }
                _ => break,
            };
            self.transition(node_id, cur, next, backend, stats, rec, iteration);
            cur = next;
            // Termination: within one poll `level` is fixed, and each arm
            // above is mutually exclusive under a fixed level (Full settles
            // in ReadOnly, High in Degraded, below-low in Normal, the
            // hysteresis band holds Degraded), so the chain is <= 2 steps.
        }
        cur
    }
}

impl Default for PressureMachine {
    fn default() -> Self {
        PressureMachine::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::FaultStats;
    use damaris_fs::{DiskSentinel, LocalDirBackend};
    use damaris_obs::{Recorder, Registry};

    fn harness(quota: u64) -> (LocalDirBackend, Arc<DiskSentinel>, FaultStats, Recorder) {
        let sentinel = Arc::new(DiskSentinel::with_quota(quota).with_watermarks(85, 70));
        let backend = LocalDirBackend::scratch("pressure-machine")
            .unwrap()
            .with_sentinel(Arc::clone(&sentinel));
        let registry = Registry::new();
        (backend, sentinel, FaultStats::new(&registry), Recorder::disabled())
    }

    #[test]
    fn dormant_without_sentinel() {
        let backend = LocalDirBackend::scratch("pressure-dormant").unwrap();
        let registry = Registry::new();
        let stats = FaultStats::new(&registry);
        let m = PressureMachine::new();
        m.note_no_space();
        let state = m.poll(0, &backend, &stats, &Recorder::disabled(), 0);
        assert_eq!(state, PressureState::Normal);
        assert_eq!(FaultStats::get(&stats.storage_pressure_degraded), 0);
    }

    #[test]
    fn full_descent_and_reascent() {
        let (backend, sentinel, stats, rec) = harness(1000);
        let m = PressureMachine::new();
        let pause = Arc::new(AtomicBool::new(false));
        m.register_pause_flag(Arc::clone(&pause));

        assert_eq!(m.poll(0, &backend, &stats, &rec, 0), PressureState::Normal);

        sentinel.charge(900); // past the high watermark
        assert_eq!(m.poll(0, &backend, &stats, &rec, 1), PressureState::Degraded);
        assert!(pause.load(Ordering::Acquire));

        sentinel.charge(100); // full
        assert_eq!(m.poll(0, &backend, &stats, &rec, 2), PressureState::ReadOnly);
        assert!(m.is_read_only());

        sentinel.release(200); // 800: under quota but above low watermark
        assert_eq!(m.poll(0, &backend, &stats, &rec, 3), PressureState::Degraded);
        assert!(pause.load(Ordering::Acquire), "hysteresis keeps the pause");

        sentinel.release(200); // 600: below the low watermark
        assert_eq!(m.poll(0, &backend, &stats, &rec, 4), PressureState::Normal);
        assert!(!pause.load(Ordering::Acquire));

        assert_eq!(FaultStats::get(&stats.storage_pressure_degraded), 2);
        assert_eq!(FaultStats::get(&stats.storage_pressure_readonly), 1);
        assert_eq!(FaultStats::get(&stats.storage_pressure_recovered), 1);
    }

    #[test]
    fn squeeze_to_zero_chains_both_transitions() {
        let (backend, sentinel, stats, rec) = harness(u64::MAX);
        let m = PressureMachine::new();
        sentinel.charge(500);
        sentinel.set_quota(400); // chaos squeeze below current usage
        assert_eq!(m.poll(0, &backend, &stats, &rec, 0), PressureState::ReadOnly);
        assert_eq!(FaultStats::get(&stats.storage_pressure_degraded), 1);
        assert_eq!(FaultStats::get(&stats.storage_pressure_readonly), 1);
        sentinel.set_quota(u64::MAX); // lift: chains all the way back
        assert_eq!(m.poll(0, &backend, &stats, &rec, 1), PressureState::Normal);
        assert_eq!(FaultStats::get(&stats.storage_pressure_recovered), 1);
    }

    #[test]
    fn permanent_error_hint_degrades_below_watermark() {
        let (backend, _sentinel, stats, rec) = harness(1_000_000);
        let m = PressureMachine::new();
        m.note_no_space();
        assert_eq!(m.poll(0, &backend, &stats, &rec, 0), PressureState::Degraded);
        // Hint consumed; usage is far below low watermark, so the next
        // poll re-ascends.
        assert_eq!(m.poll(0, &backend, &stats, &rec, 1), PressureState::Normal);
    }

    #[test]
    fn late_flag_registration_sees_current_state() {
        let (backend, sentinel, stats, rec) = harness(100);
        let m = PressureMachine::new();
        sentinel.charge(100);
        m.poll(0, &backend, &stats, &rec, 0);
        let pause = Arc::new(AtomicBool::new(false));
        m.register_pause_flag(Arc::clone(&pause));
        assert!(pause.load(Ordering::Acquire));
    }
}
