//! Layout definitions: the configuration-side description of a variable's
//! shape (paper §III-B), including the Fortran/C dimension-order handling
//! from the paper's `language="fortran"` attribute.

use crate::error::DamarisError;
use damaris_format::{DataType, Layout};
use damaris_xml::Element;

/// Index-order convention of the writing language.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Language {
    /// Row-major; dimensions are stored as declared.
    #[default]
    C,
    /// Column-major; the declared dimensions are reversed so the stored
    /// layout is always row-major ("fastest dimension last").
    Fortran,
}

/// A named layout from the configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct LayoutDef {
    pub name: String,
    pub dtype: DataType,
    /// Dimensions exactly as declared in the configuration.
    pub declared_dims: Vec<u64>,
    pub language: Language,
    /// `dimensions="?"`: the shape is provided at write time — the paper's
    /// API for "arrays that don't have a static shape (which is the case in
    /// particle-based simulations)" (§III-D).
    pub dynamic: bool,
}

impl LayoutDef {
    /// Parses a `<layout name=… type=… dimensions=… [language=…]/>` element.
    pub fn from_xml(e: &Element) -> Result<Self, DamarisError> {
        let name = e
            .attr("name")
            .ok_or_else(|| DamarisError::Config("<layout> missing 'name'".into()))?
            .to_string();
        let type_name = e
            .attr("type")
            .ok_or_else(|| DamarisError::Config(format!("layout '{name}' missing 'type'")))?;
        let dtype = DataType::from_config_name(type_name).ok_or_else(|| {
            DamarisError::Config(format!("layout '{name}': unknown type '{type_name}'"))
        })?;
        let dims_spec = e
            .attr("dimensions")
            .ok_or_else(|| DamarisError::Config(format!("layout '{name}' missing 'dimensions'")))?;
        let dynamic = dims_spec.trim() == "?";
        let declared_dims = if dynamic {
            Vec::new()
        } else {
            Layout::parse_dimensions(dims_spec)
                .map_err(|err| DamarisError::Config(format!("layout '{name}': {err}")))?
        };
        let language = match e.attr("language") {
            None | Some("c") | Some("C") => Language::C,
            Some("fortran") | Some("Fortran") | Some("FORTRAN") => Language::Fortran,
            Some(other) => {
                return Err(DamarisError::Config(format!(
                    "layout '{name}': unknown language '{other}'"
                )))
            }
        };
        Ok(LayoutDef {
            name,
            dtype,
            declared_dims,
            language,
            dynamic,
        })
    }

    /// The storage layout: row-major dims (Fortran declarations reversed).
    ///
    /// Panics for dynamic layouts — their shape only exists per write.
    pub fn storage_layout(&self) -> Layout {
        assert!(!self.dynamic, "layout '{}' is dynamic", self.name);
        let dims: Vec<u64> = match self.language {
            Language::C => self.declared_dims.clone(),
            Language::Fortran => self.declared_dims.iter().rev().copied().collect(),
        };
        Layout::new(self.dtype, &dims)
    }

    /// Total byte size of one instance of this layout, computed without
    /// materializing the storage [`Layout`] — this sits on the `write()`
    /// fast path (dimension order does not affect the product, so the
    /// Fortran reversal is irrelevant here; empty dims = scalar = one
    /// element, matching [`Layout::byte_size`]).
    pub fn byte_size(&self) -> u64 {
        self.declared_dims.iter().product::<u64>() * self.dtype.size() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use damaris_xml::parse;

    #[test]
    fn parses_paper_example() {
        // The exact layout from the paper's §III-D example.
        let e = parse(r#"<layout name="my_layout" type="real" dimensions="64,16,2" language="fortran"/>"#)
            .unwrap();
        let l = LayoutDef::from_xml(&e).unwrap();
        assert_eq!(l.name, "my_layout");
        assert_eq!(l.dtype, DataType::F32);
        assert_eq!(l.declared_dims, vec![64, 16, 2]);
        assert_eq!(l.language, Language::Fortran);
        // Fortran: fastest-varying first in the declaration → reversed for
        // row-major storage.
        assert_eq!(l.storage_layout().dims, vec![2, 16, 64]);
        assert_eq!(l.byte_size(), 64 * 16 * 2 * 4);
    }

    #[test]
    fn c_language_keeps_order() {
        let e = parse(r#"<layout name="l" type="double" dimensions="3,5"/>"#).unwrap();
        let l = LayoutDef::from_xml(&e).unwrap();
        assert_eq!(l.language, Language::C);
        assert_eq!(l.storage_layout().dims, vec![3, 5]);
        assert_eq!(l.byte_size(), 120);
    }

    #[test]
    fn missing_attributes_rejected() {
        for bad in [
            r#"<layout type="real" dimensions="4"/>"#,
            r#"<layout name="l" dimensions="4"/>"#,
            r#"<layout name="l" type="real"/>"#,
            r#"<layout name="l" type="complex" dimensions="4"/>"#,
            r#"<layout name="l" type="real" dimensions="4" language="cobol"/>"#,
            r#"<layout name="l" type="real" dimensions="4,x"/>"#,
        ] {
            let e = parse(bad).unwrap();
            assert!(LayoutDef::from_xml(&e).is_err(), "{bad}");
        }
    }

    #[test]
    fn dynamic_layout() {
        let e = parse(r#"<layout name="particles" type="real" dimensions="?"/>"#).unwrap();
        let l = LayoutDef::from_xml(&e).unwrap();
        assert!(l.dynamic);
        assert!(l.declared_dims.is_empty());
    }

    #[test]
    #[should_panic(expected = "is dynamic")]
    fn dynamic_layout_has_no_static_storage() {
        let e = parse(r#"<layout name="p" type="real" dimensions="?"/>"#).unwrap();
        LayoutDef::from_xml(&e).unwrap().storage_layout();
    }

    #[test]
    fn scalar_layout() {
        let e = parse(r#"<layout name="t" type="double" dimensions=""/>"#).unwrap();
        let l = LayoutDef::from_xml(&e).unwrap();
        assert_eq!(l.byte_size(), 8);
    }
}
