//! Schedule-exploring model tests for the observability trace ring.
//!
//! Run with:
//!
//! ```text
//! cargo test -p damaris-obs --features check
//! ```
//!
//! The ring routes every cursor and slot-state access through the
//! `damaris_shm::sync` facade, so under `--features check` the whole
//! drop-oldest protocol — ticket claim, per-slot seq handoff, flusher
//! claim CAS, lap-jump — runs inside the `damaris-check` mini-loom.
//!
//! Structure mirrors `crates/shm/tests/model.rs`: verification tests run
//! the real [`TraceRing`] code, and *seeded-bug* replicas weaken exactly
//! one ordering the real code relies on and assert the checker objects.

#![cfg(feature = "check")]

use damaris_check::sync::atomic::{AtomicUsize, Ordering};
use damaris_check::{model, thread, Builder, FailureKind};
use damaris_format::trace::TraceRecord;
use damaris_obs::TraceRing;
use damaris_shm::sync::{Arc, ShmCell};

fn rec(i: u64) -> TraceRecord {
    TraceRecord {
        t_ns: i,
        dur_ns: 10 * i,
        ..TraceRecord::default()
    }
}

/// Writer-vs-flusher handoff: the record bytes written before the slot's
/// Release publish must be visible to the flusher's Acquire claim in
/// every explored schedule (this is the edge the seeded test below
/// breaks).
#[test]
fn ring_handoff_publishes_record() {
    model(|| {
        let ring = TraceRing::new(4);
        let r2 = Arc::clone(&ring);
        let writer = thread::spawn(move || {
            r2.push(rec(0xDADA));
        });
        let mut out = Vec::new();
        while out.is_empty() {
            ring.flush_into(&mut out);
            thread::yield_now();
        }
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].t_ns, 0xDADA);
        assert_eq!(out[0].dur_ns, 10 * 0xDADA);
        writer.join();
        assert_eq!(ring.pushed(), 1);
        assert_eq!(ring.dropped(), 0);
    });
}

/// Wraparound at capacity with a concurrent flusher: a writer pushes one
/// more record than the ring holds, so depending on the schedule the
/// flusher either drains fast enough (no drop) or the writer steals the
/// oldest slot (one drop). Every schedule must satisfy the accounting
/// invariant and keep the survivor sequence in order.
#[test]
fn ring_wraparound_drop_oldest() {
    let stats = Builder::new().preemption_bound(2).check(|| {
        let ring = TraceRing::new(4);
        let r2 = Arc::clone(&ring);
        let writer = thread::spawn(move || {
            for i in 0..5u64 {
                r2.push(rec(i));
            }
        });
        let mut out = Vec::new();
        // A couple of concurrent drains racing the writer...
        for _ in 0..2 {
            ring.flush_into(&mut out);
            thread::yield_now();
        }
        writer.join();
        // ...then the final drain once the writer is quiescent.
        ring.flush_into(&mut out);
        assert_eq!(ring.pushed(), 5);
        assert_eq!(
            out.len() as u64 + ring.dropped(),
            5,
            "pushed == flushed + dropped once drained"
        );
        // Drop-oldest never reorders survivors.
        assert!(
            out.windows(2).all(|p| p[0].t_ns < p[1].t_ns),
            "survivors out of order: {:?}",
            out.iter().map(|r| r.t_ns).collect::<Vec<_>>()
        );
        // The final record cannot be dropped: nothing laps it.
        assert_eq!(out.last().expect("non-empty").t_ns, 4);
    });
    assert!(stats.executions > 10, "only {} executions", stats.executions);
}

/// Dropped-record accounting with two concurrent writers (the MPSC case:
/// cloned client handles share one ring). Exactly `pushed - flushed`
/// drops are counted — never double-counted, never missed — and the
/// ticket dispenser hands every position to exactly one writer.
#[test]
fn ring_mpsc_accounting_is_exact() {
    let stats = Builder::new().preemption_bound(2).check(|| {
        let ring = TraceRing::new(4);
        let mut writers = Vec::new();
        for w in 0..2u64 {
            let ring = Arc::clone(&ring);
            writers.push(thread::spawn(move || {
                for i in 0..3 {
                    ring.push(rec(100 * (w + 1) + i));
                }
            }));
        }
        for h in writers {
            h.join();
        }
        let mut out = Vec::new();
        ring.flush_into(&mut out);
        assert_eq!(ring.pushed(), 6);
        assert_eq!(out.len() as u64 + ring.dropped(), 6);
        // 6 pushes into 4 slots: at least 2 drops, and the ring retains at
        // most its capacity.
        assert!(out.len() <= 4);
        assert!(ring.dropped() >= 2);
        // Each writer's surviving records keep their program order.
        for w in 0..2u64 {
            let seq: Vec<u64> = out
                .iter()
                .map(|r| r.t_ns)
                .filter(|t| t / 100 == w + 1)
                .collect();
            assert!(seq.windows(2).all(|p| p[0] < p[1]), "writer {w}: {seq:?}");
        }
    });
    assert!(stats.executions > 10, "only {} executions", stats.executions);
}

/// Seeded bug: the writer's slot publication (`seq.store(p + 1)`)
/// weakened from `Release` to `Relaxed`, replicated on a single slot.
/// The record bytes are then unordered with the flusher's claim, and the
/// checker must report the data race on the cell.
#[test]
fn seeded_weak_publish_store_is_a_data_race() {
    let failure = Builder::new()
        .check_result(|| {
            // One ring slot at position 0: seq 0 free → 1 full → 2 claimed.
            let seq = Arc::new(AtomicUsize::new(0));
            let val = Arc::new(ShmCell::new(TraceRecord::default()));
            let (s2, v2) = (Arc::clone(&seq), Arc::clone(&val));
            let writer = thread::spawn(move || {
                // SAFETY: deliberately unsound replica — the Relaxed store
                // below publishes nothing; the model must object.
                v2.with_mut(|p| unsafe { *p = rec(7) });
                s2.store(1, Ordering::Relaxed); // seeded bug: was Release
            });
            // Flusher half: Acquire claim of the full slot, then read.
            while seq.load(Ordering::Acquire) != 1 {
                thread::yield_now();
            }
            seq.compare_exchange(1, 2, Ordering::Acquire, Ordering::Relaxed)
                .expect("sole flusher");
            // SAFETY: intentionally racy — no release pairs with the
            // Acquire claim above.
            let _ = val.with(|p| unsafe { *p });
            writer.join();
        })
        .expect_err("weakened publish store must be reported");
    assert_eq!(failure.kind, FailureKind::DataRace);
}

/// Seeded bug: the flusher's slot release (`seq.store(f + cap)`)
/// weakened from `Release` to `Relaxed`. The next lap's writer then
/// overwrites the cell unordered with the flusher's copy-out, and the
/// checker must report the race.
#[test]
fn seeded_weak_flusher_release_is_a_data_race() {
    let failure = Builder::new()
        .check_result(|| {
            // One slot of a capacity-4 ring, already full at position 0
            // (seq == 1); the flusher hands it to the position-4 writer.
            let seq = Arc::new(AtomicUsize::new(1));
            let val = Arc::new(ShmCell::new(rec(1)));
            let (s2, v2) = (Arc::clone(&seq), Arc::clone(&val));
            let writer = thread::spawn(move || {
                // Writer for position 4 waits for its lap.
                while s2.load(Ordering::Acquire) != 4 {
                    thread::yield_now();
                }
                // SAFETY: intentionally racy — the flusher's Relaxed
                // release below does not order its read before this write.
                v2.with_mut(|p| unsafe { *p = rec(2) });
            });
            seq.compare_exchange(1, 2, Ordering::Acquire, Ordering::Relaxed)
                .expect("sole flusher");
            // SAFETY: deliberately unsound replica — see writer above.
            let _ = val.with(|p| unsafe { *p });
            seq.store(4, Ordering::Relaxed); // seeded bug: was Release
            writer.join();
        })
        .expect_err("weakened flusher release must be reported");
    assert_eq!(failure.kind, FailureKind::DataRace);
}
