//! The [`Recorder`]: the handle the instrumented hot paths hold.
//!
//! A recorder is either *disabled* (a `None` inner — every call is a
//! branch-and-return) or *enabled*, in which case it stamps
//! [`TraceRecord`]s against a shared monotonic anchor and appends them to
//! a [`TraceRing`]. With the `noop` cargo feature the whole body compiles
//! away, giving the zero-cost floor the `<5%` overhead budget is measured
//! against (see `obs_overhead` in `crates/bench`).
//!
//! Span convention: `let t = rec.begin();` before the work,
//! `rec.end(kind, iteration, bytes, t);` after. `begin()` on a disabled
//! recorder returns 0 and `end` ignores it, so the hot path pays one
//! branch, not a clock read.

use crate::ring::TraceRing;
use damaris_format::trace::{EventKind, TraceRecord};
use damaris_shm::sync::Arc;
use std::time::Instant;

struct RecInner {
    ring: Arc<TraceRing>,
    /// All timestamps are nanoseconds since this anchor, so records from
    /// every rank on the node share one timeline.
    anchor: Instant,
    rank: u32,
    /// OR-ed into every record's flags (e.g. `FLAG_SERVER`).
    flags: u16,
}

/// Cheap-to-clone recording handle. See module docs for the span idiom.
#[derive(Clone)]
pub struct Recorder {
    inner: Option<Arc<RecInner>>,
}

impl Recorder {
    /// A recorder that drops everything (observability disabled).
    pub fn disabled() -> Recorder {
        Recorder { inner: None }
    }

    /// A recorder appending to `ring`, stamping `rank` and `flags` into
    /// every record and timing against `anchor`.
    pub fn new(ring: Arc<TraceRing>, anchor: Instant, rank: u32, flags: u16) -> Recorder {
        if cfg!(feature = "noop") {
            return Recorder::disabled();
        }
        Recorder {
            inner: Some(Arc::new(RecInner { ring, anchor, rank, flags })),
        }
    }

    /// A clone of this recorder with a different rank stamp (used when one
    /// node-level config fans out to per-client recorders).
    pub fn with_rank(&self, rank: u32) -> Recorder {
        Recorder {
            inner: self.inner.as_ref().map(|i| {
                Arc::new(RecInner {
                    ring: Arc::clone(&i.ring),
                    anchor: i.anchor,
                    rank,
                    flags: i.flags,
                })
            }),
        }
    }

    /// True when recording is active (false when disabled or `noop`).
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The ring this recorder appends to, if enabled (the flusher side
    /// needs it).
    pub fn ring(&self) -> Option<&Arc<TraceRing>> {
        self.inner.as_ref().map(|i| &i.ring)
    }

    /// Nanoseconds since the shared anchor; 0 when disabled.
    // ANALYZE: hot
    #[inline]
    pub fn begin(&self) -> u64 {
        match &self.inner {
            Some(i) => i.anchor.elapsed().as_nanos() as u64,
            None => 0,
        }
    }

    /// Closes a span opened with [`begin`](Self::begin): records an event
    /// whose duration is now minus `start_ns`. Returns the end timestamp
    /// (0 when disabled) so back-to-back spans can chain — the next span's
    /// start — halving the clock reads on instrumented hot paths.
    // ANALYZE: hot
    #[inline]
    pub fn end(&self, kind: EventKind, iteration: u32, bytes: u64, start_ns: u64) -> u64 {
        match &self.inner {
            Some(i) => {
                let now = i.anchor.elapsed().as_nanos() as u64;
                i.ring.push(TraceRecord {
                    t_ns: start_ns,
                    dur_ns: now.saturating_sub(start_ns),
                    bytes,
                    rank: i.rank,
                    iteration,
                    kind: kind as u16,
                    flags: i.flags,
                    pad: 0,
                });
                now
            }
            None => 0,
        }
    }

    /// Records a span from explicit start and end timestamps — no clock
    /// read. For enclosing spans whose boundaries were already stamped by
    /// inner chained spans (e.g. a write call wrapping alloc/copy/push).
    // ANALYZE: hot
    #[inline]
    pub fn span_at(&self, kind: EventKind, iteration: u32, bytes: u64, start_ns: u64, end_ns: u64) {
        if let Some(i) = &self.inner {
            i.ring.push(TraceRecord {
                t_ns: start_ns,
                dur_ns: end_ns.saturating_sub(start_ns),
                bytes,
                rank: i.rank,
                iteration,
                kind: kind as u16,
                flags: i.flags,
                pad: 0,
            });
        }
    }

    /// Records an event with an externally-measured duration, stamped at
    /// the current time minus that duration.
    // ANALYZE: hot
    #[inline]
    pub fn event(&self, kind: EventKind, iteration: u32, bytes: u64, dur_ns: u64) {
        if let Some(i) = &self.inner {
            let now = i.anchor.elapsed().as_nanos() as u64;
            i.ring.push(TraceRecord {
                t_ns: now.saturating_sub(dur_ns),
                dur_ns,
                bytes,
                rank: i.rank,
                iteration,
                kind: kind as u16,
                flags: i.flags,
                pad: 0,
            });
        }
    }
}

impl std::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            Some(i) => write!(f, "Recorder(rank={}, flags={:#x})", i.rank, i.flags),
            None => write!(f, "Recorder(disabled)"),
        }
    }
}

#[cfg(all(test, not(feature = "check"), not(feature = "noop")))]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_is_inert() {
        let rec = Recorder::disabled();
        assert!(!rec.is_enabled());
        assert_eq!(rec.begin(), 0);
        rec.end(EventKind::WriteCall, 1, 64, 0);
        rec.event(EventKind::Backpressure, 1, 0, 5);
        assert!(rec.ring().is_none());
    }

    #[test]
    fn span_and_event_land_in_ring() {
        let ring = TraceRing::new(16);
        let rec = Recorder::new(Arc::clone(&ring), Instant::now(), 3, 0x1);
        let t = rec.begin();
        std::thread::sleep(std::time::Duration::from_millis(2));
        rec.end(EventKind::Memcpy, 7, 4096, t);
        rec.event(EventKind::QueuePush, 7, 0, 1234);
        let mut out = Vec::new();
        assert_eq!(ring.flush_into(&mut out), 2);
        assert_eq!(out[0].event_kind(), Some(EventKind::Memcpy));
        assert_eq!(out[0].rank, 3);
        assert_eq!(out[0].iteration, 7);
        assert_eq!(out[0].bytes, 4096);
        assert_eq!(out[0].flags, 0x1);
        assert!(out[0].dur_ns >= 1_000_000, "slept 2ms, recorded {}", out[0].dur_ns);
        assert_eq!(out[1].event_kind(), Some(EventKind::QueuePush));
        assert_eq!(out[1].dur_ns, 1234);
    }

    #[test]
    fn with_rank_rebrands() {
        let ring = TraceRing::new(8);
        let rec = Recorder::new(Arc::clone(&ring), Instant::now(), 0, 0);
        let r5 = rec.with_rank(5);
        let t = r5.begin();
        r5.end(EventKind::AllocWait, 0, 0, t);
        let mut out = Vec::new();
        ring.flush_into(&mut out);
        assert_eq!(out[0].rank, 5);
    }
}
