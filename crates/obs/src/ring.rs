//! The lock-free trace ring: a bounded flight recorder for
//! [`TraceRecord`]s sitting between the instrumented hot paths (writers)
//! and the dedicated core's flusher (single consumer).
//!
//! # Requirements (ISSUE: tentpole part 1)
//!
//! * **Never block the hot path.** A full ring *drops the oldest* record
//!   (flight-recorder semantics) and counts the loss exactly; a client
//!   write never waits on the flusher.
//! * **Facade-routed.** Every atomic and cell access goes through
//!   `damaris_shm::sync`, so `--features check` puts the model checker
//!   under the whole protocol (see `tests/model.rs`).
//! * **Relaxed cursors.** The `head`/`tail` position counters are Relaxed
//!   ticket dispensers; all *publication* rides the per-slot `seq` words
//!   (Release store / Acquire load), exactly like the shm event queue.
//!
//! # Protocol
//!
//! Positions are unbounded counters; position `p` maps to slot
//! `p & (cap-1)`. A slot's `seq` word encodes its state for position `p`:
//!
//! ```text
//! seq == p        free: the position-p writer may fill it
//! seq == p + 1    full: written at p, not yet read
//! seq == p + 2    claimed: the flusher is copying it out
//! seq == p + cap  free again, for the position-(p+cap) writer
//! ```
//!
//! Writer at `p`: wait for `seq == p` (or steal a full, unread slot from
//! one lap behind via CAS `p-cap+1 → p`, bumping `dropped` — that is the
//! drop-oldest), write the value, publish with `seq = p+1` (Release).
//!
//! Flusher at cursor `f`: claim a full slot via CAS `f+1 → f+2`
//! (Acquire), copy the value out, release with `seq = f+cap` (Release).
//! When a writer has lapped the cursor, `seq mod cap` tells which state
//! the slot is in and the cursor jumps forward to the oldest position
//! that can still be live (`seq - cap` or `seq - cap + 1`).
//!
//! The claimed state (`p+2`) makes the writer/flusher handoff a real
//! ownership transfer: a drop-oldest CAS *fails* while the flusher is
//! mid-copy, and the writer spins for the duration of one 40-byte copy —
//! the only (bounded) wait on the path.
//!
//! Capacity must be a power of two ≥ 4 so the claimed state `p+2` can
//! never collide with another lap's state (`p+2 ≡ p (mod cap)` requires
//! `cap ≤ 2`).
//!
//! # Accounting invariant
//!
//! `pushed() == flushed + dropped() + still-in-ring`. The model tests and
//! the stress test assert it; `dropped` is exact because only a
//! *successful* steal CAS increments it, and each steal overwrites
//! exactly one unread record.

use damaris_format::trace::TraceRecord;
use damaris_shm::sync::{yield_now, Arc, AtomicU64, AtomicUsize, Ordering, ShmCell};

/// One slot: the state word plus the record cell it guards.
struct Slot {
    seq: AtomicUsize,
    val: ShmCell<TraceRecord>,
}

/// The ring. Writers are the instrumented hot paths (multi-producer: a
/// cloned client handle shares its ring); the flusher is the dedicated
/// core (single consumer).
pub struct TraceRing {
    slots: Box<[Slot]>,
    mask: usize,
    /// Next write position — a Relaxed ticket dispenser; the per-slot
    /// `seq` words do all publication.
    head: AtomicUsize,
    /// Flusher cursor. Relaxed: only the single consumer touches it.
    tail: AtomicUsize,
    /// Records overwritten by drop-oldest. Monotonic and exact.
    dropped: AtomicU64,
}

impl TraceRing {
    /// Creates a ring with `capacity` slots (power of two, ≥ 4).
    pub fn new(capacity: usize) -> Arc<TraceRing> {
        assert!(
            capacity >= 4 && capacity.is_power_of_two(),
            "trace ring capacity must be a power of two >= 4, got {capacity}"
        );
        let slots = (0..capacity)
            .map(|i| Slot {
                seq: AtomicUsize::new(i),
                val: ShmCell::new(TraceRecord::default()),
            })
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Arc::new(TraceRing {
            slots,
            mask: capacity - 1,
            head: AtomicUsize::new(0),
            tail: AtomicUsize::new(0),
            dropped: AtomicU64::new(0),
        })
    }

    /// Slot count.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Records pushed so far (including ones later dropped).
    pub fn pushed(&self) -> u64 {
        // Relaxed: diagnostic read; exact once writers are quiescent.
        self.head.load(Ordering::Relaxed) as u64
    }

    /// Records lost to drop-oldest so far.
    pub fn dropped(&self) -> u64 {
        // Relaxed: diagnostic read; exact once writers are quiescent.
        self.dropped.load(Ordering::Relaxed)
    }

    /// Appends a record, overwriting the oldest unread one if the ring is
    /// full. Never blocks on the flusher beyond the length of one record
    /// copy (the claimed-slot window).
    // ANALYZE: hot
    pub fn push(&self, record: TraceRecord) {
        let cap = self.slots.len();
        // Relaxed ticket claim: position ownership is exclusive by the
        // fetch_add itself; ordering comes from `seq` below.
        let p = self.head.fetch_add(1, Ordering::Relaxed);
        // ANALYZE: in-bounds(slots.len() is a power of two and mask = len - 1)
        let slot = &self.slots[p & self.mask];
        let lap_behind_full = p.wrapping_sub(cap).wrapping_add(1);
        loop {
            // Acquire: seeing `seq == p` (stored Release by the flusher or
            // by slot init) happens-after the flusher's copy-out, so our
            // overwrite below cannot race with its read.
            let s = slot.seq.load(Ordering::Acquire);
            if s == p {
                break;
            }
            if s == lap_behind_full {
                // Full and unread from one lap behind: drop-oldest. The
                // Acquire success ordering pairs with the *writer's own*
                // previous-lap Release publish — no flusher ever touched
                // this record (it would have moved seq to p-cap+2).
                if slot
                    .seq
                    .compare_exchange(s, p, Ordering::Acquire, Ordering::Relaxed)
                    .is_ok()
                {
                    // Relaxed: pure counter, read after quiescence.
                    self.dropped.fetch_add(1, Ordering::Relaxed);
                    break;
                }
                // Lost the CAS to the flusher claiming it: fall through
                // and wait out its (one-copy-long) read.
            }
            // Flusher mid-copy, or an earlier-lap writer still pending:
            // both are one bounded record-copy away from releasing.
            yield_now();
        }
        // SAFETY: the protocol above made us the unique owner of the slot
        // for position `p` (seq == p is only ever observed/installed by
        // one claimant, and the flusher cannot claim until seq == p+1).
        slot.val.with_mut(|ptr| unsafe { *ptr = record });
        // Release: publishes the record bytes to the flusher's Acquire
        // claim CAS.
        slot.seq.store(p.wrapping_add(1), Ordering::Release);
    }

    /// Drains every currently-readable record into `out` (file order =
    /// ring order) and returns how many were appended. Single consumer:
    /// must only be called from one thread at a time (the dedicated core).
    pub fn flush_into(&self, out: &mut Vec<TraceRecord>) -> usize {
        let cap = self.slots.len();
        // Relaxed: the cursor is consumer-private state.
        let mut f = self.tail.load(Ordering::Relaxed);
        let taken = out.len();
        loop {
            let slot = &self.slots[f & self.mask];
            // Acquire: pairs with the writer's Release publish so the
            // record bytes are visible before we copy them.
            let s = slot.seq.load(Ordering::Acquire);
            if s == f {
                // Nothing written at this position yet (a writer may be
                // mid-fill; its record will be caught next flush).
                break;
            } else if s == f.wrapping_add(1) {
                // Full at position f: claim it so a lapping writer's
                // drop-oldest CAS fails while we copy.
                if slot
                    .seq
                    .compare_exchange(
                        s,
                        f.wrapping_add(2),
                        Ordering::Acquire,
                        Ordering::Relaxed,
                    )
                    .is_ok()
                {
                    // SAFETY: the claim CAS made us the unique reader; the
                    // writer for position f+cap spins until our Release
                    // store below, so the cell is unaliased while we copy.
                    let rec = slot.val.with(|ptr| unsafe { *ptr });
                    // Release: hands the slot to the next lap's writer,
                    // ordering our read before its overwrite.
                    slot.seq.store(f.wrapping_add(cap), Ordering::Release);
                    out.push(rec);
                    f = f.wrapping_add(1);
                }
                // CAS failure: a writer stole the slot (drop-oldest) —
                // loop; the lapped arm below will jump the cursor.
            } else {
                // A writer lapped the cursor: `s` belongs to a later lap.
                // `s mod cap` tells the slot's state and thus where the
                // oldest possibly-live record now sits.
                let phase = s.wrapping_sub(f) & self.mask;
                if phase == 0 {
                    // Slot free for the position-`s` writer: everything
                    // below `s` in this slot was consumed; the oldest
                    // live record anywhere is at `s - cap + 1`.
                    f = s.wrapping_sub(cap).wrapping_add(1);
                } else if phase == 1 {
                    // Slot full at position `s - 1`: oldest live record
                    // anywhere is at `s - cap`.
                    f = s.wrapping_sub(cap);
                } else {
                    // Claimed state from another lap cannot be observed by
                    // the only flusher; defensively wait it out.
                    yield_now();
                }
            }
        }
        // Relaxed: consumer-private cursor update.
        self.tail.store(f, Ordering::Relaxed);
        out.len() - taken
    }
}

#[cfg(all(test, not(feature = "check")))]
mod tests {
    use super::*;
    use damaris_format::trace::TraceRecord;

    fn rec(i: u64) -> TraceRecord {
        TraceRecord {
            t_ns: i,
            dur_ns: i * 2,
            bytes: i,
            ..TraceRecord::default()
        }
    }

    #[test]
    fn fifo_without_overflow() {
        let ring = TraceRing::new(8);
        for i in 0..5 {
            ring.push(rec(i));
        }
        let mut out = Vec::new();
        assert_eq!(ring.flush_into(&mut out), 5);
        assert_eq!(out.iter().map(|r| r.t_ns).collect::<Vec<_>>(), vec![0, 1, 2, 3, 4]);
        assert_eq!(ring.dropped(), 0);
        assert_eq!(ring.pushed(), 5);
        assert_eq!(ring.flush_into(&mut out), 0);
    }

    #[test]
    fn overflow_drops_oldest_exactly() {
        let ring = TraceRing::new(4);
        for i in 0..10 {
            ring.push(rec(i));
        }
        let mut out = Vec::new();
        let n = ring.flush_into(&mut out);
        assert_eq!(n, 4, "ring retains exactly its capacity");
        assert_eq!(
            out.iter().map(|r| r.t_ns).collect::<Vec<_>>(),
            vec![6, 7, 8, 9],
            "the newest records survive"
        );
        assert_eq!(ring.dropped(), 6);
        assert_eq!(ring.pushed(), 10);
        // Invariant: pushed == flushed + dropped (+ 0 still in ring).
        assert_eq!(ring.pushed(), out.len() as u64 + ring.dropped());
    }

    #[test]
    fn interleaved_flushes_keep_accounting() {
        let ring = TraceRing::new(4);
        let mut out = Vec::new();
        for round in 0..50u64 {
            for i in 0..3 {
                ring.push(rec(round * 3 + i));
            }
            ring.flush_into(&mut out);
        }
        assert_eq!(ring.pushed(), out.len() as u64 + ring.dropped());
        // No overflow when flushed every 3 pushes into a 4-ring.
        assert_eq!(ring.dropped(), 0);
        assert_eq!(out.len(), 150);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_tiny_capacity() {
        let _ = TraceRing::new(2);
    }

    #[test]
    fn concurrent_writers_and_flusher_stress() {
        // 4 writer threads × 5k records against a small ring with a
        // concurrent flusher: every record is either flushed or counted
        // dropped, never both, never lost.
        let ring = TraceRing::new(64);
        let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
        let mut writers = Vec::new();
        for w in 0..4u64 {
            let ring = Arc::clone(&ring);
            writers.push(std::thread::spawn(move || {
                for i in 0..5000u64 {
                    ring.push(rec(w * 1_000_000 + i));
                }
            }));
        }
        let flusher = {
            let ring = Arc::clone(&ring);
            let stop = std::sync::Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut out = Vec::new();
                while !stop.load(std::sync::atomic::Ordering::Acquire) {
                    ring.flush_into(&mut out);
                }
                ring.flush_into(&mut out); // final drain
                out
            })
        };
        for h in writers {
            h.join().expect("writer");
        }
        stop.store(true, std::sync::atomic::Ordering::Release);
        let out = flusher.join().expect("flusher");
        assert_eq!(ring.pushed(), 20_000);
        assert_eq!(
            out.len() as u64 + ring.dropped(),
            20_000,
            "flushed + dropped covers every push"
        );
        // Per-writer subsequences arrive in order (drop-oldest removes a
        // prefix of what it removes, never reorders survivors).
        for w in 0..4u64 {
            let seq: Vec<u64> = out
                .iter()
                .filter(|r| r.t_ns / 1_000_000 == w)
                .map(|r| r.t_ns)
                .collect();
            assert!(seq.windows(2).all(|p| p[0] < p[1]), "writer {w} order");
        }
    }
}
