//! # damaris-obs — observability for the Damaris I/O path
//!
//! Always-on, low-overhead tracing plus a metrics registry and a
//! jitter-attribution analyzer. The paper claims *jitter-free* I/O; this
//! crate is how the repo proves it with phase-level evidence instead of
//! end-to-end timings alone.
//!
//! Four pieces:
//!
//! * [`TraceRing`] — a lock-free, drop-oldest flight recorder the
//!   instrumented hot paths append 40-byte [`TraceRecord`]s to. All
//!   synchronization goes through the `damaris_shm::sync` facade, so the
//!   `check` feature runs the full protocol under the model checker.
//! * [`Recorder`] — the cheap handle held by clients, the dedicated
//!   core, plugins and the MPI layer; spans via `begin()`/`end()`.
//!   Disabled at runtime (config) it is one branch; with the `noop`
//!   feature it compiles away entirely.
//! * [`Registry`] — named [`Counter`]s and log-bucketed [`Histogram`]s;
//!   `NodeReport` in `damaris-core` is now a snapshot view over it.
//! * [`analyze`] — merges per-rank DTRC trace files (format lives in
//!   `damaris_format::trace`) and attributes iteration-duration variance
//!   to phases. The `trace_analyze` binary is its CLI.
//!
//! The dedicated core flushes rings into the DTRC file **between**
//! iterations, so tracing rides the same compute/I-O overlap the paper
//! builds everything on — the compute cores never pay for persistence of
//! their own telemetry.

pub mod analyze;
pub mod metrics;
pub mod recorder;
pub mod ring;

pub use analyze::{
    analyze, fmt_ns, load_traces, nearest_rank, summarize_phase_samples, Analysis, Attribution,
    GroupSummary, MergedTrace, PhaseStats,
};
pub use metrics::{Counter, Histogram, HistogramSnapshot, MetricsSnapshot, Registry};
pub use recorder::Recorder;
pub use ring::TraceRing;

// Re-export the wire types so instrumented crates need only this crate.
pub use damaris_format::trace::{
    read_trace, read_trace_bytes, EventKind, TraceFile, TraceRecord, TraceWriter, FLAG_SERVER,
};
