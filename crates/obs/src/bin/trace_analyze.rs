//! `trace-analyze`: merge DTRC trace files into one timeline and print
//! per-phase histograms plus the jitter-attribution report.
//!
//! ```text
//! trace_analyze <trace.dtrc | trace-dir> [more paths ...]
//! ```
//!
//! Directory arguments expand to every `*.dtrc` inside. Exit code 2 on
//! usage errors, 1 on unreadable input.

use damaris_obs::{analyze, load_traces};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "-h" || a == "--help") {
        eprintln!("usage: trace_analyze <trace.dtrc | trace-dir> [more paths ...]");
        std::process::exit(2);
    }
    let merged = match load_traces(&args) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("trace_analyze: {e}");
            std::process::exit(1);
        }
    };
    if merged.files == 0 {
        eprintln!("trace_analyze: no .dtrc files found in the given paths");
        std::process::exit(1);
    }
    for w in &merged.warnings {
        eprintln!("warning: {w}");
    }
    let report = analyze(&merged.records, merged.dropped);
    println!(
        "merged {} file(s), {} records",
        merged.files,
        merged.records.len()
    );
    print!("{}", report.render());
}
