//! The metrics registry: named [`Counter`]s and log-bucketed
//! [`Histogram`]s replacing the ad-hoc field-per-counter pattern that
//! `NodeReport` grew (ISSUE: tentpole part 2).
//!
//! Registration takes a facade `Mutex` once per name and hands back a
//! clonable handle; every subsequent `inc`/`observe` is lock-free atomics
//! on the shared cells. `NodeReport` stays the stable snapshot view —
//! the dedicated core builds it from [`Registry::snapshot`]-style reads
//! of the same handles, so existing supervision and chaos tests keep
//! passing unchanged.

use damaris_shm::sync::{Arc, AtomicU64, Mutex, Ordering};
use std::collections::BTreeMap;

/// Number of log2 buckets: bucket `i` counts values `v` with
/// `64 - v.leading_zeros() == i`, i.e. bucket 0 is `v == 0`, bucket 1 is
/// `v == 1`, bucket 11 covers `1024..2048`, … up to `u64::MAX`.
pub const HIST_BUCKETS: usize = 65;

/// A named monotonic counter. Clone freely: all clones share the cell.
#[derive(Clone)]
pub struct Counter {
    cell: Arc<AtomicU64>,
}

impl Counter {
    fn new() -> Counter {
        Counter { cell: Arc::new(AtomicU64::new(0)) }
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        // Relaxed: pure event count — no other memory is published under
        // it; readers only need eventual exactness (quiescent snapshot).
        self.cell.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        // Relaxed: see `add`.
        self.cell.load(Ordering::Relaxed)
    }
}

impl std::fmt::Debug for Counter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Counter({})", self.get())
    }
}

struct HistCells {
    buckets: [AtomicU64; HIST_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

/// A log2-bucketed HDR-style histogram. `observe` is a handful of Relaxed
/// atomics; quantiles are estimated at snapshot time from the bucket
/// counts (each bucket reports its upper bound, so estimates err high by
/// at most 2×, the bucket width).
#[derive(Clone)]
pub struct Histogram {
    cells: Arc<HistCells>,
}

impl Histogram {
    fn new() -> Histogram {
        Histogram {
            cells: Arc::new(HistCells {
                buckets: std::array::from_fn(|_| AtomicU64::new(0)),
                count: AtomicU64::new(0),
                sum: AtomicU64::new(0),
                min: AtomicU64::new(u64::MAX),
                max: AtomicU64::new(0),
            }),
        }
    }

    /// Bucket index for a value.
    #[inline]
    fn bucket_of(v: u64) -> usize {
        (64 - v.leading_zeros()) as usize
    }

    /// Inclusive upper bound of bucket `i` (what quantile estimates report).
    fn bucket_upper(i: usize) -> u64 {
        match i {
            0 => 0,
            65.. => u64::MAX,
            _ => (1u64 << (i - 1)).saturating_mul(2).saturating_sub(1),
        }
    }

    /// Records one value.
    pub fn observe(&self, v: u64) {
        let c = &self.cells;
        // Relaxed throughout: statistics cells publish nothing else;
        // snapshots read them quiescently (or tolerate slight skew).
        c.buckets[Self::bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        c.count.fetch_add(1, Ordering::Relaxed);
        c.sum.fetch_add(v, Ordering::Relaxed);
        // CAS loops instead of fetch_min/fetch_max: the model-checker
        // facade's AtomicU64 intentionally exposes only load/store/CAS/rmw
        // basics, and these are cold compared to the adds above.
        let mut cur = c.min.load(Ordering::Relaxed);
        while v < cur {
            match c.min.compare_exchange_weak(cur, v, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
        let mut cur = c.max.load(Ordering::Relaxed);
        while v > cur {
            match c.max.compare_exchange_weak(cur, v, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.cells.count.load(Ordering::Relaxed)
    }

    /// Sum of observations.
    pub fn sum(&self) -> u64 {
        self.cells.sum.load(Ordering::Relaxed)
    }

    /// Point-in-time copy of the histogram's state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let c = &self.cells;
        let buckets: Vec<u64> = c.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect();
        let count = c.count.load(Ordering::Relaxed);
        let min = c.min.load(Ordering::Relaxed);
        HistogramSnapshot {
            buckets,
            count,
            sum: c.sum.load(Ordering::Relaxed),
            min: if count == 0 { 0 } else { min },
            max: c.max.load(Ordering::Relaxed),
        }
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Histogram(count={}, sum={})", self.count(), self.sum())
    }
}

/// Frozen histogram state with quantile estimation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts (`HIST_BUCKETS` entries).
    pub buckets: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
    /// Smallest observed value (0 when empty).
    pub min: u64,
    /// Largest observed value (0 when empty).
    pub max: u64,
}

impl HistogramSnapshot {
    /// Mean of observed values (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Nearest-rank quantile estimate for `num/den` (e.g. 95/100): the
    /// upper bound of the bucket containing the rank-th observation,
    /// clamped to the observed `max`. Errs high by at most one bucket
    /// width (2×).
    pub fn quantile(&self, num: u64, den: u64) -> u64 {
        assert!(den > 0 && num <= den, "quantile {num}/{den} out of range");
        if self.count == 0 {
            return 0;
        }
        // Nearest rank: ceil(q * n) computed in integers.
        let rank = (num * self.count).div_ceil(den).max(1);
        let mut seen = 0u64;
        for (i, &b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= rank {
                return Histogram::bucket_upper(i).min(self.max);
            }
        }
        self.max
    }
}

#[derive(Default)]
struct RegistryInner {
    counters: BTreeMap<String, Counter>,
    histograms: BTreeMap<String, Histogram>,
}

/// The process-wide (per-node, in this codebase) metric namespace.
/// Registration is idempotent by name; handles outlive the lock.
pub struct Registry {
    inner: Mutex<RegistryInner>,
}

impl Default for Registry {
    fn default() -> Registry {
        Registry::new()
    }
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry {
            inner: Mutex::new(RegistryInner::default()),
        }
    }

    /// Returns the counter named `name`, creating it on first use. Two
    /// calls with one name return handles to the same cell.
    pub fn counter(&self, name: &str) -> Counter {
        let mut inner = self.inner.lock();
        inner
            .counters
            .entry(name.to_string())
            .or_insert_with(Counter::new)
            .clone()
    }

    /// Returns the histogram named `name`, creating it on first use.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut inner = self.inner.lock();
        inner
            .histograms
            .entry(name.to_string())
            .or_insert_with(Histogram::new)
            .clone()
    }

    /// Point-in-time copy of every metric, sorted by name.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.inner.lock();
        MetricsSnapshot {
            counters: inner
                .counters
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            histograms: inner
                .histograms
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
        }
    }
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock();
        write!(
            f,
            "Registry({} counters, {} histograms)",
            inner.counters.len(),
            inner.histograms.len()
        )
    }
}

/// Frozen view of a [`Registry`] (sorted by name for stable output).
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// Counter name → value.
    pub counters: BTreeMap<String, u64>,
    /// Histogram name → frozen state.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// A counter's value (0 when absent — absent and never-bumped are the
    /// same thing for monotonic counters).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Renders a plain-text report (one metric per line).
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (name, v) in &self.counters {
            let _ = writeln!(out, "counter   {name} = {v}");
        }
        for (name, h) in &self.histograms {
            let _ = writeln!(
                out,
                "histogram {name} count={} mean={:.1} min={} p50={} p95={} p99={} max={}",
                h.count,
                h.mean(),
                h.min,
                h.quantile(50, 100),
                h.quantile(95, 100),
                h.quantile(99, 100),
                h.max,
            );
        }
        out
    }
}

#[cfg(all(test, not(feature = "check")))]
mod tests {
    use super::*;

    #[test]
    fn counter_handles_share_one_cell() {
        let reg = Registry::new();
        let a = reg.counter("node.retries");
        let b = reg.counter("node.retries");
        a.inc();
        b.add(4);
        assert_eq!(a.get(), 5);
        assert_eq!(reg.snapshot().counter("node.retries"), 5);
        assert_eq!(reg.snapshot().counter("absent"), 0);
    }

    #[test]
    fn histogram_buckets_and_extrema() {
        let reg = Registry::new();
        let h = reg.histogram("write.ns");
        for v in [0u64, 1, 3, 1000, 1500, 1_000_000] {
            h.observe(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 6);
        assert_eq!(s.sum, 1_002_504);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 1_000_000);
        assert_eq!(s.buckets[0], 1); // v == 0
        assert_eq!(s.buckets[1], 1); // v == 1
        assert_eq!(s.buckets[2], 1); // v in 2..4
        assert_eq!(s.buckets[10], 1); // v in 512..1024 (the 1000)
        assert_eq!(s.buckets[11], 1); // v in 1024..2048 (the 1500)
    }

    #[test]
    fn quantiles_err_high_by_at_most_one_bucket() {
        let reg = Registry::new();
        let h = reg.histogram("q");
        for v in 1..=100u64 {
            h.observe(v);
        }
        let s = h.snapshot();
        // True p50 = 50; bucket containing rank 50 is 32..64 → upper 63.
        assert_eq!(s.quantile(50, 100), 63);
        // True p99 = 99; bucket 64..128 → upper 127, clamped to max 100.
        assert_eq!(s.quantile(99, 100), 100);
        assert_eq!(s.quantile(100, 100), 100);
        // Estimates never fall below the true quantile.
        assert!(s.quantile(95, 100) >= 95);
    }

    #[test]
    fn empty_histogram_is_sane() {
        let reg = Registry::new();
        let h = reg.histogram("empty");
        let s = h.snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 0);
        assert_eq!(s.quantile(99, 100), 0);
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn concurrent_observations_are_all_counted() {
        let reg = Arc::new(Registry::new());
        let c = reg.counter("hits");
        let h = reg.histogram("lat");
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let c = c.clone();
            let h = h.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..1000 {
                    c.inc();
                    h.observe(t * 1000 + i);
                }
            }));
        }
        for hnd in handles {
            hnd.join().expect("observer");
        }
        assert_eq!(c.get(), 4000);
        let s = h.snapshot();
        assert_eq!(s.count, 4000);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 3999);
    }

    #[test]
    fn render_is_stable_and_sorted() {
        let reg = Registry::new();
        reg.counter("b.second").add(2);
        reg.counter("a.first").inc();
        reg.histogram("lat.ns").observe(7);
        let text = reg.snapshot().render();
        let a = text.find("a.first").expect("a.first rendered");
        let b = text.find("b.second").expect("b.second rendered");
        assert!(a < b, "sorted by name");
        assert!(text.contains("histogram lat.ns count=1"));
    }
}
