//! Post-hoc trace analysis: merge per-rank DTRC files into one timeline,
//! compute per-phase duration histograms (p50/p95/p99/max), and attribute
//! iteration-duration *variance* to phases — the jitter-attribution
//! report (ISSUE: tentpole part 4).
//!
//! ## Attribution model
//!
//! For every server [`EventKind::Iteration`] record we know the iteration
//! duration `D_i`; for every phase kind `k` we sum that iteration's phase
//! durations into `P_{k,i}`. The attribution share is the OLS slope-like
//! ratio
//!
//! ```text
//! share_k = Cov(P_k, D) / Var(D)
//! ```
//!
//! i.e. "how much of the iteration-to-iteration variance does phase `k`'s
//! variation explain". Shares of phases that move one-for-one with the
//! spike (an injected backend stall) approach 1.0; constant phases get
//! ~0. Shares are not forced to sum to 1 — overlapping instrumentation
//! (a `PluginRun` *contains* its `BackendWrite`) legitimately double
//! reports, which is why coverage below uses only a disjoint set.
//!
//! ## Coverage
//!
//! The server-side iteration span decomposes into the *disjoint* pair
//! {`QueueIdle`, `EpeDispatch`} (waiting for events vs. processing them).
//! `coverage = Σ(idle + dispatch) / Σ(iteration)` should be close to 1;
//! a large gap means the instrumentation is missing a phase.

use damaris_format::trace::{read_trace, EventKind, TraceFile, TraceRecord};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// Exact nearest-rank quantile of a **sorted** slice: the smallest value
/// with at least `ceil(num/den · n)` observations at or below it.
/// Integer math throughout — no FP rounding hazards (the `sim::metrics`
/// p95 bug this PR also fixes).
pub fn nearest_rank(sorted: &[u64], num: u64, den: u64) -> u64 {
    assert!(den > 0 && num <= den, "quantile {num}/{den} out of range");
    if sorted.is_empty() {
        return 0;
    }
    let n = sorted.len() as u64;
    let rank = (num * n).div_ceil(den).max(1);
    sorted[(rank - 1) as usize]
}

/// Exact duration statistics for one phase (event kind).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseStats {
    /// The phase.
    pub kind: EventKind,
    /// Records seen.
    pub count: u64,
    /// Total duration, ns.
    pub sum_ns: u64,
    /// Total payload bytes.
    pub bytes: u64,
    /// Median duration, ns (nearest rank).
    pub p50_ns: u64,
    /// 95th percentile duration, ns.
    pub p95_ns: u64,
    /// 99th percentile duration, ns.
    pub p99_ns: u64,
    /// Largest duration, ns.
    pub max_ns: u64,
}

impl PhaseStats {
    fn from_durations(kind: EventKind, mut durs: Vec<u64>, bytes: u64) -> PhaseStats {
        durs.sort_unstable();
        PhaseStats {
            kind,
            count: durs.len() as u64,
            sum_ns: durs.iter().sum(),
            bytes,
            p50_ns: nearest_rank(&durs, 50, 100),
            p95_ns: nearest_rank(&durs, 95, 100),
            p99_ns: nearest_rank(&durs, 99, 100),
            max_ns: durs.last().copied().unwrap_or(0),
        }
    }

    /// Mean duration, ns.
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_ns as f64 / self.count as f64
        }
    }
}

/// Variance share of one phase (see module docs).
#[derive(Debug, Clone, Copy)]
pub struct Attribution {
    /// The phase.
    pub kind: EventKind,
    /// `Cov(phase, iteration) / Var(iteration)`.
    pub share: f64,
}

/// The full analysis of a merged record set.
#[derive(Debug, Clone, Default)]
pub struct Analysis {
    /// Records analyzed.
    pub total_records: u64,
    /// Ring-dropped records reported by the producers' trailers.
    pub dropped: u64,
    /// Per-phase stats, present only for kinds that occurred.
    pub phases: BTreeMap<u16, PhaseStats>,
    /// Iteration durations (`Iteration` records), by iteration number.
    pub iterations: BTreeMap<u32, u64>,
    /// Phases ranked by variance share, descending (empty when fewer than
    /// two iterations — variance needs a spread).
    pub attribution: Vec<Attribution>,
    /// Σ(QueueIdle + EpeDispatch) / Σ(Iteration); `None` without
    /// iteration records.
    pub coverage: Option<f64>,
}

impl Analysis {
    /// Stats for one kind, if any records of it were seen.
    pub fn phase(&self, kind: EventKind) -> Option<&PhaseStats> {
        self.phases.get(&(kind as u16))
    }

    /// The phase with the largest variance share, if attribution ran.
    pub fn dominant_phase(&self) -> Option<&Attribution> {
        self.attribution.first()
    }

    /// Renders the human-readable report (what `trace-analyze` prints).
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "trace: {} records analyzed, {} dropped by ring overflow",
            self.total_records, self.dropped
        );
        let _ = writeln!(
            out,
            "\n{:<15} {:>8} {:>12} {:>12} {:>12} {:>12} {:>12}",
            "phase", "count", "mean", "p50", "p95", "p99", "max"
        );
        for stats in self.phases.values() {
            let _ = writeln!(
                out,
                "{:<15} {:>8} {:>12} {:>12} {:>12} {:>12} {:>12}",
                stats.kind.label(),
                stats.count,
                fmt_ns(stats.mean_ns() as u64),
                fmt_ns(stats.p50_ns),
                fmt_ns(stats.p95_ns),
                fmt_ns(stats.p99_ns),
                fmt_ns(stats.max_ns),
            );
        }
        if !self.iterations.is_empty() {
            let mut durs: Vec<u64> = self.iterations.values().copied().collect();
            durs.sort_unstable();
            let _ = writeln!(
                out,
                "\niterations: {} observed, p50 {} / p99 {} / max {}",
                durs.len(),
                fmt_ns(nearest_rank(&durs, 50, 100)),
                fmt_ns(nearest_rank(&durs, 99, 100)),
                // invariant: `durs` mirrors `self.iterations`, guarded
                // non-empty by the branch above.
                fmt_ns(*durs.last().expect("non-empty")),
            );
        }
        if let Some(cov) = self.coverage {
            let _ = writeln!(
                out,
                "coverage: {:.1}% of iteration time decomposed into idle + dispatch",
                cov * 100.0
            );
        }
        if self.attribution.is_empty() {
            let _ = writeln!(out, "\njitter attribution: needs >= 2 iterations with variance");
        } else {
            let _ = writeln!(out, "\njitter attribution (variance share of iteration duration):");
            for a in &self.attribution {
                let _ = writeln!(out, "  {:<15} {:>6.1}%", a.kind.label(), a.share * 100.0);
            }
        }
        out
    }
}

/// Formats nanoseconds with an adaptive unit.
pub fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

/// Analyzes a merged set of records (see [`Analysis`]).
pub fn analyze(records: &[TraceRecord], dropped: u64) -> Analysis {
    let mut durs: BTreeMap<u16, Vec<u64>> = BTreeMap::new();
    let mut bytes: BTreeMap<u16, u64> = BTreeMap::new();
    let mut iterations: BTreeMap<u32, u64> = BTreeMap::new();
    // per-kind, per-iteration duration totals for attribution
    let mut per_iter: BTreeMap<u16, BTreeMap<u32, u64>> = BTreeMap::new();

    for r in records {
        let Some(kind) = r.event_kind() else { continue };
        durs.entry(r.kind).or_default().push(r.dur_ns);
        *bytes.entry(r.kind).or_insert(0) += r.bytes;
        if kind == EventKind::Iteration {
            // Several server respawns could re-report an iteration; keep
            // the longest observation.
            let e = iterations.entry(r.iteration).or_insert(0);
            *e = (*e).max(r.dur_ns);
        } else {
            *per_iter
                .entry(r.kind)
                .or_default()
                .entry(r.iteration)
                .or_insert(0) += r.dur_ns;
        }
    }

    let phases: BTreeMap<u16, PhaseStats> = durs
        .into_iter()
        .map(|(k, d)| {
            // invariant: `durs` keys come from records whose
            // `event_kind()` decoded, so `k` round-trips.
            let kind = EventKind::try_from(k).expect("filtered above");
            let b = bytes.get(&k).copied().unwrap_or(0);
            (k, PhaseStats::from_durations(kind, d, b))
        })
        .collect();

    // Attribution: Cov(P_k, D) / Var(D) over the iterations we saw.
    let mut attribution = Vec::new();
    if iterations.len() >= 2 {
        let iters: Vec<u32> = iterations.keys().copied().collect();
        let d: Vec<f64> = iters.iter().map(|i| iterations[i] as f64).collect();
        let n = d.len() as f64;
        let d_mean = d.iter().sum::<f64>() / n;
        let var = d.iter().map(|x| (x - d_mean).powi(2)).sum::<f64>() / n;
        if var > 0.0 {
            for (&k, by_iter) in &per_iter {
                // invariant: `per_iter` keys come from records whose
                // `event_kind()` decoded, so `k` round-trips.
                let kind = EventKind::try_from(k).expect("filtered above");
                if kind == EventKind::PhaseSample {
                    continue; // interchange records, not a pipeline phase
                }
                let p: Vec<f64> = iters
                    .iter()
                    .map(|i| by_iter.get(i).copied().unwrap_or(0) as f64)
                    .collect();
                let p_mean = p.iter().sum::<f64>() / n;
                let cov = p
                    .iter()
                    .zip(&d)
                    .map(|(pi, di)| (pi - p_mean) * (di - d_mean))
                    .sum::<f64>()
                    / n;
                attribution.push(Attribution { kind, share: cov / var });
            }
            attribution.sort_by(|a, b| b.share.total_cmp(&a.share));
        }
    }

    // Coverage over the disjoint top-level server decomposition.
    let iter_sum: u64 = iterations.values().sum();
    let coverage = if iter_sum > 0 {
        let accounted: u64 = [EventKind::QueueIdle, EventKind::EpeDispatch]
            .iter()
            .filter_map(|k| phases.get(&(*k as u16)))
            .map(|s| s.sum_ns)
            .sum();
        Some(accounted as f64 / iter_sum as f64)
    } else {
        None
    };

    Analysis {
        total_records: records.len() as u64,
        dropped,
        phases,
        iterations,
        attribution,
        coverage,
    }
}

/// Exact group summary of [`EventKind::PhaseSample`] records, keyed by
/// `(rank, bytes)` — the interchange `fig2_jitter` uses (`rank` carries
/// the strategy index, `bytes` the core count, `iteration` the phase).
/// All integer math, so summarizing in-memory records and records
/// round-tripped through a DTRC file yields byte-for-byte equal results.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GroupSummary {
    /// Group key: the record `rank` field.
    pub rank: u32,
    /// Group key: the record `bytes` field.
    pub bytes: u64,
    /// Samples in the group.
    pub count: u64,
    /// Σ duration, ns.
    pub sum_ns: u64,
    /// Min duration, ns.
    pub min_ns: u64,
    /// Max duration, ns.
    pub max_ns: u64,
}

impl GroupSummary {
    /// Mean duration in seconds.
    pub fn mean_s(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_ns as f64 / self.count as f64 / 1e9
        }
    }
}

/// Groups `PhaseSample` records by `(rank, bytes)`, sorted by key.
pub fn summarize_phase_samples(records: &[TraceRecord]) -> Vec<GroupSummary> {
    let mut groups: BTreeMap<(u32, u64), GroupSummary> = BTreeMap::new();
    for r in records {
        if r.event_kind() != Some(EventKind::PhaseSample) {
            continue;
        }
        let g = groups.entry((r.rank, r.bytes)).or_insert(GroupSummary {
            rank: r.rank,
            bytes: r.bytes,
            count: 0,
            sum_ns: 0,
            min_ns: u64::MAX,
            max_ns: 0,
        });
        g.count += 1;
        g.sum_ns += r.dur_ns;
        g.min_ns = g.min_ns.min(r.dur_ns);
        g.max_ns = g.max_ns.max(r.dur_ns);
    }
    groups.into_values().collect()
}

/// A merged set of trace files.
#[derive(Debug, Default)]
pub struct MergedTrace {
    /// All records, merged and sorted by `(t_ns, rank)` into one timeline.
    pub records: Vec<TraceRecord>,
    /// Σ producer-side ring drops.
    pub dropped: u64,
    /// Per-file issues worth surfacing (unclean close, corrupt blocks).
    pub warnings: Vec<String>,
    /// Files read.
    pub files: usize,
}

/// Loads and merges DTRC files. A directory argument means "every
/// `*.dtrc` file inside, sorted by name".
pub fn load_traces<P: AsRef<Path>>(paths: &[P]) -> damaris_format::Result<MergedTrace> {
    let mut expanded: Vec<PathBuf> = Vec::new();
    for p in paths {
        let p = p.as_ref();
        if p.is_dir() {
            let mut inner: Vec<PathBuf> = std::fs::read_dir(p)
                .map_err(damaris_format::SdfError::Io)?
                .filter_map(|e| e.ok().map(|e| e.path()))
                .filter(|p| p.extension().is_some_and(|x| x == "dtrc"))
                .collect();
            inner.sort();
            expanded.extend(inner);
        } else {
            expanded.push(p.to_path_buf());
        }
    }
    let mut merged = MergedTrace::default();
    for path in &expanded {
        let f = std::fs::File::open(path).map_err(damaris_format::SdfError::Io)?;
        let t: TraceFile = read_trace(std::io::BufReader::new(f))?;
        if !t.clean_close {
            merged
                .warnings
                .push(format!("{}: no clean trailer (producer died?)", path.display()));
        }
        if t.corrupt_blocks > 0 {
            merged.warnings.push(format!(
                "{}: {} corrupt/truncated block(s) skipped",
                path.display(),
                t.corrupt_blocks
            ));
        }
        merged.dropped += t.dropped;
        merged.records.extend(t.records);
        merged.files += 1;
    }
    merged.records.sort_by_key(|r| (r.t_ns, r.rank));
    Ok(merged)
}

#[cfg(all(test, not(feature = "check")))]
mod tests {
    use super::*;

    fn rec(kind: EventKind, iteration: u32, dur_ns: u64) -> TraceRecord {
        TraceRecord {
            t_ns: iteration as u64 * 1_000_000,
            dur_ns,
            bytes: 0,
            rank: 0,
            iteration,
            kind: kind as u16,
            flags: 0,
            pad: 0,
        }
    }

    #[test]
    fn nearest_rank_pinned() {
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(nearest_rank(&v, 50, 100), 50);
        assert_eq!(nearest_rank(&v, 95, 100), 95);
        assert_eq!(nearest_rank(&v, 99, 100), 99);
        assert_eq!(nearest_rank(&v, 100, 100), 100);
        // Small samples: nearest rank of p95 over 4 items is item 4.
        assert_eq!(nearest_rank(&[10, 20, 30, 40], 95, 100), 40);
        assert_eq!(nearest_rank(&[10, 20, 30, 40], 50, 100), 20);
        assert_eq!(nearest_rank(&[7], 99, 100), 7);
        assert_eq!(nearest_rank(&[], 99, 100), 0);
    }

    #[test]
    fn attribution_blames_the_varying_phase() {
        // 10 iterations; backend is constant 100 except iteration 7 where
        // it stalls 1000; memcpy is always 50. Iteration = backend + 100.
        let mut records = Vec::new();
        for it in 0..10u32 {
            let backend = if it == 7 { 1000 } else { 100 };
            records.push(rec(EventKind::BackendWrite, it, backend));
            records.push(rec(EventKind::Memcpy, it, 50));
            records.push(rec(EventKind::Iteration, it, backend + 100));
        }
        let a = analyze(&records, 0);
        let top = a.dominant_phase().expect("attribution ran");
        assert_eq!(top.kind, EventKind::BackendWrite);
        assert!((top.share - 1.0).abs() < 1e-9, "share {}", top.share);
        let memcpy_share = a
            .attribution
            .iter()
            .find(|x| x.kind == EventKind::Memcpy)
            .expect("memcpy attributed");
        assert!(memcpy_share.share.abs() < 1e-9);
    }

    #[test]
    fn coverage_ratio() {
        let records = vec![
            rec(EventKind::Iteration, 0, 1000),
            rec(EventKind::QueueIdle, 0, 600),
            rec(EventKind::EpeDispatch, 0, 300),
            rec(EventKind::PluginRun, 0, 250), // nested: not in coverage
        ];
        let a = analyze(&records, 0);
        let cov = a.coverage.expect("has iterations");
        assert!((cov - 0.9).abs() < 1e-9, "coverage {cov}");
    }

    #[test]
    fn phase_stats_quantiles_exact() {
        let mut records: Vec<TraceRecord> =
            (1..=100).map(|i| rec(EventKind::WriteCall, 0, i)).collect();
        records.push(rec(EventKind::Iteration, 0, 5000));
        let a = analyze(&records, 2);
        let w = a.phase(EventKind::WriteCall).expect("writes present");
        assert_eq!(w.count, 100);
        assert_eq!(w.p50_ns, 50);
        assert_eq!(w.p95_ns, 95);
        assert_eq!(w.p99_ns, 99);
        assert_eq!(w.max_ns, 100);
        assert_eq!(a.dropped, 2);
        assert!(a.attribution.is_empty(), "one iteration, no variance");
        let text = a.render();
        assert!(text.contains("write_call"));
        assert!(text.contains("2 dropped"));
    }

    #[test]
    fn phase_sample_grouping_is_exact() {
        let mut records = Vec::new();
        for (rank, bytes, durs) in [(0u32, 576u64, [10u64, 30, 20]), (1, 576, [5, 5, 5])] {
            for (i, d) in durs.iter().enumerate() {
                records.push(TraceRecord {
                    t_ns: i as u64,
                    dur_ns: *d,
                    bytes,
                    rank,
                    iteration: i as u32,
                    kind: EventKind::PhaseSample as u16,
                    flags: 0,
                    pad: 0,
                });
            }
        }
        let groups = summarize_phase_samples(&records);
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0], GroupSummary { rank: 0, bytes: 576, count: 3, sum_ns: 60, min_ns: 10, max_ns: 30 });
        assert_eq!(groups[1].sum_ns, 15);
        assert!((groups[0].mean_s() - 20e-9).abs() < 1e-18);
    }

    #[test]
    fn merge_files_from_dir() {
        use damaris_format::trace::TraceWriter;
        let dir = std::env::temp_dir().join(format!("obs-merge-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        for rank in 0..2u32 {
            let f = std::fs::File::create(dir.join(format!("rank-{rank}.dtrc"))).unwrap();
            let mut w = TraceWriter::new(std::io::BufWriter::new(f)).unwrap();
            let mut r = rec(EventKind::WriteCall, 0, 10 + rank as u64);
            r.rank = rank;
            r.t_ns = 100 - rank as u64; // rank 1 earlier: merge must sort
            w.write_block(&[r]).unwrap();
            w.note_dropped(rank as u64);
            w.finish().unwrap();
        }
        let merged = load_traces(&[&dir]).unwrap();
        assert_eq!(merged.files, 2);
        assert_eq!(merged.records.len(), 2);
        assert_eq!(merged.dropped, 1);
        assert!(merged.warnings.is_empty());
        assert_eq!(merged.records[0].rank, 1, "sorted by timestamp");
        std::fs::remove_dir_all(&dir).ok();
    }
}
