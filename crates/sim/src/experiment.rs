//! Experiment drivers: single write phases, multi-phase runs, and the
//! 50-iterations-plus-one-write runs behind Figs. 2–7 and Table I.

use crate::metrics::{scalability_factor, throughput, Stats};
use crate::noise::SimRng;
use crate::platform::PlatformSpec;
use crate::strategies::{run_phase, PhaseOutcome, Strategy};
use crate::workload::WorkloadSpec;

/// Results of one simulated write phase (plus derived metrics).
#[derive(Debug, Clone)]
pub struct PhaseReport {
    /// Strategy label.
    pub strategy: String,
    /// Total cores.
    pub ncores: usize,
    /// Per-process write time as the simulation experiences it.
    pub client_stats: Stats,
    /// Raw per-process write times.
    pub client_write_times: Vec<f64>,
    /// Barrier-to-barrier phase duration.
    pub phase_duration: f64,
    /// Dedicated-core write-time stats (Damaris only; zero stats otherwise).
    pub dedicated_stats: Stats,
    /// Logical bytes produced by the application.
    pub bytes_logical: u64,
    /// Bytes that reached the file system (post-compression).
    pub bytes_to_fs: u64,
    /// Aggregate throughput: logical bytes over the time they took to land.
    pub aggregate_throughput: f64,
    /// Time from phase start until the last byte was stored.
    pub io_makespan: f64,
}

impl PhaseReport {
    fn from_outcome(strategy: &Strategy, ncores: usize, out: PhaseOutcome) -> Self {
        PhaseReport {
            strategy: strategy.label().to_string(),
            ncores,
            client_stats: Stats::from(&out.client_write_times),
            phase_duration: out.phase_duration,
            dedicated_stats: Stats::from(&out.dedicated_write_times),
            bytes_logical: out.bytes_logical,
            bytes_to_fs: out.bytes_to_fs,
            aggregate_throughput: throughput(out.bytes_logical, out.io_makespan),
            io_makespan: out.io_makespan,
            client_write_times: out.client_write_times,
        }
    }
}

/// Simulates one write phase.
pub fn run_io_phase(
    platform: &PlatformSpec,
    workload: &WorkloadSpec,
    strategy: Strategy,
    ncores: usize,
    seed: u64,
) -> PhaseReport {
    let out = run_phase(platform, workload, &strategy, ncores, seed);
    PhaseReport::from_outcome(&strategy, ncores, out)
}

/// A full simulated run: `iterations` compute iterations with a write
/// phase every `workload.iterations_per_write`.
#[derive(Debug, Clone)]
pub struct RunReport {
    pub strategy: String,
    pub ncores: usize,
    /// Total run time (s).
    pub total_time: f64,
    /// Time spent in compute (s).
    pub compute_time: f64,
    /// Time the application observed as I/O (s).
    pub io_time: f64,
    /// Per-phase durations.
    pub phase_durations: Vec<f64>,
    /// Average write-phase duration.
    pub phase_mean: f64,
    /// Worst write-phase duration.
    pub phase_max: f64,
    /// Best write-phase duration.
    pub phase_min: f64,
    /// Dedicated-core spare-time fraction over the run (Damaris; else 0).
    pub spare_fraction: f64,
    /// Mean dedicated-core write time per phase (Damaris; else 0).
    pub dedicated_write_mean: f64,
}

/// Per-iteration compute time: the slowest node sets the pace (the
/// application synchronizes every iteration through halo exchanges).
fn iteration_time(
    platform: &PlatformSpec,
    strategy: &Strategy,
    workload: &WorkloadSpec,
    nodes: usize,
    rng: &mut SimRng,
) -> f64 {
    let active = strategy.compute_cores(platform.cores_per_node);
    let points = match strategy {
        Strategy::Damaris(o) => {
            workload.points_per_client(platform.cores_per_node, o.dedicated_per_node)
        }
        _ => workload.points_per_core_n(),
    };
    let base = platform.iteration_time(active, points);
    // Max of per-node OS noise factors; sample a subset for large runs
    // (the max over k i.i.d. lognormals grows like exp(σ√(2 ln k))).
    let samples = nodes.min(512);
    let mut worst: f64 = 0.0;
    for _ in 0..samples {
        worst = worst.max(platform.os_noise.factor(rng));
    }
    base * worst
}

/// Simulates `iterations` compute iterations plus periodic write phases.
pub fn run_simulation(
    platform: &PlatformSpec,
    workload: &WorkloadSpec,
    strategy: Strategy,
    ncores: usize,
    iterations: u32,
    seed: u64,
) -> RunReport {
    let nodes = platform.nodes_for(ncores);
    let mut rng = SimRng::new(seed, 0xC0FFEE);
    let mut compute_time = 0.0;
    let mut io_time = 0.0;
    let mut phase_durations = Vec::new();
    let mut dedicated_write_means = Vec::new();
    let mut spare_times = Vec::new();
    let mut window_since_write = 0.0;

    for iter in 1..=iterations {
        let it = iteration_time(platform, &strategy, workload, nodes, &mut rng);
        compute_time += it;
        window_since_write += it;
        if iter % workload.iterations_per_write == 0 {
            let phase_seed = seed
                .wrapping_mul(31)
                .wrapping_add(u64::from(iter));
            let out = run_phase(platform, workload, &strategy, ncores, phase_seed);
            phase_durations.push(out.phase_duration);
            io_time += out.phase_duration;
            if !out.dedicated_write_times.is_empty() {
                let mean = out.dedicated_write_times.iter().sum::<f64>()
                    / out.dedicated_write_times.len() as f64;
                dedicated_write_means.push(mean);
                spare_times.push((window_since_write - mean).max(0.0));
            }
            window_since_write = 0.0;
        }
    }

    let phase_stats = Stats::from(&phase_durations);
    let spare_fraction = if spare_times.is_empty() {
        0.0
    } else {
        let total_window = compute_time / phase_durations.len().max(1) as f64
            * phase_durations.len() as f64;
        (spare_times.iter().sum::<f64>() / total_window).clamp(0.0, 1.0)
    };
    RunReport {
        strategy: strategy.label().to_string(),
        ncores,
        total_time: compute_time + io_time,
        compute_time,
        io_time,
        phase_mean: phase_stats.mean,
        phase_max: phase_stats.max,
        phase_min: phase_stats.min,
        phase_durations,
        spare_fraction,
        dedicated_write_mean: if dedicated_write_means.is_empty() {
            0.0
        } else {
            dedicated_write_means.iter().sum::<f64>() / dedicated_write_means.len() as f64
        },
    }
}

/// A scripted rank failure for [`run_simulation_with_failure`]: `rank`
/// dies at the start of iteration `at_iteration`; the survivors learn of
/// it only when a synchronization times out `detection_timeout` seconds
/// later (mirroring the typed `PeerFailed` surfaced by the threaded MPI
/// substrate's receive timeouts).
#[derive(Debug, Clone, Copy)]
pub struct FailureSpec {
    /// The rank that dies (only used for labeling; the model is symmetric).
    pub rank: usize,
    /// 1-based iteration at whose start the rank dies.
    pub at_iteration: u32,
    /// How long survivors block before the failure surfaces (s).
    pub detection_timeout: f64,
}

/// [`RunReport`] plus the failure's measured impact.
#[derive(Debug, Clone)]
pub struct FailureRunReport {
    pub run: RunReport,
    /// The failed rank, echoed from the spec.
    pub failed_rank: usize,
    /// Wall time of the iteration in which the failure was detected.
    pub failure_iteration_time: f64,
    /// Median iteration time across the run (jitter baseline).
    pub median_iteration_time: f64,
    /// `failure_iteration_time / median_iteration_time` — how hard the
    /// failure spiked the iteration cadence.
    pub jitter_factor: f64,
    /// Duration of the write phase disrupted by the failure, if the
    /// strategy couples ranks at I/O time (collective I/O blocks the whole
    /// phase on the dead rank; file-per-process does not).
    pub disrupted_phase: Option<f64>,
}

/// [`run_simulation`] with one scripted rank failure.
///
/// The application synchronizes every iteration (halo exchanges), so every
/// survivor stalls for `detection_timeout` at iteration `at_iteration` —
/// the sim's analogue of a blocked `recv` returning `PeerFailed`. Under
/// collective I/O the next write phase is *also* held up by the timeout
/// (shared-file collectives cannot complete without every rank); under
/// file-per-process the phase runs undisturbed. The run then continues
/// with the survivors, as a restart-from-checkpoint harness would.
pub fn run_simulation_with_failure(
    platform: &PlatformSpec,
    workload: &WorkloadSpec,
    strategy: Strategy,
    ncores: usize,
    iterations: u32,
    seed: u64,
    failure: FailureSpec,
) -> FailureRunReport {
    let nodes = platform.nodes_for(ncores);
    let mut rng = SimRng::new(seed, 0xC0FFEE);
    let mut compute_time = 0.0;
    let mut io_time = 0.0;
    let mut phase_durations = Vec::new();
    let mut iteration_times = Vec::new();
    let mut failure_iteration_time = 0.0;
    let mut disrupted_phase = None;
    let mut failure_pending_for_io = false;

    for iter in 1..=iterations {
        let mut it = iteration_time(platform, &strategy, workload, nodes, &mut rng);
        if iter == failure.at_iteration {
            // Survivors block in the halo exchange until the timeout fires.
            it += failure.detection_timeout;
            failure_iteration_time = it;
            failure_pending_for_io = true;
        }
        iteration_times.push(it);
        compute_time += it;
        if iter % workload.iterations_per_write == 0 {
            let phase_seed = seed.wrapping_mul(31).wrapping_add(u64::from(iter));
            let out = run_phase(platform, workload, &strategy, ncores, phase_seed);
            let mut duration = out.phase_duration;
            if failure_pending_for_io {
                // Strategies that couple ranks at I/O time pay the timeout
                // again inside the phase: a shared-file collective cannot
                // complete without the dead rank's contribution.
                if matches!(strategy, Strategy::CollectiveIo) {
                    duration += failure.detection_timeout;
                    disrupted_phase = Some(duration);
                }
                failure_pending_for_io = false;
            }
            phase_durations.push(duration);
            io_time += duration;
        }
    }

    let mut sorted = iteration_times.clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("iteration times are finite"));
    let median_iteration_time = sorted[sorted.len() / 2];
    let phase_stats = Stats::from(&phase_durations);
    let run = RunReport {
        strategy: strategy.label().to_string(),
        ncores,
        total_time: compute_time + io_time,
        compute_time,
        io_time,
        phase_mean: phase_stats.mean,
        phase_max: phase_stats.max,
        phase_min: phase_stats.min,
        phase_durations,
        spare_fraction: 0.0,
        dedicated_write_mean: 0.0,
    };
    FailureRunReport {
        run,
        failed_rank: failure.rank,
        failure_iteration_time,
        median_iteration_time,
        jitter_factor: failure_iteration_time / median_iteration_time.max(f64::MIN_POSITIVE),
        disrupted_phase,
    }
}

/// Baseline `C_N`: compute-only time for `iterations` iterations on the
/// standard decomposition, used by the scalability factor (§IV-C2).
pub fn baseline_compute_time(
    platform: &PlatformSpec,
    workload: &WorkloadSpec,
    ncores: usize,
    iterations: u32,
    seed: u64,
) -> f64 {
    let nodes = platform.nodes_for(ncores);
    let mut rng = SimRng::new(seed, 0xBA5E);
    let mut total = 0.0;
    for _ in 0..iterations {
        total += iteration_time(
            platform,
            &Strategy::FilePerProcess, // standard decomposition, no I/O
            workload,
            nodes,
            &mut rng,
        );
    }
    total
}

/// Scalability-factor helper for Fig. 4a.
pub fn scalability_of_run(report: &RunReport, baseline_576: f64) -> f64 {
    scalability_factor(report.ncores, baseline_576, report.total_time)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform;

    #[test]
    fn run_includes_phases() {
        let p = platform::kraken();
        let w = WorkloadSpec::cm1_kraken();
        let r = run_simulation(&p, &w, Strategy::FilePerProcess, 576, 100, 1);
        assert_eq!(r.phase_durations.len(), 2); // every 50 iterations
        assert!(r.total_time > r.compute_time);
        assert!((r.total_time - r.compute_time - r.io_time).abs() < 1e-9);
    }

    #[test]
    fn damaris_io_time_negligible() {
        let p = platform::kraken();
        let w = WorkloadSpec::cm1_kraken();
        let r = run_simulation(&p, &w, Strategy::damaris(), 1152, 50, 2);
        assert!(r.io_time < 0.01 * r.total_time, "io {} total {}", r.io_time, r.total_time);
        assert!(r.spare_fraction > 0.5, "spare {}", r.spare_fraction);
        assert!(r.dedicated_write_mean > 0.0);
    }

    #[test]
    fn damaris_scales_better_than_fpp() {
        let p = platform::kraken();
        let w = WorkloadSpec::cm1_kraken();
        let base = baseline_compute_time(&p, &w, 576, 50, 1);
        let fpp = run_simulation(&p, &w, Strategy::FilePerProcess, 4608, 50, 1);
        let dam = run_simulation(&p, &w, Strategy::damaris(), 4608, 50, 1);
        let s_fpp = scalability_of_run(&fpp, base);
        let s_dam = scalability_of_run(&dam, base);
        assert!(
            s_dam > s_fpp,
            "damaris S={s_dam:.0} should beat fpp S={s_fpp:.0}"
        );
        // Damaris within 10% of perfect.
        assert!(s_dam > 0.90 * 4608.0, "S={s_dam:.0} of 4608");
    }

    #[test]
    fn baseline_is_deterministic() {
        let p = platform::kraken();
        let w = WorkloadSpec::cm1_kraken();
        let a = baseline_compute_time(&p, &w, 576, 50, 9);
        let b = baseline_compute_time(&p, &w, 576, 50, 9);
        assert_eq!(a, b);
    }

    #[test]
    fn rank_failure_spikes_jitter_and_collective_phase() {
        let p = platform::kraken();
        let w = WorkloadSpec::cm1_kraken();
        let spec = FailureSpec {
            rank: 17,
            at_iteration: 25,
            detection_timeout: 5.0,
        };
        let fpp =
            run_simulation_with_failure(&p, &w, Strategy::FilePerProcess, 576, 50, 3, spec);
        let cio =
            run_simulation_with_failure(&p, &w, Strategy::CollectiveIo, 576, 50, 3, spec);

        // The detection stall dominates an ordinary iteration: the failure
        // iteration is a visible jitter spike for every strategy.
        for r in [&fpp, &cio] {
            // The 5 s stall dominates (ordinary iterations have well under
            // 1 s of spread around the median).
            assert!(
                r.failure_iteration_time > r.median_iteration_time + 4.0,
                "failure iter {} vs median {}",
                r.failure_iteration_time,
                r.median_iteration_time
            );
            assert!(r.jitter_factor > 1.5, "jitter factor {}", r.jitter_factor);
            assert_eq!(r.failed_rank, 17);
        }
        // Only the rank-coupled strategy loses the write phase too.
        assert!(fpp.disrupted_phase.is_none());
        let disrupted = cio.disrupted_phase.expect("collective phase disrupted");
        assert!(disrupted >= 5.0);
        // Same seed, same spec → byte-identical accounting (determinism).
        let again =
            run_simulation_with_failure(&p, &w, Strategy::CollectiveIo, 576, 50, 3, spec);
        assert_eq!(again.run.total_time, cio.run.total_time);
    }

    #[test]
    fn phase_report_derivations() {
        let p = platform::kraken();
        let w = WorkloadSpec::cm1_kraken();
        let r = run_io_phase(&p, &w, Strategy::FilePerProcess, 576, 11);
        assert_eq!(r.client_stats.count, 576);
        assert!(r.aggregate_throughput > 0.0);
        assert!(r.client_stats.max <= r.phase_duration + 1e-9);
        assert_eq!(r.bytes_logical, w.total_bytes(576));
    }
}
