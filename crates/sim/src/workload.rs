//! The simulated CM1 workload: per-core subdomains, output volume, output
//! cadence (paper §IV-A/§IV-B).

/// Cost model of client-side (or server-side) compression: achieved ratio
/// and processing rate. Values for the real codecs are measured by
//  `damaris-bench` and fed in here when a figure needs them.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompressionModel {
    /// original/compressed (1.87 = the paper's gzip ratio on CM1 data).
    pub ratio: f64,
    /// Compression throughput, input bytes/s.
    pub rate: f64,
}

/// The simulated CM1 configuration.
#[derive(Debug, Clone)]
pub struct WorkloadSpec {
    /// Per-core subdomain (x, y, z) with the *standard* approach.
    pub points_per_core: (u64, u64, u64),
    /// Per-core subdomain when one core per node is dedicated; sized so the
    /// per-node total matches the standard run (paper §IV-B).
    pub points_per_core_dedicated: (u64, u64, u64),
    /// Output bytes per grid point per write phase (all enabled variables).
    pub bytes_per_point: f64,
    /// Iterations between write phases.
    pub iterations_per_write: u32,
    /// Client-side compression before writing (the BluePrint FPP runs
    /// enable HDF5 gzip; §IV-B).
    pub client_compression: Option<CompressionModel>,
}

impl WorkloadSpec {
    /// Kraken configuration: 44×44×200 per core (48×44×200 with a
    /// dedicated core), ~16 f32 variables ≈ 64 B/point.
    pub fn cm1_kraken() -> Self {
        WorkloadSpec {
            points_per_core: (44, 44, 200),
            points_per_core_dedicated: (48, 44, 200),
            bytes_per_point: 64.0,
            iterations_per_write: 50,
            client_compression: None,
        }
    }

    /// Grid'5000 configuration: 1104×1120×200 total over 672 cores →
    /// 46×40×200 per core, 15.8 GB per write phase → ~64 B/point.
    pub fn cm1_grid5000() -> Self {
        WorkloadSpec {
            points_per_core: (46, 40, 200),
            points_per_core_dedicated: (48, 40, 200),
            bytes_per_point: 64.0,
            iterations_per_write: 20,
            client_compression: None,
        }
    }

    /// BluePrint configuration: 960×960×300 over 1024 cores → 30×30×300
    /// per core; output size varied by enabling/disabling variables
    /// (`bytes_per_point`), HDF5 compression enabled on FPP runs.
    pub fn cm1_blueprint(bytes_per_point: f64) -> Self {
        WorkloadSpec {
            points_per_core: (30, 30, 300),
            points_per_core_dedicated: (24, 40, 300),
            bytes_per_point,
            iterations_per_write: 50,
            client_compression: Some(CompressionModel {
                ratio: 1.87,
                rate: 120.0e6,
            }),
        }
    }

    /// Grid points per core (standard decomposition).
    pub fn points_per_core_n(&self) -> u64 {
        let (x, y, z) = self.points_per_core;
        x * y * z
    }

    /// Grid points per core (dedicated-core decomposition).
    pub fn points_per_core_dedicated_n(&self) -> u64 {
        let (x, y, z) = self.points_per_core_dedicated;
        x * y * z
    }

    /// Output bytes per core per write phase (standard decomposition).
    pub fn bytes_per_core(&self) -> u64 {
        (self.points_per_core_n() as f64 * self.bytes_per_point) as u64
    }

    /// Output bytes per *client* core per write phase under Damaris with
    /// one dedicated core (the paper's published decomposition).
    pub fn bytes_per_dedicated_client(&self) -> u64 {
        (self.points_per_core_dedicated_n() as f64 * self.bytes_per_point) as u64
    }

    /// Grid points per client core when `dedicated` of the node's
    /// `cores_per_node` cores are dedicated: the per-node total is
    /// preserved (§IV-B "making the total problem size equivalent").
    pub fn points_per_client(&self, cores_per_node: usize, dedicated: usize) -> u64 {
        assert!(dedicated < cores_per_node);
        let node_total = self.points_per_core_n() * cores_per_node as u64;
        node_total.div_ceil((cores_per_node - dedicated) as u64)
    }

    /// Output bytes per client core for an arbitrary dedication count.
    pub fn bytes_per_client(&self, cores_per_node: usize, dedicated: usize) -> u64 {
        (self.points_per_client(cores_per_node, dedicated) as f64 * self.bytes_per_point) as u64
    }

    /// Total output bytes for a run on `ncores` cores (standard).
    pub fn total_bytes(&self, ncores: usize) -> u64 {
        self.bytes_per_core() * ncores as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kraken_subdomain_totals_match() {
        let w = WorkloadSpec::cm1_kraken();
        // Per-node totals: 12×(44×44×200) == 11×(48×44×200).
        assert_eq!(12 * w.points_per_core_n(), 11 * w.points_per_core_dedicated_n());
    }

    #[test]
    fn grid5000_volume_matches_paper() {
        let w = WorkloadSpec::cm1_grid5000();
        // 672 cores → ~15.8 GB per phase, ~24 MB per process (§IV-C1).
        let total = w.total_bytes(672) as f64 / 1e9;
        assert!((total - 15.8).abs() < 0.5, "total {total} GB");
        let per_proc = w.bytes_per_core() as f64 / 1e6;
        assert!((per_proc - 23.6).abs() < 1.5, "{per_proc} MB/proc");
    }

    #[test]
    fn blueprint_variable_output() {
        let small = WorkloadSpec::cm1_blueprint(16.0);
        let large = WorkloadSpec::cm1_blueprint(64.0);
        assert_eq!(large.total_bytes(1024), 4 * small.total_bytes(1024));
        assert!(small.client_compression.is_some());
    }
}
