//! The paper's closed-form cost model (§V-A): when does dedicating a core
//! pay off?
//!
//! With `N` cores per node, write time `W_std` and compute time `C_std`
//! under the standard approach, and `C_ded` the compute time when the same
//! per-node workload is divided across `N−1` cores, dedicating a core is a
//! theoretical win when
//!
//! ```text
//! W_std + C_std > max(C_ded, W_ded)
//! ```
//!
//! Assuming optimal parallelization (`C_ded = C_std · N/(N−1)`) and the
//! worst case for Damaris (`W_ded = N·W_std`), the inequality reduces to:
//! the application must spend at least `p%` of its time in I/O, with
//! `p = 100/(N−1)` — e.g. 4.35 % at 24 cores, already below the commonly
//! accepted 5 % (§V-A).

/// Minimum I/O-time share (percent) at which dedicating one of `n` cores
/// per node wins, under the paper's worst-case assumptions.
///
/// Panics if `n < 2` (a node needs at least one compute core left).
pub fn breakeven_io_percent(n: usize) -> f64 {
    assert!(n >= 2, "need at least 2 cores per node");
    100.0 / (n as f64 - 1.0)
}

/// The §V-A benefit inequality, verbatim: `W_std + C_std > max(C_ded, W_ded)`.
pub fn dedication_wins(w_std: f64, c_std: f64, c_ded: f64, w_ded: f64) -> bool {
    w_std + c_std > c_ded.max(w_ded)
}

/// Evaluates the *hiding* condition `W_std + C_std > C_ded` under the
/// paper's closed-form assumption of optimal parallelization
/// (`C_ded = C_std · N/(N−1)`).
///
/// `io_fraction` is I/O time relative to *compute* time (`W_std/C_std`) —
/// the way the paper's `p` is defined, since the threshold `p = 100/(N−1)`
/// solves exactly this inequality. The companion worst case
/// `W_ded = N·W_std` is shown experimentally not to bind (§IV-C3), so it is
/// not part of the model (use [`dedication_wins`] to test it directly).
pub fn dedication_wins_model(n: usize, io_fraction: f64) -> bool {
    assert!(n >= 2);
    let c_std = 1.0;
    let w_std = io_fraction;
    let c_ded = c_std * n as f64 / (n as f64 - 1.0);
    w_std + c_std > c_ded
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_quoted_value_at_24_cores() {
        // §V-A: "with 24 cores p = 4.35 %".
        let p = breakeven_io_percent(24);
        assert!((p - 4.35).abs() < 0.01, "p = {p}");
    }

    #[test]
    fn twelve_core_kraken_node() {
        // 100/11 ≈ 9.09 %: on 12-core nodes the model alone needs >9 % I/O
        // — the observed Damaris win on Kraken comes from bus saturation
        // and jitter removal on top of the model's worst case.
        let p = breakeven_io_percent(12);
        assert!((p - 9.0909).abs() < 0.01);
    }

    #[test]
    fn breakeven_decreases_with_cores() {
        let mut prev = breakeven_io_percent(2);
        for n in 3..=64 {
            let cur = breakeven_io_percent(n);
            assert!(cur < prev, "p({n}) = {cur} not < p({}) = {prev}", n - 1);
            prev = cur;
        }
    }

    #[test]
    fn model_consistency_with_breakeven() {
        for n in [4, 12, 16, 24, 48] {
            let p = breakeven_io_percent(n) / 100.0;
            // Slightly above the threshold: wins. Slightly below: loses.
            assert!(
                dedication_wins_model(n, p * 1.05),
                "should win at {n} cores just above threshold"
            );
            assert!(
                !dedication_wins_model(n, p * 0.95),
                "should lose at {n} cores just below threshold"
            );
        }
    }

    #[test]
    fn five_percent_io_wins_above_21_cores() {
        // The paper: at 5 % I/O, machines with >21 cores per node benefit
        // (100/20 = 5 %).
        assert!(!dedication_wins_model(20, 0.05));
        assert!(dedication_wins_model(22, 0.05));
        assert!(dedication_wins_model(24, 0.05));
    }

    #[test]
    fn inequality_direct() {
        // W_std=10, C_std=200 vs C_ded=218, W_ded=120 → 210 < 218: loses.
        assert!(!dedication_wins(10.0, 200.0, 218.0, 120.0));
        // W_std=20, C_std=200 vs C_ded=218, W_ded=240 → 220 < 240: loses.
        assert!(!dedication_wins(20.0, 200.0, 218.0, 240.0));
        // W_std=30, C_std=200 vs C_ded=218, W_ded=225 → 230 > 225: wins.
        assert!(dedication_wins(30.0, 200.0, 218.0, 225.0));
    }
}
