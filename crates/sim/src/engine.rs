//! Discrete-event core: a time-ordered event queue with deterministic
//! tie-breaking.
//!
//! The simulator is a queueing network: jobs hop between FCFS resources.
//! Because the heap delivers events in nondecreasing time order (FIFO among
//! equal times), feeding each hop's arrival into its resource as the event
//! is popped yields a correct FCFS schedule without coroutines.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Simulation time in seconds.
pub type SimTime = f64;

struct Entry<T> {
    time: SimTime,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<T> Eq for Entry<T> {}

impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest-first.
        // NaN times are a bug; total_cmp keeps the order total anyway.
        other
            .time
            .total_cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Earliest-first event queue with FIFO tie-breaking.
pub struct EventQueue<T> {
    heap: BinaryHeap<Entry<T>>,
    seq: u64,
    now: SimTime,
}

impl<T> EventQueue<T> {
    /// Empty queue at time zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            now: 0.0,
        }
    }

    /// Current simulation time (time of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `payload` at absolute time `time`.
    ///
    /// Panics if `time` is NaN or in the past — both are simulator bugs.
    pub fn schedule(&mut self, time: SimTime, payload: T) {
        assert!(!time.is_nan(), "scheduled at NaN");
        assert!(
            time >= self.now,
            "scheduled in the past: {time} < {}",
            self.now
        );
        self.heap.push(Entry {
            time,
            seq: self.seq,
            payload,
        });
        self.seq += 1;
    }

    /// Pops the earliest event, advancing the clock.
    pub fn pop(&mut self) -> Option<(SimTime, T)> {
        let entry = self.heap.pop()?;
        self.now = entry.time;
        Some((entry.time, entry.payload))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(3.0, "c");
        q.schedule(1.0, "a");
        q.schedule(2.0, "b");
        assert_eq!(q.pop().unwrap(), (1.0, "a"));
        assert_eq!(q.pop().unwrap(), (2.0, "b"));
        assert_eq!(q.pop().unwrap(), (3.0, "c"));
        assert!(q.pop().is_none());
    }

    #[test]
    fn fifo_among_equal_times() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(5.0, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap(), (5.0, i));
        }
    }

    #[test]
    fn clock_advances() {
        let mut q = EventQueue::new();
        q.schedule(2.5, ());
        assert_eq!(q.now(), 0.0);
        q.pop();
        assert_eq!(q.now(), 2.5);
        // Scheduling at the current time is allowed.
        q.schedule(2.5, ());
        q.pop();
    }

    #[test]
    #[should_panic(expected = "scheduled in the past")]
    fn past_scheduling_panics() {
        let mut q = EventQueue::new();
        q.schedule(2.0, ());
        q.pop();
        q.schedule(1.0, ());
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut q = EventQueue::new();
        q.schedule(1.0, 1);
        let (t, v) = q.pop().unwrap();
        assert_eq!((t, v), (1.0, 1));
        q.schedule(1.5, 2);
        q.schedule(1.2, 3);
        assert_eq!(q.pop().unwrap(), (1.2, 3));
        assert_eq!(q.pop().unwrap(), (1.5, 2));
        assert!(q.is_empty());
    }
}
